/// \file mcs_server.cpp
/// \brief The synthesis job-server daemon.
///
/// Wraps server::JobServer in three transports:
///
///   mcs_server --pipe               # NDJSON on stdin/stdout (tests, CI)
///   mcs_server --unix /run/mcs.sock # Unix domain socket, thread per client
///   mcs_server --tcp 7171           # TCP on 127.0.0.1, thread per client
///
/// All transports speak the protocol of server/protocol.hpp verbatim.  The
/// daemon drains gracefully on SIGTERM/SIGINT (stops accepting, finishes
/// every in-flight job, then exits 0) -- delivered via the classic
/// self-pipe trick so blocked poll() loops wake deterministically.  A
/// protocol {"type": "shutdown"} from any client stops the daemon the same
/// way.  In pipe mode EOF on stdin is an implicit shutdown, so
/// `mcs_submit --script jobs.ndjson` against a FIFO pair is a complete
/// smoke test with no networking at all.
///
/// With `--supervise` the process becomes a parent watchdog: it forks the
/// actual serving worker, restarts it (exponential backoff, bounded by
/// `--max-restarts`) whenever it dies without exiting 0, and forwards
/// SIGTERM/SIGINT so a drain still reaches the worker.  Paired with
/// `--journal PATH` the restarted worker replays accepted-but-unfinished
/// jobs from the durable journal, so a `kill -9` mid-job still ends in a
/// "done" line for every accepted job (marked "retried": true).  Per-stage
/// network snapshots (on by default with a journal; see --ckpt-dir) let a
/// replayed job *resume* at its last completed stage instead of re-running
/// the whole flow -- its done line then carries "resumed_stage": N.

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mcs/fail/fail.hpp"
#include "mcs/server/protocol.hpp"
#include "mcs/server/server.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_terminate_signal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (a full pipe
  // already means a pending wakeup).
  [[maybe_unused]] ssize_t r = write(g_signal_pipe[1], &byte, 1);
}

void install_signal_handlers() {
  if (pipe(g_signal_pipe) != 0) {
    std::perror("mcs_server: pipe");
    std::exit(1);
  }
  fcntl(g_signal_pipe[0], F_SETFL, O_NONBLOCK);
  fcntl(g_signal_pipe[1], F_SETFL, O_NONBLOCK);
  struct sigaction sa = {};
  sa.sa_handler = on_terminate_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // sink write errors are handled, not fatal
}

/// Writes all of \p data to \p fd; false on error (client gone).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Socket variant of write_all: MSG_NOSIGNAL so a vanished peer yields
/// EPIPE instead of SIGPIPE even if the handler were ever reset, and a
/// failed write half-closes the socket -- that pops the connection's
/// blocked read loop, which detaches the client and cancels its jobs.
/// A dead sink therefore disconnects cleanly instead of wedging runners
/// behind an unwritable fd.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      shutdown(fd, SHUT_RDWR);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void usage() {
  std::fputs(
      "usage: mcs_server (--pipe | --unix PATH | --tcp PORT) [options]\n"
      "\n"
      "transports\n"
      "  --pipe            serve one client on stdin/stdout (NDJSON lines)\n"
      "  --unix PATH       listen on a Unix domain socket\n"
      "  --tcp PORT        listen on 127.0.0.1:PORT\n"
      "\n"
      "options\n"
      "  --slots N           concurrent job runners (default: auto, 2..8)\n"
      "  --threads-per-job N worker threads per job stage (default 1)\n"
      "  --timeout-ms N      default per-job wall-clock budget (default none)\n"
      "  --max-jobs N        in-flight job cap before rejecting (default 4096)\n"
      "  --no-stream         suppress per-stage \"stage\" lines\n"
      "\n"
      "robustness\n"
      "  --journal PATH      durable fsync'd job journal; replayed on restart\n"
      "  --journal-max-bytes N  auto-compact the journal past N bytes\n"
      "                      (default 64 MiB; 0 = never)\n"
      "  --done-cache N      done lines retained for late attach, also the\n"
      "                      journal compaction budget (default 256)\n"
      "  --ckpt-dir PATH     per-stage network snapshot directory (default\n"
      "                      JOURNAL.ckpt); restarts resume jobs at their\n"
      "                      last checkpointed stage\n"
      "  --no-stage-ckpt     disable per-stage snapshots (replay restarts\n"
      "                      every recovered job from stage 0)\n"
      "  --supervise         watchdog parent: forks the worker, restarts it on\n"
      "                      crash (needs --unix/--tcp; pair with --journal)\n"
      "  --pidfile PATH      write the worker pid here (rewritten per restart)\n"
      "  --max-restarts N    supervisor restart budget (default 10)\n"
      "  --backoff-ms N      first restart delay, doubling to 5s (default 100)\n"
      "  --max-input-bytes N     reject larger inline inputs (default 16 MiB)\n"
      "  --max-jobs-per-client N per-client in-flight quota (default 1024)\n"
      "  --max-memory-mb N   shed new jobs past this arena high-water (0 = off)\n"
      "\n"
      "telemetry\n"
      "  --telemetry-interval-ms N  obs ring sampler period served by the\n"
      "                      \"stats\" verb (default 500; 0 disables)\n"
      "  --telemetry-ring N  retained registry samples (default 120)\n"
      "\n"
      "SIGTERM/SIGINT drain gracefully: accepted jobs finish, then exit 0.\n",
      stderr);
}

// --- pipe mode --------------------------------------------------------------

int run_pipe(mcs::server::JobServer& server) {
  std::mutex out_mutex;
  const std::uint64_t client =
      server.attach([&out_mutex](const std::string& line) {
        std::lock_guard<std::mutex> lock(out_mutex);
        write_all(STDOUT_FILENO, line + "\n");
      });

  std::string buffer;
  char chunk[4096];
  bool stop = false;
  while (!stop) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    if (poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // SIGTERM/SIGINT: drain below
    if (fds[0].revents == 0) continue;
    const ssize_t n = read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF: implicit shutdown
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      server.handle_line(client, line);
      if (server.draining()) {
        stop = true;  // "shutdown" request; stop reading, drain below
        break;
      }
    }
  }

  if (!server.draining()) {
    // SIGTERM/EOF path: announce the drain like a protocol shutdown would.
    server.handle_line(client, mcs::server::shutdown_line());
  }
  server.drain();
  {
    std::lock_guard<std::mutex> lock(out_mutex);
    write_all(STDOUT_FILENO,
              mcs::server::drained_line(server.counters()) + "\n");
  }
  server.detach(client);
  return 0;
}

// --- socket modes -----------------------------------------------------------

struct ConnectionSet {
  std::mutex mutex;
  // fd -> that connection's write mutex (shared with its attached sink, so
  // broadcasts cannot interleave with streamed stage/done lines).
  std::map<int, std::shared_ptr<std::mutex>> fds;

  std::shared_ptr<std::mutex> add(int fd) {
    auto write_mutex = std::make_shared<std::mutex>();
    std::lock_guard<std::mutex> lock(mutex);
    fds.emplace(fd, write_mutex);
    return write_mutex;
  }
  void remove(int fd) {
    std::lock_guard<std::mutex> lock(mutex);
    fds.erase(fd);
  }
  /// Writes one line to every live connection.
  void broadcast(const std::string& line) {
    std::vector<std::pair<int, std::shared_ptr<std::mutex>>> snapshot;
    {
      std::lock_guard<std::mutex> lock(mutex);
      snapshot.assign(fds.begin(), fds.end());
    }
    for (const auto& [fd, write_mutex] : snapshot) {
      std::lock_guard<std::mutex> lock(*write_mutex);
      send_all(fd, line + "\n");
    }
  }
  /// Wakes every blocked connection reader (used at drain time).
  void shutdown_all() {
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto& [fd, write_mutex] : fds) shutdown(fd, SHUT_RDWR);
  }
};

void serve_connection(mcs::server::JobServer& server, int fd,
                      ConnectionSet& connections,
                      std::shared_ptr<std::mutex> out_mutex) {
  const std::uint64_t client =
      server.attach([fd, out_mutex](const std::string& line) {
        std::lock_guard<std::mutex> lock(*out_mutex);
        send_all(fd, line + "\n");
      });

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      server.handle_line(client, line);
      if (server.draining()) {
        // A protocol "shutdown" stops the whole daemon, exactly like
        // SIGTERM: wake the accept loop through the self-pipe so
        // run_listener proceeds to its drain/teardown.
        on_terminate_signal(0);
      }
    }
  }
  // Disconnect cancels the client's jobs: nobody is listening for their
  // results, and freeing their slots is the multi-tenant-friendly choice.
  server.detach(client, /*cancel_jobs=*/true);
  connections.remove(fd);
  close(fd);
}

int run_listener(mcs::server::JobServer& server, int listen_fd) {
  ConnectionSet connections;
  std::vector<std::thread> threads;

  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    if (poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // SIGTERM/SIGINT
    if (fds[0].revents == 0) continue;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto out_mutex = connections.add(fd);
    threads.emplace_back([&server, fd, &connections, out_mutex] {
      serve_connection(server, fd, connections, out_mutex);
    });
  }

  close(listen_fd);
  server.drain();               // finish in-flight jobs; dones still stream
  // Tell every client the drain completed (clients like `mcs_submit
  // --shutdown` block on this line), then cut the connections.
  connections.broadcast(mcs::server::drained_line(server.counters()));
  connections.shutdown_all();   // wake readers so threads exit
  for (std::thread& t : threads) t.join();
  return 0;
}

int listen_unix(const std::string& path) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("mcs_server: socket");
    return -1;
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "mcs_server: socket path too long: %s\n",
                 path.c_str());
    close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(path.c_str());  // stale socket from a previous run
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 64) != 0) {
    std::perror("mcs_server: bind/listen");
    close(fd);
    return -1;
  }
  return fd;
}

// --- supervisor mode --------------------------------------------------------

volatile sig_atomic_t g_supervisor_stop = 0;
volatile pid_t g_worker_pid = -1;

void on_supervisor_signal(int sig) {
  g_supervisor_stop = 1;
  const pid_t pid = g_worker_pid;
  if (pid > 0) kill(pid, sig);  // forward: the worker drains gracefully
}

struct SupervisorOptions {
  std::string pidfile;    ///< worker pid, rewritten on every (re)start
  int max_restarts = 10;  ///< crash-restart budget before giving up
  long backoff_ms = 100;  ///< first restart delay; doubles, capped at 5s
};

void write_pidfile(const std::string& path, pid_t pid) {
  if (path.empty()) return;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror("mcs_server: pidfile");
    return;
  }
  std::fprintf(f, "%d\n", static_cast<int>(pid));
  std::fclose(f);
}

/// The parent watchdog: forks the serving worker and restarts it, with
/// exponential backoff and within the restart budget, whenever it dies
/// without exiting 0.  All protocol state a restart must preserve lives
/// in the worker's journal (the worker replays it and re-binds its own
/// listening socket), so the supervisor stays trivially crash-free: it
/// holds a pid and a counter, nothing else.  Returns the parent's exit
/// code, or -1 in the forked child -- the caller then falls through
/// into the normal worker path.
int supervise_loop(const SupervisorOptions& sup) {
  struct sigaction sa = {};
  sa.sa_handler = on_supervisor_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  int restarts = 0;
  long backoff_ms = std::max(sup.backoff_ms, 1L);
  for (;;) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("mcs_server: fork");
      return 1;
    }
    if (pid == 0) return -1;  // child: become the worker
    g_worker_pid = pid;
    write_pidfile(sup.pidfile, pid);

    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    g_worker_pid = -1;

    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (clean || g_supervisor_stop) {
      if (!sup.pidfile.empty()) unlink(sup.pidfile.c_str());
      return clean ? 0 : 1;
    }
    if (restarts >= sup.max_restarts) {
      std::fprintf(stderr,
                   "mcs_server: restart budget (%d) exhausted, giving up\n",
                   sup.max_restarts);
      if (!sup.pidfile.empty()) unlink(sup.pidfile.c_str());
      return 1;
    }
    ++restarts;
    if (WIFSIGNALED(status)) {
      std::fprintf(stderr,
                   "mcs_server: worker killed by signal %d; restart %d/%d "
                   "in %ld ms\n",
                   WTERMSIG(status), restarts, sup.max_restarts, backoff_ms);
    } else {
      std::fprintf(stderr,
                   "mcs_server: worker exited %d; restart %d/%d in %ld ms\n",
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1, restarts,
                   sup.max_restarts, backoff_ms);
    }
    usleep(static_cast<useconds_t>(backoff_ms) * 1000);
    backoff_ms = std::min(backoff_ms * 2, 5000L);
    if (g_supervisor_stop) {
      // Stop requested during the backoff window; nothing left to kill.
      if (!sup.pidfile.empty()) unlink(sup.pidfile.c_str());
      return 0;
    }
  }
}

int listen_tcp(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("mcs_server: socket");
    return -1;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 64) != 0) {
    std::perror("mcs_server: bind/listen");
    close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kPipe, kUnix, kTcp };
  Mode mode = Mode::kNone;
  std::string unix_path;
  int tcp_port = 0;
  mcs::server::ServerOptions options;
  bool supervise = false;
  SupervisorOptions sup;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mcs_server: %s needs a value\n", argv[i]);
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--pipe") {
      mode = Mode::kPipe;
    } else if (arg == "--unix") {
      mode = Mode::kUnix;
      unix_path = need_value(i);
    } else if (arg == "--tcp") {
      mode = Mode::kTcp;
      tcp_port = std::atoi(need_value(i));
    } else if (arg == "--slots") {
      options.job_slots = std::atoi(need_value(i));
    } else if (arg == "--threads-per-job") {
      options.threads_per_job = std::atoi(need_value(i));
    } else if (arg == "--timeout-ms") {
      options.default_timeout_ms = std::atoll(need_value(i));
    } else if (arg == "--max-jobs") {
      options.max_jobs_in_flight =
          static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--no-stream") {
      options.stream_stages = false;
    } else if (arg == "--journal") {
      options.journal_path = need_value(i);
    } else if (arg == "--journal-max-bytes") {
      options.journal_max_bytes =
          static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--done-cache") {
      options.done_cache = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--ckpt-dir") {
      options.ckpt_dir = need_value(i);
    } else if (arg == "--no-stage-ckpt") {
      options.stage_checkpoints = false;
    } else if (arg == "--supervise") {
      supervise = true;
    } else if (arg == "--pidfile") {
      sup.pidfile = need_value(i);
    } else if (arg == "--max-restarts") {
      sup.max_restarts = std::atoi(need_value(i));
    } else if (arg == "--backoff-ms") {
      sup.backoff_ms = std::atol(need_value(i));
    } else if (arg == "--max-input-bytes") {
      options.max_input_bytes =
          static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--max-jobs-per-client") {
      options.max_jobs_per_client =
          static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--max-memory-mb") {
      options.max_memory_mb =
          static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--telemetry-interval-ms") {
      options.telemetry_interval_ms =
          static_cast<unsigned>(std::atoi(need_value(i)));
    } else if (arg == "--telemetry-ring") {
      options.telemetry_ring =
          static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "mcs_server: unknown option %s\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (mode == Mode::kNone) {
    usage();
    return 1;
  }
  if (mode == Mode::kTcp && (tcp_port <= 0 || tcp_port > 65535)) {
    std::fprintf(stderr, "mcs_server: bad TCP port\n");
    return 1;
  }

  if (supervise) {
    if (mode == Mode::kPipe) {
      std::fprintf(stderr,
                   "mcs_server: --supervise needs --unix or --tcp (a "
                   "restarted worker cannot resume a half-consumed stdin)\n");
      return 1;
    }
    if (options.journal_path.empty()) {
      std::fprintf(stderr,
                   "mcs_server: warning: --supervise without --journal; "
                   "in-flight jobs are lost on a worker crash\n");
    }
    const int rc = supervise_loop(sup);
    if (rc >= 0) return rc;  // parent watchdog is done
    // Forked child: fall through and serve.  The worker re-binds the
    // listening socket and replays the journal itself, so nothing needs
    // to survive in the supervisor across restarts.
  }

  install_signal_handlers();
  // Arm MCS_FAULTS for the transport-level sites (server.line/server.emit)
  // -- flow::run would arm them too, but only once a job reaches a stage.
  mcs::fail::init_from_env();
  if (!supervise) write_pidfile(sup.pidfile, getpid());

  mcs::server::JobServer server(options);
  if (mode == Mode::kPipe) return run_pipe(server);

  const int listen_fd =
      mode == Mode::kUnix ? listen_unix(unix_path) : listen_tcp(tcp_port);
  if (listen_fd < 0) return 1;
  std::fprintf(stderr, "mcs_server: listening on %s\n",
               mode == Mode::kUnix
                   ? unix_path.c_str()
                   : ("127.0.0.1:" + std::to_string(tcp_port)).c_str());
  const int rc = run_listener(server, listen_fd);
  if (mode == Mode::kUnix) unlink(unix_path.c_str());
  return rc;
}
