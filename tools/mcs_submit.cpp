/// \file mcs_submit.cpp
/// \brief Client for the mcs_server job protocol.
///
/// Single-job mode -- submit one flow, stream its reports, exit by status:
///
///   mcs_submit --connect unix:/run/mcs.sock
///              --flow "gen:adder,bits=32; compress2rs; map_lut:k=6"
///              [--id j1] [--input design.aig] [--timeout-ms 60000]
///              [--threads 2] [--weight 2.0] [--cancel-after-ms 500]
///              [--retry 5] [--emit aiger] [--artifact-out out.aag]
///
/// `--retry N` makes the client crash-tolerant: the initial connect is
/// retried with backoff, and a mid-job disconnect (supervised worker
/// crash) reconnects and re-binds to the job with an "attach" request --
/// the journal replay on the server side finishes the job, so the done
/// line still arrives (carrying "retried": true, plus "resumed_stage": N
/// when a stage checkpoint let the replay skip the completed stages).
///
///   exit code: 0 = done ok, 2 = done error, 3 = cancelled, 4 = timeout,
///              5 = rejected, 1 = transport/protocol trouble.
///
/// Script mode -- drive a whole session from an NDJSON request file
/// (`-` = stdin); lines are sent in order, `!sleep N` directive lines
/// pause N ms (so a script can cancel a job mid-run deterministically):
///
///   mcs_submit --connect pipe:in.fifo,out.fifo --script session.ndjson
///
/// Script mode prints every response line to stdout and exits 0 once every
/// submitted job got its "done" line (and, if a shutdown was sent, the
/// final "drained" arrived) -- individual job statuses are in the output
/// for the caller to inspect.
///
/// Admin mode -- one-shot queries against a running server: `--ping`
/// round-trips the protocol and prints a one-line stats summary (uptime,
/// jobs running/queued/completed); `--stats`, `--health` and `--jobs`
/// print the raw reply JSON of the corresponding admin verb (pipe them
/// into jq, or watch them live with `mcs_top`).
///
/// Transports: `unix:PATH`, `tcp:HOST:PORT`, and `pipe:TO,FROM` -- a FIFO
/// pair feeding an `mcs_server --pipe < TO > FROM` instance.  The FIFO
/// open order (TO for write first, then FROM for read) mirrors the
/// server's shell-redirection order, so neither side deadlocks.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcs/server/json.hpp"
#include "mcs/server/protocol.hpp"
#include "transport.hpp"

namespace {

using mcs::server::Json;
using mcs::tools::Connection;
using mcs::tools::connect_with_retry;

// --- response inspection ----------------------------------------------------

struct Response {
  std::string type;
  std::string job;
  std::string status;
};

Response inspect(const std::string& line) {
  Response r;
  try {
    const Json msg = Json::parse(line);
    if (const Json* t = msg.find("type"); t && t->is_string())
      r.type = t->as_string();
    if (const Json* j = msg.find("job"); j && j->is_string())
      r.job = j->as_string();
    if (const Json* s = msg.find("status"); s && s->is_string())
      r.status = s->as_string();
  } catch (const mcs::server::JsonError&) {
    // Unparseable server line: printed verbatim, ignored for bookkeeping.
  }
  return r;
}

// --- modes ------------------------------------------------------------------

int status_to_exit(const std::string& status) {
  if (status == "ok") return 0;
  if (status == "error") return 2;
  if (status == "cancelled") return 3;
  if (status == "timeout") return 4;
  return 1;
}

/// Extracts the inline {"artifact": {"text": ...}} of a done line into
/// \p path; false when the line carries no artifact or the write fails.
bool save_artifact(const std::string& done_json, const std::string& path) {
  try {
    const Json msg = Json::parse(done_json);
    const Json* artifact = msg.find("artifact");
    if (artifact == nullptr || !artifact->is_object()) return false;
    const Json* text = artifact->find("text");
    if (text == nullptr || !text->is_string()) return false;
    std::ofstream out(path, std::ios::binary);
    out << text->as_string();
    return out.good();
  } catch (const mcs::server::JsonError&) {
    return false;
  }
}

int run_single(const std::string& connect_to, Connection& conn,
               const mcs::server::Request& req, long long cancel_after_ms,
               bool quiet, int retries, long retry_backoff_ms,
               const std::string& artifact_out) {
  if (!conn.send_line(mcs::server::submit_line(req))) {
    std::fprintf(stderr, "mcs_submit: send failed\n");
    return 1;
  }

  std::thread canceller;
  if (cancel_after_ms > 0) {
    canceller = std::thread([&conn, &req, cancel_after_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
      conn.send_line(mcs::server::cancel_line(req.id));
    });
  }

  int exit_code = 1;
  int reconnects_left = retries;
  bool awaiting_attach = false;  // an "error" now means "job unknown here"
  bool finished = false;
  std::string line;
  while (!finished) {
    while (conn.read_line(line)) {
      if (!quiet) std::cout << line << "\n" << std::flush;
      const Response r = inspect(line);
      if (r.type == "attached" && r.job == req.id) {
        awaiting_attach = false;  // re-bound; stage/done lines resume
        continue;
      }
      if (r.type == "done" && r.job == req.id) {
        exit_code = status_to_exit(r.status);
        if (!artifact_out.empty() && !save_artifact(line, artifact_out)) {
          std::fprintf(stderr, "mcs_submit: no artifact in done line\n");
          if (exit_code == 0) exit_code = 1;
        }
        finished = true;
        break;
      }
      if (r.type == "error" && (r.job == req.id || r.job.empty())) {
        if (awaiting_attach) {
          // The crash beat the journal's accept record: the restarted
          // server never heard of the job.  Submit it again from here.
          awaiting_attach = false;
          if (!conn.send_line(mcs::server::submit_line(req))) break;
          continue;
        }
        exit_code = 5;  // rejected before becoming a job
        finished = true;
        break;
      }
    }
    if (finished) break;
    // EOF before "done": the server (or its supervised worker) died
    // mid-job.  Reconnect and re-bind via "attach" -- the journal replay
    // finishes the job and its done line reaches us here.
    if (reconnects_left <= 0) {
      std::fprintf(stderr,
                   "mcs_submit: connection lost before \"done\"%s\n",
                   retries > 0 ? " (retries exhausted)" : "");
      break;
    }
    --reconnects_left;
    conn.close_all();
    if (!connect_with_retry(connect_to, conn, retries, retry_backoff_ms)) {
      std::fprintf(stderr, "mcs_submit: reconnect to %s failed\n",
                   connect_to.c_str());
      break;
    }
    awaiting_attach = true;
    if (!conn.send_line(mcs::server::attach_line(req.id))) {
      std::fprintf(stderr, "mcs_submit: attach send failed\n");
      break;
    }
  }
  if (canceller.joinable()) canceller.join();
  return exit_code;
}

int run_script(Connection& conn, std::istream& script) {
  std::set<std::string> pending;  // submitted ids awaiting "done"
  bool sent_shutdown = false;

  // Sending happens inline (requests are small; the server reads greedily),
  // response collection afterwards -- with !sleep directives in between so
  // scripts can race cancels against running jobs deterministically.  A
  // response backlog during sends sits in the kernel buffers meanwhile.
  std::string line;
  while (std::getline(script, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("!sleep ", 0) == 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::atoll(line.c_str() + 7)));
      continue;
    }
    try {
      const mcs::server::Request req = mcs::server::parse_request(line);
      if (req.kind == mcs::server::Request::Kind::kSubmit)
        pending.insert(req.id);
      if (req.kind == mcs::server::Request::Kind::kShutdown)
        sent_shutdown = true;
    } catch (const mcs::server::ProtocolError&) {
      // Deliberately malformed lines are legal in scripts (the error-path
      // smoke test sends them); the server answers with an "error" line.
    }
    if (!conn.send_line(line)) {
      // After a shutdown request the server may legitimately drain and
      // leave before later script lines go out (EPIPE here); the session
      // is over, so stop sending and collect the buffered responses.
      if (sent_shutdown) break;
      std::fprintf(stderr, "mcs_submit: send failed\n");
      return 1;
    }
  }

  bool drained = false;
  while (conn.read_line(line)) {
    std::cout << line << "\n" << std::flush;
    const Response r = inspect(line);
    if (r.type == "done") pending.erase(r.job);
    if (r.type == "error" && !r.job.empty()) pending.erase(r.job);
    if (r.type == "drained") {
      drained = true;
      break;
    }
    if (pending.empty() && !sent_shutdown) break;
  }
  if (!pending.empty()) {
    std::fprintf(stderr, "mcs_submit: %zu job(s) never reported done\n",
                 pending.size());
    return 1;
  }
  if (sent_shutdown && !drained) {
    std::fprintf(stderr, "mcs_submit: no \"drained\" after shutdown\n");
    return 1;
  }
  return 0;
}

void usage() {
  std::fputs(
      "usage: mcs_submit --connect SPEC (--flow SPEC | --script FILE |\n"
      "                                  --cancel ID | --ping | --stats |\n"
      "                                  --health | --jobs | --shutdown)\n"
      "\n"
      "  --connect unix:PATH | tcp:HOST:PORT | pipe:TO_FIFO,FROM_FIFO\n"
      "\n"
      "admin\n"
      "  --ping               protocol round-trip plus a one-line summary\n"
      "                       (uptime, jobs running/queued/completed)\n"
      "  --stats              print the raw \"stats\" reply: counters, obs\n"
      "                       registry, telemetry ring, Prometheus text\n"
      "  --health             print the raw \"health\" reply (readiness,\n"
      "                       drain state, journal lag, memory watermark)\n"
      "  --jobs               print the raw \"jobs\" reply (live job table\n"
      "                       with per-job attributed CPU and peak bytes)\n"
      "\n"
      "single job\n"
      "  --flow \"gen:adder,bits=32; compress2rs; map_lut:k=6\"\n"
      "  --id NAME            job id (default: job1)\n"
      "  --input FILE         inline network (.blif -> blif, else aiger)\n"
      "  --format aiger|blif  override input format detection\n"
      "  --timeout-ms N       per-job wall-clock budget\n"
      "  --threads N          worker threads for this job's stages\n"
      "  --weight W           fair-share weight (> 0)\n"
      "  --cancel-after-ms N  send a cancel N ms after submitting\n"
      "  --emit aiger         ask for the result netlist inline in \"done\"\n"
      "  --artifact-out FILE  write that inline artifact here (implies\n"
      "                       --emit aiger)\n"
      "  --retry N            reconnect budget: retries the initial connect\n"
      "                       and, after a mid-job disconnect, re-binds via\n"
      "                       \"attach\" (resubmitting if the job is unknown)\n"
      "  --retry-backoff-ms N first retry delay, doubling to 5s (default 200)\n"
      "  --quiet              suppress response echo; exit code only\n"
      "\n"
      "session script\n"
      "  --script FILE        NDJSON requests (- = stdin; !sleep N pauses)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_to;
  std::string script_path;
  std::string input_path;
  std::string cancel_id;
  bool ping = false;
  std::string admin_verb;  // "stats" / "health" / "jobs": one-shot queries
  bool shutdown_only = false;
  bool quiet = false;
  long long cancel_after_ms = 0;
  int retries = 0;
  long retry_backoff_ms = 200;
  std::string artifact_out;
  mcs::server::Request req;
  req.kind = mcs::server::Request::Kind::kSubmit;
  req.id = "job1";

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mcs_submit: %s needs a value\n", argv[i]);
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect") {
      connect_to = need_value(i);
    } else if (arg == "--flow") {
      req.flow_spec = need_value(i);
    } else if (arg == "--id") {
      req.id = need_value(i);
    } else if (arg == "--input") {
      input_path = need_value(i);
    } else if (arg == "--format") {
      req.input_format = need_value(i);
    } else if (arg == "--timeout-ms") {
      req.timeout_ms = std::atoll(need_value(i));
    } else if (arg == "--threads") {
      req.threads = std::atoi(need_value(i));
    } else if (arg == "--weight") {
      req.weight = std::atof(need_value(i));
    } else if (arg == "--cancel-after-ms") {
      cancel_after_ms = std::atoll(need_value(i));
    } else if (arg == "--emit") {
      req.emit = need_value(i);
    } else if (arg == "--artifact-out") {
      artifact_out = need_value(i);
    } else if (arg == "--retry") {
      retries = std::atoi(need_value(i));
    } else if (arg == "--retry-backoff-ms") {
      retry_backoff_ms = std::atol(need_value(i));
    } else if (arg == "--script") {
      script_path = need_value(i);
    } else if (arg == "--cancel") {
      cancel_id = need_value(i);
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--stats") {
      admin_verb = "stats";
    } else if (arg == "--health") {
      admin_verb = "health";
    } else if (arg == "--jobs") {
      admin_verb = "jobs";
    } else if (arg == "--shutdown") {
      shutdown_only = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "mcs_submit: unknown option %s\n", arg.c_str());
      usage();
      return 1;
    }
  }

  if (connect_to.empty()) {
    usage();
    return 1;
  }
  signal(SIGPIPE, SIG_IGN);
  if (!artifact_out.empty() && req.emit.empty()) req.emit = "aiger";

  Connection conn;
  if (!connect_with_retry(connect_to, conn, retries, retry_backoff_ms)) {
    std::fprintf(stderr, "mcs_submit: cannot connect to %s\n",
                 connect_to.c_str());
    return 1;
  }

  if (!script_path.empty()) {
    if (script_path == "-") return run_script(conn, std::cin);
    std::ifstream script(script_path);
    if (!script) {
      std::fprintf(stderr, "mcs_submit: cannot open %s\n",
                   script_path.c_str());
      return 1;
    }
    return run_script(conn, script);
  }

  if (!cancel_id.empty()) {
    if (!conn.send_line(mcs::server::cancel_line(cancel_id))) return 1;
    std::string line;
    if (conn.read_line(line)) std::cout << line << "\n";
    return 0;
  }
  if (!admin_verb.empty()) {
    const std::string request =
        admin_verb == "stats"    ? mcs::server::stats_request_line()
        : admin_verb == "health" ? mcs::server::health_request_line()
                                 : mcs::server::jobs_request_line();
    if (!conn.send_line(request)) return 1;
    std::string line;
    if (!conn.read_line(line)) return 1;
    std::cout << line << "\n";
    return 0;
  }
  if (ping) {
    // Round-trip a real ping first (the liveness check), then fetch the
    // stats and condense them to one human-readable line.
    if (!conn.send_line(mcs::server::ping_line())) return 1;
    std::string line;
    if (!conn.read_line(line) || inspect(line).type != "pong") return 1;
    if (!conn.send_line(mcs::server::stats_request_line())) return 1;
    if (!conn.read_line(line)) return 1;
    try {
      const Json msg = Json::parse(line);
      auto count = [&msg](const char* key) -> long long {
        const Json* v = msg.find(key);
        return v != nullptr && v->is_number() ? v->as_int() : 0;
      };
      double uptime = 0.0;
      if (const Json* v = msg.find("uptime_seconds");
          v != nullptr && v->is_number()) {
        uptime = v->as_number();
      }
      const Json* draining = msg.find("draining");
      std::printf(
          "up %.1fs%s: %lld running, %lld queued, %lld completed, "
          "%lld failed (accepted %lld, rejected %lld)\n",
          uptime,
          draining != nullptr && draining->is_bool() && draining->as_bool()
              ? " [draining]"
              : "",
          count("running"), count("queued"), count("completed"),
          count("failed"), count("accepted"), count("rejected"));
    } catch (const mcs::server::JsonError&) {
      std::cout << line << "\n";  // unformattable: echo the raw reply
    }
    return 0;
  }
  if (shutdown_only) {
    if (!conn.send_line(mcs::server::shutdown_line())) return 1;
    std::string line;
    while (conn.read_line(line)) {
      std::cout << line << "\n" << std::flush;
      if (inspect(line).type == "drained") return 0;
    }
    return 1;
  }

  if (req.flow_spec.empty()) {
    std::fprintf(stderr,
                 "mcs_submit: --flow, --script, --cancel, --ping, --stats, "
                 "--health, --jobs or --shutdown required\n");
    return 1;
  }
  if (!input_path.empty()) {
    std::ifstream in(input_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "mcs_submit: cannot open %s\n", input_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    req.input_text = text.str();
    if (req.input_format.empty()) {
      req.input_format =
          input_path.size() >= 5 &&
                  input_path.compare(input_path.size() - 5, 5, ".blif") == 0
              ? "blif"
              : "aiger";
    }
  }
  return run_single(connect_to, conn, req, cancel_after_ms, quiet, retries,
                    retry_backoff_ms, artifact_out);
}
