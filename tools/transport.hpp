/// \file transport.hpp
/// \brief Client-side transports for the mcs_server protocol, shared by
/// mcs_submit and mcs_top.
///
/// A Connection is a pair of fds speaking newline-delimited JSON; the
/// `--connect SPEC` grammar is `unix:PATH`, `tcp:HOST:PORT` or
/// `pipe:TO_FIFO,FROM_FIFO` (a FIFO pair feeding an `mcs_server --pipe`
/// instance).  The FIFO open order (TO for write first, then FROM for
/// read) mirrors the server's shell-redirection order, so neither side
/// deadlocks.  Header-only on purpose: the tools are single-file
/// executables built by a CMake glob.

#pragma once

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace mcs::tools {

struct Connection {
  int in_fd = -1;   ///< server -> client
  int out_fd = -1;  ///< client -> server
  std::string read_buffer;

  bool send_line(const std::string& line) {
    const std::string data = line + "\n";
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = write(out_fd, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads the next response line; false on EOF/error.
  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t pos = read_buffer.find('\n');
      if (pos != std::string::npos) {
        line = read_buffer.substr(0, pos);
        read_buffer.erase(0, pos + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = read(in_fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      read_buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Half-closes the client->server direction (pipe mode: EOF tells the
  /// server to drain; we keep reading until "drained").
  void close_send() {
    if (out_fd >= 0 && out_fd != in_fd) close(out_fd);
    if (out_fd >= 0 && out_fd == in_fd) shutdown(out_fd, SHUT_WR);
    out_fd = -1;
  }

  /// Tears the whole connection down so the object can be reconnected
  /// (the --retry reconnect path after a server crash).
  void close_all() {
    if (out_fd >= 0 && out_fd != in_fd) close(out_fd);
    if (in_fd >= 0) close(in_fd);
    in_fd = out_fd = -1;
    read_buffer.clear();
  }

  ~Connection() {
    if (out_fd >= 0 && out_fd != in_fd) close(out_fd);
    if (in_fd >= 0) close(in_fd);
  }
};

inline bool connect_unix(const std::string& path, Connection& conn) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return false;
  }
  conn.in_fd = conn.out_fd = fd;
  return true;
}

inline bool connect_tcp(const std::string& host, int port, Connection& conn) {
  addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res) !=
          0 ||
      res == nullptr) {
    return false;
  }
  const int fd = socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  bool ok = fd >= 0 && connect(fd, res->ai_addr, res->ai_addrlen) == 0;
  freeaddrinfo(res);
  if (!ok) {
    if (fd >= 0) close(fd);
    return false;
  }
  conn.in_fd = conn.out_fd = fd;
  return true;
}

inline bool connect_pipe(const std::string& to_path,
                         const std::string& from_path, Connection& conn) {
  // Order matters with FIFOs: the server (shell-redirected) blocks opening
  // its stdin FIFO for read until a writer appears, then its stdout FIFO
  // for write until a reader appears.  Open write-to-server first.
  conn.out_fd = open(to_path.c_str(), O_WRONLY);
  if (conn.out_fd < 0) return false;
  conn.in_fd = open(from_path.c_str(), O_RDONLY);
  return conn.in_fd >= 0;
}

inline bool connect_spec(const std::string& spec, Connection& conn) {
  if (spec.rfind("unix:", 0) == 0) return connect_unix(spec.substr(5), conn);
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) return false;
    return connect_tcp(rest.substr(0, colon),
                       std::atoi(rest.c_str() + colon + 1), conn);
  }
  if (spec.rfind("pipe:", 0) == 0) {
    const std::string rest = spec.substr(5);
    const std::size_t comma = rest.find(',');
    if (comma == std::string::npos) return false;
    return connect_pipe(rest.substr(0, comma), rest.substr(comma + 1), conn);
  }
  return false;
}

/// connect_spec with up to \p retries re-attempts, exponential backoff
/// doubling from \p backoff_ms (capped at 5s).  Covers both a server that
/// has not bound its socket yet and the window while a supervisor is
/// restarting a crashed worker.
inline bool connect_with_retry(const std::string& spec, Connection& conn,
                               int retries, long backoff_ms) {
  backoff_ms = std::max(backoff_ms, 1L);
  for (int attempt = 0;; ++attempt) {
    if (connect_spec(spec, conn)) return true;
    conn.close_all();
    if (attempt >= retries) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 5000L);
  }
}

}  // namespace mcs::tools
