/// \file mcs_top.cpp
/// \brief Live dashboard for a running mcs_server -- `top` for synthesis
/// jobs, no curses required.
///
///   mcs_top --connect unix:/run/mcs.sock [--interval-ms 1000] [--once]
///
/// Polls the server's admin verbs ("health", "stats", "jobs" -- see
/// protocol.hpp) over any client transport and redraws a two-part screen
/// with plain ANSI escapes:
///
///   * a header: uptime, drain state, job counters with per-second rates
///     (computed client-side between polls), memory watermarks, journal
///     size, telemetry-sampler state;
///   * a job table: one row per in-flight job with its scheduler state,
///     current stage/pass, queue wait, attributed CPU (both total seconds
///     and utilization-% over the last poll interval -- the obs v2 domain
///     attribution, so a job's CPU covers every pool worker that ran for
///     it), and its peak strash/cut-arena bytes.
///
/// The admin verbs answer mid-drain, so mcs_top keeps reporting while a
/// server finishes its last jobs; it exits when the connection drops
/// (server gone) or on Ctrl-C.  `--once` prints a single frame without
/// clearing the screen -- handy in scripts and CI logs.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "mcs/server/json.hpp"
#include "mcs/server/protocol.hpp"
#include "transport.hpp"

namespace {

using mcs::server::Json;
using mcs::server::JsonError;

volatile std::sig_atomic_t g_stop = 0;
void on_sigint(int) { g_stop = 1; }

double num_field(const Json& obj, const char* key, double fallback = 0.0) {
  const Json* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string str_field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

/// One poll round: sends \p request, parses the one-line reply.  False on
/// transport death or unparseable output (server gone / not a JobServer).
bool query(mcs::tools::Connection& conn, const std::string& request,
           Json& reply) {
  if (!conn.send_line(request)) return false;
  std::string line;
  if (!conn.read_line(line)) return false;
  try {
    reply = Json::parse(line);
  } catch (const JsonError&) {
    return false;
  }
  return reply.is_object();
}

std::string human_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fG", bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fM", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fK", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", bytes);
  }
  return buf;
}

struct JobSample {
  double cpu_us = 0.0;
  double at_seconds = 0.0;  ///< server uptime when sampled (shared clock)
};

void draw_frame(const Json& health, const Json& stats, const Json& jobs,
                const std::string& where, double interval_s,
                std::map<std::string, JobSample>& last_cpu,
                const Json* last_stats, bool clear) {
  if (clear) std::fputs("\x1b[H\x1b[2J", stdout);

  const double uptime = num_field(health, "uptime_seconds");
  const std::string status = str_field(health, "status");
  const Json* telemetry = health.find("telemetry");
  const bool sampler_on =
      telemetry != nullptr && telemetry->is_bool() && telemetry->as_bool();
  std::printf("mcs_top -- %s   up %.1fs   status %s%s\n", where.c_str(),
              uptime, status.empty() ? "?" : status.c_str(),
              sampler_on ? "   sampler on" : "");

  // Counter rates over the poll interval, from the previous stats frame.
  auto rate = [&](const char* key) {
    if (last_stats == nullptr || interval_s <= 0.0) return 0.0;
    return (num_field(stats, key) - num_field(*last_stats, key)) / interval_s;
  };
  std::printf(
      "jobs: %.0f running, %.0f queued | accepted %.0f (%.1f/s), "
      "completed %.0f (%.1f/s), failed %.0f, rejected %.0f\n",
      num_field(stats, "running"), num_field(stats, "queued"),
      num_field(stats, "accepted"), rate("accepted"),
      num_field(stats, "completed"), rate("completed"),
      num_field(stats, "failed"), num_field(stats, "rejected"));

  const double mem = num_field(health, "memory_bytes");
  const double limit = num_field(health, "memory_limit_bytes");
  std::printf("mem: %s high-water", human_bytes(mem).c_str());
  if (limit > 0) std::printf(" / %s limit", human_bytes(limit).c_str());
  std::printf("   journal %s\n\n",
              human_bytes(num_field(health, "journal_bytes")).c_str());

  std::printf("%-16s %-8s %-20s %7s %8s %8s %8s %8s %8s\n", "ID", "STATE",
              "STAGE", "CPU%", "CPU(s)", "WAIT(s)", "STRASH", "ARENA",
              "ELAPSED");

  const Json* rows = jobs.find("jobs");
  std::map<std::string, JobSample> next_cpu;
  std::size_t shown = 0;
  if (rows != nullptr && rows->is_array()) {
    for (const Json& j : rows->items()) {
      if (!j.is_object()) continue;
      const std::string id = str_field(j, "id");
      const double cpu_us = num_field(j, "cpu_us");
      JobSample sample;
      sample.cpu_us = cpu_us;
      sample.at_seconds = uptime;
      next_cpu[id] = sample;

      // Utilization over the window since this job was last seen: >100%
      // means multiple pool workers were attributed to it concurrently.
      double cpu_pct = 0.0;
      if (const auto it = last_cpu.find(id);
          it != last_cpu.end() && uptime > it->second.at_seconds) {
        cpu_pct = (cpu_us - it->second.cpu_us) /
                  ((uptime - it->second.at_seconds) * 1e6) * 100.0;
      }

      char stage[32];
      std::snprintf(stage, sizeof(stage), "%.0f/%.0f %s",
                    num_field(j, "stage"), num_field(j, "stages"),
                    str_field(j, "pass").c_str());
      std::printf("%-16.16s %-8s %-20.20s %7.0f %8.2f %8.2f %8s %8s %8.1f\n",
                  id.c_str(), str_field(j, "state").c_str(), stage, cpu_pct,
                  cpu_us / 1e6, num_field(j, "queue_wait_seconds"),
                  human_bytes(num_field(j, "strash_bytes")).c_str(),
                  human_bytes(num_field(j, "arena_bytes")).c_str(),
                  num_field(j, "seconds"));
      ++shown;
    }
  }
  if (shown == 0) std::printf("(no jobs in flight)\n");
  std::fflush(stdout);
  last_cpu.swap(next_cpu);
}

void usage() {
  std::fputs(
      "usage: mcs_top --connect SPEC [--interval-ms N] [--once]\n"
      "\n"
      "  --connect unix:PATH | tcp:HOST:PORT | pipe:TO_FIFO,FROM_FIFO\n"
      "  --interval-ms N   poll period (default 1000)\n"
      "  --once            print a single frame and exit (no screen clear)\n"
      "  --frames N        exit after N frames (0 = until Ctrl-C/EOF)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_to;
  long interval_ms = 1000;
  bool once = false;
  long frames = 0;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "mcs_top: %s needs a value\n", argv[i]);
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect") {
      connect_to = need_value(i);
    } else if (arg == "--interval-ms") {
      interval_ms = std::atol(need_value(i));
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--frames") {
      frames = std::atol(need_value(i));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "mcs_top: unknown option %s\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (connect_to.empty()) {
    usage();
    return 1;
  }
  if (interval_ms <= 0) interval_ms = 1000;
  if (once) frames = 1;
  std::signal(SIGINT, on_sigint);
  std::signal(SIGPIPE, SIG_IGN);

  mcs::tools::Connection conn;
  if (!mcs::tools::connect_spec(connect_to, conn)) {
    std::fprintf(stderr, "mcs_top: cannot connect to %s\n",
                 connect_to.c_str());
    return 1;
  }

  std::map<std::string, JobSample> last_cpu;
  Json last_stats = Json::null();
  bool have_last = false;
  long frame = 0;
  while (g_stop == 0) {
    Json health = Json::null();
    Json stats = Json::null();
    Json jobs = Json::null();
    if (!query(conn, mcs::server::health_request_line(), health) ||
        !query(conn, mcs::server::stats_request_line(), stats) ||
        !query(conn, mcs::server::jobs_request_line(), jobs)) {
      std::fprintf(stderr, "mcs_top: server is gone\n");
      return frame > 0 ? 0 : 1;
    }
    draw_frame(health, stats, jobs, connect_to, interval_ms / 1000.0,
               last_cpu, have_last ? &last_stats : nullptr, /*clear=*/!once);
    last_stats = std::move(stats);
    have_last = true;
    ++frame;
    if (frames > 0 && frame >= frames) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
