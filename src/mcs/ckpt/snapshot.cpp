#include "mcs/ckpt/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "mcs/fail/fail.hpp"
#include "mcs/obs/obs.hpp"

namespace mcs::ckpt {

namespace {

constexpr char kMagic[4] = {'M', 'C', 'S', 'S'};
constexpr std::uint32_t kVersion = 1;

struct CkptMetrics {
  obs::Counter& snapshots = obs::counter("ckpt.snapshots");
  obs::Counter& snapshot_bytes = obs::counter("ckpt.snapshot_bytes");
  obs::Counter& restores = obs::counter("ckpt.restores");
};

CkptMetrics& metrics() {
  static CkptMetrics m;
  return m;
}

// FNV-1a, good enough to catch torn writes and bit rot; this is a
// corruption check, not an authenticity check.
std::uint64_t checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian cursor over a snapshot blob.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | static_cast<std::uint64_t>(u32()) << 32;
  }

  std::string string() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  std::size_t pos() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw SnapshotError("snapshot: truncated blob");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> snapshot(const Network& net) {
  std::vector<std::uint8_t> out;
  // Node records dominate: ~5 bytes per 2-input gate, 9 per 3-input.
  out.reserve(64 + net.size() * 10 + (net.num_pis() + net.num_pos()) * 12);
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, kVersion);
  put_u64(out, net.size());
  put_u64(out, net.num_pis());
  put_u64(out, net.num_pos());
  put_u64(out, net.num_choices());

  for (NodeId id = 1; id < net.size(); ++id) {
    const Node& nd = net.node(id);
    out.push_back(static_cast<std::uint8_t>(nd.type));
    for (int i = 0; i < gate_arity(nd.type); ++i) {
      put_u32(out, nd.fanin[static_cast<std::size_t>(i)].raw());
    }
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    put_u32(out, net.po_at(i).raw());
  }
  // Choice classes: per representative, the member chain head-first.
  for (NodeId id = 1; id < net.size(); ++id) {
    if (!net.has_choice(id)) continue;
    std::vector<NodeId> members;
    for (NodeId m = net.node(id).next_choice; m != kNullNode;
         m = net.node(m).next_choice) {
      members.push_back(m);
    }
    put_u32(out, id);
    put_u32(out, static_cast<std::uint32_t>(members.size()));
    for (const NodeId m : members) {
      put_u32(out, m);
      out.push_back(net.node(m).choice_phase ? 1 : 0);
    }
  }
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    put_string(out, net.pi_name(i));
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    put_string(out, net.po_name(i));
  }
  put_u64(out, checksum(out.data(), out.size()));

  metrics().snapshots.increment();
  metrics().snapshot_bytes.add(out.size());
  return out;
}

Network restore(const std::vector<std::uint8_t>& blob) {
  if (blob.size() < 4 + 4 + 4 * 8 + 8) {
    throw SnapshotError("snapshot: blob too small");
  }
  if (std::memcmp(blob.data(), kMagic, 4) != 0) {
    throw SnapshotError("snapshot: bad magic");
  }
  const std::uint64_t stored_sum =
      [&] {
        Reader tail(blob.data() + blob.size() - 8, 8);
        return tail.u64();
      }();
  if (checksum(blob.data(), blob.size() - 8) != stored_sum) {
    throw SnapshotError("snapshot: checksum mismatch");
  }

  Reader r(blob.data() + 4, blob.size() - 4 - 8);
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw SnapshotError("snapshot: unsupported version " +
                        std::to_string(version));
  }
  const std::uint64_t num_nodes = r.u64();
  const std::uint64_t num_pis = r.u64();
  const std::uint64_t num_pos = r.u64();
  const std::uint64_t num_choices = r.u64();
  if (num_nodes == 0 || num_nodes > (std::uint64_t{1} << 31) ||
      num_pis >= num_nodes) {
    throw SnapshotError("snapshot: implausible node counts");
  }

  // Decode everything into staging vectors before touching a Network: PI
  // names live after the node records but are needed at create_pi time,
  // and a decode error must not leave a half-built network behind.
  struct StagedNode {
    GateType type;
    std::array<Signal, 3> fanin;
  };
  std::vector<StagedNode> staged;
  staged.reserve(num_nodes - 1);
  for (std::uint64_t id = 1; id < num_nodes; ++id) {
    StagedNode sn;
    const std::uint8_t t = r.u8();
    if (t < static_cast<std::uint8_t>(GateType::kPi) ||
        t > static_cast<std::uint8_t>(GateType::kXor3)) {
      throw SnapshotError("snapshot: bad node type");
    }
    sn.type = static_cast<GateType>(t);
    for (int i = 0; i < gate_arity(sn.type); ++i) {
      const Signal f = Signal::from_raw(r.u32());
      if (f.node() >= id) {
        throw SnapshotError("snapshot: fanin breaks topological order");
      }
      sn.fanin[static_cast<std::size_t>(i)] = f;
    }
    staged.push_back(sn);
  }
  std::vector<Signal> pos;
  pos.reserve(num_pos);
  for (std::uint64_t i = 0; i < num_pos; ++i) {
    const Signal s = Signal::from_raw(r.u32());
    if (s.node() >= num_nodes) throw SnapshotError("snapshot: PO out of range");
    pos.push_back(s);
  }
  struct StagedChoice {
    NodeId repr;
    NodeId member;
    bool phase;
  };
  std::vector<StagedChoice> choices;
  choices.reserve(num_choices);
  while (choices.size() < num_choices) {
    const NodeId repr = r.u32();
    const std::uint32_t count = r.u32();
    if (repr >= num_nodes || count == 0 ||
        choices.size() + count > num_choices) {
      throw SnapshotError("snapshot: malformed choice class");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId member = r.u32();
      const bool phase = r.u8() != 0;
      if (member >= num_nodes || member == repr) {
        throw SnapshotError("snapshot: choice member out of range");
      }
      choices.push_back({repr, member, phase});
    }
  }
  std::vector<std::string> pi_names;
  pi_names.reserve(num_pis);
  for (std::uint64_t i = 0; i < num_pis; ++i) pi_names.push_back(r.string());
  std::vector<std::string> po_names;
  po_names.reserve(num_pos);
  for (std::uint64_t i = 0; i < num_pos; ++i) po_names.push_back(r.string());

  Network net;
  net.reserve(num_nodes);
  std::size_t next_pi = 0;
  for (std::uint64_t id = 1; id < num_nodes; ++id) {
    const StagedNode& sn = staged[id - 1];
    NodeId created;
    if (sn.type == GateType::kPi) {
      if (next_pi >= pi_names.size()) {
        throw SnapshotError("snapshot: more PI nodes than PI names");
      }
      created = net.create_pi(pi_names[next_pi++]).node();
    } else {
      created = net.restore_gate(sn.type, sn.fanin);
    }
    // Ids drifting from the record order means the source fanins were not
    // normalized/strashed -- i.e. the blob lies about its own structure.
    if (created != id) {
      throw SnapshotError("snapshot: node id drift during restore");
    }
  }
  if (next_pi != num_pis) {
    throw SnapshotError("snapshot: PI count mismatch");
  }
  for (std::uint64_t i = 0; i < num_pos; ++i) {
    net.create_po(pos[i], po_names[i]);
  }
  // add_choice inserts at the head of the representative's list, so the
  // serialized chain order (head first) is rebuilt tail-first.
  for (auto it = choices.rbegin(); it != choices.rend(); ++it) {
    if (!net.is_repr(it->repr) || !net.is_repr(it->member) ||
        net.node(it->member).next_choice != kNullNode) {
      throw SnapshotError("snapshot: inconsistent choice chain");
    }
    net.add_choice(it->repr, it->member, it->phase);
  }

  metrics().restores.increment();
  return net;
}

void write_snapshot_file(const Network& net, const std::string& path) {
  fail::point("ckpt.write");
  const std::vector<std::uint8_t> blob = snapshot(net);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SnapshotError("ckpt: cannot write " + tmp + ": " +
                        std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < blob.size()) {
    const ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw SnapshotError("ckpt: write failed: " + std::string(std::strerror(err)));
    }
    off += static_cast<std::size_t>(n);
  }
  // The checkpoint contract: after rename, either the previous checkpoint
  // or this one is on disk in full -- never a torn mix.
  ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw SnapshotError("ckpt: rename failed: " +
                        std::string(std::strerror(err)));
  }
}

Network read_snapshot_file(const std::string& path) {
  fail::point("ckpt.load");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw SnapshotError("ckpt: cannot read " + path + ": " +
                        std::strerror(errno));
  }
  std::vector<std::uint8_t> blob;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw SnapshotError("ckpt: read failed: " +
                          std::string(std::strerror(err)));
    }
    if (n == 0) break;
    blob.insert(blob.end(), buf, buf + n);
  }
  ::close(fd);
  return restore(blob);
}

}  // namespace mcs::ckpt
