/// \file ckpt_passes.cpp
/// \brief Flow registration for the checkpoint/rollback layer: the `ckpt`
/// settings pass arms the transactional stage runner from flow specs and
/// the shell (`ckpt:mode=retry,retries=2,validate=on,sim_words=8`), so a
/// flow opts into snapshot/rollback/validation without any API plumbing.

#include <string>

#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"

#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

void register_ckpt_passes(PassRegistry& registry) {
  registry.add({
      .name = "ckpt",
      .summary = "arm transactional stage execution (snapshot/validate/"
                 "rollback, mcs::ckpt)",
      .kind = PassKind::kSetting,
      .params =
          {{.key = "mode",
            .type = ParamType::kString,
            .default_value = "retry",
            .help = "failure policy after rollback: retry | skip | fail; "
                    "off disables snapshotting and validation entirely"},
           {.key = "retries",
            .type = ParamType::kInt,
            .default_value = "1",
            .help = "retry budget per stage under mode=retry"},
           {.key = "validate",
            .type = ParamType::kBool,
            .default_value = "true",
            .help = "run the Network::check() invariant audit after every "
                    "stage"},
           {.key = "sim_words",
            .type = ParamType::kInt,
            .default_value = "0",
            .help = "> 0: sim-signature equivalence spot check over "
                    "transform/choice stages, with this many 64-bit words"},
           {.key = "sim_seed",
            .type = ParamType::kUint64,
            .default_value = "1592639710",  // TxnPolicy's 0x5eedc0de
            .help = "PI stimulus seed of the spot check"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            const std::string mode = args.get_string("mode");
            if (mode == "off") {
              ctx.txn = TxnPolicy{};
              ctx.note = "checkpointing off";
              return;
            }
            TxnPolicy txn;
            txn.snapshot = true;
            if (mode == "retry") {
              txn.on_failure = TxnPolicy::OnFailure::kRetry;
            } else if (mode == "skip") {
              txn.on_failure = TxnPolicy::OnFailure::kSkip;
            } else if (mode == "fail") {
              txn.on_failure = TxnPolicy::OnFailure::kFail;
            } else {
              throw FlowError("ckpt: mode must be retry, skip, fail or off, "
                              "got '" + mode + "'");
            }
            const long long retries = args.get_int("retries");
            if (retries < 0 || retries > 1000) {
              throw FlowError("ckpt: retries must be in [0, 1000]");
            }
            txn.max_retries = static_cast<int>(retries);
            txn.validate = args.get_bool("validate");
            const long long words = args.get_int("sim_words");
            if (words < 0 || words > 4096) {
              throw FlowError("ckpt: sim_words must be in [0, 4096]");
            }
            txn.sim_words = static_cast<int>(words);
            txn.sim_seed = args.get_uint64("sim_seed");
            ctx.txn = txn;
            ctx.note = "mode=" + mode +
                       (txn.validate ? ", validate on" : ", validate off") +
                       (txn.sim_words > 0
                            ? ", sim_words=" + std::to_string(txn.sim_words)
                            : "");
          },
  });
}

}  // namespace mcs::flow
