/// \file snapshot.hpp
/// \brief mcs::ckpt -- compact binary network snapshots.
///
/// A snapshot is the durable unit of the checkpoint/rollback layer: the
/// transactional stage runner (flow::run_stage_txn) captures one before
/// every mutating stage so a throwing, fault-injected or
/// invariant-violating pass can be rolled back, and the job server
/// persists one per completed stage so a kill -9'd worker's replacement
/// resumes a flow at its last completed stage instead of stage 0.
///
/// **Format** (version 1, little-endian, length-prefixed strings):
///
///   magic "MCSS" | u32 version
///   u64 num_nodes | u64 num_pis | u64 num_pos | u64 num_choices
///   node records, ids 1..num_nodes-1 in ascending order
///     (node 0, the constant, is implicit):
///       u8 GateType | arity x u32 raw fanin Signal   (PIs have no fanins)
///   num_pos x u32 raw PO Signal
///   choice classes, representatives in ascending id order:
///       u32 repr | u32 member_count | per member u32 id + u8 phase
///         (members in chain order, head first)
///   num_pis x (u32 len + bytes) PI names
///   num_pos x (u32 len + bytes) PO names
///   u64 checksum over every preceding byte
///
/// **Round-trip bit-identity.**  Nodes are serialized with their already
/// strash-normalized fanins and restored in ascending id order through
/// Network::restore_gate, which bypasses the create_and/xor/maj rewrite
/// rules; since node ids are a topological order and the level/fanout
/// bookkeeping is a pure function of the fanins, the restored network
/// reproduces ids, levels, fanout counts, type counters and the strash
/// table exactly.  Choice members are re-attached in reverse chain order
/// (add_choice inserts at the head), reproducing the lists verbatim.
/// tests/test_ckpt.cpp pins write_blif-level bit identity across every
/// base.
///
/// **Corruption detection.**  restore() rejects bad magic/version, short
/// or oversized blobs, out-of-range ids and checksum mismatches with
/// SnapshotError -- it never fabricates a half-restored network.  The
/// file helpers write via temp file + fsync + atomic rename (a crash
/// mid-checkpoint leaves the previous checkpoint intact) and carry the
/// `ckpt.write` / `ckpt.load` fault-injection sites.
///
/// Every capture is counted in the `ckpt.snapshots` / `ckpt.snapshot_bytes`
/// obs metrics (see the README metric catalogue).

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcs/network/network.hpp"

namespace mcs::ckpt {

/// Raised on malformed, truncated or corrupted snapshots and on file I/O
/// failures in the file-backed helpers.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes \p net into a self-contained snapshot blob.
std::vector<std::uint8_t> snapshot(const Network& net);

/// Rebuilds a network from \p blob.  Throws SnapshotError on any
/// structural or checksum violation.
Network restore(const std::vector<std::uint8_t>& blob);

/// Writes \p net's snapshot to \p path atomically (temp file + fsync +
/// rename).  Throws SnapshotError on I/O errors; fault site `ckpt.write`.
void write_snapshot_file(const Network& net, const std::string& path);

/// Reads and restores a snapshot file.  Throws SnapshotError when the
/// file is missing, unreadable or corrupt; fault site `ckpt.load`.
Network read_snapshot_file(const std::string& path);

}  // namespace mcs::ckpt
