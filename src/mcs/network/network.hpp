/// \file network.hpp
/// \brief The mixed logic network: a strashed DAG hosting heterogeneous gates.
///
/// This is the substrate of the whole library and the data structure behind
/// the Mixed Structural CHoices (MCH) operator.  A single network can host
/// AND2, XOR2, MAJ3 and XOR3 gates simultaneously, connected by complemented
/// edges.  Classic homogeneous representations are restrictions:
///
///   - AIG:  only AND2
///   - XAG:  AND2 + XOR2
///   - MIG:  MAJ3 (+ AND2, since AND(a,b) == MAJ(a,b,0))
///   - XMG:  MAJ3 + XOR3 (+ their 2-input special cases)
///
/// Choice classes (paper, Sec. III-A) are expressed with three per-node
/// fields: `repr` (class representative), `next_choice` (intrusive singly
/// linked list of equivalent nodes) and `choice_phase` (the member realizes
/// the representative's function XOR phase).  Only representatives are
/// reachable from primary outputs; members hang off the choice list and are
/// traversed by choice-aware algorithms (mappers, Alg. 3).

#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "mcs/common/hash.hpp"
#include "mcs/obs/obs.hpp"

namespace mcs {

/// Gate/node kinds hosted by the mixed network.
enum class GateType : std::uint8_t {
  kConst0 = 0,  ///< the constant-zero node (always node 0)
  kPi,          ///< primary input
  kAnd2,        ///< 2-input AND
  kXor2,        ///< 2-input XOR
  kMaj3,        ///< 3-input majority
  kXor3,        ///< 3-input XOR
};

/// Number of fanins of a gate of the given type.
constexpr int gate_arity(GateType t) noexcept {
  switch (t) {
    case GateType::kAnd2:
    case GateType::kXor2:
      return 2;
    case GateType::kMaj3:
    case GateType::kXor3:
      return 3;
    default:
      return 0;
  }
}

const char* gate_type_name(GateType t) noexcept;

/// Index of a node inside a Network.
using NodeId = std::uint32_t;

inline constexpr NodeId kNullNode = 0xffffffffu;

/// A (node, complement) edge handle.
class Signal {
 public:
  constexpr Signal() noexcept : data_(0) {}
  constexpr Signal(NodeId node, bool complemented) noexcept
      : data_((node << 1) | (complemented ? 1u : 0u)) {}

  static constexpr Signal from_raw(std::uint32_t raw) noexcept {
    Signal s;
    s.data_ = raw;
    return s;
  }

  constexpr NodeId node() const noexcept { return data_ >> 1; }
  constexpr bool complemented() const noexcept { return (data_ & 1u) != 0; }
  constexpr std::uint32_t raw() const noexcept { return data_; }

  /// Complemented copy of this signal.
  constexpr Signal operator!() const noexcept {
    return from_raw(data_ ^ 1u);
  }
  /// XORs the complement flag with \p c.
  constexpr Signal operator^(bool c) const noexcept {
    return from_raw(data_ ^ (c ? 1u : 0u));
  }

  friend constexpr bool operator==(Signal a, Signal b) noexcept {
    return a.data_ == b.data_;
  }
  friend constexpr bool operator!=(Signal a, Signal b) noexcept {
    return a.data_ != b.data_;
  }
  friend constexpr bool operator<(Signal a, Signal b) noexcept {
    return a.data_ < b.data_;
  }

 private:
  std::uint32_t data_;
};

/// One node of the network.  Plain data; invariants are maintained by
/// Network (fanins precede the node, fanins are strash-normalized).
struct Node {
  GateType type = GateType::kConst0;
  std::uint8_t num_fanins = 0;
  bool choice_phase = false;  ///< function == repr function XOR phase
  std::array<Signal, 3> fanin{};
  std::uint32_t level = 0;
  std::uint32_t fanout_size = 0;
  NodeId repr = kNullNode;         ///< class representative; kNullNode if self
  NodeId next_choice = kNullNode;  ///< next equivalent node in the class
  mutable std::uint32_t trav_id = 0;   ///< traversal marker (see Network)
  mutable std::uint64_t scratch = 0;   ///< scratch space for algorithms
};

/// Open-addressed structural-hash table: NodeId keyed by (type, fanins).
///
/// Linear probing over a flat slot array (stored 64-bit hash + packed
/// {type, fanin[3]} key per slot, one cache line per two probes), capacity
/// a power of two, grown at ~0.7 load.  Gates are never removed from a
/// Network, so the table needs no erase support and stays tombstone-free --
/// every probe sequence ends at a genuine hit or the first empty slot.
/// This replaces the chained std::unordered_map on the gate-creation hot
/// path: every strashed create_* goes through exactly one probe sequence.
class StrashTable {
 public:
  using Key = std::array<std::uint32_t, 3>;  ///< raw fanin signals

  StrashTable() : slots_(kMinCapacity) {}

  static std::uint64_t hash(GateType t, const Key& fanin) noexcept {
    std::uint64_t h = hash_mix64(static_cast<std::uint64_t>(t));
    for (const auto f : fanin) h = hash_combine(h, f);
    return h;
  }

  /// The node stored under (t, fanin), or kNullNode.  Instrumentation is
  /// one unconditional counter add (strash.lookups) plus a conditional one
  /// (strash.collisions, extra probes past the first) only when the probe
  /// sequence actually collided -- the common clean-hit path pays a single
  /// relaxed store.  Total probes are derivable: lookups + collisions.
  NodeId lookup(GateType t, const Key& fanin) const {
    const std::uint64_t h = hash(t, fanin);
    const std::size_t mask = slots_.size() - 1;
    std::uint64_t probes = 0;
    NodeId found = kNullNode;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      ++probes;
      const Slot& s = slots_[i];
      if (s.id == kNullNode) break;
      if (s.hash == h && s.type == t && s.fanin == fanin) {
        found = s.id;
        break;
      }
    }
    metrics().lookups.increment();
    if (probes > 1) metrics().collisions.add(probes - 1);
    return found;
  }

  /// Inserts (t, fanin) -> id.  \pre the key is absent.
  void insert(GateType t, const Key& fanin, NodeId id) {
    if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
    place(Slot{hash(t, fanin), fanin, id, t});
    ++size_;
    metrics().inserts.increment();
  }

  /// Pre-sizes the table for \p num_gates insertions without rehashing.
  void reserve(std::size_t num_gates) {
    std::size_t cap = kMinCapacity;
    while (num_gates * 10 > cap * 7) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    Key fanin{};
    NodeId id = kNullNode;  ///< kNullNode marks an empty slot
    GateType type = GateType::kConst0;
  };
  static constexpr std::size_t kMinCapacity = 64;  // power of two

  /// Process-wide strash counters (all tables share them; per-table stats
  /// would bloat every Network copy).  Cached refs: one registry lookup
  /// per process, not per call.  First-call construction allocates in the
  /// obs registry and may throw, so neither this nor the instrumented
  /// methods are noexcept.
  struct Metrics {
    obs::Counter& lookups = obs::counter("strash.lookups");
    obs::Counter& collisions = obs::counter("strash.collisions");
    obs::Counter& inserts = obs::counter("strash.inserts");
    obs::Gauge& bytes_max = obs::gauge("strash.bytes_max");
  };
  static Metrics& metrics() {
    static Metrics m;
    return m;
  }

  void place(const Slot& slot) noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = slot.hash & mask;
    while (slots_[i].id != kNullNode) i = (i + 1) & mask;
    slots_[i] = slot;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (const Slot& s : old) {
      if (s.id != kNullNode) place(s);
    }
    const auto bytes = static_cast<std::int64_t>(slots_.size() * sizeof(Slot));
    metrics().bytes_max.set_max(bytes);
    // Same high-water mark, attributed: the job whose network this table
    // belongs to (the active obs scope) records its own peak.
    obs::domain_peak_max(obs::DomainPeak::kStrashBytes, bytes);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// The mixed, strashed logic network.
class Network {
 public:
  Network();

  Network(const Network&) = default;
  Network(Network&&) noexcept = default;
  Network& operator=(const Network&) = default;
  Network& operator=(Network&&) noexcept = default;

  /// \name Construction
  /// @{

  /// Pre-sizes the node array and the strash table for a network of about
  /// \p num_nodes nodes.  Builders that know their size up front (circuit
  /// generators, file readers, partition/reassemble) use this to avoid
  /// rehash/reallocation churn during construction.
  void reserve(std::size_t num_nodes) {
    nodes_.reserve(num_nodes);
    strash_.reserve(num_nodes);
  }

  /// The constant-\p value signal.
  Signal constant(bool value) const noexcept {
    return Signal(0, value);
  }

  Signal create_pi(std::string name = {});
  void create_po(Signal s, std::string name = {});

  /// Strashed gate constructors.  All apply constant folding, idempotence /
  /// complement rules and fanin normalization, so the returned signal may
  /// refer to an existing node or even a constant.
  Signal create_and(Signal a, Signal b);
  Signal create_or(Signal a, Signal b);
  Signal create_nand(Signal a, Signal b) { return !create_and(a, b); }
  Signal create_nor(Signal a, Signal b) { return !create_or(a, b); }
  Signal create_xor(Signal a, Signal b);
  Signal create_xnor(Signal a, Signal b) { return !create_xor(a, b); }
  Signal create_maj(Signal a, Signal b, Signal c);
  Signal create_xor3(Signal a, Signal b, Signal c);
  /// if-then-else: cond ? then_s : else_s, built with AND/OR.
  Signal create_ite(Signal cond, Signal then_s, Signal else_s);

  /// Creates a gate of type \p t with the given fanins (dispatch helper).
  Signal create_gate(GateType t, const std::array<Signal, 3>& fanins);

  /// Looks up a normalized gate in the strash table without creating it.
  /// Returns kNullNode if absent (fanins must already be normalized).
  NodeId lookup_gate(GateType t, const std::array<Signal, 3>& fanins) const;

  /// Recreates a gate from already-normalized fanins, bypassing the
  /// create_and/xor/maj rewrite rules (snapshot restore, mcs::ckpt).
  /// \pre \p fanins obey \p t's strash normalization, as produced by an
  /// existing Network.  Returns the existing node's id when the gate is
  /// already present (callers treat that as id drift and reject the blob).
  NodeId restore_gate(GateType t, const std::array<Signal, 3>& fanins);

  /// @}
  /// \name Access
  /// @{

  std::size_t size() const noexcept { return nodes_.size(); }
  const Node& node(NodeId n) const noexcept { return nodes_[n]; }
  Node& node(NodeId n) noexcept { return nodes_[n]; }

  std::size_t num_pis() const noexcept { return pis_.size(); }
  std::size_t num_pos() const noexcept { return pos_.size(); }
  const std::vector<NodeId>& pis() const noexcept { return pis_; }
  const std::vector<Signal>& pos() const noexcept { return pos_; }
  NodeId pi_at(std::size_t i) const noexcept { return pis_[i]; }
  Signal po_at(std::size_t i) const noexcept { return pos_[i]; }

  const std::string& pi_name(std::size_t i) const noexcept {
    return pi_names_[i];
  }
  const std::string& po_name(std::size_t i) const noexcept {
    return po_names_[i];
  }

  bool is_const0(NodeId n) const noexcept {
    return nodes_[n].type == GateType::kConst0;
  }
  bool is_pi(NodeId n) const noexcept {
    return nodes_[n].type == GateType::kPi;
  }
  bool is_gate(NodeId n) const noexcept {
    return nodes_[n].type >= GateType::kAnd2;
  }

  /// Number of logic gates (excludes constant and PIs).
  std::size_t num_gates() const noexcept { return num_gates_; }

  /// Number of nodes per type (O(1): maintained incrementally).
  std::size_t num_gates_of(GateType t) const noexcept {
    return type_counts_[static_cast<std::size_t>(t)];
  }

  /// Longest PI-to-PO path length, counting gates (combinational depth).
  /// Cached; recomputed only after create_po / invalidate_depth_cache().
  std::uint32_t depth() const noexcept;

  /// Drops the cached depth().  Only needed by code that mutates node
  /// levels directly (recompute_levels); normal construction keeps the
  /// cache coherent on its own.
  void invalidate_depth_cache() const noexcept { depth_cache_valid_ = false; }

  std::uint32_t level(NodeId n) const noexcept { return nodes_[n].level; }

  /// @}
  /// \name Representation predicates
  /// @{

  bool is_aig() const noexcept;   ///< only AND2 gates
  bool is_xag() const noexcept;   ///< AND2/XOR2 gates
  bool is_mig() const noexcept;   ///< AND2/MAJ3 gates
  bool is_xmg() const noexcept;   ///< any of the four gate types (always true)

  /// @}
  /// \name Choice classes
  /// @{

  /// True iff \p n heads a choice class (has at least one member).
  bool has_choice(NodeId n) const noexcept {
    return nodes_[n].next_choice != kNullNode && is_repr(n);
  }
  /// True iff \p n is not a member of someone else's class.
  bool is_repr(NodeId n) const noexcept {
    return nodes_[n].repr == kNullNode;
  }
  NodeId repr_of(NodeId n) const noexcept {
    return is_repr(n) ? n : nodes_[n].repr;
  }

  /// Attaches \p member to the class of representative \p repr.
  /// \p phase: function(member) == function(repr) XOR phase.
  /// \pre repr is a representative; member is not in any class and heads no
  /// class of its own; member != repr.
  void add_choice(NodeId repr, NodeId member, bool phase);

  /// Total number of choice-class members over all classes.
  std::size_t num_choices() const noexcept { return num_choices_; }

  /// Drops all choice information (links and phases).
  void clear_choices() noexcept;

  /// @}
  /// \name Invariant audit
  /// @{

  /// Full structural self-check: node 0 is the constant, every fanin
  /// precedes its node (ids are a topological order) and is in range,
  /// arities match types, levels obey level = max(fanin levels) + 1, the
  /// cached type/gate/choice counters and depth cache match recounts,
  /// pis_/pos_ are consistent, fanout counts re-derive, choice chains are
  /// acyclic with members pointing at true representatives, and every
  /// gate is findable in the strash table under its own key.  O(n); the
  /// transactional stage runner calls this after every stage when
  /// validation is on.  Returns false and fills \p error (when given)
  /// with the first violation.
  bool check(std::string* error = nullptr) const;

  /// @}
  /// \name Traversal support
  /// @{

  /// Starts a new traversal epoch; `mark`/`marked` then operate on it.
  void new_traversal() const noexcept { ++trav_epoch_; }
  void mark(NodeId n) const noexcept { nodes_[n].trav_id = trav_epoch_; }
  bool marked(NodeId n) const noexcept {
    return nodes_[n].trav_id == trav_epoch_;
  }

  /// @}

 private:
  NodeId create_node(GateType t, const std::array<Signal, 3>& fanins,
                     int arity);

  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<Signal> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  StrashTable strash_;
  std::size_t num_gates_ = 0;
  std::size_t num_choices_ = 0;
  /// Per-GateType node counts, maintained incrementally (num_gates_of and
  /// the representation predicates used to be O(n) sweeps per call).
  std::array<std::size_t, 6> type_counts_{};
  /// Lazily cached depth(); invalidated by create_po and
  /// invalidate_depth_cache() (levels are otherwise immutable).
  mutable std::uint32_t depth_cache_ = 0;
  mutable bool depth_cache_valid_ = true;  ///< empty network has depth 0
  mutable std::uint32_t trav_epoch_ = 0;
};

}  // namespace mcs
