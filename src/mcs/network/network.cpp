#include "mcs/network/network.hpp"

#include <algorithm>

namespace mcs {

const char* gate_type_name(GateType t) noexcept {
  switch (t) {
    case GateType::kConst0:
      return "const0";
    case GateType::kPi:
      return "pi";
    case GateType::kAnd2:
      return "and2";
    case GateType::kXor2:
      return "xor2";
    case GateType::kMaj3:
      return "maj3";
    case GateType::kXor3:
      return "xor3";
  }
  return "?";
}

Network::Network() {
  // Node 0 is the constant-zero node.
  nodes_.emplace_back();
  ++type_counts_[static_cast<std::size_t>(GateType::kConst0)];
}

Signal Network::create_pi(std::string name) {
  Node n;
  n.type = GateType::kPi;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  pis_.push_back(id);
  pi_names_.push_back(name.empty() ? "pi" + std::to_string(pis_.size() - 1)
                                   : std::move(name));
  ++type_counts_[static_cast<std::size_t>(GateType::kPi)];
  return Signal(id, false);
}

void Network::create_po(Signal s, std::string name) {
  pos_.push_back(s);
  po_names_.push_back(name.empty() ? "po" + std::to_string(pos_.size() - 1)
                                   : std::move(name));
  ++nodes_[s.node()].fanout_size;
  if (depth_cache_valid_) {
    depth_cache_ = std::max(depth_cache_, nodes_[s.node()].level);
  }
}

NodeId Network::create_node(GateType t, const std::array<Signal, 3>& fanins,
                            int arity) {
  const StrashTable::Key key{fanins[0].raw(), fanins[1].raw(),
                             fanins[2].raw()};
  if (const NodeId hit = strash_.lookup(t, key); hit != kNullNode) return hit;

  Node n;
  n.type = t;
  n.num_fanins = static_cast<std::uint8_t>(arity);
  n.fanin = fanins;
  std::uint32_t lvl = 0;
  for (int i = 0; i < arity; ++i) {
    lvl = std::max(lvl, nodes_[fanins[i].node()].level);
    ++nodes_[fanins[i].node()].fanout_size;
  }
  n.level = lvl + 1;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  strash_.insert(t, key, id);
  ++num_gates_;
  ++type_counts_[static_cast<std::size_t>(t)];
  return id;
}

NodeId Network::lookup_gate(GateType t,
                            const std::array<Signal, 3>& fanins) const {
  return strash_.lookup(
      t, {fanins[0].raw(), fanins[1].raw(), fanins[2].raw()});
}

Signal Network::create_and(Signal a, Signal b) {
  // Constant and trivial rules.
  if (a == constant(false) || b == constant(false)) return constant(false);
  if (a == constant(true)) return b;
  if (b == constant(true)) return a;
  if (a == b) return a;
  if (a == !b) return constant(false);
  if (b < a) std::swap(a, b);
  return Signal(create_node(GateType::kAnd2, {a, b, Signal()}, 2), false);
}

Signal Network::create_or(Signal a, Signal b) {
  return !create_and(!a, !b);
}

Signal Network::create_xor(Signal a, Signal b) {
  if (a == constant(false)) return b;
  if (a == constant(true)) return !b;
  if (b == constant(false)) return a;
  if (b == constant(true)) return !a;
  if (a == b) return constant(false);
  if (a == !b) return constant(true);
  // Push complements to the output: XOR(a, b) == XOR(!a, b) ^ 1.
  const bool phase = a.complemented() ^ b.complemented();
  a = Signal(a.node(), false);
  b = Signal(b.node(), false);
  if (b < a) std::swap(a, b);
  return Signal(create_node(GateType::kXor2, {a, b, Signal()}, 2), phase);
}

Signal Network::create_maj(Signal a, Signal b, Signal c) {
  // Constant special cases: MAJ(a, b, 0) == AND, MAJ(a, b, 1) == OR.
  if (a.node() == 0) return a.complemented() ? create_or(b, c) : create_and(b, c);
  if (b.node() == 0) return b.complemented() ? create_or(a, c) : create_and(a, c);
  if (c.node() == 0) return c.complemented() ? create_or(a, b) : create_and(a, b);
  // Equal / complementary pairs: MAJ(x, x, y) == x, MAJ(x, !x, y) == y.
  if (a == b) return a;
  if (a == !b) return c;
  if (a == c) return a;
  if (a == !c) return b;
  if (b == c) return b;
  if (b == !c) return a;
  // Sort by node id (nodes are distinct here).
  if (b.node() < a.node()) std::swap(a, b);
  if (c.node() < b.node()) std::swap(b, c);
  if (b.node() < a.node()) std::swap(a, b);
  // Self-duality: if two or more fanins are complemented, flip all fanins
  // and the output so at most one complement edge remains.
  const int num_compl = static_cast<int>(a.complemented()) +
                        static_cast<int>(b.complemented()) +
                        static_cast<int>(c.complemented());
  bool phase = false;
  if (num_compl >= 2) {
    a = !a;
    b = !b;
    c = !c;
    phase = true;
  }
  return Signal(create_node(GateType::kMaj3, {a, b, c}, 3), phase);
}

Signal Network::create_xor3(Signal a, Signal b, Signal c) {
  // Fold constants into 2-input XOR.
  if (a.node() == 0) return create_xor(b, c) ^ a.complemented();
  if (b.node() == 0) return create_xor(a, c) ^ b.complemented();
  if (c.node() == 0) return create_xor(a, b) ^ c.complemented();
  // Equal / complementary pairs cancel.
  if (a == b) return c;
  if (a == !b) return !c;
  if (a == c) return b;
  if (a == !c) return !b;
  if (b == c) return a;
  if (b == !c) return !a;
  // Push all complements to the output.
  const bool phase =
      a.complemented() ^ b.complemented() ^ c.complemented();
  a = Signal(a.node(), false);
  b = Signal(b.node(), false);
  c = Signal(c.node(), false);
  if (b < a) std::swap(a, b);
  if (c < b) std::swap(b, c);
  if (b < a) std::swap(a, b);
  return Signal(create_node(GateType::kXor3, {a, b, c}, 3), phase);
}

Signal Network::create_ite(Signal cond, Signal then_s, Signal else_s) {
  return create_or(create_and(cond, then_s), create_and(!cond, else_s));
}

Signal Network::create_gate(GateType t, const std::array<Signal, 3>& fanins) {
  switch (t) {
    case GateType::kAnd2:
      return create_and(fanins[0], fanins[1]);
    case GateType::kXor2:
      return create_xor(fanins[0], fanins[1]);
    case GateType::kMaj3:
      return create_maj(fanins[0], fanins[1], fanins[2]);
    case GateType::kXor3:
      return create_xor3(fanins[0], fanins[1], fanins[2]);
    default:
      assert(false && "create_gate: not a gate type");
      return constant(false);
  }
}

NodeId Network::restore_gate(GateType t,
                             const std::array<Signal, 3>& fanins) {
  assert(t >= GateType::kAnd2 && "restore_gate: not a gate type");
  return create_node(t, fanins, gate_arity(t));
}

std::uint32_t Network::depth() const noexcept {
  if (!depth_cache_valid_) {
    std::uint32_t d = 0;
    for (const auto s : pos_) d = std::max(d, nodes_[s.node()].level);
    depth_cache_ = d;
    depth_cache_valid_ = true;
  }
  return depth_cache_;
}

bool Network::is_aig() const noexcept {
  return num_gates_of(GateType::kXor2) == 0 &&
         num_gates_of(GateType::kMaj3) == 0 &&
         num_gates_of(GateType::kXor3) == 0;
}

bool Network::is_xag() const noexcept {
  return num_gates_of(GateType::kMaj3) == 0 &&
         num_gates_of(GateType::kXor3) == 0;
}

bool Network::is_mig() const noexcept {
  return num_gates_of(GateType::kXor2) == 0 &&
         num_gates_of(GateType::kXor3) == 0;
}

bool Network::is_xmg() const noexcept { return true; }

void Network::add_choice(NodeId repr, NodeId member, bool phase) {
  assert(repr != member);
  assert(is_repr(repr));
  assert(is_repr(member));
  assert(nodes_[member].next_choice == kNullNode);
  Node& m = nodes_[member];
  m.repr = repr;
  m.choice_phase = phase;
  // Insert at the head of the representative's list.
  m.next_choice = nodes_[repr].next_choice;
  nodes_[repr].next_choice = member;
  ++num_choices_;
}

void Network::clear_choices() noexcept {
  for (auto& nd : nodes_) {
    nd.repr = kNullNode;
    nd.next_choice = kNullNode;
    nd.choice_phase = false;
  }
  num_choices_ = 0;
}

bool Network::check(std::string* error) const {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const auto at = [](const char* what, NodeId n) {
    return std::string(what) + " at node " + std::to_string(n);
  };

  if (nodes_.empty() || nodes_[0].type != GateType::kConst0 ||
      nodes_[0].num_fanins != 0 || nodes_[0].level != 0) {
    return fail("node 0 is not the constant-zero node");
  }
  if (pis_.size() != pi_names_.size() || pos_.size() != po_names_.size()) {
    return fail("PI/PO name arrays out of sync");
  }

  // Per-node structure: valid type, matching arity, in-range fanins that
  // precede the node (append-only construction makes ids a topo order),
  // and the level recurrence create_node maintains.
  std::array<std::size_t, 6> counts{};
  std::vector<std::uint32_t> fanouts(nodes_.size(), 0);
  std::size_t gates = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (static_cast<std::uint8_t>(nd.type) > 5) {
      return fail(at("unknown gate type", id));
    }
    if (nd.type == GateType::kConst0 && id != 0) {
      return fail(at("second constant node", id));
    }
    const int arity = gate_arity(nd.type);
    if (nd.num_fanins != arity) return fail(at("arity/type mismatch", id));
    std::uint32_t lvl = 0;
    for (int i = 0; i < arity; ++i) {
      const NodeId f = nd.fanin[static_cast<std::size_t>(i)].node();
      if (f >= id) return fail(at("fanin breaks topological order", id));
      lvl = std::max(lvl, nodes_[f].level);
      ++fanouts[f];
    }
    const std::uint32_t expect = arity > 0 ? lvl + 1 : 0;
    if (nd.level != expect) return fail(at("stale level", id));
    ++counts[static_cast<std::size_t>(nd.type)];
    if (is_gate(id)) ++gates;
  }
  if (counts != type_counts_) return fail("type counters out of date");
  if (gates != num_gates_) return fail("gate counter out of date");

  // PI/PO consistency.  pis_ is strictly ascending (create_pi appends), so
  // equal counts + all-kPi entries pin an exact bijection with PI nodes.
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    if (pis_[i] >= nodes_.size() || !is_pi(pis_[i])) {
      return fail("pis_ entry " + std::to_string(i) + " is not a PI node");
    }
    if (i > 0 && pis_[i] <= pis_[i - 1]) return fail("pis_ not ascending");
  }
  if (pis_.size() != counts[static_cast<std::size_t>(GateType::kPi)]) {
    return fail("pis_ misses PI nodes");
  }
  std::uint32_t max_po_level = 0;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (pos_[i].node() >= nodes_.size()) {
      return fail("PO " + std::to_string(i) + " out of range");
    }
    ++fanouts[pos_[i].node()];
    max_po_level = std::max(max_po_level, nodes_[pos_[i].node()].level);
  }
  if (depth_cache_valid_ && depth_cache_ != max_po_level) {
    return fail("stale depth cache");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].fanout_size != fanouts[id]) {
      return fail(at("stale fanout count", id));
    }
  }

  // Choice classes: members point at true representatives, chains are
  // null-terminated without cycles, no node sits in two chains, and the
  // aggregate member count matches the cached counter.
  std::size_t members = 0;
  std::vector<bool> chained(nodes_.size(), false);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (nd.repr != kNullNode) {
      ++members;
      if (nd.repr >= nodes_.size() || nd.repr == id ||
          nodes_[nd.repr].repr != kNullNode) {
        return fail(at("choice member without a representative", id));
      }
    }
    if (!is_repr(id)) continue;
    std::size_t len = 0;
    for (NodeId m = nd.next_choice; m != kNullNode; m = nodes_[m].next_choice) {
      if (m >= nodes_.size() || nodes_[m].repr != id || chained[m] ||
          ++len > nodes_.size()) {
        return fail(at("broken choice chain", id));
      }
      chained[m] = true;
    }
  }
  if (members != num_choices_) return fail("choice counter out of date");
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].repr != kNullNode && !chained[id]) {
      return fail(at("choice member missing from its chain", id));
    }
  }

  // Strash coverage: every gate must be findable under its own key, or
  // future create_* calls would silently duplicate structure.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!is_gate(id)) continue;
    if (lookup_gate(nodes_[id].type, nodes_[id].fanin) != id) {
      return fail(at("gate missing from the strash table", id));
    }
  }
  return true;
}

}  // namespace mcs
