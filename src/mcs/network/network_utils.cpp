#include "mcs/network/network_utils.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace mcs {

namespace {

/// Iterative post-order DFS over fanins, optionally following choice lists.
/// Appends nodes to `order` in a valid topological order.
class TopoVisitor {
 public:
  TopoVisitor(const Network& net, bool follow_choices)
      : net_(net), follow_choices_(follow_choices) {
    net_.new_traversal();
  }

  void visit(NodeId start) {
    if (net_.marked(start)) return;
    stack_.push_back({start, 0});
    while (!stack_.empty()) {
      auto& [n, state] = stack_.back();
      if (net_.marked(n)) {
        stack_.pop_back();
        continue;
      }
      const Node& nd = net_.node(n);
      // Children: fanins first, then (for representatives) class members.
      const int num_children =
          nd.num_fanins +
          (follow_choices_ ? count_members(n) : 0);
      if (state < nd.num_fanins) {
        const NodeId child = nd.fanin[state].node();
        ++state;
        if (!net_.marked(child)) stack_.push_back({child, 0});
        continue;
      }
      if (state < num_children) {
        const NodeId member = member_at(n, state - nd.num_fanins);
        ++state;
        if (!net_.marked(member)) stack_.push_back({member, 0});
        continue;
      }
      net_.mark(n);
      order_.push_back(n);
      stack_.pop_back();
    }
  }

  std::vector<NodeId> take() { return std::move(order_); }

 private:
  int count_members(NodeId n) const {
    if (!net_.is_repr(n)) return 0;  // only class heads own the member list
    int c = 0;
    for (NodeId m = net_.node(n).next_choice; m != kNullNode;
         m = net_.node(m).next_choice) {
      ++c;
    }
    return c;
  }
  NodeId member_at(NodeId n, int idx) const {
    NodeId m = net_.node(n).next_choice;
    while (idx-- > 0) m = net_.node(m).next_choice;
    return m;
  }

  const Network& net_;
  bool follow_choices_;
  std::vector<std::pair<NodeId, int>> stack_;
  std::vector<NodeId> order_;
};

}  // namespace

std::vector<NodeId> collect_cone_nodes(const Network& net,
                                       const std::vector<NodeId>& roots,
                                       bool follow_choices,
                                       std::vector<char>& seen) {
  seen.assign(net.size(), 0);
  std::vector<NodeId> stack;
  std::vector<NodeId> nodes;
  auto push = [&](NodeId n) {
    if (!seen[n]) {
      seen[n] = 1;
      stack.push_back(n);
      nodes.push_back(n);
    }
  };
  for (const NodeId r : roots) push(r);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) push(nd.fanin[i].node());
    if (follow_choices && net.is_repr(n)) {
      for (NodeId m = nd.next_choice; m != kNullNode;
           m = net.node(m).next_choice) {
        push(m);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::vector<NodeId> topo_order(const Network& net) {
  TopoVisitor v(net, /*follow_choices=*/false);
  for (const auto s : net.pos()) v.visit(s.node());
  return v.take();
}

std::vector<NodeId> choice_topo_order(const Network& net) {
  TopoVisitor v(net, /*follow_choices=*/true);
  for (const auto s : net.pos()) v.visit(s.node());
  return v.take();
}

bool reaches(const Network& net, NodeId from, NodeId target) {
  if (from == target) return true;
  net.new_traversal();
  std::vector<NodeId> stack{from};
  net.mark(from);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId c = nd.fanin[i].node();
      if (c == target) return true;
      if (!net.marked(c)) {
        net.mark(c);
        stack.push_back(c);
      }
    }
  }
  return false;
}

bool choice_reaches(const Network& net, NodeId from, NodeId target) {
  if (from == target) return true;
  net.new_traversal();
  std::vector<NodeId> stack{from};
  net.mark(from);
  auto push = [&](NodeId c) -> bool {
    if (c == target) return true;
    if (!net.marked(c)) {
      net.mark(c);
      stack.push_back(c);
    }
    return false;
  };
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      if (push(nd.fanin[i].node())) return true;
    }
    // Only a class representative depends on the member list.
    if (net.is_repr(n)) {
      for (NodeId m = nd.next_choice; m != kNullNode;
           m = net.node(m).next_choice) {
        if (push(m)) return true;
      }
    }
  }
  return false;
}

Cone compute_mffc(const Network& net, NodeId root, int max_leaves) {
  Cone cone;
  if (!net.is_gate(root)) return cone;

  // Simulated dereferencing: decrement fanout counts of the root's cone;
  // a gate whose count drops to zero belongs to the MFFC.
  std::unordered_map<NodeId, std::uint32_t> count;
  std::vector<NodeId> inner;
  std::vector<NodeId> stack{root};
  net.new_traversal();
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    inner.push_back(n);
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId c = nd.fanin[i].node();
      auto [it, inserted] = count.emplace(c, net.node(c).fanout_size);
      assert(it->second > 0);
      --it->second;
      if (it->second == 0 && net.is_gate(c) && !net.marked(c)) {
        net.mark(c);
        stack.push_back(c);
      }
    }
  }

  // Leaves: referenced nodes with remaining references, plus referenced
  // PIs; constants are not leaves.
  std::vector<NodeId> leaves;
  for (const auto& [n, remaining] : count) {
    const bool in_cone = net.marked(n);
    if (in_cone && remaining == 0) continue;
    if (net.is_const0(n)) continue;
    leaves.push_back(n);
  }
  if (static_cast<int>(leaves.size()) > max_leaves) return cone;

  std::sort(leaves.begin(), leaves.end());
  // `inner` was collected root-first; reverse for topological order.
  std::reverse(inner.begin(), inner.end());
  cone.inner = std::move(inner);
  cone.leaves = std::move(leaves);
  return cone;
}

TruthTable cone_function(const Network& net, Signal root,
                         const std::vector<NodeId>& leaves) {
  const int n = static_cast<int>(leaves.size());
  assert(n <= TruthTable::kMaxVars);

  std::unordered_map<NodeId, TruthTable> value;
  value.emplace(NodeId{0}, TruthTable::constant(false, n));
  for (int i = 0; i < n; ++i) {
    value.emplace(leaves[i], TruthTable::projection(i, n));
  }

  // Iterative evaluation with an explicit stack.
  std::vector<NodeId> stack{root.node()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    if (value.count(id)) {
      stack.pop_back();
      continue;
    }
    const Node& nd = net.node(id);
    assert(net.is_gate(id) && "cone_function: cone escapes the given leaves");
    bool ready = true;
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId c = nd.fanin[i].node();
      if (!value.count(c)) {
        if (ready) ready = false;
        stack.push_back(c);
      }
    }
    if (!ready) continue;
    std::array<TruthTable, 3> in;
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = value.at(nd.fanin[i].node());
      if (nd.fanin[i].complemented()) in[i] = ~in[i];
    }
    TruthTable out;
    switch (nd.type) {
      case GateType::kAnd2:
        out = in[0] & in[1];
        break;
      case GateType::kXor2:
        out = in[0] ^ in[1];
        break;
      case GateType::kMaj3:
        out = (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2]);
        break;
      case GateType::kXor3:
        out = in[0] ^ in[1] ^ in[2];
        break;
      default:
        assert(false);
    }
    value.emplace(id, std::move(out));
    stack.pop_back();
  }

  TruthTable result = value.at(root.node());
  if (root.complemented()) result = ~result;
  return result;
}

namespace {

/// Rebuilds the cone of `old_sig` in `dst`, memoized through `map`
/// (old node -> new signal for the non-complemented function).
Signal rebuild_cone(const Network& src, Network& dst, NodeId old_node,
                    std::vector<Signal>& map, std::vector<bool>& mapped) {
  if (mapped[old_node]) return map[old_node];
  struct Frame {
    NodeId n;
    int state;
  };
  std::vector<Frame> stack{{old_node, 0}};
  while (!stack.empty()) {
    auto& [n, state] = stack.back();
    if (mapped[n]) {
      stack.pop_back();
      continue;
    }
    const Node& nd = src.node(n);
    if (state < nd.num_fanins) {
      const NodeId child = nd.fanin[state].node();
      ++state;
      if (!mapped[child]) stack.push_back({child, 0});
      continue;
    }
    std::array<Signal, 3> fi{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      fi[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    map[n] = dst.create_gate(nd.type, fi);
    mapped[n] = true;
    stack.pop_back();
  }
  return map[old_node];
}

}  // namespace

Signal copy_cone(const Network& src, Network& dst, Signal root,
                 const std::vector<Signal>& pi_map) {
  assert(pi_map.size() == src.num_pis());
  std::vector<Signal> map(src.size(), Signal());
  std::vector<bool> mapped(src.size(), false);
  map[0] = dst.constant(false);
  mapped[0] = true;
  for (std::size_t i = 0; i < src.num_pis(); ++i) {
    map[src.pi_at(i)] = pi_map[i];
    mapped[src.pi_at(i)] = true;
  }
  return rebuild_cone(src, dst, root.node(), map, mapped) ^
         root.complemented();
}

Network cleanup(const Network& net, const CleanupOptions& opts) {
  Network dst;
  dst.reserve(net.size());
  std::vector<Signal> map(net.size(), Signal());
  std::vector<bool> mapped(net.size(), false);
  map[0] = dst.constant(false);
  mapped[0] = true;
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    const NodeId pi = net.pi_at(i);
    map[pi] = dst.create_pi(net.pi_name(i));
    mapped[pi] = true;
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    const Signal t =
        rebuild_cone(net, dst, s.node(), map, mapped) ^ s.complemented();
    dst.create_po(t, net.po_name(i));
  }
  if (opts.keep_choices) {
    for (NodeId n = 0; n < net.size(); ++n) {
      if (!net.is_repr(n) || !mapped[n]) continue;
      for (NodeId m = net.node(n).next_choice; m != kNullNode;
           m = net.node(m).next_choice) {
        const Signal ms = rebuild_cone(net, dst, m, map, mapped);
        const NodeId new_repr = map[n].node();
        const NodeId new_member = ms.node();
        if (new_repr == new_member) continue;  // re-strashing merged them
        if (!dst.is_repr(new_member) || !dst.is_repr(new_repr)) continue;
        if (dst.node(new_member).next_choice != kNullNode) continue;
        const bool phase = net.node(m).choice_phase ^ map[n].complemented() ^
                           ms.complemented();
        dst.add_choice(new_repr, new_member, phase);
      }
    }
  }
  return dst;
}

std::vector<std::vector<NodeId>> fanout_lists(const Network& net) {
  std::vector<std::vector<NodeId>> fo(net.size());
  for (NodeId n = 0; n < net.size(); ++n) {
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      fo[nd.fanin[i].node()].push_back(n);
    }
  }
  return fo;
}

std::uint32_t recompute_levels(Network& net) {
  for (NodeId n = 0; n < net.size(); ++n) {
    Node& nd = net.node(n);
    if (!net.is_gate(n)) {
      nd.level = 0;
      continue;
    }
    std::uint32_t lvl = 0;
    for (int i = 0; i < nd.num_fanins; ++i) {
      lvl = std::max(lvl, net.node(nd.fanin[i].node()).level);
    }
    nd.level = lvl + 1;
  }
  net.invalidate_depth_cache();
  return net.depth();
}

NetworkStats network_stats(const Network& net) {
  NetworkStats s;
  for (NodeId n = 0; n < net.size(); ++n) {
    switch (net.node(n).type) {
      case GateType::kAnd2:
        ++s.num_and2;
        break;
      case GateType::kXor2:
        ++s.num_xor2;
        break;
      case GateType::kMaj3:
        ++s.num_maj3;
        break;
      case GateType::kXor3:
        ++s.num_xor3;
        break;
      default:
        break;
    }
  }
  s.num_gates = s.num_and2 + s.num_xor2 + s.num_maj3 + s.num_xor3;
  s.depth = net.depth();
  s.num_choices = net.num_choices();
  return s;
}

bool structurally_identical(const Network& a, const Network& b) {
  if (a.size() != b.size() || a.pis() != b.pis() ||
      a.num_pos() != b.num_pos()) {
    return false;
  }
  for (NodeId n = 0; n < a.size(); ++n) {
    const Node& x = a.node(n);
    const Node& y = b.node(n);
    if (x.type != y.type || x.num_fanins != y.num_fanins ||
        x.repr != y.repr || x.next_choice != y.next_choice ||
        x.choice_phase != y.choice_phase) {
      return false;
    }
    for (int i = 0; i < x.num_fanins; ++i) {
      if (x.fanin[i] != y.fanin[i]) return false;
    }
  }
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    if (a.po_at(i) != b.po_at(i)) return false;
  }
  return true;
}

}  // namespace mcs
