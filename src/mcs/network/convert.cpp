#include "mcs/network/convert.hpp"

#include <vector>

#include "mcs/network/network_utils.hpp"

namespace mcs {

Network convert_basis(const Network& net, GateBasis basis) {
  Network dst;
  dst.reserve(net.size());
  const BasisBuilder bb(dst, basis);
  std::vector<Signal> map(net.size());
  map[0] = dst.constant(false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = dst.create_pi(net.pi_name(i));
  }
  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    const Node& nd = net.node(n);
    std::array<Signal, 3> in{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    switch (nd.type) {
      case GateType::kAnd2:
        map[n] = bb.and2(in[0], in[1]);
        break;
      case GateType::kXor2:
        map[n] = bb.xor2(in[0], in[1]);
        break;
      case GateType::kMaj3:
        map[n] = bb.maj3(in[0], in[1], in[2]);
        break;
      case GateType::kXor3:
        map[n] = bb.xor3(in[0], in[1], in[2]);
        break;
      default:
        break;
    }
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    dst.create_po(map[s.node()] ^ s.complemented(), net.po_name(i));
  }
  return dst;
}

Network detect_xors(const Network& net) {
  Network dst;
  dst.reserve(net.size());
  std::vector<Signal> map(net.size());
  map[0] = dst.constant(false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = dst.create_pi(net.pi_name(i));
  }

  // n = AND(!x, !y), x = AND(xa, xb), y = AND(ya, yb) with {ya, yb} ==
  // {!xa, !xb} computes XOR(xa, xb).  (NOR of the two "both" cases.)
  auto try_xor = [&](const Node& nd) -> Signal {
    if (nd.type != GateType::kAnd2) return Signal();
    const Signal fx = nd.fanin[0];
    const Signal fy = nd.fanin[1];
    if (!fx.complemented() || !fy.complemented()) return Signal();
    const Node& x = net.node(fx.node());
    const Node& y = net.node(fy.node());
    if (x.type != GateType::kAnd2 || y.type != GateType::kAnd2) {
      return Signal();
    }
    const Signal xa = x.fanin[0], xb = x.fanin[1];
    const Signal ya = y.fanin[0], yb = y.fanin[1];
    const bool match =
        (ya == !xa && yb == !xb) || (ya == !xb && yb == !xa);
    if (!match) return Signal();
    // n = !(xa&xb) & !(!xa&!xb) = xa ^ xb (over the rebuilt signals).
    const Signal ra = map[xa.node()] ^ xa.complemented();
    const Signal rb = map[xb.node()] ^ xb.complemented();
    return dst.create_xor(ra, rb);
  };

  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    const Node& nd = net.node(n);
    if (const Signal s = try_xor(nd); s != Signal()) {
      map[n] = s;
      continue;
    }
    std::array<Signal, 3> in{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    map[n] = dst.create_gate(nd.type, in);
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    dst.create_po(map[s.node()] ^ s.complemented(), net.po_name(i));
  }
  return cleanup(dst);
}

}  // namespace mcs
