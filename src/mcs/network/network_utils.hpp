/// \file network_utils.hpp
/// \brief Traversal, cone and cleanup utilities over the mixed network.

#pragma once

#include <vector>

#include "mcs/network/network.hpp"
#include "mcs/tt/truth_table.hpp"

namespace mcs {

/// Topological order of all nodes reachable from the POs through fanin edges
/// only (choice members not reachable this way are excluded).
std::vector<NodeId> topo_order(const Network& net);

/// Choice-aware topological order covering every node reachable from the POs
/// through fanins *or* choice lists.  Guarantees:
///   - fanins precede their fanouts,
///   - every choice-class member precedes its representative.
/// This is the processing order required by choice-aware cut enumeration
/// (paper, Alg. 3): when the representative is reached, the cut sets of all
/// its members are already available for merging.
std::vector<NodeId> choice_topo_order(const Network& net);

/// All nodes reachable from \p roots through fanin edges (and, with
/// \p follow_choices, the choice members of reached representatives,
/// including the members' own cones), as an ascending-id list.  Ascending
/// node ids are a valid topological order for fanin edges (fanins always
/// precede their fanouts in a strashed Network).
///
/// \p seen is caller-owned scratch (cleared here).  The network's shared
/// traversal marks are deliberately NOT used, so concurrent calls on the
/// same network -- the parallel shard-construction and CNF-encoding
/// phases -- are safe.
std::vector<NodeId> collect_cone_nodes(const Network& net,
                                       const std::vector<NodeId>& roots,
                                       bool follow_choices,
                                       std::vector<char>& seen);

/// True iff \p target is reachable from \p from by following fanin edges
/// (i.e. target is in the TFI cone of from, or equals it).
bool reaches(const Network& net, NodeId from, NodeId target);

/// Like reaches(), but follows the full *dependency* relation used by
/// choice-aware algorithms: fanins plus choice-class members (a
/// representative depends on its members, since their cut sets must be
/// computed first).  Inserting a choice (repr = target, member = from) is
/// safe exactly when this returns false -- it is the acyclicity guard of
/// the MCH construction (paper, Sec. III-A: candidates must not create
/// covering cycles).
bool choice_reaches(const Network& net, NodeId from, NodeId target);

/// A fanout-free cone rooted at some node.
struct Cone {
  std::vector<NodeId> inner;   ///< gates inside the cone (topological order)
  std::vector<NodeId> leaves;  ///< boundary nodes (inputs of the cone)
};

/// Maximum fanout-free cone of \p root.  Gates whose entire fanout lies
/// inside the cone are included.  Returns an empty cone (no inner nodes)
/// when the leaf count would exceed \p max_leaves.
Cone compute_mffc(const Network& net, NodeId root, int max_leaves);

/// Computes the local function of \p root in terms of \p leaves by
/// simulating the cone with truth tables.  All cone paths must terminate at
/// \p leaves (or constants).  \pre leaves.size() <= TruthTable::kMaxVars.
TruthTable cone_function(const Network& net, Signal root,
                         const std::vector<NodeId>& leaves);

/// Copies the cone of \p root from \p src into \p dst, substituting the i-th
/// PI of \p src with \p pi_map[i].  Returns the signal implementing root's
/// function in \p dst.  Gates are re-strashed on the way.
Signal copy_cone(const Network& src, Network& dst, Signal root,
                 const std::vector<Signal>& pi_map);

/// Options for cleanup().
struct CleanupOptions {
  bool keep_choices = false;  ///< preserve choice classes in the copy
};

/// Returns a compacted copy of \p net: only nodes reachable from the POs
/// (plus, with keep_choices, their choice cones) survive; nodes are
/// re-strashed, which can merge structurally duplicate logic.
Network cleanup(const Network& net, const CleanupOptions& opts = {});

/// Per-node fanout lists (indexed by NodeId; includes gate fanouts only,
/// not PO references).
std::vector<std::vector<NodeId>> fanout_lists(const Network& net);

/// Recomputes node levels assuming unit gate delays; returns network depth.
/// (Levels are maintained incrementally on construction; this is used by
/// tests and by algorithms that temporarily invalidate levels.)
std::uint32_t recompute_levels(Network& net);

/// Sums of structural statistics used all over the benches.
struct NetworkStats {
  std::size_t num_gates = 0;
  std::size_t num_and2 = 0;
  std::size_t num_xor2 = 0;
  std::size_t num_maj3 = 0;
  std::size_t num_xor3 = 0;
  std::uint32_t depth = 0;
  std::size_t num_choices = 0;
};

NetworkStats network_stats(const Network& net);

/// True iff the two networks are structurally bit-identical: same node
/// table (types, fanins, choice links and phases) and the same PI/PO
/// interface.  Mutable traversal scratch state is ignored.  This is the
/// check behind the mcs::par determinism contract (results must not depend
/// on the thread count); it is stricter than functional equivalence.
bool structurally_identical(const Network& a, const Network& b);

}  // namespace mcs
