/// \file convert.hpp
/// \brief Representation conversions ("one-to-one mapping" of the paper).
///
/// Algorithm 1 begins by storing the input network in a different logic
/// representation.  In the mixed network this is a structural rebuild:
///   - convert_basis() re-expresses every gate with the primitives of a
///     target basis (expanding XOR/MAJ into ANDs when leaving XMG-land,
///     keeping them when entering it);
///   - detect_xors() recognizes the 3-AND XOR/XNOR pattern in AIGs and
///     promotes it to native XOR2 nodes (AIG -> XAG, used by the
///     delay-oriented MCH flavor of the paper's Table I).

#pragma once

#include "mcs/network/network.hpp"
#include "mcs/resyn/basis.hpp"

namespace mcs {

/// Rebuilds \p net gate by gate through a BasisBuilder: the result uses only
/// primitives allowed by \p basis (identical function, possibly different
/// node count).
Network convert_basis(const Network& net, GateBasis basis);

/// Expands every gate into AND2s (+ inverters): the classic AIG.
inline Network expand_to_aig(const Network& net) {
  return convert_basis(net, GateBasis::aig());
}

/// AIG -> XAG: structurally detects n = AND(!AND(a, b), !AND(!a, !b)) (and
/// its phase variants) and rebuilds it as a native XOR2 node.
/// Non-AND gates are copied through unchanged, so the call is idempotent.
Network detect_xors(const Network& net);

}  // namespace mcs
