/// \file fail.hpp
/// \brief mcs::fail -- deterministic, seed-driven fault injection.
///
/// A server meant to survive worker crashes, stalled SAT calls, malformed
/// traffic and mid-write disconnects needs a way to *make* those things
/// happen on demand.  This subsystem compiles named injection sites into
/// the hot layers of the stack (flow engine, thread pool, sweep/SAT, io
/// readers, server transport); each site is a single relaxed atomic load
/// when no fault spec is armed, and a rule-matching probe when one is.
///
/// **Arming.**  A fault spec comes from the `MCS_FAULTS` environment
/// variable (read once via init_from_env(), which the flow runner and the
/// server daemon call at startup) or programmatically via configure()
/// (the `faults` flow pass exposes that to flow specs and the shell).
///
/// **Spec grammar.**  Semicolon-separated clauses, each
///
///     site=kind[,option=value...]
///
///   site    injection-site name (e.g. `flow.stage`); a trailing `*`
///           makes it a prefix match (`sweep.*`).
///   kind    throw | abort | delay | short | alloc
///   options every=N   fire on every Nth matching hit (default 1)
///           after=N   ignore the first N hits (default 0)
///           count=M   stop after M fires (default unlimited)
///           p=P       fire with probability P in (0,1] -- deterministic,
///                     derived from `seed` and the per-rule hit counter,
///                     never from wall-clock entropy (default 1)
///           seed=S    the probability stream seed (default 1)
///           ms=D      delay duration for kind=delay (default 1)
///
/// Example: MCS_FAULTS="flow.stage=throw,every=7;sat.solve=delay,ms=5;
/// server.read=short,every=3,p=0.5,seed=42".
///
/// **Kinds.**  `throw` raises fail::InjectedFault (derived from
/// std::runtime_error -- every layer that contains user errors contains
/// it); `alloc` raises std::bad_alloc (allocation-failure paths); `abort`
/// calls std::abort() (crash-recovery drills -- this is how the supervisor
/// integration test kills a worker from the inside); `delay` sleeps `ms`
/// milliseconds (stall simulation); `short` only acts through
/// short_read(), clipping a byte count so transports and readers see
/// partial data.
///
/// **Determinism.**  Same spec + same sequence of site hits = same faults.
/// Nothing here consults wall-clock randomness; the probability stream is
/// a hash of (seed, hit index).  Every fired fault is counted in mcs::obs
/// (`fail.injected.<kind>`), so tests and the CI fault-soak job can assert
/// exact accounting.
///
/// **Disabled cost.**  With no spec armed, point()/short_read() are one
/// relaxed atomic load -- measured <1% on the bench_flow mult64 flow.
/// fail is independent of obs and stays live in every build; only its
/// counters degrade to no-ops under -DMCS_OBS_DISABLE.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>

namespace mcs::fail {

/// Raised by kind=throw fault points.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by configure() on malformed fault specs.
class FaultSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

extern std::atomic<bool> g_armed;

/// Slow path of point(): matches \p site against the armed rules and acts
/// (throw / abort / sleep).  Only called while armed.
void fire(const char* site);

/// Slow path of short_read(): returns the possibly-clipped byte count.
std::size_t clip(const char* site, std::size_t n);

}  // namespace detail

/// True while a fault spec is armed.  One relaxed load.
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// A named injection site for throw/abort/delay/alloc faults.  No-op
/// (single relaxed load) when nothing is armed.
inline void point(const char* site) {
  if (armed()) detail::fire(site);
}

/// A named injection site for short-read faults: returns \p n, or a
/// smaller (but nonzero, unless n == 0) count when a `short` rule fires.
/// Also honours throw/abort/delay/alloc rules bound to the same site.
inline std::size_t short_read(const char* site, std::size_t n) {
  return armed() ? detail::clip(site, n) : n;
}

/// Parses and arms \p spec; an empty spec disarms everything.  Throws
/// FaultSpecError on grammar/option errors (leaving the previous spec
/// armed).  Thread-safe; rule hit counters restart from zero.
void configure(const std::string& spec);

/// Disarms all fault rules (equivalent to configure("")).
void disable();

/// The currently armed spec ("" when disarmed).
std::string active_spec();

/// Arms from the MCS_FAULTS environment variable.  Idempotent -- only the
/// first call reads the environment; later calls (and calls when the
/// variable is unset) do nothing.  A malformed MCS_FAULTS value is
/// reported on stderr and ignored rather than thrown: a typo in an env
/// var must not take down a daemon at startup.
void init_from_env();

/// Total faults fired since the last configure() (all kinds; also broken
/// out per kind in the obs counters `fail.injected.<kind>`).
std::uint64_t injected_total();

}  // namespace mcs::fail
