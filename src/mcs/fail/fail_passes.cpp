/// \file fail_passes.cpp
/// \brief Flow registration for fault injection: the `faults` pass arms,
/// disarms and inspects the mcs::fail rule set from flow specs and the
/// shell (`faults:spec=flow.stage=throw,every=7`), so failure drills do
/// not require restarting with a different MCS_FAULTS environment.

#include <cstdio>
#include <string>

#include "mcs/fail/fail.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"

#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

void register_fail_passes(PassRegistry& registry) {
  registry.add({
      .name = "faults",
      .summary = "arm/disarm deterministic fault injection (mcs::fail)",
      .kind = PassKind::kSetting,
      .params = {{.key = "spec",
                  .type = ParamType::kString,
                  .default_value = "",
                  .help = "fault spec; ',' and ';' collide with the flow "
                          "grammar, so write '|' for ',' and '/' for ';' "
                          "(spec=flow.stage=throw|every=7/sat.solve=delay); "
                          "empty disarms"},
                 {.key = "show",
                  .type = ParamType::kBool,
                  .default_value = "false",
                  .help = "print the active spec and injected-fault total"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            if (args.get_bool("show")) {
              const std::string spec = fail::active_spec();
              std::printf("faults: %s (injected=%llu)\n",
                          spec.empty() ? "(disarmed)" : spec.c_str(),
                          static_cast<unsigned long long>(
                              fail::injected_total()));
              ctx.note = spec.empty() ? "disarmed" : spec;
              return;
            }
            // The flow framework reads an empty default_value as "no
            // default", so resolve the documented empty-disarms case here.
            std::string spec =
                args.has("spec") ? args.get_string("spec") : std::string();
            // The fault grammar's ',' and ';' are taken by the flow
            // mini-language; accept '|' and '/' stand-ins in flow specs.
            for (char& c : spec) {
              if (c == '|') c = ',';
              if (c == '/') c = ';';
            }
            try {
              fail::configure(spec);
            } catch (const fail::FaultSpecError& e) {
              throw FlowError(e.what());
            }
            ctx.note = spec.empty() ? "faults disarmed" : "armed: " + spec;
          },
  });
}

}  // namespace mcs::flow
