#include "mcs/fail/fail.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "mcs/obs/obs.hpp"

namespace mcs::fail {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class Kind { kThrow, kAbort, kDelay, kShort, kAlloc };

struct Rule {
  std::string site;       ///< exact site name, or prefix when prefix=true
  bool prefix = false;
  Kind kind = Kind::kThrow;
  std::uint64_t every = 1;
  std::uint64_t after = 0;
  std::uint64_t count = 0;  ///< 0 = unlimited
  double p = 1.0;
  std::uint64_t seed = 1;
  std::uint64_t delay_ms = 1;
  // mutable firing state (guarded by g_mutex)
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct State {
  std::mutex mutex;
  std::vector<Rule> rules;
  std::string spec;
  std::uint64_t injected = 0;
};

State& state() {
  static State* s = new State();  // leaked: outlives exit-time fault points
  return *s;
}

bool site_matches(const Rule& r, const char* site) {
  if (r.prefix) return std::string_view(site).substr(0, r.site.size()) == r.site;
  return r.site == site;
}

/// splitmix64 of (seed, hit index) -- the deterministic probability stream.
std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
  std::uint64_t z = seed * 0x9e3779b97f4a7c15ULL + n + 1;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d4ecb9f5a57d25ULL;
  return z ^ (z >> 31);
}

/// Decides whether \p r fires for this hit and updates its firing state.
/// Caller holds the state mutex.
bool advance(Rule& r) {
  const std::uint64_t hit = r.hits++;
  if (hit < r.after) return false;
  if (r.count != 0 && r.fired >= r.count) return false;
  if ((hit - r.after) % r.every != 0) return false;
  if (r.p < 1.0) {
    const double u =
        static_cast<double>(mix(r.seed, hit) >> 11) / 9007199254740992.0;
    if (u >= r.p) return false;
  }
  ++r.fired;
  return true;
}

void count_injected(Kind k) {
  state().injected++;  // caller holds the mutex
  switch (k) {
    case Kind::kThrow: {
      static obs::Counter& c = obs::counter("fail.injected.throw");
      c.increment();
      break;
    }
    case Kind::kAbort: {
      static obs::Counter& c = obs::counter("fail.injected.abort");
      c.increment();
      break;
    }
    case Kind::kDelay: {
      static obs::Counter& c = obs::counter("fail.injected.delay");
      c.increment();
      break;
    }
    case Kind::kShort: {
      static obs::Counter& c = obs::counter("fail.injected.short");
      c.increment();
      break;
    }
    case Kind::kAlloc: {
      static obs::Counter& c = obs::counter("fail.injected.alloc");
      c.increment();
      break;
    }
  }
}

/// An action decided under the lock, executed after it is released (a
/// delay must not stall other sites; a throw must not leave the mutex
/// held on non-unwinding paths).
struct Pending {
  Kind kind;
  std::string site;
  std::uint64_t delay_ms = 0;
};

void execute(const Pending& act) {
  switch (act.kind) {
    case Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(act.delay_ms));
      return;
    case Kind::kThrow:
      throw InjectedFault("injected fault at " + act.site);
    case Kind::kAlloc:
      throw std::bad_alloc();
    case Kind::kAbort:
      std::fprintf(stderr, "mcs::fail: injected abort at %s\n",
                   act.site.c_str());
      std::fflush(stderr);
      std::abort();
    case Kind::kShort:
      return;  // short only acts through clip()
  }
}

std::uint64_t parse_u64(const std::string& clause, const std::string& key,
                        const std::string& val) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(val, &pos);
    if (pos != val.size()) throw std::invalid_argument(val);
    return v;
  } catch (const std::exception&) {
    throw FaultSpecError("fault spec: bad integer for '" + key + "' in '" +
                         clause + "'");
  }
}

Rule parse_clause(const std::string& clause) {
  // site=kind[,opt=val...]
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = clause.find(',', start);
    parts.push_back(clause.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }

  const std::size_t eq = parts[0].find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= parts[0].size()) {
    throw FaultSpecError("fault spec: expected site=kind in '" + clause + "'");
  }
  Rule r;
  r.site = parts[0].substr(0, eq);
  if (!r.site.empty() && r.site.back() == '*') {
    r.prefix = true;
    r.site.pop_back();
  }
  const std::string kind = parts[0].substr(eq + 1);
  if (kind == "throw") {
    r.kind = Kind::kThrow;
  } else if (kind == "abort") {
    r.kind = Kind::kAbort;
  } else if (kind == "delay") {
    r.kind = Kind::kDelay;
  } else if (kind == "short") {
    r.kind = Kind::kShort;
  } else if (kind == "alloc") {
    r.kind = Kind::kAlloc;
  } else {
    throw FaultSpecError("fault spec: unknown kind '" + kind + "' in '" +
                         clause + "' (throw|abort|delay|short|alloc)");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::size_t oeq = parts[i].find('=');
    if (oeq == std::string::npos || oeq == 0 || oeq + 1 > parts[i].size()) {
      throw FaultSpecError("fault spec: expected option=value, got '" +
                           parts[i] + "' in '" + clause + "'");
    }
    const std::string key = parts[i].substr(0, oeq);
    const std::string val = parts[i].substr(oeq + 1);
    if (key == "every") {
      r.every = parse_u64(clause, key, val);
      if (r.every == 0) {
        throw FaultSpecError("fault spec: every=0 in '" + clause + "'");
      }
    } else if (key == "after") {
      r.after = parse_u64(clause, key, val);
    } else if (key == "count") {
      r.count = parse_u64(clause, key, val);
    } else if (key == "seed") {
      r.seed = parse_u64(clause, key, val);
    } else if (key == "ms") {
      r.delay_ms = parse_u64(clause, key, val);
    } else if (key == "p") {
      try {
        std::size_t pos = 0;
        r.p = std::stod(val, &pos);
        if (pos != val.size()) throw std::invalid_argument(val);
      } catch (const std::exception&) {
        throw FaultSpecError("fault spec: bad probability in '" + clause +
                             "'");
      }
      if (!(r.p > 0.0 && r.p <= 1.0)) {
        throw FaultSpecError("fault spec: p must be in (0,1] in '" + clause +
                             "'");
      }
    } else {
      throw FaultSpecError("fault spec: unknown option '" + key + "' in '" +
                           clause + "'");
    }
  }
  return r;
}

std::vector<Rule> parse_spec(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    // trim surrounding whitespace
    std::size_t b = start, e = semi;
    while (b < e && (spec[b] == ' ' || spec[b] == '\t' || spec[b] == '\n')) ++b;
    while (e > b && (spec[e - 1] == ' ' || spec[e - 1] == '\t' ||
                     spec[e - 1] == '\n')) {
      --e;
    }
    if (e > b) rules.push_back(parse_clause(spec.substr(b, e - b)));
    if (semi == spec.size()) break;
    start = semi + 1;
  }
  return rules;
}

}  // namespace

namespace detail {

void fire(const char* site) {
  State& s = state();
  Pending act;
  bool have = false;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (Rule& r : s.rules) {
      if (r.kind == Kind::kShort || !site_matches(r, site)) continue;
      if (!advance(r)) continue;
      count_injected(r.kind);
      act = Pending{r.kind, site, r.delay_ms};
      have = true;
      break;  // first matching rule wins; its hit counter advanced
    }
  }
  if (have) execute(act);
}

std::size_t clip(const char* site, std::size_t n) {
  State& s = state();
  Pending act;
  bool have = false;
  std::size_t result = n;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (Rule& r : s.rules) {
      if (!site_matches(r, site)) continue;
      if (!advance(r)) continue;
      count_injected(r.kind);
      if (r.kind == Kind::kShort) {
        if (n > 1) result = (n + 1) / 2;  // clip, but never to zero bytes
      } else {
        act = Pending{r.kind, site, r.delay_ms};
        have = true;
      }
      break;
    }
  }
  if (have) execute(act);
  return result;
}

}  // namespace detail

void configure(const std::string& spec) {
  std::vector<Rule> rules = parse_spec(spec);  // throws before touching state
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.rules = std::move(rules);
  s.spec = s.rules.empty() ? std::string() : spec;
  s.injected = 0;
  detail::g_armed.store(!s.rules.empty(), std::memory_order_relaxed);
}

void disable() { configure(std::string()); }

std::string active_spec() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.spec;
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("MCS_FAULTS");
    if (spec == nullptr || spec[0] == '\0') return;
    try {
      configure(spec);
    } catch (const FaultSpecError& e) {
      std::fprintf(stderr, "mcs::fail: ignoring MCS_FAULTS: %s\n", e.what());
    }
  });
}

std::uint64_t injected_total() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.injected;
}

}  // namespace mcs::fail
