/// \file flow.hpp
/// \brief Unified pass/pipeline API: composable passes, a pass registry and
/// a flow-spec mini-language.
///
/// The paper's experimental setup is a *flow* -- optimize, build choices,
/// map, verify -- but each step used to be a free function with its own
/// `*Params` struct, hand-wired separately in the shell, the parallel
/// drivers and every bench.  This layer gives all of them one abstraction:
///
///   - FlowContext: the state a flow threads through its stages (working
///     network, reference snapshot, mapped artifacts, tech library, thread
///     pool settings, RNG seed, per-stage reports).
///   - PassInfo + PassRegistry: every pass self-describes (name, summary,
///     typed param schema) and registers once; shells, flows and benches
///     all dispatch through registry lookups.  `help` text and the README
///     pass table are generated/checked from the same schemas.
///   - Flow: a pipeline parsed from a spec string, e.g.
///         "gen:multiplier,bits=64; compress2rs; mch:basis=xmg,ratio=0.9;
///          map_lut:k=6; cec"
///     Stages are `name[:arg,...]`; args are `key=value` or positional (in
///     schema order).  The whole spec is validated *before* execution.
///   - FlowReport: structured per-stage results (gates/depth/LUTs/time),
///     JSON-serializable for scripted runs (see bench_util's emitter).
///
/// Adding a new pass costs one registration: fill a PassInfo (schema +
/// run lambda over FlowContext) in the subsystem's `*_passes.cpp` and it is
/// immediately available as a shell command, a flow stage, and -- for
/// network transforms -- a target of the generic partition-parallel driver
/// (`par:pass=<name>`; see mcs/par/par_engine.hpp).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/map/techlib.hpp"
#include "mcs/network/network.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/resyn/basis.hpp"

namespace mcs::flow {

/// Raised on malformed flow specs, unknown passes/params, junk argument
/// values and pass failures (e.g. a failing `cec` stage).
class FlowError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- validated scalar parsing ----------------------------------------------

/// Strict parsers: the whole trimmed token must be consumed, otherwise
/// std::nullopt (no atoi-style silent truncation of junk to 0).
std::optional<long long> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);
std::optional<bool> parse_bool(std::string_view text);
std::optional<GateBasis> parse_basis(std::string_view text);

// --- pass schemas -----------------------------------------------------------

enum class ParamType { kInt, kUint64, kDouble, kBool, kString, kBasis };

/// One parameter of a pass.  A parameter may be bound by key (`bits=64`) or
/// positionally (bare tokens bind to the schema's params in order).
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kString;
  std::string default_value;  ///< textual; empty and !required = truly optional
  bool required = false;
  std::string help;
};

enum class PassKind {
  kSource,     ///< loads/generates the working network (resets the reference)
  kTransform,  ///< Network -> Network
  kChoice,     ///< Network -> choice Network (classes must survive stitching)
  kMapping,    ///< Network -> LutNetwork / CellNetlist
  kAnalysis,   ///< reads state (ps, cec)
  kOutput,     ///< writes files
  kSetting,    ///< mutates flow settings (threads, partsize, seed)
};

struct FlowContext;
struct PassInfo;

/// Parsed, type-validated arguments of one pass invocation.  Construction
/// (bind) rejects unknown keys, duplicate keys, surplus positionals, junk
/// values and missing required params with a descriptive FlowError.
class PassArgs {
 public:
  PassArgs() = default;

  /// Binds raw tokens (`key=value` or positional) against \p info's schema.
  static PassArgs bind(const PassInfo& info,
                       const std::vector<std::string>& tokens);

  bool has(const std::string& key) const;

  /// Typed getters; fall back to the schema default when the key was not
  /// bound.  Calling a getter for an unbound key without a default is a
  /// programming error and throws.
  long long get_int(const std::string& key) const;
  std::uint64_t get_uint64(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;
  std::string get_string(const std::string& key) const;
  GateBasis get_basis(const std::string& key) const;

  /// Unmatched key=value pairs (only passes with allow_extra_args collect
  /// these; the `par` meta-pass forwards them to its inner pass).
  const std::vector<std::pair<std::string, std::string>>& extras() const {
    return extras_;
  }

  /// Canonical textual form, e.g. "basis=xmg,ratio=0.9" (bound args only).
  std::string canonical() const;

 private:
  std::string raw(const std::string& key) const;  ///< bound value or default

  const PassInfo* info_ = nullptr;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::pair<std::string, std::string>> extras_;
};

/// A registered pass: self-describing metadata plus the run hook.
struct PassInfo {
  std::string name;
  std::string summary;
  PassKind kind = PassKind::kTransform;
  std::vector<ParamSpec> params;

  /// Collect unknown key=value args instead of rejecting them (used by the
  /// `par` meta-pass to forward params to its inner pass).
  bool allow_extra_args = false;

  /// Network->network passes that are safe to run per-shard under the
  /// generic partition-parallel driver (`par:pass=<name>`).
  bool parallel_ok = false;

  /// Executes the pass.  Failures are reported by throwing FlowError.
  std::function<void(FlowContext&, const PassArgs&)> run;

  /// Optional extra parse-time validation (after bind), e.g. the `par`
  /// meta-pass validating its forwarded inner-pass args.
  std::function<void(const PassArgs&)> validate;
};

/// "k=6, zero=false" rendering of a schema (defaults shown; required /
/// default-less params as a bare key).  Shared by `help` and the README
/// pass table (checked in tests/test_flow.cpp).
std::string params_summary(const PassInfo& info);

/// The global pass registry.  Built-in passes (opt, choice, map, par, io,
/// gen, analysis, settings) register on first access; libraries embedding
/// mcs may add their own passes at startup.
class PassRegistry {
 public:
  static PassRegistry& instance();

  /// Registers \p info.  Throws std::logic_error on duplicate names,
  /// duplicate param keys or schema defaults that fail their own type.
  void add(PassInfo info);

  /// Looks up a pass by name; nullptr when unknown.
  const PassInfo* find(std::string_view name) const;

  /// All passes in registration order.
  std::vector<const PassInfo*> all() const;

  /// Generated command reference, grouped by PassKind (the shell's `help`).
  std::string help() const;

 private:
  PassRegistry();

  std::vector<std::unique_ptr<PassInfo>> passes_;
  std::unordered_map<std::string, const PassInfo*> by_name_;
};

// --- cooperative cancellation -----------------------------------------------

/// Cooperative stop control for a running flow: a cancellation flag plus an
/// optional wall-clock deadline.  Flow::run()/run_flow() (and the job
/// server's per-stage scheduler) consult the token at *stage boundaries*
/// only -- a running pass is never interrupted, so passes stay oblivious
/// and intermediate state is never torn.  A tripped token stops the flow
/// with a failed synthetic stage whose note is the stop reason
/// ("cancelled" or "timeout").
///
/// The token is shared (shared_ptr in FlowContext) between the flow runner
/// and any number of controlling threads; every member is thread-safe.
class CancelToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms the wall-clock deadline \p timeout from now; non-positive
  /// durations disarm it.
  void set_deadline_after(std::chrono::nanoseconds timeout) noexcept {
    if (timeout.count() <= 0) {
      armed_.store(false, std::memory_order_relaxed);
      return;
    }
    deadline_ns_.store(
        (std::chrono::steady_clock::now().time_since_epoch() + timeout)
            .count(),
        std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }

  bool deadline_passed() const noexcept {
    return armed_.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now().time_since_epoch().count() >=
               deadline_ns_.load(std::memory_order_relaxed);
  }

  /// nullptr while runnable, else the stop reason.  An explicit cancel
  /// wins over a passed deadline (the controller's intent is clearer).
  const char* stop_reason() const noexcept {
    if (cancel_requested()) return "cancelled";
    if (deadline_passed()) return "timeout";
    return nullptr;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> armed_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady_clock since-epoch
};

// --- transactional stage execution ------------------------------------------

/// Policy of the checkpoint/rollback layer (mcs::ckpt) woven into stage
/// execution.  All-off by default: the disabled path costs one branch per
/// stage (<2% on the mult64 reference flow -- see scripts/bench guard in
/// tests).  Armed via the `ckpt` settings pass
/// (`ckpt:mode=retry,retries=2,validate=on,sim_words=8`) or directly on
/// FlowContext::txn.
struct TxnPolicy {
  /// What to do after a stage throws, trips an injected fault or fails
  /// validation, once the network is rolled back to the pre-stage
  /// snapshot.
  enum class OnFailure {
    kFail,   ///< report the failed stage; the flow stops (default)
    kRetry,  ///< re-run the stage, up to max_retries times, then fail
    kSkip,   ///< skip the stage: synthetic ok report, the flow continues
  };

  /// Snapshot the working network before every mutating stage (source /
  /// transform / choice kinds) so it can be rolled back.  The on_failure
  /// policies require it; validate/sim_words also work standalone (a
  /// violation then simply fails the stage, with nothing to roll back to).
  bool snapshot = false;

  /// Run Network::check() after every stage; a violation fails the stage
  /// (and rolls back like a throw when snapshotting is on).
  bool validate = false;

  /// > 0: sim-signature equivalence spot check over transform/choice
  /// stages -- PO signatures from this many 64-bit random-simulation
  /// words must be unchanged by the stage (necessary condition of
  /// functional equivalence; a mismatch is a proven bug).
  int sim_words = 0;
  std::uint64_t sim_seed = 0x5eedc0deULL;  ///< PI stimulus seed

  OnFailure on_failure = OnFailure::kFail;
  int max_retries = 1;  ///< retry budget per stage under kRetry
};

// --- flow state and reports -------------------------------------------------

/// Timing and result snapshot of one executed stage.
struct StageReport {
  std::string pass;
  std::string args;  ///< canonical args, "" when none
  bool ok = true;
  std::string note;  ///< pass message, or the error text when !ok
  double seconds = 0.0;

  // Working-network snapshot after the stage.
  std::size_t gates = 0;
  std::uint32_t depth = 0;
  std::size_t choices = 0;

  // Mapped artifacts, when present.
  std::size_t luts = 0;
  std::uint32_t lut_depth = 0;
  std::size_t cells = 0;
  double area = 0.0;
  double delay = 0.0;

  // Observability: counters that moved while this stage ran (deltas) plus
  // the gauge values at stage end, and -- with tracing on -- the spans that
  // started during the stage, aggregated by name.  Both empty when the
  // library is built with MCS_OBS_DISABLE.
  obs::MetricsSnapshot metrics;
  std::vector<obs::SpanStats> spans;

  /// Which accumulator `metrics` was read from: "job" when the flow ran
  /// under its own obs::Domain (exact per-flow deltas even when concurrent
  /// jobs share the pool), "process" for the pre-v2 process-global window
  /// (deltas absorb every concurrent job's work).  Serialized as
  /// "metrics_scope" so JSON consumers can tell which semantics they got.
  std::string metrics_scope = "process";

  /// One self-contained JSON object for this stage -- the unit the job
  /// server streams to clients as stages complete (FlowReport::to_json
  /// emits the same objects inside its "stages" array).
  std::string to_json() const;
};

/// Structured result of a whole flow; stages in execution order (a failed
/// stage is recorded and stops the flow).
struct FlowReport {
  bool ok = true;
  std::string error;  ///< first failure message, "" when ok
  double total_seconds = 0.0;
  std::vector<StageReport> stages;

  /// One self-contained JSON object (no external dependencies).
  std::string to_json() const;
};

/// The state a flow threads through its passes.
struct FlowContext {
  Network net;                      ///< working network
  std::optional<Network> original;  ///< reference snapshot for `cec`
  std::optional<LutNetwork> luts;   ///< last LUT mapping
  std::optional<CellNetlist> cells;  ///< last standard-cell mapping
  TechLibrary lib = TechLibrary::asap7_mini();
  ParParams par;           ///< threads + partitioning for the parallel passes
  std::uint64_t seed = 0;  ///< flow RNG seed; 0 = per-pass defaults
  bool verbose = false;    ///< passes print per-stage summaries (the shell)
  std::string note;        ///< set by the running pass, harvested per stage
  std::vector<StageReport> history;  ///< every stage executed on this context

  /// Cooperative stop control: when set, Flow::run()/run_flow() (and the
  /// job server) check the token at every stage boundary and stop with a
  /// failed "cancelled"/"timeout" stage instead of running the next pass.
  /// Mid-stage work is never interrupted.
  std::shared_ptr<CancelToken> cancel;

  /// Streaming hook: invoked after every stage lands in ctx.history (the
  /// synthetic cancelled/timeout stage included) with the report and its
  /// index, before the next stage starts.  The job server streams per-stage
  /// JSON to its clients from here.  Must not throw.
  std::function<void(const StageReport&, std::size_t)> on_stage;

  /// Checkpoint/rollback policy (see TxnPolicy); disabled by default.
  TxnPolicy txn;

  /// Metric-attribution domain for this flow.  When set, run_stage installs
  /// it (obs::Scope) around every stage -- the pool propagates it to all
  /// tasks -- and reads the per-stage metrics window from it, so
  /// StageReport.metrics is an exact per-job delta under concurrency.
  /// Flow::run creates one on demand; the job server installs one per job
  /// at submission.  Must outlive every pool task of the flow (holding it
  /// on the context guarantees that).
  std::shared_ptr<obs::Domain> domain;
};

/// Executes one bound pass on \p ctx: times it, captures errors (returned
/// as !ok, never thrown), snapshots stats, appends to ctx.history, invokes
/// ctx.on_stage and prints a summary when ctx.verbose.  The shell,
/// Flow::run and the job server's scheduler share this.
StageReport run_stage(FlowContext& ctx, const PassInfo& pass,
                      const PassArgs& args);

/// The stage-boundary interruption check shared by Flow::run and the job
/// server's per-stage scheduler: when ctx.cancel reports a stop reason,
/// builds a failed StageReport for the not-run \p next_pass (note = the
/// reason, current network stats snapshotted), appends it to ctx.history,
/// invokes ctx.on_stage, and returns it.  std::nullopt while runnable (or
/// when no token is set).
std::optional<StageReport> check_interrupted(FlowContext& ctx,
                                             const PassInfo& next_pass);

/// Transactional wrapper over run_stage: with ctx.txn.snapshot on and a
/// mutating pass (source/transform/choice kind), captures a binary network
/// snapshot first; when the stage fails -- a throw, an injected fault or a
/// ctx.txn validation failure -- restores the pre-stage network and applies
/// ctx.txn.on_failure (budgeted retry / skip with a synthetic ok report /
/// fail).  Every failed attempt is appended to ctx.history and streamed
/// like a normal stage.  With the policy disabled (or a non-mutating pass)
/// this is exactly run_stage.  Flow::run and the job server's per-stage
/// scheduler share this.
StageReport run_stage_txn(FlowContext& ctx, const PassInfo& pass,
                          const PassArgs& args);

/// A validated pipeline of bound passes.
class Flow {
 public:
  struct Stage {
    const PassInfo* pass = nullptr;
    PassArgs args;
  };

  /// Parses and validates \p spec (see file comment for the grammar).
  /// Throws FlowError on any malformed stage; nothing is executed.
  static Flow parse(const std::string& spec);

  const std::vector<Stage>& stages() const { return stages_; }

  /// Canonical spec string ("gen:name=adder,bits=16; compress2rs; ...").
  std::string canonical() const;

  /// Runs the stages in order on \p ctx; stops at the first failure.
  FlowReport run(FlowContext& ctx) const;

 private:
  std::vector<Stage> stages_;
};

/// Parses and runs \p spec on \p ctx (the shared entry point of the shell's
/// `flow` command, the benches and the tests).  Parse errors throw
/// FlowError; stage failures are reported in the returned FlowReport.
FlowReport run_flow(const std::string& spec, FlowContext& ctx);

/// Same, on a fresh default FlowContext.
FlowReport run_flow(const std::string& spec);

}  // namespace mcs::flow
