/// \file passes.cpp
/// \brief Core pass registrations: benchmark generation, AIGER/BLIF/Verilog
/// io, network analysis (ps/cec), structural housekeeping (strash/to) and
/// the flow settings (threads/partsize/seed).

#include <cstdio>
#include <fstream>
#include <thread>

#include "mcs/circuits/circuits.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/io/aiger.hpp"
#include "mcs/io/writers.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"

// The registrations below use designated initializers and deliberately
// leave defaulted PassInfo/ParamSpec members out; GCC's -Wextra flags
// every omitted member, so silence that one diagnostic here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

namespace {

/// Generator table for `gen`: bits == 0 picks the family's default width
/// (the epfl_suite sizes); non-parametrizable circuits ignore bits.
struct Generator {
  const char* name;
  int default_bits;                 ///< 0 = not parametrizable
  Network (*make)(int bits);
};

const Generator kGenerators[] = {
    {"adder", 64, [](int b) { return circuits::adder(b); }},
    {"bar", 64, [](int b) { return circuits::barrel_shifter(b); }},
    {"div", 16, [](int b) { return circuits::divider(b); }},
    {"hyp", 12, [](int b) { return circuits::hypotenuse(b); }},
    {"log2", 16, [](int b) { return circuits::log2_approx(b); }},
    {"max", 32, [](int b) { return circuits::max4(b); }},
    {"multiplier", 16, [](int b) { return circuits::multiplier(b); }},
    {"sin", 10, [](int b) { return circuits::sin_approx(b); }},
    {"sqrt", 24, [](int b) { return circuits::sqrt_circuit(b); }},
    {"square", 20, [](int b) { return circuits::square(b); }},
    {"arbiter", 32, [](int b) { return circuits::round_robin_arbiter(b); }},
    {"cavlc", 0, [](int) { return circuits::cavlc_like(); }},
    {"ctrl", 0, [](int) { return circuits::ctrl_like(); }},
    {"dec", 7, [](int b) { return circuits::decoder(b); }},
    {"i2c", 0, [](int) { return circuits::i2c_like(); }},
    {"int2float", 0, [](int) { return circuits::int2float_like(); }},
    {"mem_ctrl", 0, [](int) { return circuits::mem_ctrl_like(); }},
    {"priority", 64, [](int b) { return circuits::priority_encoder(b); }},
    {"router", 0, [](int) { return circuits::router_like(); }},
    {"voter", 63, [](int b) { return circuits::voter(b); }},
};

void load_network(FlowContext& ctx, Network net) {
  ctx.net = std::move(net);
  ctx.original = ctx.net;
  ctx.luts.reset();
  ctx.cells.reset();
}

}  // namespace

void register_core_passes(PassRegistry& registry) {
  // --- sources --------------------------------------------------------------
  registry.add({
      .name = "gen",
      .summary = "generate a benchmark circuit (EPFL-analogue suite)",
      .kind = PassKind::kSource,
      .params = {{.key = "name",
                  .type = ParamType::kString,
                  .default_value = "adder",
                  .help = "circuit family"},
                 {.key = "bits",
                  .type = ParamType::kInt,
                  .default_value = "0",
                  .help = "width; 0 = family default"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            const std::string name = args.get_string("name");
            const long long bits = args.get_int("bits");
            if (bits < 0) {
              throw FlowError("gen: bits must be >= 0");
            }
            for (const Generator& g : kGenerators) {
              if (name != g.name) continue;
              const int width =
                  bits > 0 ? static_cast<int>(bits) : g.default_bits;
              load_network(ctx, g.make(width));
              ctx.note = "generated " + name;
              return;
            }
            std::string known;
            for (const Generator& g : kGenerators) {
              if (!known.empty()) known += ", ";
              known += g.name;
            }
            throw FlowError("gen: unknown circuit '" + name +
                            "' (known: " + known + ")");
          },
  });

  registry.add({
      .name = "read_aiger",
      .summary = "load an AIGER file (ascii or binary)",
      .kind = PassKind::kSource,
      .params = {{.key = "file",
                  .type = ParamType::kString,
                  .required = true,
                  .help = "path to .aig/.aag"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            load_network(ctx, read_aiger_file(args.get_string("file")));
            ctx.note = "read " + args.get_string("file");
          },
  });

  // --- transforms -----------------------------------------------------------
  registry.add({
      .name = "strash",
      .summary = "re-hash the network and drop dangling nodes",
      .kind = PassKind::kTransform,
      .parallel_ok = true,
      .run = [](FlowContext& ctx,
                const PassArgs&) { ctx.net = cleanup(ctx.net); },
  });

  registry.add({
      .name = "to",
      .summary = "convert the network to a gate basis",
      .kind = PassKind::kTransform,
      .params = {{.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "aig",
                  .help = "target basis"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            ctx.net = convert_basis(ctx.net, args.get_basis("basis"));
          },
  });

  // --- analysis -------------------------------------------------------------
  registry.add({
      .name = "ps",
      .summary = "print network / mapping statistics",
      .kind = PassKind::kAnalysis,
      .run =
          [](FlowContext& ctx, const PassArgs&) {
            const NetworkStats s = network_stats(ctx.net);
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "pi=%zu po=%zu and=%zu xor2=%zu maj=%zu xor3=%zu",
                          ctx.net.num_pis(), ctx.net.num_pos(), s.num_and2,
                          s.num_xor2, s.num_maj3, s.num_xor3);
            ctx.note = buf;
          },
  });

  registry.add({
      .name = "cec",
      .summary = "verify against the originally loaded network (sim + SAT)",
      .kind = PassKind::kAnalysis,
      .run =
          [](FlowContext& ctx, const PassArgs&) {
            if (!ctx.original) {
              throw FlowError("cec: no reference network loaded");
            }
            // When a mapping is present, verify the mapped artifact
            // (rebuilt as a network); otherwise the working network.
            const Network* subject = &ctx.net;
            Network rebuilt;
            if (ctx.luts) {
              rebuilt = lut_network_to_network(*ctx.luts);
              subject = &rebuilt;
            }
            CecOptions copts;
            copts.num_threads = ctx.par.num_threads;
            const CecResult r = check_equivalence(*ctx.original, *subject,
                                                  copts);
            if (r == CecResult::kNotEquivalent) {
              throw FlowError("NOT equivalent");
            }
            if (r == CecResult::kUnknown) {
              throw FlowError("unknown (resource limit)");
            }
            ctx.note = ctx.luts ? "equivalent (LUT network)" : "equivalent";
          },
  });

  registry.add({
      .name = "sim",
      .summary = "random-simulation check against the original (no SAT)",
      .kind = PassKind::kAnalysis,
      .params = {{.key = "words",
                  .type = ParamType::kInt,
                  .default_value = "32",
                  .help = "64-bit random words per node"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            if (!ctx.original) {
              throw FlowError("sim: no reference network loaded");
            }
            const long long words = args.get_int("words");
            if (words < 1 || words > 4096) {
              throw FlowError("sim: words must be in [1, 4096]");
            }
            const Network* subject = &ctx.net;
            Network rebuilt;
            if (ctx.luts) {
              rebuilt = lut_network_to_network(*ctx.luts);
              subject = &rebuilt;
            }
            const std::uint64_t seed = ctx.seed != 0 ? ctx.seed : 0xc0ffee;
            const std::ptrdiff_t diff_po =
                sim_falsify(*ctx.original, *subject, static_cast<int>(words),
                            seed, ctx.par.num_threads);
            if (diff_po >= 0) {
              throw FlowError("NOT equivalent on random vectors (PO " +
                              std::to_string(diff_po) + ")");
            }
            ctx.note = "matched on " + std::to_string(words * 64) +
                       " random vectors" +
                       (ctx.luts ? std::string(" (LUT network)") : "");
          },
  });

  // --- output ---------------------------------------------------------------
  registry.add({
      .name = "write_aiger",
      .summary = "write the network (AND-expanded) as AIGER",
      .kind = PassKind::kOutput,
      .params = {{.key = "file",
                  .type = ParamType::kString,
                  .required = true,
                  .help = "output path"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            write_aiger_file(expand_to_aig(ctx.net), args.get_string("file"));
            ctx.note = "wrote " + args.get_string("file");
          },
  });

  registry.add({
      .name = "write_blif",
      .summary = "write the network (or LUT mapping) as BLIF",
      .kind = PassKind::kOutput,
      .params = {{.key = "file",
                  .type = ParamType::kString,
                  .required = true,
                  .help = "output path"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            std::ofstream os(args.get_string("file"));
            if (!os) {
              throw FlowError("write_blif: cannot open " +
                              args.get_string("file"));
            }
            if (ctx.luts) {
              write_blif(*ctx.luts, os);
            } else {
              write_blif(ctx.net, os);
            }
            ctx.note = "wrote " + args.get_string("file");
          },
  });

  registry.add({
      .name = "write_verilog",
      .summary = "write the network (or cell netlist) as Verilog",
      .kind = PassKind::kOutput,
      .params = {{.key = "file",
                  .type = ParamType::kString,
                  .required = true,
                  .help = "output path"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            std::ofstream os(args.get_string("file"));
            if (!os) {
              throw FlowError("write_verilog: cannot open " +
                              args.get_string("file"));
            }
            if (ctx.cells) {
              write_verilog(*ctx.cells, os);
            } else {
              write_verilog(ctx.net, os);
            }
            ctx.note = "wrote " + args.get_string("file");
          },
  });

  // --- settings -------------------------------------------------------------
  registry.add({
      .name = "threads",
      .summary = "set worker threads for the parallel passes (0 = auto)",
      .kind = PassKind::kSetting,
      .params = {{.key = "n",
                  .type = ParamType::kInt,
                  .help = "thread count; omit to print the current setting"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            if (args.has("n")) {
              ctx.par.num_threads = static_cast<int>(args.get_int("n"));
            }
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "threads: %zu (requested %d, hardware %u)",
                          ThreadPool::resolve_threads(ctx.par.num_threads),
                          ctx.par.num_threads,
                          std::thread::hardware_concurrency());
            ctx.note = buf;
          },
  });

  registry.add({
      .name = "partsize",
      .summary = "set the partition size target for the parallel passes",
      .kind = PassKind::kSetting,
      .params = {{.key = "gates",
                  .type = ParamType::kInt,
                  .help = "soft gate cap per shard; omit to print"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            if (args.has("gates")) {
              const long long v = args.get_int("gates");
              if (v <= 0) throw FlowError("partsize: gates must be > 0");
              ctx.par.partition.max_gates = static_cast<std::size_t>(v);
            }
            ctx.note = "partsize: " +
                       std::to_string(ctx.par.partition.max_gates) + " gates";
          },
  });

  registry.add({
      .name = "seed",
      .summary = "set the flow RNG seed (0 = per-pass defaults)",
      .kind = PassKind::kSetting,
      .params = {{.key = "value",
                  .type = ParamType::kUint64,
                  .default_value = "0",
                  .help = "seed"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            ctx.seed = args.get_uint64("value");
            ctx.note = "seed: " + std::to_string(ctx.seed);
          },
  });
}

}  // namespace mcs::flow
