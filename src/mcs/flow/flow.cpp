#include "mcs/flow/flow.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "mcs/ckpt/snapshot.hpp"
#include "mcs/fail/fail.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs::flow {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

const char* type_name(ParamType t) {
  switch (t) {
    case ParamType::kInt: return "integer";
    case ParamType::kUint64: return "integer";
    case ParamType::kDouble: return "number";
    case ParamType::kBool: return "bool";
    case ParamType::kString: return "string";
    case ParamType::kBasis: return "basis (aig|xag|mig|xmg)";
  }
  return "?";
}

/// Throws unless \p value parses under \p spec's type.
void check_typed(const std::string& pass, const ParamSpec& spec,
                 const std::string& value) {
  bool ok = false;
  switch (spec.type) {
    case ParamType::kInt: ok = parse_int(value).has_value(); break;
    case ParamType::kUint64: {
      unsigned long long v = 0;
      const std::string_view t = trim(value);
      const auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
      ok = ec == std::errc() && p == t.data() + t.size();
      break;
    }
    case ParamType::kDouble: ok = parse_double(value).has_value(); break;
    case ParamType::kBool: ok = parse_bool(value).has_value(); break;
    case ParamType::kString: ok = true; break;
    case ParamType::kBasis: ok = parse_basis(value).has_value(); break;
  }
  if (!ok) {
    throw FlowError(pass + ": parameter '" + spec.key + "' expects " +
                    type_name(spec.type) + ", got '" + value + "'");
  }
}

const ParamSpec* find_spec(const PassInfo& info, std::string_view key) {
  for (const ParamSpec& spec : info.params) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

}  // namespace

// --- validated scalar parsing ----------------------------------------------

std::optional<long long> parse_int(std::string_view text) {
  const std::string_view t = trim(text);
  long long v = 0;
  const auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || p != t.data() + t.size() || t.empty()) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string t(trim(text));
  if (t.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (errno != 0 || end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string_view t = trim(text);
  if (t == "1" || t == "true" || t == "on") return true;
  if (t == "0" || t == "false" || t == "off") return false;
  return std::nullopt;
}

std::optional<GateBasis> parse_basis(std::string_view text) {
  const std::string_view t = trim(text);
  if (t == "aig") return GateBasis::aig();
  if (t == "xag") return GateBasis::xag();
  if (t == "mig") return GateBasis::mig();
  if (t == "xmg") return GateBasis::xmg();
  return std::nullopt;
}

// --- PassArgs ---------------------------------------------------------------

PassArgs PassArgs::bind(const PassInfo& info,
                        const std::vector<std::string>& tokens) {
  PassArgs args;
  args.info_ = &info;
  std::size_t next_positional = 0;
  for (const std::string& raw_tok : tokens) {
    const std::string tok(trim(raw_tok));
    if (tok.empty()) continue;
    const std::size_t eq = tok.find('=');
    std::string key, value;
    const ParamSpec* spec = nullptr;
    if (eq != std::string::npos) {
      key = std::string(trim(std::string_view(tok).substr(0, eq)));
      value = std::string(trim(std::string_view(tok).substr(eq + 1)));
      spec = find_spec(info, key);
      if (!spec) {
        if (info.allow_extra_args) {
          args.extras_.emplace_back(key, value);
          continue;
        }
        throw FlowError(info.name + ": unknown parameter '" + key +
                        "' (known: " + params_summary(info) + ")");
      }
    } else {
      // Positional: bind to the next schema param not yet set by key.
      while (next_positional < info.params.size() &&
             args.has(info.params[next_positional].key)) {
        ++next_positional;
      }
      if (next_positional >= info.params.size()) {
        throw FlowError(info.name + ": unexpected argument '" + tok +
                        "' (params: " + params_summary(info) + ")");
      }
      spec = &info.params[next_positional++];
      key = spec->key;
      value = tok;
    }
    if (args.has(key)) {
      throw FlowError(info.name + ": parameter '" + key + "' given twice");
    }
    check_typed(info.name, *spec, value);
    args.values_.emplace_back(key, value);
  }
  for (const ParamSpec& spec : info.params) {
    if (spec.required && !args.has(spec.key)) {
      throw FlowError(info.name + ": missing required parameter '" +
                      spec.key + "'");
    }
  }
  if (info.validate) info.validate(args);
  return args;
}

bool PassArgs::has(const std::string& key) const {
  for (const auto& [k, v] : values_) {
    if (k == key) return true;
  }
  return false;
}

std::string PassArgs::raw(const std::string& key) const {
  for (const auto& [k, v] : values_) {
    if (k == key) return v;
  }
  const ParamSpec* spec = info_ ? find_spec(*info_, key) : nullptr;
  if (!spec || spec->default_value.empty()) {
    throw FlowError(std::string(info_ ? info_->name : "?") + ": parameter '" +
                    key + "' has no value and no default");
  }
  return spec->default_value;
}

long long PassArgs::get_int(const std::string& key) const {
  return *parse_int(raw(key));
}

std::uint64_t PassArgs::get_uint64(const std::string& key) const {
  const std::string v = raw(key);
  unsigned long long out = 0;
  const std::string_view t = trim(v);
  std::from_chars(t.data(), t.data() + t.size(), out);
  return out;
}

double PassArgs::get_double(const std::string& key) const {
  return *parse_double(raw(key));
}

bool PassArgs::get_bool(const std::string& key) const {
  return *parse_bool(raw(key));
}

std::string PassArgs::get_string(const std::string& key) const {
  return raw(key);
}

GateBasis PassArgs::get_basis(const std::string& key) const {
  return *parse_basis(raw(key));
}

std::string PassArgs::canonical() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ',';
    out += k + "=" + v;
  }
  for (const auto& [k, v] : extras_) {
    if (!out.empty()) out += ',';
    out += k + "=" + v;
  }
  return out;
}

// --- PassInfo / PassRegistry ------------------------------------------------

std::string params_summary(const PassInfo& info) {
  if (info.params.empty()) return "—";
  std::string out;
  for (const ParamSpec& spec : info.params) {
    if (!out.empty()) out += ", ";
    out += spec.key;
    if (!spec.default_value.empty()) out += "=" + spec.default_value;
  }
  return out;
}

PassRegistry& PassRegistry::instance() {
  static PassRegistry registry;
  return registry;
}

PassRegistry::PassRegistry() {
  register_core_passes(*this);
  register_opt_passes(*this);
  register_sweep_passes(*this);
  register_choice_passes(*this);
  register_map_passes(*this);
  register_par_passes(*this);
  register_obs_passes(*this);
  register_fail_passes(*this);
  register_ckpt_passes(*this);
}

void PassRegistry::add(PassInfo info) {
  if (info.name.empty() || !info.run) {
    throw std::logic_error("PassRegistry: pass needs a name and a run hook");
  }
  if (by_name_.count(info.name)) {
    throw std::logic_error("PassRegistry: duplicate pass '" + info.name + "'");
  }
  for (std::size_t i = 0; i < info.params.size(); ++i) {
    const ParamSpec& spec = info.params[i];
    for (std::size_t j = 0; j < i; ++j) {
      if (info.params[j].key == spec.key) {
        throw std::logic_error("PassRegistry: pass '" + info.name +
                               "' repeats param '" + spec.key + "'");
      }
    }
    if (!spec.default_value.empty()) {
      check_typed(info.name, spec, spec.default_value);  // throws FlowError
    }
  }
  passes_.push_back(std::make_unique<PassInfo>(std::move(info)));
  by_name_.emplace(passes_.back()->name, passes_.back().get());
}

const PassInfo* PassRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const PassInfo*> PassRegistry::all() const {
  std::vector<const PassInfo*> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.push_back(p.get());
  return out;
}

std::string PassRegistry::help() const {
  static constexpr struct {
    PassKind kind;
    const char* title;
  } kGroups[] = {
      {PassKind::kSource, "sources"},
      {PassKind::kTransform, "transforms"},
      {PassKind::kChoice, "choices"},
      {PassKind::kMapping, "mapping"},
      {PassKind::kAnalysis, "analysis"},
      {PassKind::kOutput, "output"},
      {PassKind::kSetting, "settings"},
  };
  std::ostringstream os;
  os << "passes (run as commands, or compose: flow \"a:k=v; b; c\"):\n";
  for (const auto& group : kGroups) {
    bool any = false;
    for (const auto& p : passes_) {
      if (p->kind != group.kind) continue;
      if (!any) os << " " << group.title << ":\n";
      any = true;
      std::string head = "  " + p->name;
      const std::string params = params_summary(*p);
      if (params != "—") head += " [" + params + "]";
      os << head;
      if (head.size() < 40) os << std::string(40 - head.size(), ' ');
      os << " " << p->summary << "\n";
    }
  }
  return os.str();
}

// --- stage / flow execution -------------------------------------------------

namespace {

/// Stage-validation metric handles (catalogued in the README).
struct TxnMetrics {
  obs::Counter& validation_failures = obs::counter("ckpt.validation_failures");
  obs::Counter& rollbacks = obs::counter("ckpt.rollbacks");
  obs::Counter& retries = obs::counter("ckpt.retries");
  obs::Counter& skips = obs::counter("ckpt.skips");
};

TxnMetrics& txn_metrics() {
  static TxnMetrics m;
  return m;
}

/// True for pass kinds that mutate the working network (the kinds the
/// transactional runner snapshots, and whose PO functions the sim spot
/// check must see preserved -- sources excepted, they replace the network).
bool mutates_network(PassKind kind) {
  return kind == PassKind::kSource || kind == PassKind::kTransform ||
         kind == PassKind::kChoice;
}

/// PO signatures under ctx.txn.sim_words words of seeded random stimulus.
/// Equality is a necessary condition of PO-function equality: signature()
/// respects complement edges and the stimulus is a pure function of
/// (seed, PI index), so it survives any structural rewrite.
std::vector<std::uint64_t> po_signatures(const FlowContext& ctx) {
  const RandomSimulation sim(ctx.net, ctx.txn.sim_words, ctx.txn.sim_seed);
  std::vector<std::uint64_t> sigs;
  sigs.reserve(ctx.net.num_pos());
  for (std::size_t i = 0; i < ctx.net.num_pos(); ++i) {
    sigs.push_back(sim.signature(ctx.net.po_at(i)));
  }
  return sigs;
}

}  // namespace

StageReport run_stage(FlowContext& ctx, const PassInfo& pass,
                      const PassArgs& args) {
  StageReport report;
  report.pass = pass.name;
  report.args = args.canonical();
  ctx.note.clear();
  // Every registered pass gets an enter/exit span and a metrics window for
  // free: counter movement during the stage lands in report.metrics, spans
  // started during the stage (the pass's own span included) land in
  // report.spans.  With a domain on the context the stage (and, through
  // pool inheritance, all of its tasks) runs under the job's scope and the
  // window reads the domain -- exact per-job deltas under concurrency;
  // without one it falls back to the process-wide registry.
  obs::Scope domain_scope(ctx.domain.get());
  report.metrics_scope = ctx.domain ? "job" : "process";
  const obs::MetricsSnapshot metrics_before =
      ctx.domain ? ctx.domain->snapshot() : obs::snapshot();
  const std::uint64_t span_window_start = obs::now_us();
  const auto t0 = std::chrono::steady_clock::now();
  // Sim spot check only guards function-preserving rewrites: transforms and
  // choice builders.  Sources replace the function; mappings/analyses do
  // not touch the network.
  const bool sim_check =
      ctx.txn.sim_words > 0 && (pass.kind == PassKind::kTransform ||
                                pass.kind == PassKind::kChoice);
  try {
    obs::Span span([&] { return "pass:" + pass.name; });
    std::vector<std::uint64_t> sigs_before;
    if (sim_check) sigs_before = po_signatures(ctx);
    // Inside the try block: an injected fault becomes a failed stage, the
    // same containment real pass errors get.
    fail::point("flow.stage");
    pass.run(ctx, args);
    // A changed working network invalidates earlier mapped artifacts;
    // without this, `cec` after a transform would verify a stale mapping.
    if (pass.kind == PassKind::kTransform || pass.kind == PassKind::kChoice) {
      ctx.luts.reset();
      ctx.cells.reset();
    }
    if (ctx.txn.validate) {
      // A validation fault injects here so tests can drill the rollback
      // path without first corrupting a network for real.
      fail::point("flow.validate");
      std::string why;
      if (!ctx.net.check(&why)) {
        throw FlowError("validate: " + why);
      }
    }
    if (sim_check) {
      const std::vector<std::uint64_t> sigs_after = po_signatures(ctx);
      if (sigs_after.size() != sigs_before.size()) {
        throw FlowError("validate: stage changed the PO count (" +
                        std::to_string(sigs_before.size()) + " -> " +
                        std::to_string(sigs_after.size()) + ")");
      }
      for (std::size_t i = 0; i < sigs_after.size(); ++i) {
        if (sigs_after[i] != sigs_before[i]) {
          throw FlowError("validate: simulation signature changed at PO " +
                          std::to_string(i) + " (functional bug)");
        }
      }
    }
  } catch (const std::exception& e) {
    report.ok = false;
    ctx.note = e.what();
    if (ctx.note.rfind("validate:", 0) == 0) {
      txn_metrics().validation_failures.increment();
    }
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.metrics =
      ctx.domain ? obs::snapshot_diff(ctx.domain->snapshot(), metrics_before)
                 : obs::snapshot_delta(metrics_before);
  if (obs::tracing_enabled()) {
    report.spans = obs::aggregate_spans(span_window_start);
  }
  report.note = ctx.note;
  report.gates = ctx.net.num_gates();
  report.depth = ctx.net.depth();
  report.choices = ctx.net.num_choices();
  if (ctx.luts) {
    report.luts = ctx.luts->size();
    report.lut_depth = ctx.luts->depth();
  }
  if (ctx.cells) {
    report.cells = ctx.cells->size();
    report.area = ctx.cells->area;
    report.delay = ctx.cells->delay;
  }
  ctx.history.push_back(report);
  if (ctx.on_stage) ctx.on_stage(ctx.history.back(), ctx.history.size() - 1);
  if (ctx.verbose) {
    if (!report.ok) {
      std::printf("%s: error: %s\n", report.pass.c_str(), report.note.c_str());
    } else {
      std::printf("%s%s%s: gates=%zu depth=%u choices=%zu", report.pass.c_str(),
                  report.args.empty() ? "" : ":",
                  report.args.c_str(), report.gates, report.depth,
                  report.choices);
      if (ctx.luts) {
        std::printf(" | luts=%zu lut_depth=%u", report.luts, report.lut_depth);
      }
      if (ctx.cells) {
        std::printf(" | cells=%zu area=%.3f delay=%.2f", report.cells,
                    report.area, report.delay);
      }
      std::printf(" (%.2fs)", report.seconds);
      if (!report.note.empty()) std::printf("  -- %s", report.note.c_str());
      std::printf("\n");
    }
  }
  return report;
}

std::optional<StageReport> check_interrupted(FlowContext& ctx,
                                             const PassInfo& next_pass) {
  const char* reason =
      ctx.cancel ? ctx.cancel->stop_reason() : nullptr;
  if (reason == nullptr) return std::nullopt;
  StageReport report;
  report.pass = next_pass.name;
  report.ok = false;
  report.metrics_scope = ctx.domain ? "job" : "process";
  report.note = reason;
  report.gates = ctx.net.num_gates();
  report.depth = ctx.net.depth();
  report.choices = ctx.net.num_choices();
  ctx.history.push_back(report);
  if (ctx.on_stage) ctx.on_stage(ctx.history.back(), ctx.history.size() - 1);
  if (ctx.verbose) {
    std::printf("%s: stopped: %s\n", report.pass.c_str(), report.note.c_str());
  }
  return report;
}

StageReport run_stage_txn(FlowContext& ctx, const PassInfo& pass,
                          const PassArgs& args) {
  // Disabled (the default) or non-mutating: exactly run_stage, one branch.
  if (!ctx.txn.snapshot || !mutates_network(pass.kind)) {
    return run_stage(ctx, pass, args);
  }

  const std::vector<std::uint8_t> blob = ckpt::snapshot(ctx.net);
  // A source stage overwrites the `cec`/`sim` reference network as well;
  // sources are cheap enough that a plain copy beats a second blob here.
  std::optional<Network> original_before;
  if (pass.kind == PassKind::kSource) original_before = ctx.original;

  int attempts = 0;
  for (;;) {
    StageReport report = run_stage(ctx, pass, args);
    if (report.ok) return report;

    if (ctx.txn.on_failure == TxnPolicy::OnFailure::kFail) return report;

    // Roll back: the pass may have torn the working network arbitrarily
    // before failing; the snapshot restores the exact pre-stage structure
    // (ids, levels, choices and all -- see snapshot.hpp).
    ctx.net = ckpt::restore(blob);
    if (pass.kind == PassKind::kSource) ctx.original = original_before;
    txn_metrics().rollbacks.increment();

    if (ctx.txn.on_failure == TxnPolicy::OnFailure::kRetry &&
        attempts < ctx.txn.max_retries) {
      ++attempts;
      txn_metrics().retries.increment();
      if (ctx.verbose) {
        std::printf("%s: rolled back, retry %d/%d\n", pass.name.c_str(),
                    attempts, ctx.txn.max_retries);
      }
      continue;  // the failed attempt is already in ctx.history / streamed
    }

    // kSkip, or a kRetry budget exhausted under kSkip-free semantics: under
    // kRetry the last failed report stands and the flow stops.
    if (ctx.txn.on_failure == TxnPolicy::OnFailure::kRetry) return report;

    // kSkip: the stage is dropped, surfaced as a synthetic ok report (the
    // rollback makes "dropped" true -- the network is as if it never ran).
    txn_metrics().skips.increment();
    StageReport skipped;
    skipped.pass = pass.name;
    skipped.args = report.args;
    skipped.metrics_scope = report.metrics_scope;
    skipped.note = "skipped after rollback: " + report.note;
    skipped.gates = ctx.net.num_gates();
    skipped.depth = ctx.net.depth();
    skipped.choices = ctx.net.num_choices();
    ctx.history.push_back(skipped);
    if (ctx.on_stage) {
      ctx.on_stage(ctx.history.back(), ctx.history.size() - 1);
    }
    if (ctx.verbose) {
      std::printf("%s: %s\n", skipped.pass.c_str(), skipped.note.c_str());
    }
    return skipped;
  }
}

Flow Flow::parse(const std::string& spec) {
  Flow flow;
  for (const std::string& stage_text : split(spec, ';')) {
    const std::string_view stage = trim(stage_text);
    if (stage.empty()) continue;
    const std::size_t colon = stage.find(':');
    const std::string name(trim(stage.substr(0, colon)));
    if (name.empty()) {
      throw FlowError("flow spec: stage '" + std::string(stage) +
                      "' has no pass name");
    }
    const PassInfo* pass = PassRegistry::instance().find(name);
    if (!pass) {
      throw FlowError("flow spec: unknown pass '" + name + "' (try 'help')");
    }
    std::vector<std::string> tokens;
    if (colon != std::string_view::npos) {
      tokens = split(stage.substr(colon + 1), ',');
    }
    flow.stages_.push_back({pass, PassArgs::bind(*pass, tokens)});
  }
  if (flow.stages_.empty()) throw FlowError("flow spec: no stages");
  return flow;
}

std::string Flow::canonical() const {
  std::string out;
  for (const Stage& stage : stages_) {
    if (!out.empty()) out += "; ";
    out += stage.pass->name;
    const std::string args = stage.args.canonical();
    if (!args.empty()) out += ":" + args;
  }
  return out;
}

FlowReport Flow::run(FlowContext& ctx) const {
  // Headless tracing: MCS_TRACE=<file> captures this run without any shell
  // or bench plumbing (idempotent; the dump happens at process exit).
  obs::init_from_env();
  fail::init_from_env();
  // Per-flow attribution: every flow runs under its own metric domain (the
  // job server pre-installs one per job; CLI and bench flows get one here),
  // so per-stage metrics windows never absorb concurrent work.
  if (!ctx.domain) ctx.domain = std::make_shared<obs::Domain>();
  FlowReport report;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Stage& stage : stages_) {
    // Cooperative stop: a cancelled token or a passed deadline stops the
    // flow *between* stages, recorded as a failed stage that never ran.
    if (auto stopped = check_interrupted(ctx, *stage.pass)) {
      report.stages.push_back(std::move(*stopped));
      report.ok = false;
      report.error =
          report.stages.back().pass + ": " + report.stages.back().note;
      break;
    }
    report.stages.push_back(run_stage_txn(ctx, *stage.pass, stage.args));
    if (!report.stages.back().ok) {
      report.ok = false;
      report.error =
          report.stages.back().pass + ": " + report.stages.back().note;
      break;
    }
  }
  report.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

FlowReport run_flow(const std::string& spec, FlowContext& ctx) {
  return Flow::parse(spec).run(ctx);
}

FlowReport run_flow(const std::string& spec) {
  FlowContext ctx;
  return run_flow(spec, ctx);
}

// --- JSON serialization -----------------------------------------------------

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string StageReport::to_json() const {
  const StageReport& s = *this;
  std::string out;
  out += "{\"pass\": ";
  append_json_string(out, s.pass);
  out += ", \"args\": ";
  append_json_string(out, s.args);
  out += ", \"ok\": ";
  out += s.ok ? "true" : "false";
  out += ", \"seconds\": ";
  append_json_double(out, s.seconds);
  out += ", \"gates\": " + std::to_string(s.gates);
  out += ", \"depth\": " + std::to_string(s.depth);
  out += ", \"choices\": " + std::to_string(s.choices);
  out += ", \"luts\": " + std::to_string(s.luts);
  out += ", \"lut_depth\": " + std::to_string(s.lut_depth);
  out += ", \"cells\": " + std::to_string(s.cells);
  out += ", \"area\": ";
  append_json_double(out, s.area);
  out += ", \"delay\": ";
  append_json_double(out, s.delay);
  out += ", \"note\": ";
  append_json_string(out, s.note);
  // Observability fields (see README "Observability"): counter *deltas*
  // over the stage, gauges at stage end, per-name span aggregates.
  // metrics_scope says which accumulator the window read ("job" = the
  // flow's own domain, "process" = the pre-v2 global registry).
  out += ", \"metrics_scope\": ";
  append_json_string(out, s.metrics_scope);
  out += ", \"metrics\": {\"counters\": {";
  for (std::size_t k = 0; k < s.metrics.counters.size(); ++k) {
    if (k) out += ", ";
    append_json_string(out, s.metrics.counters[k].name);
    out += ": " + std::to_string(s.metrics.counters[k].value);
  }
  out += "}, \"gauges\": {";
  for (std::size_t k = 0; k < s.metrics.gauges.size(); ++k) {
    if (k) out += ", ";
    append_json_string(out, s.metrics.gauges[k].name);
    out += ": " + std::to_string(s.metrics.gauges[k].value);
  }
  out += "}}, \"spans\": [";
  for (std::size_t k = 0; k < s.spans.size(); ++k) {
    if (k) out += ", ";
    out += "{\"name\": ";
    append_json_string(out, s.spans[k].name);
    out += ", \"count\": " + std::to_string(s.spans[k].count);
    out += ", \"seconds\": ";
    append_json_double(out, s.spans[k].seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string FlowReport::to_json() const {
  std::string out = "{\"ok\": ";
  out += ok ? "true" : "false";
  out += ", \"error\": ";
  append_json_string(out, error);
  out += ", \"total_seconds\": ";
  append_json_double(out, total_seconds);
  out += ", \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i) out += ", ";
    out += stages[i].to_json();
  }
  out += "]}";
  return out;
}

}  // namespace mcs::flow
