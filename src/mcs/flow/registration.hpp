/// \file registration.hpp
/// \brief Internal: built-in pass registration hooks.
///
/// Each subsystem contributes its passes from its own directory
/// (opt/opt_passes.cpp, choice/choice_passes.cpp, map/map_passes.cpp,
/// par/par_passes.cpp); the core passes (gen, io, analysis, settings) live
/// in flow/passes.cpp.  PassRegistry's constructor calls every hook
/// explicitly -- static-initializer self-registration would be dropped by
/// the linker for unreferenced objects of a static library.

#pragma once

namespace mcs::flow {

class PassRegistry;

void register_core_passes(PassRegistry& registry);    // flow/passes.cpp
void register_opt_passes(PassRegistry& registry);     // opt/opt_passes.cpp
void register_sweep_passes(PassRegistry& registry);   // sweep/sweep_passes.cpp
void register_choice_passes(PassRegistry& registry);  // choice/choice_passes.cpp
void register_map_passes(PassRegistry& registry);     // map/map_passes.cpp
void register_par_passes(PassRegistry& registry);     // par/par_passes.cpp
void register_obs_passes(PassRegistry& registry);     // obs/obs_passes.cpp
void register_fail_passes(PassRegistry& registry);    // fail/fail_passes.cpp
void register_ckpt_passes(PassRegistry& registry);    // ckpt/ckpt_passes.cpp

}  // namespace mcs::flow
