/// \file hash.hpp
/// \brief Hash combiners shared by structural hashing and cut signatures.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mcs {

/// Mixes a 64-bit value (finalizer of MurmurHash3).
constexpr std::uint64_t hash_mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Combines a hash value with another value, boost-style but 64-bit.
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return seed ^ (hash_mix64(value) + 0x9e3779b97f4a7c15ull + (seed << 12) +
                 (seed >> 4));
}

}  // namespace mcs
