/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// All randomized algorithms in the library (simulation vectors, random
/// benchmark circuits, SAT decision tie-breaking) draw from this generator so
/// that every experiment is reproducible from a seed.

#pragma once

#include <cstdint>

namespace mcs {

/// \brief SplitMix64 generator.
///
/// Small, fast and statistically solid for the purposes of logic simulation
/// and randomized testing.  Never use wall-clock seeding inside the library:
/// determinism is a design requirement (see DESIGN.md).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept
      : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  \pre bound > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform boolean.
  constexpr bool next_bool() noexcept { return (next() & 1ull) != 0; }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mcs
