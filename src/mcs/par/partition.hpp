/// \file partition.hpp
/// \brief Network partitioning for parallel synthesis.
///
/// A combinational network is split into self-contained shards; every shard
/// is an ordinary Network, so each existing single-threaded pass --
/// optimization scripts, MCH construction, the mappers -- runs on a shard
/// unchanged.  Two strategies are provided:
///
///   - kOutputCones: primary outputs are grouped greedily in interface
///     order and each shard is the union of the group's transitive fanin
///     cones, reaching down to the original PIs.  Boundary inputs are
///     original PIs only.  Logic shared between groups is *duplicated* and
///     re-merged by strashing at reassembly.  Great for wide, shallow
///     interfaces (adders, control logic); degenerates on globally shared
///     structures (a multiplier's high output cones each cover almost the
///     whole array).
///
///   - kLevelWindows: the network is sliced into horizontal bands by gate
///     level.  Boundary PIs/POs sit at *internal* nodes (a shard PI stands
///     for the non-complemented function of a lower band's node), so no
///     gate is ever duplicated: total shard work equals network size
///     regardless of structure.  The default everywhere.
///
/// Determinism contract: partitioning depends only on the input network
/// and the parameters, and reassemble() stitches shards back in fixed
/// partition order, re-strashing every gate through Network::create_gate.
/// Results are therefore bit-identical regardless of how many threads
/// later process the shards.

#pragma once

#include <cstddef>
#include <vector>

#include "mcs/network/network.hpp"

namespace mcs {

enum class PartitionStrategy {
  kLevelWindows,  ///< level bands, internal boundaries, zero duplication
  kOutputCones,   ///< PO-cone unions, PI boundaries, possible duplication
};

struct PartitionParams {
  PartitionStrategy strategy = PartitionStrategy::kLevelWindows;

  /// Soft cap on the gate count of one shard.  Cones: a group is closed
  /// once its cone union exceeds this.  Windows: the band count is chosen
  /// as ceil(gates / max_gates).
  std::size_t max_gates = 4000;

  /// Upper bound on the number of shards; 0 means unlimited.
  std::size_t max_partitions = 0;

  /// Carry choice classes into the shards (members ride with their
  /// representative's shard), so choice-aware passes see them.
  bool keep_choices = false;

  /// Worker threads for the shard *construction* phase (banding/grouping
  /// stays serial; building the per-shard Networks fans out).  Values < 1
  /// resolve through ThreadPool::resolve_threads (MCS_THREADS / hardware).
  /// The result is bit-identical for any value.
  int num_threads = 1;
};

/// One shard.  The boundary is expressed in *source node* terms: shard
/// PI i realizes the non-complemented function of source node inputs[i]
/// (an original PI or, for kLevelWindows, an internal node of a lower
/// band); shard PO j computes the non-complemented function of source
/// node outputs[j].  Passes run on `net` may restructure it freely as long
/// as the PI/PO interface (count, order, function) is preserved.
struct Partition {
  Network net;
  std::vector<NodeId> inputs;
  std::vector<NodeId> outputs;
};

struct PartitionSet {
  std::vector<Partition> parts;
};

/// Splits \p net into shards (see file comment).  The cone of every PO of
/// \p net is covered; shards are ordered bottom-up (kLevelWindows) /
/// in PO order (kOutputCones), and within reassemble() a shard may only
/// consume boundary nodes produced by earlier shards or original PIs.
PartitionSet partition_network(const Network& net,
                               const PartitionParams& params = {});

struct ReassembleOptions {
  bool keep_choices = false;  ///< copy shard choice classes into the result

  /// Worker threads for the per-shard preparation phase (cone collection
  /// over each shard network).  The merge into the destination strash table
  /// itself stays a deterministic ordered pass.  Bit-identical for any
  /// value; values < 1 resolve through ThreadPool::resolve_threads.
  int num_threads = 1;
};

/// Stitches the (possibly rewritten) shard networks of \p parts back into
/// one network with the PI/PO interface and names of \p source.  Shards
/// are processed in fixed partition order and every gate is re-strashed,
/// which deterministically re-merges logic duplicated across shard
/// boundaries.
Network reassemble(const Network& source, const PartitionSet& parts,
                   const ReassembleOptions& opts = {});

}  // namespace mcs
