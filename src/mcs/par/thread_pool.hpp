/// \file thread_pool.hpp
/// \brief A persistent work-stealing worker pool with batched fan-out.
///
/// This is the execution substrate of the `mcs::par` subsystem and of every
/// other parallel phase in the library (partitioning, reassembly, simulation,
/// CEC).  Two submission paths are provided:
///
///   - submit(): one task, one future.  Tasks submitted from inside a worker
///     land on that worker's own deque (LIFO for locality) and may be stolen
///     FIFO by idle workers; external submissions go through a shared
///     injector queue.  This is the general path for irregular task graphs
///     and nested submission.  From inside a submit_bulk() batch task the
///     submission executes inline (future ready on return): queueing there
///     and blocking on the future would deadlock, since every participant
///     drains deques only after the batch completes.
///   - submit_bulk(): the hot path of the shard drivers.  One batch object
///     (a single allocation, shared by all participants) fans N indexed
///     calls out to the workers *and the calling thread*; indices are
///     claimed through an atomic cursor, optionally through a caller-given
///     claim order (the shard drivers pass largest-shard-first).  No
///     per-task std::function / packaged_task allocation happens.
///
/// Determinism contract: neither path influences *what* is computed -- only
/// wall-clock time.  submit_bulk() writes results wherever fn(i) writes them
/// (indexed slots), and when tasks throw, the exception of the smallest
/// failing index is rethrown, regardless of completion order or thread
/// count.
///
/// ThreadPool::global() is the process-wide persistent pool: constructed on
/// first use, sized by resolve_threads(0), grown on demand (ensure_workers)
/// when a caller asks for more parallelism than the hardware default --
/// spawning a worker costs ~50us once, versus a pool construction per
/// par_run call in the old design.  resolve_threads() honors the
/// MCS_THREADS environment variable, so benches, tests and the shell pick
/// up a thread count without per-command flags.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcs {

namespace obs {
class Domain;  // metric-attribution domain (see mcs/obs/obs.hpp)
}

class ThreadPool {
 public:
  /// Spawns \p num_threads workers; 0 means resolve_threads(0) workers.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains the queues (pending tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide persistent pool (constructed on first use).
  static ThreadPool& global();

  std::size_t num_threads() const;

  /// Grows the pool to at least \p n workers (capped at kMaxWorkers).
  /// Existing workers are never removed.
  void ensure_workers(std::size_t n);

  /// Number of submit() tasks submitted and not yet finished.
  std::size_t pending() const;

  /// Enqueues \p fn and returns a future for its result.  Exceptions thrown
  /// by the task are captured in the future.  Safe to call from inside a
  /// worker (the task lands on the worker's own deque) -- but a task must
  /// not *block* on a nested future unless another worker is free to steal
  /// it: the nested task only runs after the current one returns (or via a
  /// steal), so waiting on it from a fully-busy pool deadlocks.  Fan-out
  /// from inside tasks belongs to submit_bulk(), which runs nested calls
  /// inline.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    push_task([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [0, n), on up to \p max_workers participants
  /// *including the calling thread*, and blocks until all n calls finished.
  ///
  /// \p order, when non-null, is a permutation of [0, n): indices are
  /// *claimed* in that order (the shard drivers pass largest-first so a big
  /// shard never starts last), which affects scheduling only -- results are
  /// bit-identical for any order and any thread count.
  ///
  /// With max_workers <= 1, n <= 1, or when called from inside a pool
  /// worker or while another batch is active, every call runs inline on the
  /// calling thread (deadlock-free nesting).  If calls throw, every index
  /// still runs and the exception of the smallest failing index is
  /// rethrown.
  void submit_bulk(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t max_workers,
                   const std::uint32_t* order = nullptr);

  /// Blocks until every submit() task has finished.
  void wait_idle();

  /// Resolves a user-facing thread-count request: values >= 1 are taken
  /// verbatim; values < 1 mean "use the process default" -- the MCS_THREADS
  /// environment variable, or, when unset/invalid, the hardware concurrency
  /// (at least 1).  The default is computed *once*, on the first defaulted
  /// resolution, and cached: later changes to the environment are invisible
  /// (multi-job safety -- a job server mutating its environment cannot
  /// retroactively change the pool geometry of in-flight work).  The cached
  /// value is surfaced as the `config.threads_default` gauge.
  static std::size_t resolve_threads(int requested) noexcept;

  /// Drops the cached resolve_threads default so the next defaulted call
  /// re-reads MCS_THREADS.  A test hook; production code never needs it.
  static void refresh_thread_default() noexcept;

  /// Upper bound on workers of one pool (explicit oversubscription requests
  /// beyond this are clamped; a backstop, not a tuning knob).
  static constexpr std::size_t kMaxWorkers = 64;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
    std::thread thread;
  };

  /// One submit_bulk() fan-out.  Shared (by shared_ptr) between the caller
  /// and every participating worker so the object outlives stragglers that
  /// are between claiming and finishing when the caller returns.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    const std::uint32_t* order = nullptr;  ///< nullptr = identity
    /// The submitter's metric domain, captured at submit time; every
    /// participant installs it around its claim loop so batch work is
    /// attributed to the submitting job (null = detached).
    obs::Domain* domain = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};   ///< claim cursor into [0, n)
    std::atomic<std::size_t> done{0};   ///< completed calls
    std::atomic<int> slots{0};          ///< workers still allowed to join
    std::mutex mutex;                   ///< guards err_* and cv
    std::condition_variable cv;         ///< caller waits for done == n
    std::size_t err_index = ~std::size_t{0};
    std::exception_ptr err;
  };

  void push_task(std::function<void()> fn);
  bool try_run_one_task(std::size_t self);  ///< own deque, injector, steal
  void participate(const std::shared_ptr<Batch>& batch);
  void worker_loop(std::size_t index);
  void spawn_workers_locked(std::size_t target);

  mutable std::mutex mutex_;  ///< guards workers_ vector, injector_, batch_
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> injector_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// workers_.size() for lock-free readers (the steal loop); workers_ is
  /// reserved to kMaxWorkers up front, so elements never move and indices
  /// below this count are always valid.
  std::atomic<std::size_t> num_workers_{0};
  std::shared_ptr<Batch> batch_;          ///< active submit_bulk, if any
  std::atomic<std::size_t> ready_{0};     ///< queued submit() tasks
  std::size_t unfinished_ = 0;            ///< submit() tasks not yet done
  bool stop_ = false;
};

}  // namespace mcs
