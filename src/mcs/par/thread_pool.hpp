/// \file thread_pool.hpp
/// \brief A fixed-size worker pool with a task queue and futures.
///
/// This is the execution substrate of the `mcs::par` subsystem: partitions
/// of a network are submitted as independent tasks and joined through
/// futures, in a deterministic order fixed by the caller (never by task
/// completion order).  The pool itself is generic and reusable for any
/// future sharding/batching work.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcs {

class ThreadPool {
 public:
  /// Spawns \p num_threads workers; 0 means resolve_threads(0) workers.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains the queue (pending tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Number of tasks submitted and not yet finished.
  std::size_t pending() const;

  /// Enqueues \p fn and returns a future for its result.  Exceptions thrown
  /// by the task are captured in the future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
      ++unfinished_;
    }
    wake_.notify_one();
    return future;
  }

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Resolves a user-facing thread-count request: values < 1 mean "use the
  /// hardware concurrency" (at least 1).
  static std::size_t resolve_threads(int requested) noexcept;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t unfinished_ = 0;
  bool stop_ = false;
};

}  // namespace mcs
