#include "mcs/par/partition.hpp"

#include <algorithm>
#include <cassert>

#include "mcs/network/network_utils.hpp"
#include "mcs/par/thread_pool.hpp"

namespace mcs {

namespace {

constexpr std::uint32_t kNoBand = 0xffffffffu;

/// Re-strashes the gates of \p nodes (ascending-id, in-shard fanins always
/// listed before their fanouts) into \p dst, recording which source nodes
/// were copied.  \p map must already cover the constant and every external
/// reference (PIs / boundary nodes).
void copy_gates(const Network& src, const std::vector<NodeId>& nodes,
                Network& dst, std::vector<Signal>& map,
                std::vector<bool>& copied) {
  for (const NodeId n : nodes) {
    if (!src.is_gate(n)) continue;
    const Node& nd = src.node(n);
    std::array<Signal, 3> fi{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      fi[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    map[n] = dst.create_gate(nd.type, fi);
    copied[n] = true;
  }
}

/// Transfers the choice classes among the copied nodes into \p dst, with
/// the same guards as cleanup(): re-strashing may merge a member with its
/// representative or with a node already classed, and a member may not
/// have been copied at all (windows drop the rare member whose cone
/// escapes its band); in those cases the link is dropped.
void copy_choices(const Network& src, const std::vector<NodeId>& nodes,
                  Network& dst, const std::vector<Signal>& map,
                  const std::vector<bool>& copied) {
  for (const NodeId n : nodes) {
    if (!copied[n] || !src.is_repr(n)) continue;
    if (src.node(n).next_choice == kNullNode) continue;
    for (NodeId m = src.node(n).next_choice; m != kNullNode;
         m = src.node(m).next_choice) {
      if (!copied[m]) continue;
      const NodeId new_repr = map[n].node();
      const NodeId new_member = map[m].node();
      if (new_member == new_repr) continue;  // re-strashing merged them
      if (!dst.is_repr(new_member) || !dst.is_repr(new_repr)) continue;
      if (dst.node(new_member).next_choice != kNullNode) continue;
      const bool phase = src.node(m).choice_phase ^ map[n].complemented() ^
                         map[m].complemented();
      dst.add_choice(new_repr, new_member, phase);
    }
  }
}

/// Reverse PI lookup (node id -> interface position), shared by all
/// shards of one partitioning run.
std::vector<std::size_t> pi_ordinals(const Network& net) {
  std::vector<std::size_t> ord(net.size(), 0);
  for (std::size_t i = 0; i < net.num_pis(); ++i) ord[net.pi_at(i)] = i;
  return ord;
}

/// Builds one shard from \p gates (ascending-id gate subset of \p net;
/// membership in \p in_shard).  Every fanin outside the shard -- original
/// PI or lower-shard node -- becomes a boundary PI; gates with
/// \p exported set become boundary POs.  Reads \p net and the shared
/// arrays only, so distinct shards build concurrently.
Partition build_shard(const Network& net, const std::vector<NodeId>& gates,
                      const std::vector<bool>& in_shard,
                      const std::vector<bool>& exported, bool keep_choices,
                      const std::vector<std::size_t>& pi_ordinal) {
  Partition part;

  // Boundary inputs, deduplicated, in ascending source-node order.
  std::vector<NodeId> ext;
  {
    std::vector<bool> seen(net.size(), false);
    for (const NodeId n : gates) {
      const Node& nd = net.node(n);
      for (int i = 0; i < nd.num_fanins; ++i) {
        const NodeId f = nd.fanin[i].node();
        if (net.is_const0(f) || in_shard[f] || seen[f]) continue;
        seen[f] = true;
        ext.push_back(f);
      }
    }
    std::sort(ext.begin(), ext.end());
  }

  std::vector<Signal> map(net.size());
  std::vector<bool> copied(net.size(), false);
  part.net.reserve(1 + ext.size() + gates.size());
  map[0] = part.net.constant(false);
  for (const NodeId f : ext) {
    map[f] = part.net.create_pi(net.is_pi(f) ? net.pi_name(pi_ordinal[f])
                                             : std::string{});
    part.inputs.push_back(f);
  }

  copy_gates(net, gates, part.net, map, copied);
  if (keep_choices) copy_choices(net, gates, part.net, map, copied);

  for (const NodeId n : gates) {
    if (!exported[n]) continue;
    part.net.create_po(map[n]);
    part.outputs.push_back(n);
  }
  return part;
}

/// Marks the gate roots of the source POs as exported.
void export_po_roots(const Network& net, std::vector<bool>& exported) {
  for (const auto s : net.pos()) {
    if (net.is_gate(s.node())) exported[s.node()] = true;
  }
}

/// Builds the shards for \p shard_gates (one ascending-id gate list each;
/// empty lists yield no shard) on up to \p num_threads workers and appends
/// them to \p set in list order.  This is the parallel section of both
/// partitioning strategies: banding/grouping is a cheap serial sweep, while
/// building a shard re-strashes every one of its gates.
void build_shards(const Network& net,
                  const std::vector<std::vector<NodeId>>& shard_gates,
                  const std::vector<bool>& exported, bool keep_choices,
                  int num_threads, PartitionSet& set) {
  const std::vector<std::size_t> pi_ordinal = pi_ordinals(net);
  const std::size_t threads = ThreadPool::resolve_threads(num_threads);
  std::vector<Partition> built(shard_gates.size());
  ThreadPool::global().submit_bulk(
      shard_gates.size(),
      [&](std::size_t i) {
        const std::vector<NodeId>& gates = shard_gates[i];
        if (gates.empty()) return;
        std::vector<bool> in_shard(net.size(), false);
        for (const NodeId n : gates) in_shard[n] = true;
        built[i] = build_shard(net, gates, in_shard, exported, keep_choices,
                               pi_ordinal);
      },
      threads);
  for (std::size_t i = 0; i < built.size(); ++i) {
    if (!shard_gates[i].empty()) set.parts.push_back(std::move(built[i]));
  }
}

// --- kOutputCones ----------------------------------------------------------

PartitionSet partition_cones(const Network& net,
                             const PartitionParams& params) {
  PartitionSet set;

  // Group POs greedily in interface order: `stamp[n] == g` marks n as
  // counted for group g, so shared cones inside one group count once.
  std::vector<std::uint32_t> stamp(net.size(), kNoBand);
  std::vector<std::vector<std::size_t>> groups;
  std::vector<NodeId> stack;
  std::size_t group_gates = 0;

  auto count_cone = [&](NodeId root, std::uint32_t g) {
    auto visit = [&](NodeId n) {
      if (stamp[n] == g) return;
      stamp[n] = g;
      if (net.is_gate(n)) ++group_gates;
      stack.push_back(n);
    };
    visit(root);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      const Node& nd = net.node(n);
      for (int i = 0; i < nd.num_fanins; ++i) visit(nd.fanin[i].node());
      if (params.keep_choices && net.is_repr(n)) {
        for (NodeId m = nd.next_choice; m != kNullNode;
             m = net.node(m).next_choice) {
          visit(m);
        }
      }
    }
  };

  groups.emplace_back();
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const bool last_allowed =
        params.max_partitions != 0 && groups.size() >= params.max_partitions;
    if (!groups.back().empty() && group_gates > params.max_gates &&
        !last_allowed) {
      groups.emplace_back();
      group_gates = 0;
    }
    groups.back().push_back(i);
    count_cone(net.po_at(i).node(),
               static_cast<std::uint32_t>(groups.size() - 1));
  }

  std::vector<bool> exported(net.size(), false);
  export_po_roots(net, exported);

  // Cone collection per group runs in the parallel section too (it uses
  // caller-local scratch, not the shared traversal marks).
  std::vector<std::vector<NodeId>> shard_gates(groups.size());
  const std::size_t threads = ThreadPool::resolve_threads(params.num_threads);
  ThreadPool::global().submit_bulk(
      groups.size(),
      [&](std::size_t g) {
        std::vector<NodeId> roots;
        for (const std::size_t po : groups[g]) {
          const NodeId r = net.po_at(po).node();
          if (net.is_gate(r)) roots.push_back(r);
        }
        if (roots.empty()) return;  // all-degenerate group: nothing to shard
        std::vector<char> seen;
        for (const NodeId n :
             collect_cone_nodes(net, roots, params.keep_choices, seen)) {
          if (net.is_gate(n)) shard_gates[g].push_back(n);
        }
      },
      threads);

  build_shards(net, shard_gates, exported, params.keep_choices,
               params.num_threads, set);
  return set;
}

// --- kLevelWindows ---------------------------------------------------------

PartitionSet partition_windows(const Network& net,
                               const PartitionParams& params) {
  PartitionSet set;

  // PO-reachable gates through fanin edges: the "regular" structure.
  // Choice members are not PO-reachable and are banded with their
  // representative below.
  std::vector<bool> regular(net.size(), false);
  std::size_t num_regular = 0;
  for (const NodeId n : topo_order(net)) {
    if (net.is_gate(n)) {
      regular[n] = true;
      ++num_regular;
    }
  }
  const std::uint32_t depth = net.depth();
  if (num_regular == 0 || depth == 0) return set;

  std::size_t want =
      (num_regular + params.max_gates - 1) / std::max<std::size_t>(
                                                 1, params.max_gates);
  want = std::max<std::size_t>(1, want);
  if (params.max_partitions != 0) {
    want = std::min(want, params.max_partitions);
  }
  const std::uint32_t width = std::max<std::uint32_t>(
      1, (depth + static_cast<std::uint32_t>(want) - 1) /
             static_cast<std::uint32_t>(want));
  const std::uint32_t num_bands = (depth + width - 1) / width;

  std::vector<std::uint32_t> band(net.size(), kNoBand);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (!regular[n]) continue;
    band[n] = std::min((net.level(n) - 1) / width, num_bands - 1);
  }

  // Choice members ride in their representative's band.  A member cone is
  // every node reachable from the member that is not regular; it may only
  // consume regular nodes of the same or lower bands (always true for MCH
  // candidates, which are built over cut/MFFC leaves of the
  // representative) -- violating members are dropped.
  std::vector<std::vector<NodeId>> extra(num_bands);
  if (params.keep_choices) {
    std::vector<std::uint32_t> extra_band(net.size(), kNoBand);
    std::vector<NodeId> cone;
    std::vector<NodeId> stack;
    for (NodeId n = 0; n < net.size(); ++n) {
      if (!regular[n] || !net.is_repr(n)) continue;
      const std::uint32_t b = band[n];
      for (NodeId m = net.node(n).next_choice; m != kNullNode;
           m = net.node(m).next_choice) {
        cone.clear();
        bool fits = true;
        if (extra_band[m] != b && !regular[m]) {
          stack.push_back(m);
          while (!stack.empty()) {
            const NodeId c = stack.back();
            stack.pop_back();
            if (extra_band[c] == b) continue;
            extra_band[c] = b;
            cone.push_back(c);
            const Node& cd = net.node(c);
            for (int i = 0; i < cd.num_fanins; ++i) {
              const NodeId f = cd.fanin[i].node();
              if (net.is_const0(f) || net.is_pi(f)) continue;
              if (regular[f]) {
                if (band[f] > b) fits = false;
                continue;
              }
              if (extra_band[f] != b) stack.push_back(f);
            }
          }
        }
        if (fits) {
          extra[b].insert(extra[b].end(), cone.begin(), cone.end());
        } else {
          // Un-stamp so a later class in this band can still adopt the
          // shared nodes it can legally host.
          for (const NodeId c : cone) extra_band[c] = kNoBand;
        }
      }
    }
  }

  // Exports: a regular gate consumed by any higher band (through regular
  // fanins or member cones) or rooting a source PO.
  std::vector<bool> exported(net.size(), false);
  export_po_roots(net, exported);
  auto mark_uses = [&](NodeId n, std::uint32_t consumer_band) {
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId f = nd.fanin[i].node();
      if (regular[f] && band[f] < consumer_band) exported[f] = true;
    }
  };
  for (NodeId n = 0; n < net.size(); ++n) {
    if (regular[n]) mark_uses(n, band[n]);
  }
  for (std::uint32_t b = 0; b < num_bands; ++b) {
    for (const NodeId n : extra[b]) mark_uses(n, b);
  }

  // Per-band gate lists in one sweep (the old code swept the whole node
  // array once per band), then the parallel shard build.
  std::vector<std::vector<NodeId>> shard_gates(num_bands);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (regular[n]) shard_gates[band[n]].push_back(n);
  }
  for (std::uint32_t b = 0; b < num_bands; ++b) {
    if (extra[b].empty()) continue;
    shard_gates[b].insert(shard_gates[b].end(), extra[b].begin(),
                          extra[b].end());
    std::sort(shard_gates[b].begin(), shard_gates[b].end());
  }

  build_shards(net, shard_gates, exported, params.keep_choices,
               params.num_threads, set);
  return set;
}

}  // namespace

PartitionSet partition_network(const Network& net,
                               const PartitionParams& params) {
  if (net.num_pos() == 0) return {};
  switch (params.strategy) {
    case PartitionStrategy::kOutputCones:
      return partition_cones(net, params);
    case PartitionStrategy::kLevelWindows:
    default:
      return partition_windows(net, params);
  }
}

Network reassemble(const Network& source, const PartitionSet& parts,
                   const ReassembleOptions& opts) {
  // Parallel preparation: collect each shard's PO cone (the node set the
  // ordered merge will copy).  Shard networks are distinct objects and the
  // collection uses task-local scratch, so shards prepare concurrently; the
  // merge below stays a single deterministic ordered pass over the results.
  const std::size_t num_parts = parts.parts.size();
  std::vector<std::vector<NodeId>> shard_nodes(num_parts);
  ThreadPool::global().submit_bulk(
      num_parts,
      [&](std::size_t i) {
        const Network& sn = parts.parts[i].net;
        std::vector<NodeId> roots;
        roots.reserve(sn.num_pos());
        for (const auto s : sn.pos()) roots.push_back(s.node());
        std::vector<char> seen;
        shard_nodes[i] = collect_cone_nodes(sn, roots, opts.keep_choices, seen);
      },
      ThreadPool::resolve_threads(opts.num_threads));

  Network dst;
  std::size_t total_nodes = 1 + source.num_pis();
  for (const Partition& part : parts.parts) {
    total_nodes += part.net.num_gates();
  }
  dst.reserve(total_nodes);
  std::vector<Signal> map(source.size());
  std::vector<bool> have(source.size(), false);
  map[0] = dst.constant(false);
  have[0] = true;
  for (std::size_t i = 0; i < source.num_pis(); ++i) {
    map[source.pi_at(i)] = dst.create_pi(source.pi_name(i));
    have[source.pi_at(i)] = true;
  }

  for (std::size_t i = 0; i < num_parts; ++i) {
    const Partition& part = parts.parts[i];
    const Network& sn = part.net;
    assert(sn.num_pis() == part.inputs.size() &&
           "pass changed a shard's PI interface");
    assert(sn.num_pos() == part.outputs.size() &&
           "pass changed a shard's PO interface");

    std::vector<Signal> smap(sn.size());
    std::vector<bool> copied(sn.size(), false);
    smap[0] = dst.constant(false);
    for (std::size_t j = 0; j < sn.num_pis(); ++j) {
      assert(have[part.inputs[j]] && "shard consumes an unresolved boundary");
      smap[sn.pi_at(j)] = map[part.inputs[j]];
    }

    const std::vector<NodeId>& nodes = shard_nodes[i];
    copy_gates(sn, nodes, dst, smap, copied);
    if (opts.keep_choices) copy_choices(sn, nodes, dst, smap, copied);

    for (std::size_t j = 0; j < sn.num_pos(); ++j) {
      const Signal s = sn.po_at(j);
      map[part.outputs[j]] = smap[s.node()] ^ s.complemented();
      have[part.outputs[j]] = true;
    }
  }

  for (std::size_t i = 0; i < source.num_pos(); ++i) {
    const Signal s = source.po_at(i);
    assert(have[s.node()] && "source PO not covered by any shard");
    dst.create_po(map[s.node()] ^ s.complemented(), source.po_name(i));
  }
  return dst;
}

}  // namespace mcs
