#include "mcs/par/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "mcs/fail/fail.hpp"
#include "mcs/obs/obs.hpp"

namespace mcs {

namespace {

/// Cached resolve_threads(<1) default; -1 = not yet computed.  Read once
/// and kept for the process lifetime (see resolve_threads docs).
std::atomic<long> g_default_threads{-1};

/// Pool owning the current thread, when it is a worker thread.  Used to
/// route nested submit() calls to the worker's own deque and to run nested
/// submit_bulk() calls inline (deadlock-free nesting).
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

/// True while the current thread is claiming indices of a submit_bulk
/// batch.  submit() calls made in this state execute inline: queueing them
/// and then blocking on the future would deadlock (every participant is
/// busy claiming batch indices and only drains deques afterwards).
thread_local bool tl_in_batch = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = resolve_threads(0);
  num_threads = std::min(num_threads, kMaxWorkers);
  // Reserved once: workers are only appended (never moved), so readers may
  // touch workers_[j] for j < num_threads() without the pool mutex.
  workers_.reserve(kMaxWorkers);
  std::lock_guard<std::mutex> lock(mutex_);
  spawn_workers_locked(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(resolve_threads(0));
  return pool;
}

std::size_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_workers(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  spawn_workers_locked(std::min(n, kMaxWorkers));
}

void ThreadPool::spawn_workers_locked(std::size_t target) {
  target = std::min(target, kMaxWorkers);
  while (workers_.size() < target && !stop_) {
    auto w = std::make_unique<Worker>();
    Worker* raw = w.get();
    const std::size_t index = workers_.size();
    workers_.push_back(std::move(w));
    num_workers_.store(workers_.size(), std::memory_order_release);
    raw->thread = std::thread([this, index]() { worker_loop(index); });
  }
  // High-water worker count across every pool in the process (checking for
  // the global pool here would recurse into global()'s construction).
  obs::gauge("pool.workers").set_max(
      static_cast<std::int64_t>(workers_.size()));
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unfinished_;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this]() { return unfinished_ == 0; });
}

std::size_t ThreadPool::resolve_threads(int requested) noexcept {
  if (requested >= 1) return static_cast<std::size_t>(requested);
  long cached = g_default_threads.load(std::memory_order_acquire);
  if (cached < 0) {
    long resolved = 0;
    if (const char* env = std::getenv("MCS_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1 && v <= 1024) resolved = v;
    }
    if (resolved == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      resolved = static_cast<long>(std::max(1u, hw));
    }
    // First resolution wins when two threads race here; both then agree.
    long expected = -1;
    if (g_default_threads.compare_exchange_strong(expected, resolved,
                                                  std::memory_order_acq_rel)) {
      cached = resolved;
    } else {
      cached = expected;
    }
    try {
      obs::gauge("config.threads_default").set(cached);
    } catch (...) {
      // Registry allocation failure must not break thread resolution.
    }
  }
  return static_cast<std::size_t>(cached);
}

void ThreadPool::refresh_thread_default() noexcept {
  g_default_threads.store(-1, std::memory_order_release);
}

void ThreadPool::push_task(std::function<void()> fn) {
  if (tl_in_batch) {
    // A batch participant submitting through its own pool: run inline so
    // the returned future is ready immediately (see tl_in_batch).  The
    // caller's metric domain is already active on this thread.
    fn();
    return;
  }
  if (obs::Domain* d = obs::Scope::current()) {
    // Queued tasks inherit the submitter's metric domain: whoever executes
    // the task (owner or stealer) attributes its work to the submitting
    // job.  The domain outlives the task -- see obs::Domain lifetime note.
    fn = [d, inner = std::move(fn)]() {
      obs::Scope scope(d);
      inner();
    };
  }
  {
    // Count and enqueue in one critical section, so ready_ can never be
    // decremented (by a worker popping the task) before it was incremented.
    // Lock order here and everywhere: mutex_ before a Worker::mutex.
    std::lock_guard<std::mutex> lock(mutex_);
    ++unfinished_;
    const std::size_t depth =
        ready_.fetch_add(1, std::memory_order_release) + 1;
    static obs::Gauge& queue_hwm = obs::gauge("pool.queue_depth_max");
    queue_hwm.set_max(static_cast<std::int64_t>(depth));
    if (tl_pool == this) {
      // Nested submission: the worker's own deque, popped LIFO by the owner
      // for locality, stolen FIFO by idle workers.
      Worker& self = *workers_[tl_worker_index];
      std::lock_guard<std::mutex> wlock(self.mutex);
      self.deque.push_back(std::move(fn));
    } else {
      injector_.push_back(std::move(fn));
    }
  }
  wake_.notify_one();
}

bool ThreadPool::try_run_one_task(std::size_t self) {
  std::function<void()> task;
  // 1. Own deque, newest first (LIFO: best cache locality for nested work).
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.deque.empty()) {
      task = std::move(w.deque.back());
      w.deque.pop_back();
    }
  }
  // 2. The injector queue of external submissions, oldest first.
  if (!task) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!injector_.empty()) {
      task = std::move(injector_.front());
      injector_.pop_front();
    }
  }
  // 3. Steal from the other workers, oldest first (FIFO end).
  bool stolen = false;
  if (!task) {
    const std::size_t n = num_workers_.load(std::memory_order_acquire);
    for (std::size_t off = 1; off < n && !task; ++off) {
      Worker& w = *workers_[(self + off) % n];
      std::lock_guard<std::mutex> lock(w.mutex);
      if (!w.deque.empty()) {
        task = std::move(w.deque.front());
        w.deque.pop_front();
        stolen = true;
      }
    }
  }
  if (!task) return false;

  static obs::Counter& executed = obs::counter("pool.tasks_executed");
  static obs::Counter& steals = obs::counter("pool.tasks_stolen");
  executed.increment();
  if (stolen) steals.increment();

  ready_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--unfinished_ == 0) idle_.notify_all();
  }
  return true;
}

void ThreadPool::participate(const std::shared_ptr<Batch>& batch) {
  Batch& b = *batch;
  const std::size_t n = b.n;
  const bool was_in_batch = tl_in_batch;
  tl_in_batch = true;
  // One scope for the whole claim loop (a no-op on the submitting thread,
  // whose domain is already active): batch items are attributed to the
  // submitting job on every participant.
  obs::Scope domain_scope(b.domain);
  obs::Span span("pool:batch");
  static obs::Counter& items = obs::counter("pool.batch_items");
  for (;;) {
    const std::size_t k = b.next.fetch_add(1, std::memory_order_relaxed);
    if (k >= n) break;
    items.increment();
    const std::size_t i = b.order != nullptr ? b.order[k] : k;
    try {
      // Inside the per-item try: an injected throw is captured with the
      // same min-index determinism as a real task exception (a bare throw
      // on the worker loop would terminate the process).
      fail::point("pool.task");
      (*b.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(b.mutex);
      if (i < b.err_index) {
        b.err_index = i;
        b.err = std::current_exception();
      }
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(b.mutex);
      b.cv.notify_all();
    }
  }
  tl_in_batch = was_in_batch;
}

void ThreadPool::submit_bulk(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t max_workers,
                             const std::uint32_t* order) {
  if (n == 0) return;
  auto run_inline = [&]() {
    std::size_t err_index = ~std::size_t{0};
    std::exception_ptr err;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = order != nullptr ? order[k] : k;
      try {
        fail::point("pool.task");
        fn(i);
      } catch (...) {
        if (i < err_index) {
          err_index = i;
          err = std::current_exception();
        }
      }
    }
    if (err) std::rethrow_exception(err);
  };
  if (max_workers <= 1 || n <= 1 || tl_pool == this) {
    run_inline();
    return;
  }

  static obs::Counter& batches = obs::counter("pool.bulk_batches");
  batches.increment();

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->order = order;
  batch->domain = obs::Scope::current();
  batch->n = n;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (batch_ != nullptr || stop_) {
      // One fan-out at a time; a second concurrent caller degrades to the
      // (correct, merely unaccelerated) inline path.
      lock.unlock();
      run_inline();
      return;
    }
    // The caller participates too, so at most n - 1 workers (and never
    // more than requested) can contribute; don't spawn threads that would
    // only find the claim cursor exhausted.
    const std::size_t useful = std::min(max_workers - 1, n - 1);
    spawn_workers_locked(useful);
    batch->slots.store(static_cast<int>(std::min(useful, workers_.size())));
    batch_ = batch;
  }
  wake_.notify_all();
  participate(batch);
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock,
                   [&]() { return batch->done.load(std::memory_order_acquire) ==
                                  n; });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.reset();
  }
  if (batch->err) std::rethrow_exception(batch->err);
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  obs::set_thread_name("pool-worker-" + std::to_string(index));
  static obs::Counter& idle_us = obs::counter("pool.idle_us");
  static obs::Counter& busy_us = obs::counter("pool.busy_us");
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const std::uint64_t wait_start = obs::now_us();
    wake_.wait(lock, [&]() {
      if (stop_) return true;
      if (ready_.load(std::memory_order_acquire) > 0) return true;
      return batch_ != nullptr && batch_->slots.load() > 0 &&
             batch_->next.load(std::memory_order_relaxed) < batch_->n;
    });
    idle_us.add(obs::now_us() - wait_start);
    if (stop_ && ready_.load(std::memory_order_acquire) == 0) return;
    if (ready_.load(std::memory_order_acquire) > 0) {
      lock.unlock();
      const std::uint64_t busy_start = obs::now_us();
      while (try_run_one_task(index)) {
      }
      busy_us.add(obs::now_us() - busy_start);
      lock.lock();
      continue;
    }
    if (batch_ != nullptr && batch_->slots.load() > 0 &&
        batch_->next.load(std::memory_order_relaxed) < batch_->n) {
      std::shared_ptr<Batch> batch = batch_;
      batch->slots.fetch_sub(1);
      lock.unlock();
      const std::uint64_t busy_start = obs::now_us();
      participate(batch);
      busy_us.add(obs::now_us() - busy_start);
      batch.reset();
      lock.lock();
    }
  }
}

}  // namespace mcs
