#include "mcs/par/thread_pool.hpp"

#include <algorithm>

namespace mcs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = resolve_threads(0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unfinished_;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this]() { return unfinished_ == 0; });
}

std::size_t ThreadPool::resolve_threads(int requested) noexcept {
  if (requested >= 1) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --unfinished_;
      if (unfinished_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace mcs
