#include "mcs/par/par_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "mcs/common/hash.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/tt/tt6.hpp"

namespace mcs {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Largest-shard-first claim order: with shards of mixed sizes, a big shard
/// scheduled last would serialize the tail of the work phase.  Ties (and
/// therefore results -- scheduling never changes them) break toward the
/// lower index.
std::vector<std::uint32_t> largest_first_order(const PartitionSet& parts) {
  std::vector<std::uint32_t> order(parts.parts.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return parts.parts[a].net.num_gates() >
                            parts.parts[b].net.num_gates();
                   });
  return order;
}

/// Runs \p fn(i) for every shard index on the persistent pool, claiming the
/// biggest shards first.  Results are joined by index (the callers write
/// into indexed slots), so the output is bit-identical for any thread
/// count; exceptions surface for the smallest failing shard index.
void for_each_shard(const PartitionSet& parts, std::size_t num_threads,
                    const std::function<void(std::size_t)>& fn) {
  if (parts.parts.empty()) return;
  const std::vector<std::uint32_t> order = largest_first_order(parts);
  // Per-shard spans carry the worker attribution in trace exports (the
  // span name is only materialized when tracing is on).
  const std::function<void(std::size_t)> traced = [&](std::size_t i) {
    obs::Span span([&] { return "par:shard:" + std::to_string(i); });
    fn(i);
  };
  ThreadPool::global().submit_bulk(parts.parts.size(), traced, num_threads,
                                   order.data());
}

/// partition_network with a trace span and a run counter.
template <typename Params>
PartitionSet partition_traced(const Network& net, const Params& pp) {
  obs::Span span("par:partition");
  obs::counter("par.partition_runs").increment();
  return partition_network(net, pp);
}

struct Phase {
  ParStats* stats;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  void lap(double ParStats::* field) {
    if (stats) stats->*field = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
  }
};

void fill_pre(ParStats* stats, const Network& net, std::size_t parts,
              std::size_t threads) {
  if (!stats) return;
  stats->num_partitions = parts;
  stats->num_threads = threads;
  stats->initial_gates = net.num_gates();
  stats->initial_depth = net.depth();
}

void fill_post(ParStats* stats, const Network& net) {
  if (!stats) return;
  stats->final_gates = net.num_gates();
  stats->final_depth = net.depth();
}

PartitionParams partition_params(const ParParams& params,
                                 std::size_t threads) {
  PartitionParams pp = params.partition;
  pp.num_threads = static_cast<int>(threads);
  return pp;
}

/// Open-addressed structural-hash table for the LUT stitch: a merged-LUT
/// ref keyed by (function, inputs).  The keys live in the merged LUT array
/// itself; a slot stores only the 64-bit hash and the ref, so probing is
/// one flat-array scan with a full key compare just on hash hits.  Linear
/// probing, power-of-two capacity grown at ~0.7 load, no erase support
/// needed (LUTs are never removed while stitching), hence tombstone-free.
/// This replaces the old std::map<pair<Tt6, vector<int32>>> whose
/// O(log n) node-hopping and per-insert key copies dominated the stitch.
class LutStrashTable {
 public:
  LutStrashTable(const LutNetwork& merged, std::size_t expected)
      : merged_(merged) {
    std::size_t cap = kMinCapacity;
    while ((expected + 1) * 10 > cap * 7) cap <<= 1;
    slots_.assign(cap, Slot{});
  }

  static std::uint64_t hash_key(const LutNetwork::Lut& lut) noexcept {
    std::uint64_t h = hash_mix64(lut.function);
    h = hash_combine(h, lut.inputs.size());
    for (const std::int32_t in : lut.inputs) {
      h = hash_combine(h, static_cast<std::uint32_t>(in));
    }
    return h;
  }

  /// The merged ref stored for a LUT equal to \p lut, or -1.
  std::int32_t lookup(const LutNetwork::Lut& lut,
                      std::uint64_t h) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.ref < 0) return -1;
      if (s.hash == h && equal(s.ref, lut)) return s.ref;
    }
  }

  /// Inserts \p ref under \p h.  \pre the key is absent and \p ref already
  /// resolves inside merged_ (the caller pushes the LUT first).
  void insert(std::uint64_t h, std::int32_t ref) {
    if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
    place(Slot{h, ref});
    ++size_;
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::int32_t ref = -1;  ///< -1 marks an empty slot
  };
  static constexpr std::size_t kMinCapacity = 64;  // power of two

  bool equal(std::int32_t ref, const LutNetwork::Lut& lut) const noexcept {
    const LutNetwork::Lut& other = merged_.luts[ref - merged_.num_pis];
    return other.function == lut.function && other.inputs == lut.inputs;
  }

  void place(const Slot& slot) noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = slot.hash & mask;
    while (slots_[i].ref >= 0) i = (i + 1) & mask;
    slots_[i] = slot;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (const Slot& s : old) {
      if (s.ref >= 0) place(s);
    }
  }

  const LutNetwork& merged_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace

Network par_run(const Network& net, const ShardPassFn& pass,
                const ParParams& params, ParStats* stats,
                const ReassembleOptions& reassemble_opts) {
  const std::size_t threads = ThreadPool::resolve_threads(params.num_threads);
  Phase phase{stats};
  PartitionSet parts = partition_traced(net, partition_params(params, threads));
  phase.lap(&ParStats::partition_seconds);
  return par_run(net, std::move(parts), pass, params, stats, reassemble_opts);
}

Network par_run(const Network& net, PartitionSet parts, const ShardPassFn& pass,
                const ParParams& params, ParStats* stats,
                const ReassembleOptions& reassemble_opts) {
  const std::size_t threads = ThreadPool::resolve_threads(params.num_threads);
  Phase phase{stats};
  fill_pre(stats, net, parts.parts.size(), threads);

  for_each_shard(parts, threads, [&](std::size_t i) {
    Partition& p = parts.parts[i];
    p.net = pass(p.net, i);
  });
  phase.lap(&ParStats::work_seconds);

  ReassembleOptions ropts = reassemble_opts;
  ropts.num_threads = static_cast<int>(threads);
  Network result = [&] {
    obs::Span span("par:reassemble");
    return reassemble(net, parts, ropts);
  }();
  phase.lap(&ParStats::reassemble_seconds);
  fill_post(stats, result);
  return result;
}

LutNetwork par_run_lut(const Network& net, const ShardMapFn& map_shard,
                       const ParParams& params, ParStats* stats) {
  const std::size_t threads = ThreadPool::resolve_threads(params.num_threads);
  Phase phase{stats};
  PartitionSet parts = partition_traced(net, partition_params(params, threads));
  phase.lap(&ParStats::partition_seconds);
  return par_run_lut(net, std::move(parts), map_shard, params, stats);
}

LutNetwork par_run_lut(const Network& net, PartitionSet parts,
                       const ShardMapFn& map_shard, const ParParams& params,
                       ParStats* stats) {
  const std::size_t threads = ThreadPool::resolve_threads(params.num_threads);
  Phase phase{stats};
  fill_pre(stats, net, parts.parts.size(), threads);

  std::vector<LutNetwork> shard_luts(parts.parts.size());
  for_each_shard(parts, threads, [&](std::size_t i) {
    shard_luts[i] = map_shard(parts.parts[i].net, i);
  });
  phase.lap(&ParStats::work_seconds);

  // Stitch the shard LUT networks over the original interface.  Reference
  // space of LutNetwork: 0..num_pis-1 are the PIs, num_pis + i is luts[i].
  // Each boundary source node resolves to a (merged ref, complemented)
  // pair; a complemented boundary feeding a LUT is absorbed into that
  // LUT's function (LUT inputs carry no polarity).  LUTs are structurally
  // hashed on (function, inputs) while stitching -- the LUT-level analogue
  // of reassemble()'s re-strashing -- so logic duplicated across shards
  // (kOutputCones) collapses back to one copy.
  obs::Span stitch_span("par:stitch");
  LutNetwork merged;
  merged.num_pis = static_cast<int>(net.num_pis());
  merged.po_refs.resize(net.num_pos(), 0);
  merged.po_compl.resize(net.num_pos(), false);
  std::size_t total_luts = 0;
  for (const LutNetwork& sl : shard_luts) total_luts += sl.luts.size();
  merged.luts.reserve(total_luts);
  LutStrashTable strash(merged, total_luts);
  auto strashed_lut = [&](LutNetwork::Lut lut) {
    const std::uint64_t h = LutStrashTable::hash_key(lut);
    const std::int32_t hit = strash.lookup(lut, h);
    if (hit >= 0) return hit;
    merged.luts.push_back(std::move(lut));
    const auto ref =
        static_cast<std::int32_t>(merged.num_pis + merged.luts.size() - 1);
    strash.insert(h, ref);
    return ref;
  };
  std::vector<std::int32_t> ref_of(net.size(), -1);
  std::vector<bool> compl_of(net.size(), false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    ref_of[net.pi_at(i)] = static_cast<std::int32_t>(i);
  }

  for (std::size_t i = 0; i < parts.parts.size(); ++i) {
    const Partition& p = parts.parts[i];
    const LutNetwork& sl = shard_luts[i];
    // Merged refs of this shard's LUTs (shard LUT arrays are topologically
    // ordered, so a forward pass resolves all internal references).
    std::vector<std::int32_t> shard_ref(sl.luts.size(), -1);
    auto resolve = [&](std::int32_t ref) -> std::pair<std::int32_t, bool> {
      if (ref >= sl.num_pis) return {shard_ref[ref - sl.num_pis], false};
      const NodeId src = p.inputs[ref];
      assert(ref_of[src] >= 0 && "shard consumes an unresolved boundary");
      return {ref_of[src], compl_of[src]};
    };
    for (std::size_t k = 0; k < sl.luts.size(); ++k) {
      LutNetwork::Lut copy = sl.luts[k];
      for (std::size_t in = 0; in < copy.inputs.size(); ++in) {
        const auto [ref, compl_in] = resolve(copy.inputs[in]);
        copy.inputs[in] = ref;
        if (compl_in) {
          copy.function = tt6_flip_var(copy.function, static_cast<int>(in));
        }
      }
      shard_ref[k] = strashed_lut(std::move(copy));
    }
    for (std::size_t j = 0; j < sl.po_refs.size(); ++j) {
      const auto [ref, compl_in] = resolve(sl.po_refs[j]);
      ref_of[p.outputs[j]] = ref;
      compl_of[p.outputs[j]] = compl_in ^ static_cast<bool>(sl.po_compl[j]);
    }
  }

  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    if (net.is_const0(s.node())) {
      merged.po_refs[i] = strashed_lut({});  // 0-input constant-0 LUT
      merged.po_compl[i] = s.complemented();
      continue;
    }
    assert(ref_of[s.node()] >= 0 && "source PO not covered by any shard");
    merged.po_refs[i] = ref_of[s.node()];
    merged.po_compl[i] = compl_of[s.node()] ^ s.complemented();
  }
  phase.lap(&ParStats::reassemble_seconds);

  if (stats) {
    stats->final_gates = merged.luts.size();
    stats->final_depth = merged.depth();
  }
  return merged;
}

Network par_optimize(const Network& net, GateBasis basis, int max_rounds,
                     const ParParams& params, ParStats* stats) {
  return par_run(
      net,
      [&](const Network& shard, std::size_t) {
        return compress2rs_like(shard, basis, max_rounds);
      },
      params, stats);
}

Network par_mch(const Network& net, const MchParams& mch_params,
                const ParParams& params, ParStats* stats,
                MchStats* mch_stats) {
  // Partition up front: per-shard stats are indexed by shard, so the
  // shard count is needed before the work phase.
  const std::size_t threads = ThreadPool::resolve_threads(params.num_threads);
  Phase phase{stats};
  PartitionSet parts = partition_traced(net, partition_params(params, threads));
  phase.lap(&ParStats::partition_seconds);
  std::vector<MchStats> shard_stats(mch_stats ? parts.parts.size() : 0);
  Network result = par_run(
      net, std::move(parts),
      [&](const Network& shard, std::size_t i) {
        return build_mch(shard, mch_params,
                         mch_stats ? &shard_stats[i] : nullptr);
      },
      params, stats, {.keep_choices = true});

  if (mch_stats) {
    for (const MchStats& s : shard_stats) {
      mch_stats->num_critical_nodes += s.num_critical_nodes;
      mch_stats->num_candidates_tried += s.num_candidates_tried;
      mch_stats->num_choices_added += s.num_choices_added;
      mch_stats->num_rejected_same += s.num_rejected_same;
      mch_stats->num_rejected_cycle += s.num_rejected_cycle;
      mch_stats->num_rejected_class += s.num_rejected_class;
      mch_stats->num_rejected_cap += s.num_rejected_cap;
    }
  }
  return result;
}

LutNetwork par_map_lut(const Network& net, const LutMapParams& map_params,
                       const ParParams& params, ParStats* stats,
                       LutMapStats* map_stats) {
  ParParams lut_params = params;
  lut_params.partition.keep_choices = map_params.use_choices;
  const std::size_t threads =
      ThreadPool::resolve_threads(lut_params.num_threads);
  Phase phase{stats};
  PartitionSet parts =
      partition_traced(net, partition_params(lut_params, threads));
  phase.lap(&ParStats::partition_seconds);
  std::vector<LutMapStats> shard_stats(map_stats ? parts.parts.size() : 0);
  LutNetwork merged = par_run_lut(
      net, std::move(parts),
      [&](const Network& shard, std::size_t i) {
        return lut_map(shard, map_params,
                       map_stats ? &shard_stats[i] : nullptr);
      },
      lut_params, stats);

  if (map_stats) {
    map_stats->num_luts = merged.size();
    map_stats->depth = merged.depth();
    for (const LutMapStats& s : shard_stats) {
      map_stats->num_choice_cuts_used += s.num_choice_cuts_used;
    }
  }
  return merged;
}

}  // namespace mcs
