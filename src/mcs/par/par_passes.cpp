/// \file par_passes.cpp
/// \brief Flow registrations for the partition-parallel drivers: the
/// classic `popt` / `pmch` / `pmap_lut` commands plus the generic `par`
/// meta-pass that runs *any* registered network->network pass per shard
/// (`par:pass=rewrite,k=4`).  Thread count and shard size come from the
/// FlowContext (`threads` / `partsize` settings passes).

#include <utility>
#include <vector>

#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/par/par_engine.hpp"

// The registrations below use designated initializers and deliberately
// leave defaulted PassInfo/ParamSpec members out; GCC's -Wextra flags
// every omitted member, so silence that one diagnostic here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

namespace {

std::string par_note(const char* name, const ParStats& ps) {
  return std::string(name) + ": " + std::to_string(ps.num_partitions) +
         " partitions on " + std::to_string(ps.num_threads) + " threads";
}

/// Rebuilds `key=value` tokens from the extras collected by `par`.
std::vector<std::string> forwarded_tokens(const PassArgs& args) {
  std::vector<std::string> tokens;
  for (const auto& [k, v] : args.extras()) tokens.push_back(k + "=" + v);
  return tokens;
}

const PassInfo& inner_pass_or_throw(const PassArgs& args) {
  const std::string name = args.get_string("pass");
  const PassInfo* inner = PassRegistry::instance().find(name);
  if (!inner) throw FlowError("par: unknown pass '" + name + "'");
  if (!inner->parallel_ok) {
    throw FlowError("par: pass '" + name +
                    "' is not a partition-parallel network transform");
  }
  return *inner;
}

}  // namespace

void register_par_passes(PassRegistry& registry) {
  registry.add({
      .name = "popt",
      .summary = "parallel partitioned compress2rs",
      .kind = PassKind::kTransform,
      .params = {{.key = "rounds",
                  .type = ParamType::kInt,
                  .default_value = "3",
                  .help = "maximum rounds"},
                 {.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "working basis"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            ParStats ps;
            ctx.net = par_optimize(ctx.net, args.get_basis("basis"),
                                   static_cast<int>(args.get_int("rounds")),
                                   ctx.par, &ps);
            ctx.note = par_note("popt", ps);
          },
  });

  registry.add({
      .name = "pmch",
      .summary = "parallel partitioned mixed structural choices",
      .kind = PassKind::kChoice,
      .params = {{.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "candidate synthesis basis"},
                 {.key = "ratio",
                  .type = ParamType::kDouble,
                  .default_value = "0.9",
                  .help = "critical-path ratio r"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            MchParams params;
            params.candidate_basis = args.get_basis("basis");
            params.critical_ratio = args.get_double("ratio");
            if (params.critical_ratio < 0.0 || params.critical_ratio > 1.0) {
              throw FlowError("pmch: ratio must be in [0, 1]");
            }
            ParStats ps;
            MchStats stats;
            ctx.net = par_mch(ctx.net, params, ctx.par, &ps, &stats);
            ctx.note = std::to_string(stats.num_choices_added) +
                       " choices added, " + par_note("pmch", ps);
          },
  });

  registry.add({
      .name = "pmap_lut",
      .summary = "parallel partitioned choice-aware K-LUT mapping",
      .kind = PassKind::kMapping,
      .params = {{.key = "k",
                  .type = ParamType::kInt,
                  .default_value = "6",
                  .help = "LUT size"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            LutMapParams params;
            params.lut_size = static_cast<int>(args.get_int("k"));
            if (params.lut_size < 2 || params.lut_size > 6) {
              throw FlowError("pmap_lut: k must be in [2, 6]");
            }
            ParStats ps;
            ctx.luts = par_map_lut(ctx.net, params, ctx.par, &ps);
            ctx.note = par_note("pmap_lut", ps);
          },
  });

  registry.add({
      .name = "par",
      .summary = "run any registered network transform per partition "
                 "(par:pass=rewrite,k=4)",
      .kind = PassKind::kTransform,
      .params = {{.key = "pass",
                  .type = ParamType::kString,
                  .required = true,
                  .help = "inner pass name; extra key=value args forwarded"}},
      .allow_extra_args = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            const PassInfo& inner = inner_pass_or_throw(args);
            const PassArgs inner_args =
                PassArgs::bind(inner, forwarded_tokens(args));
            ParParams par = ctx.par;
            ReassembleOptions ropts;
            if (inner.kind == PassKind::kChoice) {
              // Choice constructions must see existing classes and keep
              // the ones they add through reassembly.
              par.partition.keep_choices = true;
              ropts.keep_choices = true;
            }
            ParStats ps;
            ctx.net = par_run(
                ctx.net,
                [&](const Network& shard, std::size_t) {
                  FlowContext sub;
                  sub.seed = ctx.seed;
                  sub.par.num_threads = 1;  // no nested pools
                  sub.net = shard;
                  inner.run(sub, inner_args);
                  return std::move(sub.net);
                },
                par, &ps, ropts);
            ctx.note = par_note(("par:" + inner.name).c_str(), ps);
          },
      .validate =
          [](const PassArgs& args) {
            // Parse-time: the inner pass must exist, be shard-safe, and
            // accept every forwarded argument.
            const PassInfo& inner = inner_pass_or_throw(args);
            PassArgs::bind(inner, forwarded_tokens(args));
          },
  });
}

}  // namespace mcs::flow
