/// \file par_engine.hpp
/// \brief Generic partition-parallel driver for the synthesis passes.
///
/// par_run() shards the input network with partition_network(), runs *any*
/// network->network pass on every shard via a ThreadPool, and stitches the
/// results back with reassemble(); par_run_lut() does the same for mapping
/// passes that produce a LutNetwork per shard.  Because shards are
/// self-contained Networks and reassembly happens in fixed partition order,
/// the output is bit-identical for any thread count (see partition.hpp for
/// the determinism contract); threads only change the wall-clock time.
///
/// par_optimize() / par_mch() / par_map_lut() are thin wrappers over the
/// generic drivers, kept for source compatibility; the flow layer's `par`
/// meta-pass (mcs/flow) drives any registered pass through par_run().

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "mcs/choice/mch.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/par/partition.hpp"
#include "mcs/resyn/basis.hpp"

namespace mcs {

struct ParParams {
  /// Worker threads; values < 1 resolve to the hardware concurrency.
  int num_threads = 0;
  PartitionParams partition;
};

struct ParStats {
  std::size_t num_partitions = 0;
  std::size_t num_threads = 0;
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;
  std::uint32_t initial_depth = 0;
  std::uint32_t final_depth = 0;
  double partition_seconds = 0.0;   ///< sharding (serial)
  double work_seconds = 0.0;        ///< per-shard passes (parallel section)
  double reassemble_seconds = 0.0;  ///< stitching (serial)
};

/// A network->network pass applied to one shard.  The shard index is passed
/// so callers can collect per-shard statistics deterministically (indexed,
/// not append-ordered).  Must be safe to invoke concurrently on distinct
/// shards.
using ShardPassFn = std::function<Network(const Network&, std::size_t)>;

/// Generic partition-parallel driver: partitions \p net (params.partition),
/// applies \p pass to every shard on up to params.num_threads workers, and
/// reassembles in fixed partition order.  Exceptions thrown by \p pass
/// surface in shard-index order.  Bit-identical for any thread count.
Network par_run(const Network& net, const ShardPassFn& pass,
                const ParParams& params = {}, ParStats* stats = nullptr,
                const ReassembleOptions& reassemble_opts = {});

/// Pre-partitioned variant for callers that need the shard count before the
/// work phase (e.g. to size per-shard stats arrays): \p parts must come
/// from partition_network(net, ...).  stats->partition_seconds is left to
/// the caller.
Network par_run(const Network& net, PartitionSet parts,
                const ShardPassFn& pass, const ParParams& params = {},
                ParStats* stats = nullptr,
                const ReassembleOptions& reassemble_opts = {});

/// A mapping pass applied to one shard (same contract as ShardPassFn).
using ShardMapFn = std::function<LutNetwork(const Network&, std::size_t)>;

/// Generic partition-parallel mapping driver: maps every shard with
/// \p map_shard and stitches the shard LUT networks over the original
/// PI/PO interface, structurally hashing LUTs so logic duplicated across
/// shards (kOutputCones) collapses back to one copy.
LutNetwork par_run_lut(const Network& net, const ShardMapFn& map_shard,
                       const ParParams& params = {}, ParStats* stats = nullptr);

/// Pre-partitioned variant (see the par_run overload above).
LutNetwork par_run_lut(const Network& net, PartitionSet parts,
                       const ShardMapFn& map_shard,
                       const ParParams& params = {},
                       ParStats* stats = nullptr);

/// Parallel compress2rs_like(): optimizes every shard independently in
/// \p basis, then reassembles.  Equivalent function, deterministic result.
Network par_optimize(const Network& net, GateBasis basis, int max_rounds = 3,
                     const ParParams& params = {}, ParStats* stats = nullptr);

/// Parallel build_mch(): builds the mixed choice network per shard and
/// reassembles with choice classes preserved.  \p mch_stats (optional)
/// receives the sum of the per-shard construction statistics.
Network par_mch(const Network& net, const MchParams& mch_params = {},
                const ParParams& params = {}, ParStats* stats = nullptr,
                MchStats* mch_stats = nullptr);

/// Parallel choice-aware LUT mapping: shards the network (carrying choice
/// classes into the shards), maps every shard, and stitches the LUT
/// networks over the original PI/PO interface.  \p map_stats (optional)
/// receives the merged mapping statistics.
LutNetwork par_map_lut(const Network& net, const LutMapParams& map_params = {},
                       const ParParams& params = {}, ParStats* stats = nullptr,
                       LutMapStats* map_stats = nullptr);

}  // namespace mcs
