/// \file par_engine.hpp
/// \brief Parallel partition-based drivers for the synthesis passes.
///
/// Each driver shards the input network with partition_network(), runs an
/// existing single-threaded pass on every shard via a ThreadPool, and
/// stitches the results back with reassemble().  Because shards are
/// self-contained Networks and reassembly happens in fixed partition order,
/// the output is bit-identical for any thread count (see partition.hpp for
/// the determinism contract); threads only change the wall-clock time.

#pragma once

#include <cstddef>
#include <cstdint>

#include "mcs/choice/mch.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/par/partition.hpp"
#include "mcs/resyn/basis.hpp"

namespace mcs {

struct ParParams {
  /// Worker threads; values < 1 resolve to the hardware concurrency.
  int num_threads = 0;
  PartitionParams partition;
};

struct ParStats {
  std::size_t num_partitions = 0;
  std::size_t num_threads = 0;
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;
  std::uint32_t initial_depth = 0;
  std::uint32_t final_depth = 0;
  double partition_seconds = 0.0;   ///< sharding (serial)
  double work_seconds = 0.0;        ///< per-shard passes (parallel section)
  double reassemble_seconds = 0.0;  ///< stitching (serial)
};

/// Parallel compress2rs_like(): optimizes every shard independently in
/// \p basis, then reassembles.  Equivalent function, deterministic result.
Network par_optimize(const Network& net, GateBasis basis, int max_rounds = 3,
                     const ParParams& params = {}, ParStats* stats = nullptr);

/// Parallel build_mch(): builds the mixed choice network per shard and
/// reassembles with choice classes preserved.  \p mch_stats (optional)
/// receives the sum of the per-shard construction statistics.
Network par_mch(const Network& net, const MchParams& mch_params = {},
                const ParParams& params = {}, ParStats* stats = nullptr,
                MchStats* mch_stats = nullptr);

/// Parallel choice-aware LUT mapping: shards the network (carrying choice
/// classes into the shards), maps every shard, and stitches the LUT
/// networks over the original PI/PO interface.  \p map_stats (optional)
/// receives the merged mapping statistics.
LutNetwork par_map_lut(const Network& net, const LutMapParams& map_params = {},
                       const ParParams& params = {}, ParStats* stats = nullptr,
                       LutMapStats* map_stats = nullptr);

}  // namespace mcs
