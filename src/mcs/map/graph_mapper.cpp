#include "mcs/map/graph_mapper.hpp"

#include <cassert>

#include "mcs/choice/dch.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/resyn/npn_db.hpp"
#include "mcs/resyn/strategies.hpp"

namespace mcs {

Network graph_map(const Network& net, const GraphMapParams& params,
                  GraphMapStats* stats) {
  // Phase 1: cut-based covering (the LUT mapper is exactly the covering
  // engine needed; LUT size = cut size).
  LutMapParams lut_params;
  lut_params.lut_size = params.cut_size;
  lut_params.cut_limit = params.cut_limit;
  lut_params.use_choices = params.use_choices;
  lut_params.objective = params.objective == GraphMapParams::Objective::kDepth
                             ? LutMapParams::Objective::kDelay
                             : LutMapParams::Objective::kArea;
  const LutNetwork cover = lut_map(net, lut_params);

  // Phase 2: instantiate each selected cut in the target basis, choosing
  // the best structure among the strategy candidates per cut.
  Network dst;
  auto& db = NpnDatabase::shared(
      params.target, params.objective == GraphMapParams::Objective::kDepth
                         ? NpnDatabase::Objective::kLevel
                         : NpnDatabase::Objective::kArea);
  const SopStrategy sop;

  dst.reserve(cover.num_pis + 4 * cover.luts.size());
  std::vector<Signal> value(cover.num_pis + cover.luts.size());
  for (int i = 0; i < cover.num_pis; ++i) {
    value[i] = dst.create_pi(net.pi_name(i));
  }
  for (std::size_t i = 0; i < cover.luts.size(); ++i) {
    const auto& lut = cover.luts[i];
    std::vector<Signal> leaves;
    leaves.reserve(lut.inputs.size());
    for (const auto r : lut.inputs) leaves.push_back(value[r]);
    const int k = static_cast<int>(lut.inputs.size());

    std::optional<Signal> s;
    if (k <= 4) {
      s = db.instantiate(dst, lut.function, k, leaves);
    }
    if (!s) {
      s = sop.synthesize(dst, params.target,
                         TruthTable::from_tt6(lut.function, k), leaves);
    }
    assert(s.has_value());
    value[cover.num_pis + i] = *s;
  }
  for (std::size_t i = 0; i < cover.po_refs.size(); ++i) {
    dst.create_po(value[cover.po_refs[i]] ^ static_cast<bool>(cover.po_compl[i]),
                  net.po_name(i));
  }
  Network result = cleanup(dst);

  if (stats) {
    stats->num_cuts_selected = cover.luts.size();
    stats->gates_before = net.num_gates();
    stats->gates_after = result.num_gates();
    stats->depth_before = net.depth();
    stats->depth_after = result.depth();
  }
  return result;
}

namespace {

bool strictly_better(const Network& a, const Network& b,
                     GraphMapParams::Objective obj) {
  const auto ka = obj == GraphMapParams::Objective::kDepth
                      ? std::make_pair(a.depth(),
                                       static_cast<std::uint32_t>(a.num_gates()))
                      : std::make_pair(static_cast<std::uint32_t>(a.num_gates()),
                                       a.depth());
  const auto kb = obj == GraphMapParams::Objective::kDepth
                      ? std::make_pair(b.depth(),
                                       static_cast<std::uint32_t>(b.num_gates()))
                      : std::make_pair(static_cast<std::uint32_t>(b.num_gates()),
                                       b.depth());
  return ka < kb;
}

}  // namespace

Network iterate_graph_map(Network net, const GraphMapParams& params,
                          int max_iters, int* iters_done) {
  int iters = 0;
  for (; iters < max_iters; ++iters) {
    Network next = graph_map(net, params);
    if (!strictly_better(next, net, params.objective)) break;
    net = std::move(next);
  }
  if (iters_done) *iters_done = iters;
  return net;
}

Network mch_graph_map(const Network& net, const GraphMapParams& params,
                      const MchParams& mch_params, GraphMapStats* stats) {
  const Network mch = build_mch(net, mch_params);
  GraphMapParams p = params;
  p.use_choices = true;
  Network result = graph_map(mch, p, stats);
  if (stats) {
    stats->gates_before = net.num_gates();
    stats->depth_before = net.depth();
  }
  return result;
}

namespace {

/// Pareto acceptance: no axis worse, at least one strictly better.
bool pareto_better(const Network& a, const Network& b) {
  const bool no_worse =
      a.num_gates() <= b.num_gates() && a.depth() <= b.depth();
  const bool strictly =
      a.num_gates() < b.num_gates() || a.depth() < b.depth();
  return no_worse && strictly;
}

}  // namespace

Network iterate_mch_graph_map(Network net, const GraphMapParams& params,
                              const MchParams& mch_params, int max_iters,
                              int* iters_done) {
  // Each round builds a choice network that combines DCH-style structural
  // snapshots (the current network plus a balanced variant) with MCH's
  // heterogeneous per-window candidates, then maps it under both
  // objectives.  A candidate result is adopted only when it Pareto-improves
  // (node count and depth): the diverse candidates let the flow move past
  // local optima of the plain iteration (paper, Sec. III-C / Fig. 6)
  // without trading one metric for the other.
  int iters = 0;
  for (; iters < max_iters; ++iters) {
    const Network with_snapshots = build_dch({net, balance(net)});
    const Network mch = build_mch(with_snapshots, mch_params);

    GraphMapParams size_params = params;
    size_params.use_choices = true;
    size_params.objective = GraphMapParams::Objective::kSize;
    GraphMapParams depth_params = size_params;
    depth_params.objective = GraphMapParams::Objective::kDepth;

    Network by_size = graph_map(mch, size_params);
    Network by_depth = graph_map(mch, depth_params);

    const bool size_ok = pareto_better(by_size, net);
    const bool depth_ok = pareto_better(by_depth, net);
    if (size_ok && depth_ok) {
      net = strictly_better(by_size, by_depth, params.objective)
                ? std::move(by_size)
                : std::move(by_depth);
    } else if (size_ok) {
      net = std::move(by_size);
    } else if (depth_ok) {
      net = std::move(by_depth);
    } else {
      break;
    }
  }
  if (iters_done) *iters_done = iters;
  return net;
}

}  // namespace mcs
