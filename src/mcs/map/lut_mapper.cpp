#include "mcs/map/lut_mapper.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <span>

#include "mcs/cut/enumeration.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/resyn/strategies.hpp"

namespace mcs {

std::uint32_t LutNetwork::depth() const {
  std::vector<std::uint32_t> level(num_pis + luts.size(), 0);
  for (std::size_t i = 0; i < luts.size(); ++i) {
    std::uint32_t lvl = 0;
    for (const auto ref : luts[i].inputs) {
      lvl = std::max(lvl, level[ref]);
    }
    level[num_pis + i] = lvl + 1;
  }
  std::uint32_t d = 0;
  for (const auto ref : po_refs) d = std::max(d, level[ref]);
  return d;
}

std::vector<std::uint64_t> LutNetwork::simulate(
    const std::vector<std::uint64_t>& pi_values) const {
  assert(pi_values.size() == static_cast<std::size_t>(num_pis));
  std::vector<std::uint64_t> value(num_pis + luts.size(), 0);
  for (int i = 0; i < num_pis; ++i) value[i] = pi_values[i];
  for (std::size_t i = 0; i < luts.size(); ++i) {
    const Lut& lut = luts[i];
    std::uint64_t out = 0;
    // Evaluate bit-parallel: for each of the 64 patterns assemble the
    // input index and look it up in the truth table.
    for (int bit = 0; bit < 64; ++bit) {
      unsigned idx = 0;
      for (std::size_t k = 0; k < lut.inputs.size(); ++k) {
        if ((value[lut.inputs[k]] >> bit) & 1ull) idx |= (1u << k);
      }
      if ((lut.function >> idx) & 1ull) out |= (1ull << bit);
    }
    value[num_pis + i] = out;
  }
  std::vector<std::uint64_t> pos;
  pos.reserve(po_refs.size());
  for (std::size_t i = 0; i < po_refs.size(); ++i) {
    pos.push_back(po_compl[i] ? ~value[po_refs[i]] : value[po_refs[i]]);
  }
  return pos;
}

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Per-node mapping state across passes.
struct NodeState {
  Cut best;            ///< current best cut
  float arrival = 0.0f;
  float area_flow = 0.0f;
  float required = kInf;
  std::uint32_t map_refs = 0;  ///< references in the current cover
  float est_refs = 1.0f;       ///< smoothed fanout estimate for area flow
  bool has_cut = false;
};

class LutMapper {
 public:
  LutMapper(const Network& net, const LutMapParams& params)
      : net_(net),
        params_(params),
        state_(net.size()),
        order_(params.use_choices ? choice_topo_order(net)
                                  : topo_order(net)),
        enumerator_(net, {.cut_size = params.lut_size,
                          .cut_limit = params.cut_limit,
                          .use_choices = params.use_choices}) {
    // Fanout estimates seeded from the PO-reachable original graph only:
    // choice cones are mutually exclusive alternatives and counting their
    // edges would fake sharing no single cover can realize.
    std::vector<std::uint32_t> local_fanout(net_.size(), 0);
    for (const NodeId n : topo_order(net)) {
      const Node& nd = net_.node(n);
      for (int i = 0; i < nd.num_fanins; ++i) {
        ++local_fanout[nd.fanin[i].node()];
      }
    }
    for (const Signal s : net_.pos()) ++local_fanout[s.node()];
    for (NodeId n = 0; n < net_.size(); ++n) {
      state_[n].est_refs =
          std::max<float>(1.0f, static_cast<float>(local_fanout[n]));
    }
  }

  LutNetwork run(LutMapStats* stats) {
    // Passes are greedy; the best extraction seen across all passes is
    // returned (later recovery rounds usually help but may regress).
    LutNetwork best;
    LutMapStats best_stats;
    bool have_best = false;
    auto harvest = [&]() {
      LutMapStats s;
      LutNetwork candidate = extract(&s);
      const auto key = [&](const LutNetwork& l, std::uint32_t depth) {
        return params_.objective == LutMapParams::Objective::kDelay
                   ? std::make_pair(static_cast<std::size_t>(depth), l.size())
                   : std::make_pair(l.size(),
                                    static_cast<std::size_t>(depth));
      };
      if (!have_best ||
          key(candidate, candidate.depth()) < key(best, best.depth())) {
        best = std::move(candidate);
        best_stats = s;
        have_best = true;
      }
    };

    // Pass 1: depth-oriented (also initializes area flow).
    mapping_pass(Mode::kDelayFlow);
    compute_cover_and_required();
    harvest();
    // Area-flow recovery.
    for (int i = 0; i < params_.area_flow_rounds; ++i) {
      mapping_pass(Mode::kAreaFlow);
      compute_cover_and_required();
      harvest();
    }
    // Exact-area recovery.
    for (int i = 0; i < params_.exact_area_rounds; ++i) {
      mapping_pass(Mode::kExactArea);
      compute_cover_and_required();
      harvest();
    }
    if (stats) *stats = best_stats;
    return best;
  }

 private:
  enum class Mode { kDelayFlow, kAreaFlow, kExactArea };

  float cut_delay(const Cut& c) const {
    float d = 0.0f;
    for (int i = 0; i < c.size; ++i) {
      d = std::max(d, state_[c.leaves[i]].arrival);
    }
    return d + 1.0f;
  }

  float cut_area_flow(const Cut& c) const {
    float a = 1.0f;
    for (int i = 0; i < c.size; ++i) {
      const auto& ls = state_[c.leaves[i]];
      a += ls.area_flow / ls.est_refs;
    }
    return a;
  }

  /// Exact area via reference counting on the live cover (ABC style).
  /// area_ref(n) makes one more reference to n; when n enters the cover its
  /// own LUT plus the recursive cost of newly covered leaves is charged.
  float area_ref(NodeId n) {
    if (!net_.is_gate(n)) return 0.0f;
    auto& st = state_[n];
    if (st.map_refs++ > 0) return 0.0f;
    float a = 1.0f;
    const Cut& c = st.best;
    for (int i = 0; i < c.size; ++i) a += area_ref(c.leaves[i]);
    return a;
  }
  float area_deref(NodeId n) {
    if (!net_.is_gate(n)) return 0.0f;
    auto& st = state_[n];
    assert(st.map_refs > 0);
    if (--st.map_refs > 0) return 0.0f;
    float a = 1.0f;
    const Cut& c = st.best;
    for (int i = 0; i < c.size; ++i) a += area_deref(c.leaves[i]);
    return a;
  }

  /// Marginal exact area of implementing \p c on top of the current cover
  /// (side-effect free: the probe refs then derefs).
  float cut_exact_area_probe(const Cut& c) {
    float a = 1.0f;
    for (int i = 0; i < c.size; ++i) a += area_ref(c.leaves[i]);
    for (int i = 0; i < c.size; ++i) area_deref(c.leaves[i]);
    return a;
  }

  void mapping_pass(Mode mode) {
    // One persistent enumerator across passes: reset() keeps the cut arena
    // buffer, so recovery passes re-enumerate without allocating.
    enumerator_.reset();

    auto annotate = [&](NodeId n, Cut& c) {
      if (!net_.is_gate(n)) {
        c.delay = 0.0f;
        c.area_flow = 0.0f;
        return;
      }
      c.delay = cut_delay(c);
      c.area_flow = mode == Mode::kExactArea ? cut_exact_area_probe(c)
                                             : cut_area_flow(c);
    };

    const bool delay_first =
        mode == Mode::kDelayFlow &&
        params_.objective == LutMapParams::Objective::kDelay;

    auto better = [&, delay_first](const Cut& a, const Cut& b) {
      // Trivial cuts always rank last: they cannot implement the node.
      if (a.is_trivial() != b.is_trivial()) return b.is_trivial();
      if (delay_first) {
        if (a.delay != b.delay) return a.delay < b.delay;
        if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
      } else {
        // Area first, but never violate this node's required time.  When
        // neither cut is feasible, race back toward feasibility (delay
        // first) so slack violations cannot snowball across passes.
        const float req = req_of_current_;
        const bool a_ok = a.delay <= req;
        const bool b_ok = b.delay <= req;
        if (a_ok != b_ok) return a_ok;
        if (!a_ok) {
          if (a.delay != b.delay) return a.delay < b.delay;
          if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
        } else {
          if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
          if (a.delay != b.delay) return a.delay < b.delay;
        }
      }
      return a.size < b.size;
    };

    // Drive the enumeration node by node so `req_of_current_` is correct.
    // In the exact-area mode the node's current cut is temporarily removed
    // from the live cover so probes measure true marginal area, and the
    // winning cut is re-referenced afterwards (incremental cover update).
    const bool exact = mode == Mode::kExactArea;
    for (const NodeId n : order_) {
      req_of_current_ = state_[n].required;
      auto& st = state_[n];
      const bool in_cover = exact && net_.is_gate(n) && st.map_refs > 0;
      if (in_cover) {
        const Cut& c = st.best;
        for (int i = 0; i < c.size; ++i) area_deref(c.leaves[i]);
      }
      // LUT costs derive from leaf arrivals/areas only, so the enumerator
      // may defer truth-table derivation past the whole admission.
      enumerator_.run_single(n, LeafOnlyAnnotate{annotate}, better);
      const std::span<const Cut> cuts = enumerator_.cuts(n);
      if (!net_.is_gate(n)) {
        st.arrival = 0.0f;
        st.area_flow = 0.0f;
        st.has_cut = false;
        continue;
      }
      assert(cuts.size() >= 2 || !cuts.front().is_trivial());
      const Cut& best = cuts.front();
      assert(!best.is_trivial());
      st.best = best;
      st.arrival = best.delay;
      st.area_flow = best.area_flow;
      st.has_cut = true;
      if (in_cover) {
        const Cut& c = st.best;
        for (int i = 0; i < c.size; ++i) area_ref(c.leaves[i]);
      }
    }
    // Cut sets are not retained across passes (priority cuts): the next
    // pass re-enumerates with updated costs.
  }

  /// Extracts the current cover to compute map_refs and required times.
  void compute_cover_and_required() {
    for (auto& st : state_) {
      st.map_refs = 0;
      st.required = kInf;
    }
    // March from the POs over best cuts.
    std::vector<NodeId> visit;
    for (const Signal s : net_.pos()) {
      if (net_.is_gate(s.node()) && state_[s.node()].map_refs++ == 0) {
        visit.push_back(s.node());
      }
    }
    std::size_t head = 0;
    std::vector<NodeId> cover;
    while (head < visit.size()) {
      const NodeId n = visit[head++];
      cover.push_back(n);
      const Cut& c = state_[n].best;
      for (int i = 0; i < c.size; ++i) {
        const NodeId leaf = c.leaves[i];
        if (net_.is_gate(leaf) && state_[leaf].map_refs++ == 0) {
          visit.push_back(leaf);
        }
      }
    }

    // Blend real cover references into the fanout estimates (dangling
    // choice cones inflate raw fanout counts).
    for (auto& st : state_) {
      st.est_refs = std::max(
          1.0f, (st.est_refs + 2.0f * static_cast<float>(st.map_refs)) / 3.0f);
    }

    // Required times.  For the delay objective the target is frozen at the
    // first (delay-optimal) pass so recovery passes cannot ratchet it.
    float target;
    if (params_.objective == LutMapParams::Objective::kDelay) {
      float depth = 0.0f;
      for (const Signal s : net_.pos()) {
        depth = std::max(depth, state_[s.node()].arrival);
      }
      if (target_delay_ < 0.0f) target_delay_ = depth;
      target = std::min(depth, target_delay_);
    } else {
      target = kInf;
    }
    for (const Signal s : net_.pos()) {
      auto& st = state_[s.node()];
      st.required = std::min(st.required, target);
    }
    // `cover` is in PO-to-PI discovery order; a node's fanout cone within
    // the cover is discovered no later than the node itself, so a forward
    // sweep propagates required times correctly.
    for (const NodeId n : cover) {
      const auto& st = state_[n];
      const Cut& c = st.best;
      const float leaf_req = st.required - 1.0f;
      for (int i = 0; i < c.size; ++i) {
        auto& ls = state_[c.leaves[i]];
        ls.required = std::min(ls.required, leaf_req);
      }
    }
  }

  LutNetwork extract(LutMapStats* stats) {
    LutNetwork out;
    out.num_pis = static_cast<int>(net_.num_pis());

    std::vector<std::int32_t> ref(net_.size(), -1);
    for (std::size_t i = 0; i < net_.num_pis(); ++i) {
      ref[net_.pi_at(i)] = static_cast<std::int32_t>(i);
    }

    std::size_t choice_cuts = 0;
    // Recursive extraction with an explicit stack.
    auto extract_node = [&](NodeId root) {
      if (ref[root] >= 0) return;
      std::vector<std::pair<NodeId, int>> stack{{root, 0}};
      while (!stack.empty()) {
        auto& [n, phase] = stack.back();
        if (ref[n] >= 0) {
          stack.pop_back();
          continue;
        }
        assert(state_[n].has_cut);
        const Cut& c = state_[n].best;
        if (phase == 0) {
          phase = 1;
          bool pushed = false;
          for (int i = 0; i < c.size; ++i) {
            const NodeId leaf = c.leaves[i];
            if (ref[leaf] < 0) {
              assert(net_.is_gate(leaf));
              stack.push_back({leaf, 0});
              pushed = true;
            }
          }
          if (pushed) continue;
        }
        LutNetwork::Lut lut;
        lut.function = c.function;
        for (int i = 0; i < c.size; ++i) {
          lut.inputs.push_back(ref[c.leaves[i]]);
        }
        // A cut that survives from a choice member covers nodes outside
        // the representative's own cone.
        if (params_.use_choices && net_.has_choice(n)) ++choice_cuts;
        ref[n] = static_cast<std::int32_t>(out.num_pis + out.luts.size());
        out.luts.push_back(std::move(lut));
        stack.pop_back();
      }
    };

    for (const Signal s : net_.pos()) {
      const NodeId n = s.node();
      if (net_.is_const0(n)) {
        // Constant PO: a 0-input LUT.
        LutNetwork::Lut lut;
        lut.function = 0;
        out.luts.push_back(lut);
        out.po_refs.push_back(
            static_cast<std::int32_t>(out.num_pis + out.luts.size() - 1));
        out.po_compl.push_back(s.complemented());
        continue;
      }
      if (net_.is_pi(n)) {
        out.po_refs.push_back(ref[n]);
        out.po_compl.push_back(s.complemented());
        continue;
      }
      extract_node(n);
      out.po_refs.push_back(ref[n]);
      out.po_compl.push_back(s.complemented());
    }

    if (stats) {
      stats->num_luts = out.luts.size();
      stats->depth = out.depth();
      stats->num_choice_cuts_used = choice_cuts;
    }
    return out;
  }

  const Network& net_;
  LutMapParams params_;
  std::vector<NodeState> state_;
  std::vector<NodeId> order_;
  CutEnumerator enumerator_;
  float req_of_current_ = kInf;
  float target_delay_ = -1.0f;  ///< frozen after the first delay pass
};

}  // namespace

LutNetwork lut_map(const Network& net, const LutMapParams& params,
                   LutMapStats* stats) {
  LutMapper mapper(net, params);
  return mapper.run(stats);
}

Network lut_network_to_network(const LutNetwork& lnet) {
  Network out;
  out.reserve(lnet.num_pis + 4 * lnet.luts.size());
  std::vector<Signal> value(lnet.num_pis + lnet.luts.size());
  for (int i = 0; i < lnet.num_pis; ++i) value[i] = out.create_pi();

  const SopStrategy sop;
  for (std::size_t i = 0; i < lnet.luts.size(); ++i) {
    const auto& lut = lnet.luts[i];
    std::vector<Signal> leaves;
    leaves.reserve(lut.inputs.size());
    for (const auto r : lut.inputs) leaves.push_back(value[r]);
    const TruthTable f = TruthTable::from_tt6(
        lut.function, static_cast<int>(lut.inputs.size()));
    const auto s = sop.synthesize(out, GateBasis::xmg(), f, leaves);
    assert(s.has_value());
    value[lnet.num_pis + i] = *s;
  }
  for (std::size_t i = 0; i < lnet.po_refs.size(); ++i) {
    out.create_po(value[lnet.po_refs[i]] ^ static_cast<bool>(lnet.po_compl[i]));
  }
  return out;
}

}  // namespace mcs
