#include "mcs/map/asic_mapper.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <unordered_map>

#include "mcs/cut/enumeration.hpp"
#include "mcs/network/network_utils.hpp"

namespace mcs {

std::vector<std::uint64_t> CellNetlist::simulate(
    const std::vector<std::uint64_t>& pi_values) const {
  assert(pi_values.size() == static_cast<std::size_t>(num_pis));
  std::vector<std::uint64_t> value(num_pis + instances.size(), 0);
  for (int i = 0; i < num_pis; ++i) value[i] = pi_values[i];
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Instance& inst = instances[i];
    const Cell& c = library->cell(inst.cell);
    std::uint64_t out = 0;
    for (int bit = 0; bit < 64; ++bit) {
      unsigned idx = 0;
      for (std::size_t k = 0; k < inst.fanins.size(); ++k) {
        if ((value[inst.fanins[k]] >> bit) & 1ull) idx |= (1u << k);
      }
      if ((c.function >> idx) & 1ull) out |= (1ull << bit);
    }
    value[num_pis + i] = out;
  }
  std::vector<std::uint64_t> pos;
  pos.reserve(po_refs.size());
  for (std::size_t i = 0; i < po_refs.size(); ++i) {
    if (po_const[i]) {
      pos.push_back(po_const_value[i] ? ~0ull : 0ull);
    } else {
      pos.push_back(value[po_refs[i]]);
    }
  }
  return pos;
}

std::vector<std::pair<std::string, int>> CellNetlist::cell_histogram() const {
  std::map<std::string, int> h;
  for (const auto& inst : instances) ++h[library->cell(inst.cell).name];
  return {h.begin(), h.end()};
}

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

struct Match {
  int cell = -1;
  int num_pins = 0;
  std::array<NodeId, 4> pin_leaf{};
  std::array<bool, 4> pin_phase{};
  bool from_inverter = false;  ///< realized as INV(other phase)
  float arrival = kInf;
  float area_flow = kInf;
  bool valid() const noexcept { return cell >= 0 || from_inverter; }
};

struct PhaseState {
  Match best;
  float arrival = kInf;
  float area_flow = kInf;
  float required = kInf;
  std::uint32_t map_refs = 0;  ///< references in the current cover
};

struct NodeState {
  PhaseState ph[2];
  float est_refs = 1.0f;
};

class AsicMapper {
 public:
  AsicMapper(const Network& net, const TechLibrary& lib,
             const AsicMapParams& params)
      : net_(net),
        lib_(lib),
        params_(params),
        state_(net.size()),
        order_(params.use_choices ? choice_topo_order(net)
                                  : topo_order(net)),
        enumerator_(net, {.cut_size = params.cut_size,
                          .cut_limit = params.cut_limit,
                          .use_choices = params.use_choices}) {
    assert(lib_.inverter() >= 0);
    inv_delay_ = static_cast<float>(lib_.cell(lib_.inverter()).pin_delays[0]);
    inv_area_ = static_cast<float>(lib_.cell(lib_.inverter()).area);
    // Fanout estimates seeded from the PO-reachable original graph only.
    // Candidate cones are mutually exclusive alternatives: counting their
    // edges would make shared leaves look far cheaper than any single
    // cover can realize.  Candidate-interior nodes start at 1 and the
    // per-pass blending with real cover references adapts from there.
    std::vector<std::uint32_t> local_fanout(net_.size(), 0);
    for (const NodeId n : topo_order(net_)) {
      const Node& nd = net_.node(n);
      for (int i = 0; i < nd.num_fanins; ++i) {
        ++local_fanout[nd.fanin[i].node()];
      }
    }
    for (const Signal s : net_.pos()) ++local_fanout[s.node()];
    for (NodeId n = 0; n < net_.size(); ++n) {
      state_[n].est_refs =
          std::max<float>(1.0f, static_cast<float>(local_fanout[n]));
    }
  }

  CellNetlist run(AsicMapStats* stats) {
    // Passes are greedy; keep the best extraction across passes under the
    // requested objective (recovery rounds usually help but may regress).
    CellNetlist best;
    AsicMapStats best_stats;
    bool have_best = false;
    auto harvest = [&]() {
      AsicMapStats s;
      CellNetlist candidate = extract(&s);
      const auto key = [&](const CellNetlist& n) {
        if (params_.objective == AsicMapParams::Objective::kDelay) {
          // Minimize area among extractions inside the (possibly relaxed)
          // delay budget; outside it, minimize the violation first.
          const double excess =
              target_delay_ >= 0.0f
                  ? std::max(0.0, n.delay - double(target_delay_) - 1e-6)
                  : 0.0;
          return std::make_tuple(excess, n.area, n.delay);
        }
        return std::make_tuple(n.area, n.delay, 0.0);
      };
      if (!have_best || key(candidate) < key(best)) {
        best = std::move(candidate);
        best_stats = s;
        have_best = true;
      }
    };
    mapping_pass(Mode::kDelay);
    compute_required();
    harvest();
    for (int i = 0; i < params_.area_flow_rounds; ++i) {
      mapping_pass(Mode::kAreaFlow);
      compute_required();
      harvest();
    }
    for (int i = 0; i < params_.exact_area_rounds; ++i) {
      mapping_pass(Mode::kExactArea);
      compute_required();
      harvest();
    }
    if (stats) *stats = best_stats;
    return best;
  }

 private:
  enum class Mode { kDelay, kAreaFlow, kExactArea };

  /// \name Reference-counted exact area over the live (node, phase) cover.
  /// @{
  float area_ref(NodeId n, bool ph) {
    auto& ps = state_[n].ph[ph];
    if (ps.map_refs++ > 0) return 0.0f;
    if (!net_.is_gate(n)) return ph ? inv_area_ : 0.0f;
    const Match& m = ps.best;
    assert(m.valid());
    if (m.from_inverter) return inv_area_ + area_ref(n, !ph);
    float a = static_cast<float>(lib_.cell(m.cell).area);
    for (int j = 0; j < m.num_pins; ++j) {
      a += area_ref(m.pin_leaf[j], m.pin_phase[j]);
    }
    return a;
  }
  float area_deref(NodeId n, bool ph) {
    auto& ps = state_[n].ph[ph];
    assert(ps.map_refs > 0);
    if (--ps.map_refs > 0) return 0.0f;
    if (!net_.is_gate(n)) return ph ? inv_area_ : 0.0f;
    const Match& m = ps.best;
    if (m.from_inverter) return inv_area_ + area_deref(n, !ph);
    float a = static_cast<float>(lib_.cell(m.cell).area);
    for (int j = 0; j < m.num_pins; ++j) {
      a += area_deref(m.pin_leaf[j], m.pin_phase[j]);
    }
    return a;
  }
  /// Marginal area of realizing \p m on top of the current cover
  /// (side-effect free probe).
  float match_exact_area(const Match& m, NodeId n, bool ph) {
    if (m.from_inverter) {
      const float a = inv_area_ + area_ref(n, !ph);
      area_deref(n, !ph);
      return a;
    }
    float a = static_cast<float>(lib_.cell(m.cell).area);
    for (int j = 0; j < m.num_pins; ++j) {
      a += area_ref(m.pin_leaf[j], m.pin_phase[j]);
    }
    for (int j = 0; j < m.num_pins; ++j) {
      area_deref(m.pin_leaf[j], m.pin_phase[j]);
    }
    return a;
  }
  /// Detaches / reattaches the children of a phase's current match while
  /// the node's own incoming references stay put.
  void detach_match(NodeId n, bool ph) {
    const Match& m = state_[n].ph[ph].best;
    if (!m.valid()) return;
    if (m.from_inverter) {
      area_deref(n, !ph);
      return;
    }
    for (int j = 0; j < m.num_pins; ++j) {
      area_deref(m.pin_leaf[j], m.pin_phase[j]);
    }
  }
  void attach_match(NodeId n, bool ph) {
    const Match& m = state_[n].ph[ph].best;
    if (!m.valid()) return;
    if (m.from_inverter) {
      area_ref(n, !ph);
      return;
    }
    for (int j = 0; j < m.num_pins; ++j) {
      area_ref(m.pin_leaf[j], m.pin_phase[j]);
    }
  }
  /// @}

  /// Leaf cost accessors treat PIs/constants as free in phase 0 and as one
  /// inverter in phase 1.
  float leaf_arrival(NodeId n, bool ph) const {
    return state_[n].ph[ph].arrival;
  }
  float leaf_flow(NodeId n, bool ph) const {
    return state_[n].ph[ph].area_flow;
  }

  void init_source(NodeId n) {
    auto& st = state_[n];
    st.ph[0].arrival = 0.0f;
    st.ph[0].area_flow = 0.0f;
    st.ph[0].best = Match{};
    st.ph[1].arrival = inv_delay_;
    st.ph[1].area_flow = inv_area_;
    st.ph[1].best = Match{};
    st.ph[1].best.from_inverter = true;
  }

  /// NPN canonicalization cache keyed by (support size, function).
  const NpnCanonResult& canon_of(Tt6 f, int m) {
    const std::uint32_t key = (static_cast<std::uint32_t>(m) << 16) |
                              static_cast<std::uint32_t>(f & tt6_mask(4));
    auto it = canon_cache_.find(key);
    if (it == canon_cache_.end()) {
      it = canon_cache_.emplace(key, npn_canonicalize_exact(f, m)).first;
    }
    return it->second;
  }

  /// Enumerates all library matches of \p cut; calls fn(match, out_phase).
  template <typename Fn>
  void for_each_match(const Cut& cut, const Fn& fn) {
    // Shrink the cut function to its true support.
    Tt6 g = cut.function;
    std::array<int, 6> shrink_map{};
    const int m = tt6_shrink_support(g, cut.size, shrink_map);
    if (m == 0 || m > 4) return;  // constant or too wide for cells

    const auto& canon = canon_of(g, m);
    const auto* entries = lib_.matches(canon.canon, m);
    if (entries == nullptr) return;

    for (const auto& entry : *entries) {
      const Cell& cell = lib_.cell(entry.cell);
      const NpnMatch nm = npn_match(canon.transform, entry.transform);
      Match match;
      match.cell = entry.cell;
      match.num_pins = cell.num_pins;
      float arrival = 0.0f;
      float flow = static_cast<float>(cell.area);
      for (int j = 0; j < cell.num_pins; ++j) {
        const NodeId leaf = cut.leaves[shrink_map[nm.pin_to_leaf[j]]];
        const bool lph = (nm.pin_negation >> j) & 1u;
        match.pin_leaf[j] = leaf;
        match.pin_phase[j] = lph;
        arrival = std::max(arrival, leaf_arrival(leaf, lph) +
                                        static_cast<float>(cell.pin_delays[j]));
        flow += leaf_flow(leaf, lph) / state_[leaf].est_refs;
      }
      match.arrival = arrival;
      match.area_flow = flow;
      fn(match, nm.output_negation);
    }
  }

  void consider_match(NodeId n, Mode mode, const Cut& cut) {
    for_each_match(cut, [&](const Match& match, bool out_ph) {
      if (mode == Mode::kExactArea) {
        Match exact = match;
        exact.area_flow = match_exact_area(exact, n, out_ph);
        update_best(state_[n].ph[out_ph], exact, mode);
      } else {
        update_best(state_[n].ph[out_ph], match, mode);
      }
    });
  }

  void update_best(PhaseState& ps, const Match& match, Mode mode) {
    if (!ps.best.valid()) {
      ps.best = match;
      ps.arrival = match.arrival;
      ps.area_flow = match.area_flow;
      return;
    }
    bool better;
    if (mode == Mode::kDelay &&
        params_.objective == AsicMapParams::Objective::kDelay) {
      better = std::make_pair(match.arrival, match.area_flow) <
               std::make_pair(ps.arrival, ps.area_flow);
    } else {
      // Area-first, but do not violate the phase's required time.  When
      // nothing is feasible, race back toward feasibility (arrival first):
      // comparing area there lets slack violations snowball across passes.
      const float req = ps.required;
      const bool m_ok = match.arrival <= req;
      const bool b_ok = ps.arrival <= req;
      if (m_ok != b_ok) {
        better = m_ok;
      } else if (!m_ok) {
        better = std::make_pair(match.arrival, match.area_flow) <
                 std::make_pair(ps.arrival, ps.area_flow);
      } else {
        better = std::make_pair(match.area_flow, match.arrival) <
                 std::make_pair(ps.area_flow, ps.arrival);
      }
    }
    if (better) {
      ps.best = match;
      ps.arrival = match.arrival;
      ps.area_flow = match.area_flow;
    }
  }

  void inverter_closure(NodeId n, Mode mode) {
    auto& st = state_[n];
    for (int dir = 0; dir < 2; ++dir) {
      for (int ph = 0; ph < 2; ++ph) {
        const PhaseState& other = st.ph[1 - ph];
        if (!other.best.valid()) continue;
        Match inv;
        inv.from_inverter = true;
        inv.arrival = other.arrival + inv_delay_;
        inv.area_flow = mode == Mode::kExactArea
                            ? match_exact_area(inv, n, ph != 0)
                            : other.area_flow + inv_area_;
        update_best(st.ph[ph], inv, mode);
      }
    }
  }

  void mapping_pass(Mode mode) {
    // Persistent enumerator: reset() keeps the cut arena across passes.
    enumerator_.reset();
    // Priority cuts: rank every cut by the cost of its best library match,
    // so cheap-to-realize structures survive the per-node cut cap even when
    // choice merging floods the set.
    const bool delay_priority =
        params_.objective == AsicMapParams::Objective::kDelay;
    auto annotate = [&](NodeId n, Cut& c) {
      c.delay = 0.0f;
      c.area_flow = 0.0f;
      if (!net_.is_gate(n)) return;
      c.delay = kInf;
      c.area_flow = kInf;
      for_each_match(c, [&](const Match& match, bool /*out_ph*/) {
        const bool better =
            delay_priority
                ? std::make_pair(match.arrival, match.area_flow) <
                      std::make_pair(c.delay, c.area_flow)
                : std::make_pair(match.area_flow, match.arrival) <
                      std::make_pair(c.area_flow, c.delay);
        if (better) {
          c.delay = match.arrival;
          c.area_flow = match.area_flow;
        }
      });
    };
    auto cut_better = [&](const Cut& a, const Cut& b) {
      if (a.is_trivial() != b.is_trivial()) return b.is_trivial();
      if (delay_priority) {
        if (a.delay != b.delay) return a.delay < b.delay;
        if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
      } else {
        if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
        if (a.delay != b.delay) return a.delay < b.delay;
      }
      return a.size < b.size;
    };

    const bool exact = mode == Mode::kExactArea;
    for (const NodeId n : order_) {
      if (!net_.is_gate(n)) {
        enumerator_.run_single(n, annotate, cut_better);
        init_source(n);
        continue;
      }
      auto& st = state_[n];

      // Exact mode: remove this node's phases from the live cover so the
      // probes measure true marginal areas; restore afterwards with the
      // (possibly new) matches.  The phase realized as an inverter of the
      // other holds an internal reference on it, so it must be drained
      // first -- draining the other phase first would consume that
      // reference and the inverter's release would double-deref.
      std::uint32_t removed[2] = {0, 0};
      if (exact) {
        assert(!(st.ph[0].best.from_inverter &&
                 st.ph[1].best.from_inverter));
        const int first = st.ph[0].best.from_inverter ? 0 : 1;
        for (const int ph : {first, 1 - first}) {
          while (st.ph[ph].map_refs > 0) {
            area_deref(n, ph != 0);
            ++removed[ph];
          }
        }
      }

      st.ph[0].best = Match{};
      st.ph[1].best = Match{};
      st.ph[0].arrival = st.ph[1].arrival = kInf;
      st.ph[0].area_flow = st.ph[1].area_flow = kInf;

      enumerator_.run_single(n, annotate, cut_better);
      for (const Cut& cut : enumerator_.cuts(n)) {
        if (cut.is_trivial()) continue;
        consider_match(n, mode, cut);
      }
      inverter_closure(n, mode);
      assert((st.ph[0].best.valid() || st.ph[1].best.valid()) &&
             "library cannot realize a node: missing base cells");
      assert(st.ph[0].best.valid() && st.ph[1].best.valid());

      if (exact) {
        for (int ph = 0; ph < 2; ++ph) {
          for (std::uint32_t k = 0; k < removed[ph]; ++k) {
            area_ref(n, ph != 0);
          }
        }
      }
    }
  }

  void compute_required() {
    for (auto& st : state_) {
      st.ph[0].required = kInf;
      st.ph[1].required = kInf;
    }

    // Walk the current cover to count real references, then blend them into
    // the fanout estimates (choice cones inflate raw fanout counts, which
    // would otherwise make area flow over-optimistic about sharing).
    {
      std::vector<std::array<std::uint32_t, 2>> refs(
          state_.size(), std::array<std::uint32_t, 2>{0, 0});
      std::vector<std::pair<NodeId, bool>> visit;
      for (const Signal s : net_.pos()) {
        if (refs[s.node()][s.complemented()]++ == 0 &&
            net_.is_gate(s.node())) {
          visit.push_back({s.node(), s.complemented()});
        }
      }
      std::size_t head = 0;
      while (head < visit.size()) {
        const auto [n, ph] = visit[head++];
        const Match& m = state_[n].ph[ph].best;
        if (m.from_inverter) {
          if (refs[n][!ph]++ == 0 && net_.is_gate(n)) {
            visit.push_back({n, !ph});
          }
          continue;
        }
        for (int j = 0; j < m.num_pins; ++j) {
          const NodeId leaf = m.pin_leaf[j];
          if (refs[leaf][m.pin_phase[j]]++ == 0 && net_.is_gate(leaf)) {
            visit.push_back({leaf, m.pin_phase[j]});
          }
        }
      }
      for (NodeId n = 0; n < state_.size(); ++n) {
        const float total = static_cast<float>(refs[n][0] + refs[n][1]);
        state_[n].est_refs =
            std::max(1.0f, (state_[n].est_refs + 2.0f * total) / 3.0f);
        // Seed the live-cover counters used by exact-area passes.
        state_[n].ph[0].map_refs = refs[n][0];
        state_[n].ph[1].map_refs = refs[n][1];
      }
    }
    float target = 0.0f;
    if (params_.objective == AsicMapParams::Objective::kDelay) {
      for (const Signal s : net_.pos()) {
        target = std::max(target,
                          state_[s.node()].ph[s.complemented()].arrival);
      }
      // Freeze the delay target at the first (delay-optimal) pass so later
      // area-recovery passes cannot ratchet the budget upward; an optional
      // relaxation factor trades a bounded delay slack for area.
      if (target_delay_ < 0.0f) {
        target_delay_ =
            target * (1.0f + static_cast<float>(params_.delay_relaxation));
      }
      target = std::min(target * (1.0f + static_cast<float>(
                                             params_.delay_relaxation)),
                        target_delay_);
    } else {
      target = kInf;
    }
    for (const Signal s : net_.pos()) {
      auto& ps = state_[s.node()].ph[s.complemented()];
      ps.required = std::min(ps.required, target);
    }

    // Reverse sweep over the mapping order propagates required times; the
    // inverter link between the two phases of one node is handled first.
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      const NodeId n = *it;
      auto& st = state_[n];
      for (int ph = 0; ph < 2; ++ph) {
        if (st.ph[ph].best.from_inverter) {
          st.ph[1 - ph].required = std::min(
              st.ph[1 - ph].required, st.ph[ph].required - inv_delay_);
        }
      }
      if (!net_.is_gate(n)) continue;
      for (int ph = 0; ph < 2; ++ph) {
        const Match& m = st.ph[ph].best;
        if (!m.valid() || m.from_inverter) continue;
        const Cell& cell = lib_.cell(m.cell);
        for (int j = 0; j < m.num_pins; ++j) {
          auto& ls = state_[m.pin_leaf[j]].ph[m.pin_phase[j]];
          ls.required =
              std::min(ls.required,
                       st.ph[ph].required -
                           static_cast<float>(cell.pin_delays[j]));
        }
      }
    }
  }

  CellNetlist extract(AsicMapStats* stats) {
    CellNetlist out;
    out.library = &lib_;
    out.num_pis = static_cast<int>(net_.num_pis());

    // Memoized reference per (node, phase).
    std::vector<std::array<std::int32_t, 2>> ref(net_.size(), {-1, -1});
    for (std::size_t i = 0; i < net_.num_pis(); ++i) {
      ref[net_.pi_at(i)][0] = static_cast<std::int32_t>(i);
    }

    std::size_t inverters = 0;
    // Iterative demand-driven extraction.
    struct Frame {
      NodeId n;
      bool ph;
      int stage;
    };
    auto extract_signal = [&](NodeId root, bool root_ph) {
      std::vector<Frame> stack{{root, root_ph, 0}};
      while (!stack.empty()) {
        auto& [n, ph, stage] = stack.back();
        if (ref[n][ph] >= 0) {
          stack.pop_back();
          continue;
        }
        // PIs in phase 1: an inverter on the PI.
        if (!net_.is_gate(n)) {
          assert(net_.is_pi(n) && ph);
          CellNetlist::Instance inst;
          inst.cell = lib_.inverter();
          inst.fanins = {ref[n][0]};
          ref[n][1] =
              static_cast<std::int32_t>(out.num_pis + out.instances.size());
          out.instances.push_back(std::move(inst));
          ++inverters;
          stack.pop_back();
          continue;
        }
        const Match& m = state_[n].ph[ph].best;
        assert(m.valid());
        if (m.from_inverter) {
          if (ref[n][!ph] < 0) {
            if (stage == 0) {
              stage = 1;
              stack.push_back({n, !ph, 0});
              continue;
            }
          }
          CellNetlist::Instance inst;
          inst.cell = lib_.inverter();
          inst.fanins = {ref[n][!ph]};
          ref[n][ph] =
              static_cast<std::int32_t>(out.num_pis + out.instances.size());
          out.instances.push_back(std::move(inst));
          ++inverters;
          stack.pop_back();
          continue;
        }
        if (stage == 0) {
          stage = 1;
          bool pushed = false;
          for (int j = 0; j < m.num_pins; ++j) {
            if (ref[m.pin_leaf[j]][m.pin_phase[j]] < 0) {
              stack.push_back({m.pin_leaf[j], m.pin_phase[j], 0});
              pushed = true;
            }
          }
          if (pushed) continue;
        }
        CellNetlist::Instance inst;
        inst.cell = m.cell;
        for (int j = 0; j < m.num_pins; ++j) {
          inst.fanins.push_back(ref[m.pin_leaf[j]][m.pin_phase[j]]);
        }
        ref[n][ph] =
            static_cast<std::int32_t>(out.num_pis + out.instances.size());
        out.instances.push_back(std::move(inst));
        stack.pop_back();
      }
    };

    for (const Signal s : net_.pos()) {
      if (net_.is_const0(s.node())) {
        out.po_refs.push_back(-1);
        out.po_const.push_back(true);
        out.po_const_value.push_back(s.complemented());
        continue;
      }
      extract_signal(s.node(), s.complemented());
      out.po_refs.push_back(ref[s.node()][s.complemented()]);
      out.po_const.push_back(false);
      out.po_const_value.push_back(false);
    }

    // Honest area/delay from the actual instances.
    double area = 0.0;
    std::vector<double> arrival(out.num_pis + out.instances.size(), 0.0);
    for (std::size_t i = 0; i < out.instances.size(); ++i) {
      const auto& inst = out.instances[i];
      const Cell& cell = lib_.cell(inst.cell);
      area += cell.area;
      double arr = 0.0;
      for (std::size_t j = 0; j < inst.fanins.size(); ++j) {
        arr = std::max(arr, arrival[inst.fanins[j]] + cell.pin_delays[j]);
      }
      arrival[out.num_pis + i] = arr;
    }
    double delay = 0.0;
    for (std::size_t i = 0; i < out.po_refs.size(); ++i) {
      if (!out.po_const[i]) delay = std::max(delay, arrival[out.po_refs[i]]);
    }
    out.area = area;
    out.delay = delay;

    if (stats) {
      stats->num_instances = out.instances.size();
      stats->num_inverters = inverters;
      stats->area = area;
      stats->delay = delay;
    }
    return out;
  }

  const Network& net_;
  const TechLibrary& lib_;
  AsicMapParams params_;
  std::vector<NodeState> state_;
  std::vector<NodeId> order_;
  CutEnumerator enumerator_;
  float inv_delay_ = 0.0f;
  float inv_area_ = 0.0f;
  float target_delay_ = -1.0f;  ///< frozen after the first delay pass
  std::unordered_map<std::uint32_t, NpnCanonResult> canon_cache_;
};

}  // namespace

CellNetlist asic_map(const Network& net, const TechLibrary& lib,
                     const AsicMapParams& params, AsicMapStats* stats) {
  AsicMapper mapper(net, lib, params);
  return mapper.run(stats);
}

}  // namespace mcs
