/// \file techlib.hpp
/// \brief Standard-cell technology libraries and Boolean matching index.
///
/// The ASIC experiments of the paper use the ASAP7 7nm predictive PDK.  We
/// ship `asap7_mini()`, a reduced combinational cell set whose areas (um^2)
/// and pin delays (ps) are scaled from published ASAP7 RVT figures -- the
/// mapper consumes only (function, area, pin delays), so relative
/// comparisons between flows are preserved (see DESIGN.md, substitutions).
/// A genlib-style parser is provided for external libraries.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcs/tt/npn.hpp"
#include "mcs/tt/tt6.hpp"

namespace mcs {

/// One combinational cell.
struct Cell {
  std::string name;
  double area = 0.0;
  int num_pins = 0;
  Tt6 function = 0;  ///< over pins 0..num_pins-1
  std::vector<double> pin_delays;  ///< worst-case pin-to-output delay (ps)

  double max_pin_delay() const noexcept {
    double d = 0.0;
    for (const double p : pin_delays) d = std::max(d, p);
    return d;
  }
};

/// A library with an NPN matching index.
class TechLibrary {
 public:
  /// A cell that can realize an NPN class, with its canonicalizing
  /// transform (see NpnMatch composition in npn.hpp).
  struct MatchEntry {
    int cell = -1;
    NpnTransform transform;
  };

  explicit TechLibrary(std::string name = "lib") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void add_cell(Cell cell);
  const std::vector<Cell>& cells() const noexcept { return cells_; }
  const Cell& cell(int i) const noexcept { return cells_[i]; }

  /// Builds the NPN matching index; must be called after the last add_cell.
  void prepare_matching();

  /// Cells matching the NPN class of \p canon for functions of exactly
  /// \p num_vars (full-support) variables; nullptr when none.
  const std::vector<MatchEntry>* matches(Tt6 canon, int num_vars) const;

  /// Index of the smallest-area inverter (required for phase assignment).
  int inverter() const noexcept { return inverter_; }
  /// Index of the smallest-area buffer, -1 if absent.
  int buffer() const noexcept { return buffer_; }

  /// The reduced ASAP7-like library used throughout the benches.
  static TechLibrary asap7_mini();

  /// The same library without XOR3/XNOR3/MAJ/MAJI cells (NAND/NOR/AOI
  /// style only).  Used by the library ablation: heterogeneous MCH
  /// candidates can only pay off in cells the library actually offers.
  static TechLibrary asap7_mini_basic();

  /// Parses a genlib-format description (GATE lines with SOP-style
  /// expressions over pin names; PIN lines supply delays).
  static TechLibrary parse_genlib(const std::string& text,
                                  std::string name = "genlib");

 private:
  std::string name_;
  std::vector<Cell> cells_;
  int inverter_ = -1;
  int buffer_ = -1;
  // Key: (num_vars << 16) | canonical truth table (<= 4 vars -> 16 bits).
  std::unordered_map<std::uint32_t, std::vector<MatchEntry>> index_;
};

}  // namespace mcs
