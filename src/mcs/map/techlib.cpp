#include "mcs/map/techlib.hpp"

#include <cassert>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace mcs {

void TechLibrary::add_cell(Cell cell) {
  assert(cell.num_pins <= 4 && "matching index supports up to 4-pin cells");
  assert(static_cast<int>(cell.pin_delays.size()) == cell.num_pins);
  cells_.push_back(std::move(cell));
}

void TechLibrary::prepare_matching() {
  index_.clear();
  inverter_ = -1;
  buffer_ = -1;
  for (int i = 0; i < static_cast<int>(cells_.size()); ++i) {
    const Cell& c = cells_[i];
    // Cells must have full support over their declared pins.
    const auto support = tt6_support(c.function, c.num_pins);
    assert(support == (1u << c.num_pins) - 1u &&
           "cell function must depend on every pin");
    (void)support;
    const auto canon = npn_canonicalize_exact(c.function, c.num_pins);
    const std::uint32_t key =
        (static_cast<std::uint32_t>(c.num_pins) << 16) |
        static_cast<std::uint32_t>(canon.canon & tt6_mask(4));
    index_[key].push_back({i, canon.transform});

    if (c.num_pins == 1) {
      const bool is_inv = tt6_equal(c.function, ~tt6_var(0), 1);
      const bool is_buf = tt6_equal(c.function, tt6_var(0), 1);
      if (is_inv && (inverter_ < 0 || c.area < cells_[inverter_].area)) {
        inverter_ = i;
      }
      if (is_buf && (buffer_ < 0 || c.area < cells_[buffer_].area)) {
        buffer_ = i;
      }
    }
  }
  assert(inverter_ >= 0 && "library must contain an inverter");
}

const std::vector<TechLibrary::MatchEntry>* TechLibrary::matches(
    Tt6 canon, int num_vars) const {
  const std::uint32_t key = (static_cast<std::uint32_t>(num_vars) << 16) |
                            static_cast<std::uint32_t>(canon & tt6_mask(4));
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// asap7_mini
// ---------------------------------------------------------------------------

namespace {

/// Convenience: builds a cell with a uniform pin delay.
Cell make_cell(std::string name, double area, int pins, Tt6 f, double delay) {
  Cell c;
  c.name = std::move(name);
  c.area = area;
  c.num_pins = pins;
  c.function = tt6_replicate(f, pins);
  c.pin_delays.assign(pins, delay);
  return c;
}

}  // namespace

TechLibrary TechLibrary::asap7_mini() {
  TechLibrary lib("asap7_mini");
  const Tt6 a = tt6_var(0), b = tt6_var(1), c = tt6_var(2), d = tt6_var(3);

  // Areas in um^2 and delays in ps, scaled from published ASAP7 RVT data
  // (7.5-track cells; one representative drive strength per function).
  lib.add_cell(make_cell("INVx1", 0.054, 1, ~a, 7.5));
  lib.add_cell(make_cell("BUFx2", 0.108, 1, a, 13.0));
  lib.add_cell(make_cell("NAND2x1", 0.081, 2, ~(a & b), 9.8));
  lib.add_cell(make_cell("NOR2x1", 0.081, 2, ~(a | b), 12.4));
  lib.add_cell(make_cell("AND2x2", 0.135, 2, a & b, 16.8));
  lib.add_cell(make_cell("OR2x2", 0.135, 2, a | b, 18.9));
  lib.add_cell(make_cell("NAND3x1", 0.135, 3, ~(a & b & c), 13.1));
  lib.add_cell(make_cell("NOR3x1", 0.135, 3, ~(a | b | c), 17.9));
  lib.add_cell(make_cell("AND3x1", 0.162, 3, a & b & c, 19.5));
  lib.add_cell(make_cell("OR3x1", 0.162, 3, a | b | c, 22.2));
  lib.add_cell(make_cell("NAND4x1", 0.189, 4, ~(a & b & c & d), 16.7));
  lib.add_cell(make_cell("NOR4x1", 0.189, 4, ~(a | b | c | d), 23.6));
  lib.add_cell(make_cell("XOR2x1", 0.216, 2, a ^ b, 21.0));
  lib.add_cell(make_cell("XNOR2x1", 0.216, 2, ~(a ^ b), 21.0));
  lib.add_cell(make_cell("XOR3x1", 0.324, 3, a ^ b ^ c, 30.2));
  lib.add_cell(make_cell("XNOR3x1", 0.324, 3, ~(a ^ b ^ c), 30.2));
  lib.add_cell(make_cell("AOI21x1", 0.108, 3, ~((a & b) | c), 13.7));
  lib.add_cell(make_cell("OAI21x1", 0.108, 3, ~((a | b) & c), 12.9));
  lib.add_cell(make_cell("AOI22x1", 0.135, 4, ~((a & b) | (c & d)), 15.8));
  lib.add_cell(make_cell("OAI22x1", 0.135, 4, ~((a | b) & (c | d)), 15.2));
  lib.add_cell(make_cell("AO21x1", 0.162, 3, (a & b) | c, 18.3));
  lib.add_cell(make_cell("OA21x1", 0.162, 3, (a | b) & c, 17.6));
  lib.add_cell(make_cell("AO22x1", 0.189, 4, (a & b) | (c & d), 20.4));
  lib.add_cell(make_cell("OA22x1", 0.189, 4, (a | b) & (c | d), 19.7));
  const Tt6 maj = (a & b) | (a & c) | (b & c);
  lib.add_cell(make_cell("MAJx2", 0.243, 3, maj, 23.4));
  lib.add_cell(make_cell("MAJIx1", 0.216, 3, ~maj, 18.9));
  lib.add_cell(make_cell("MUX2x1", 0.216, 3, (c & b) | (~c & a), 22.8));
  lib.add_cell(make_cell("AOI211x1", 0.135, 4, ~((a & b) | c | d), 17.4));
  lib.add_cell(make_cell("OAI211x1", 0.135, 4, ~((a | b) & c & d), 16.6));

  lib.prepare_matching();
  return lib;
}

TechLibrary TechLibrary::asap7_mini_basic() {
  const TechLibrary full = asap7_mini();
  TechLibrary lib("asap7_mini_basic");
  for (const Cell& c : full.cells()) {
    if (c.name.rfind("XOR3", 0) == 0 || c.name.rfind("XNOR3", 0) == 0 ||
        c.name.rfind("MAJ", 0) == 0) {
      continue;
    }
    lib.add_cell(c);
  }
  lib.prepare_matching();
  return lib;
}

// ---------------------------------------------------------------------------
// genlib parsing
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser for genlib boolean expressions:
///   expr   := term ('+' term)*
///   term   := factor ('*'? factor)*      (implicit AND by juxtaposition)
///   factor := '!' factor | atom '\''* | '(' expr ')' | ident | CONST0/1
class ExprParser {
 public:
  ExprParser(const std::string& s, std::vector<std::string>& pin_names)
      : s_(s), pins_(pin_names) {}

  Tt6 parse() {
    const Tt6 r = parse_or();
    skip_ws();
    if (pos_ != s_.size()) {
      throw std::runtime_error("genlib: trailing characters in expression");
    }
    return r;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool peek_is(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }
  bool atom_follows() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '(' || c == '!';
  }

  Tt6 parse_or() {
    Tt6 r = parse_and();
    while (peek_is('+')) {
      ++pos_;
      r |= parse_and();
    }
    return r;
  }

  Tt6 parse_and() {
    Tt6 r = parse_factor();
    for (;;) {
      if (peek_is('*')) {
        ++pos_;
        r &= parse_factor();
      } else if (atom_follows()) {
        r &= parse_factor();  // implicit AND
      } else {
        return r;
      }
    }
  }

  Tt6 parse_factor() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("genlib: truncated expr");
    Tt6 r;
    if (s_[pos_] == '!') {
      ++pos_;
      r = ~parse_factor();
    } else if (s_[pos_] == '(') {
      ++pos_;
      r = parse_or();
      if (!peek_is(')')) throw std::runtime_error("genlib: missing ')'");
      ++pos_;
    } else {
      std::string ident;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '_')) {
        ident += s_[pos_++];
      }
      if (ident.empty()) throw std::runtime_error("genlib: expected ident");
      if (ident == "CONST0") {
        r = tt6_const0();
      } else if (ident == "CONST1") {
        r = tt6_const1();
      } else {
        int idx = -1;
        for (std::size_t i = 0; i < pins_.size(); ++i) {
          if (pins_[i] == ident) idx = static_cast<int>(i);
        }
        if (idx < 0) {
          idx = static_cast<int>(pins_.size());
          pins_.push_back(ident);
          if (idx >= 4) throw std::runtime_error("genlib: > 4 pins");
        }
        r = tt6_var(idx);
      }
    }
    // Postfix complement(s): a'.
    while (peek_is('\'')) {
      ++pos_;
      r = ~r;
    }
    return r;
  }

  const std::string& s_;
  std::vector<std::string>& pins_;
  std::size_t pos_ = 0;
};

}  // namespace

TechLibrary TechLibrary::parse_genlib(const std::string& text,
                                      std::string name) {
  TechLibrary lib(std::move(name));
  std::istringstream in(text);
  std::string token;

  struct PendingCell {
    Cell cell;
    std::vector<std::string> pin_names;
    std::unordered_map<std::string, double> pin_delay_by_name;
    double wildcard_delay = -1.0;
  };
  std::optional<PendingCell> pending;

  auto flush = [&]() {
    if (!pending) return;
    auto& pc = *pending;
    pc.cell.num_pins = static_cast<int>(pc.pin_names.size());
    pc.cell.function = tt6_replicate(pc.cell.function, pc.cell.num_pins);
    pc.cell.pin_delays.clear();
    for (const auto& pn : pc.pin_names) {
      double dly = pc.wildcard_delay >= 0 ? pc.wildcard_delay : 1.0;
      if (auto it = pc.pin_delay_by_name.find(pn);
          it != pc.pin_delay_by_name.end()) {
        dly = it->second;
      }
      pc.cell.pin_delays.push_back(dly);
    }
    // Constant cells and cells without full support are not matchable.
    const auto support = tt6_support(pc.cell.function, pc.cell.num_pins);
    if (pc.cell.num_pins > 0 &&
        support == (1u << pc.cell.num_pins) - 1u) {
      lib.add_cell(std::move(pc.cell));
    }
    pending.reset();
  };

  std::string line;
  while (std::getline(in, line)) {
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "GATE") {
      flush();
      PendingCell pc;
      double area;
      std::string cell_name;
      if (!(ls >> cell_name >> area)) {
        throw std::runtime_error("genlib: malformed GATE line");
      }
      std::string rest;
      std::getline(ls, rest);
      const auto eq = rest.find('=');
      const auto semi = rest.rfind(';');
      if (eq == std::string::npos || semi == std::string::npos) {
        throw std::runtime_error("genlib: GATE needs out=expr;");
      }
      const std::string expr = rest.substr(eq + 1, semi - eq - 1);
      pc.cell.name = cell_name;
      pc.cell.area = area;
      pc.cell.function = ExprParser(expr, pc.pin_names).parse();
      pending = std::move(pc);
    } else if (kw == "PIN" && pending) {
      // PIN <name|*> <phase> <in_load> <max_load> <rise_dly> <rise_fan>
      //     <fall_dly> <fall_fan>
      std::string pin_name, phase;
      double in_load, max_load, rd, rf, fd, ff;
      if (!(ls >> pin_name >> phase >> in_load >> max_load >> rd >> rf >>
            fd >> ff)) {
        throw std::runtime_error("genlib: malformed PIN line");
      }
      const double delay = std::max(rd, fd);
      if (pin_name == "*") {
        pending->wildcard_delay = delay;
      } else {
        pending->pin_delay_by_name[pin_name] = delay;
      }
    }
  }
  flush();
  lib.prepare_matching();
  return lib;
}

}  // namespace mcs
