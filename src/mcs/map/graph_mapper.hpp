/// \file graph_mapper.hpp
/// \brief Graph mapping: mapping-based representation conversion and logic
/// optimization (paper Sec. III-C and Fig. 5; Calvino et al., ASP-DAC'22).
///
/// Graph mapping covers the subject network with cuts -- exactly like
/// technology mapping, including choice-class merging -- but instead of
/// library cells it instantiates each selected cut as a small optimized
/// structure in a target gate basis.  Used for:
///   - converting between representations (AIG <-> MIG/XMG, Fig. 1),
///   - mapping-based logic optimization iterated to a fixpoint (Fig. 6),
///   - the MCH-based variant that escapes local optima by drawing the
///     candidate structures from a mixed choice network.

#pragma once

#include "mcs/choice/mch.hpp"
#include "mcs/network/network.hpp"
#include "mcs/resyn/basis.hpp"

namespace mcs {

struct GraphMapParams {
  GateBasis target = GateBasis::xmg();
  int cut_size = 4;
  int cut_limit = 8;
  bool use_choices = true;  ///< honor choice classes of the input
  enum class Objective { kDepth, kSize };
  Objective objective = Objective::kSize;
};

struct GraphMapStats {
  std::size_t num_cuts_selected = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::uint32_t depth_before = 0;
  std::uint32_t depth_after = 0;
};

/// One graph-mapping pass: cover with cuts, re-express each selected cut in
/// the target basis (best of the NPN database / SOP / DSD per cut).
Network graph_map(const Network& net, const GraphMapParams& params = {},
                  GraphMapStats* stats = nullptr);

/// Iterates graph_map until neither gate count nor depth improves; this is
/// the "Graph Map" baseline of the paper's Fig. 6 (a local optimum).
Network iterate_graph_map(Network net, const GraphMapParams& params = {},
                          int max_iters = 16, int* iters_done = nullptr);

/// MCH-based graph mapping (Fig. 5): builds the mixed choice network first,
/// then maps with choices so candidates from another representation can win.
Network mch_graph_map(const Network& net, const GraphMapParams& params,
                      const MchParams& mch_params,
                      GraphMapStats* stats = nullptr);

/// Iterated MCH-based graph mapping: alternates MCH construction and
/// choice-aware graph mapping until convergence (the paper's "MCH for
/// Graph Map" flow).
Network iterate_mch_graph_map(Network net, const GraphMapParams& params,
                              const MchParams& mch_params, int max_iters = 16,
                              int* iters_done = nullptr);

}  // namespace mcs
