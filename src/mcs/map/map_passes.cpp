/// \file map_passes.cpp
/// \brief Flow registrations for the choice-aware mappers: `map_lut`
/// (K-LUT FPGA mapping), `map_asic` (standard-cell mapping onto the
/// FlowContext's TechLibrary) and `graph_map` (mapping-based representation
/// conversion / optimization).

#include <cstdio>

#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/graph_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"

// The registrations below use designated initializers and deliberately
// leave defaulted PassInfo/ParamSpec members out; GCC's -Wextra flags
// every omitted member, so silence that one diagnostic here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

void register_map_passes(PassRegistry& registry) {
  registry.add({
      .name = "map_lut",
      .summary = "choice-aware K-LUT mapping",
      .kind = PassKind::kMapping,
      .params = {{.key = "k",
                  .type = ParamType::kInt,
                  .default_value = "6",
                  .help = "LUT size"},
                 {.key = "obj",
                  .type = ParamType::kString,
                  .default_value = "area",
                  .help = "area | delay"},
                 {.key = "choices",
                  .type = ParamType::kBool,
                  .default_value = "true",
                  .help = "use choice classes"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            LutMapParams params;
            params.lut_size = static_cast<int>(args.get_int("k"));
            params.use_choices = args.get_bool("choices");
            const std::string obj = args.get_string("obj");
            if (obj == "delay") {
              params.objective = LutMapParams::Objective::kDelay;
            } else if (obj == "area") {
              params.objective = LutMapParams::Objective::kArea;
            } else {
              throw FlowError("map_lut: obj must be 'area' or 'delay'");
            }
            if (params.lut_size < 2 || params.lut_size > 6) {
              throw FlowError("map_lut: k must be in [2, 6]");
            }
            LutMapStats stats;
            ctx.luts = lut_map(ctx.net, params, &stats);
            ctx.note = std::to_string(stats.num_choice_cuts_used) +
                       " choice cuts used";
          },
  });

  registry.add({
      .name = "map_asic",
      .summary = "choice-aware standard-cell mapping (FlowContext library)",
      .kind = PassKind::kMapping,
      .params = {{.key = "obj",
                  .type = ParamType::kString,
                  .default_value = "delay",
                  .help = "delay | area"},
                 {.key = "relax",
                  .type = ParamType::kDouble,
                  .default_value = "0",
                  .help = "delay-target relaxation fraction"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            AsicMapParams params;
            const std::string obj = args.get_string("obj");
            if (obj == "area") {
              params.objective = AsicMapParams::Objective::kArea;
            } else if (obj == "delay") {
              params.objective = AsicMapParams::Objective::kDelay;
            } else {
              throw FlowError("map_asic: obj must be 'delay' or 'area'");
            }
            params.delay_relaxation = args.get_double("relax");
            ctx.cells = asic_map(ctx.net, ctx.lib, params);
            if (ctx.verbose) {
              for (const auto& [name, count] : ctx.cells->cell_histogram()) {
                std::printf("  %-10s x%d\n", name.c_str(), count);
              }
            }
          },
  });

  registry.add({
      .name = "graph_map",
      .summary = "graph mapping into a target representation",
      .kind = PassKind::kTransform,
      .params = {{.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "target basis"},
                 {.key = "obj",
                  .type = ParamType::kString,
                  .default_value = "size",
                  .help = "size | depth"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            GraphMapParams params;
            params.target = args.get_basis("basis");
            const std::string obj = args.get_string("obj");
            if (obj == "depth") {
              params.objective = GraphMapParams::Objective::kDepth;
            } else if (obj == "size") {
              params.objective = GraphMapParams::Objective::kSize;
            } else {
              throw FlowError("graph_map: obj must be 'size' or 'depth'");
            }
            ctx.net = graph_map(ctx.net, params);
          },
  });
}

}  // namespace mcs::flow
