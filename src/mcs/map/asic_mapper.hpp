/// \file asic_mapper.hpp
/// \brief Choice-aware standard-cell technology mapping (paper, Alg. 3,
/// ASIC flavor).
///
/// A phase-aware, cut-based structural mapper in the style of ABC's `map`:
/// every node is matched in both polarities against the library via NPN
/// Boolean matching, inverters close the phase gaps, and a dynamic program
/// selects the cheapest cover under the chosen objective.  With MCH
/// networks, the cut sets of choice members are merged into their
/// representatives first, so candidates written in a different logic
/// representation compete through their actual *technology* cost -- the
/// paper's central mechanism for defeating structural bias.

#pragma once

#include <string>
#include <vector>

#include "mcs/map/techlib.hpp"
#include "mcs/network/network.hpp"

namespace mcs {

struct AsicMapParams {
  enum class Objective { kDelay, kArea };
  Objective objective = Objective::kDelay;
  int cut_size = 4;   ///< bounded by 4-pin cells
  int cut_limit = 8;
  bool use_choices = true;
  int area_flow_rounds = 2;
  int exact_area_rounds = 2;  ///< reference-counted area recovery rounds

  /// For the delay objective: fraction by which the frozen delay target is
  /// relaxed before area recovery (0.0 = strictly delay-optimal; ~0.1-0.2
  /// gives the "balanced" trade-off of the paper's MCH-balanced flow).
  double delay_relaxation = 0.0;
};

/// A mapped gate-level netlist.  Reference space: 0..num_pis-1 are PIs,
/// num_pis + i is instances[i].
struct CellNetlist {
  struct Instance {
    int cell = -1;                     ///< index into the library
    std::vector<std::int32_t> fanins;  ///< references (no complements)
  };
  const TechLibrary* library = nullptr;
  int num_pis = 0;
  std::vector<Instance> instances;
  std::vector<std::int32_t> po_refs;
  std::vector<bool> po_const;  ///< POs tied to a constant
  std::vector<bool> po_const_value;

  double area = 0.0;   ///< total cell area (um^2)
  double delay = 0.0;  ///< critical-path delay (ps)

  std::size_t size() const noexcept { return instances.size(); }

  /// Word-parallel evaluation (for verification).
  std::vector<std::uint64_t> simulate(
      const std::vector<std::uint64_t>& pi_values) const;

  /// Instance count per cell name (reporting).
  std::vector<std::pair<std::string, int>> cell_histogram() const;
};

struct AsicMapStats {
  std::size_t num_instances = 0;
  std::size_t num_inverters = 0;
  double area = 0.0;
  double delay = 0.0;
};

/// Maps \p net onto \p lib.  Precondition: the library must contain an
/// inverter and be able to realize every gate type present in the subject
/// network through some cut match -- in practice, cells for the AND2 class
/// always, the XOR2 class when the network has XOR2 nodes, and the
/// MAJ3/XOR3 classes when it has native MAJ3/XOR3 nodes (asap7_mini covers
/// all four; asap7_mini_basic only the first two).  A violation trips an
/// assertion during the first mapping pass.
CellNetlist asic_map(const Network& net, const TechLibrary& lib,
                     const AsicMapParams& params = {},
                     AsicMapStats* stats = nullptr);

}  // namespace mcs
