/// \file sta.hpp
/// \brief Static timing analysis over mapped cell netlists.
///
/// Computes arrival/required/slack per instance under the library's
/// pin-delay model and extracts the critical path.  Used by the flow
/// examples and benches to report *where* the delay of a mapped netlist
/// comes from -- e.g. to show which cells the MCH mapper put on the
/// critical path versus the baseline.

#pragma once

#include <string>
#include <vector>

#include "mcs/map/asic_mapper.hpp"

namespace mcs {

struct TimingInfo {
  /// Per-reference (PIs then instances) arrival and required times.
  std::vector<double> arrival;
  std::vector<double> required;
  double clock = 0.0;  ///< analysis period == critical delay

  double slack(std::size_t ref) const noexcept {
    return required[ref] - arrival[ref];
  }
};

/// Runs STA on \p netlist with the required time at every PO set to the
/// critical delay (zero worst slack).
TimingInfo analyze_timing(const CellNetlist& netlist);

/// One step of a reported path.
struct PathStep {
  std::int32_t ref;       ///< reference (PI or instance)
  std::string cell_name;  ///< empty for PIs
  double arrival = 0.0;
};

/// Extracts a critical path (PO with zero slack back to a PI).
std::vector<PathStep> critical_path(const CellNetlist& netlist,
                                    const TimingInfo& timing);

/// Prints a human-readable timing report (critical path + slack histogram).
void report_timing(const CellNetlist& netlist, std::ostream& os);

}  // namespace mcs
