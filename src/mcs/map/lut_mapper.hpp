/// \file lut_mapper.hpp
/// \brief Choice-aware K-LUT technology mapping (paper, Algorithm 3).
///
/// A classic priority-cuts FPGA mapper (delay pass, area-flow recovery,
/// exact-area recovery) extended with MCH support: cut sets of choice-class
/// members are folded into their representatives before ranking, so a cut
/// originating from an XMG candidate competes on equal terms with the
/// original AIG structure and wins exactly when its technology cost (LUT
/// count / depth) is lower.  This is the mapper behind the paper's EPFL
/// Best-Results experiment (Table II).

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/cut/cut.hpp"
#include "mcs/network/network.hpp"

namespace mcs {

struct LutMapParams {
  int lut_size = 6;   ///< K
  int cut_limit = 8;  ///< priority cuts per node
  bool use_choices = true;

  enum class Objective {
    kDelay,  ///< depth-optimal, then recover area under required times
    kArea,   ///< minimum LUT count (depth unconstrained)
  };
  Objective objective = Objective::kArea;

  int area_flow_rounds = 2;
  int exact_area_rounds = 2;
};

/// A mapped LUT network.  Reference space: 0..num_pis-1 are the PIs,
/// num_pis + i is luts[i].
struct LutNetwork {
  struct Lut {
    std::vector<std::int32_t> inputs;  ///< references (see above)
    Tt6 function = 0;                  ///< over the inputs

    friend bool operator==(const Lut&, const Lut&) = default;
  };
  int num_pis = 0;
  std::vector<Lut> luts;
  std::vector<std::int32_t> po_refs;
  std::vector<bool> po_compl;

  /// Structural bit-identity (the LUT-network analogue of
  /// structurally_identical(); used by the mcs::par determinism checks).
  friend bool operator==(const LutNetwork&, const LutNetwork&) = default;

  std::size_t size() const noexcept { return luts.size(); }
  std::uint32_t depth() const;

  /// Evaluates the LUT network on one input assignment (bit i of word i of
  /// \p pi_values ... word-parallel, 64 patterns at a time).
  std::vector<std::uint64_t> simulate(
      const std::vector<std::uint64_t>& pi_values) const;
};

struct LutMapStats {
  std::size_t num_luts = 0;
  std::uint32_t depth = 0;
  std::size_t num_choice_cuts_used = 0;  ///< selected cuts merged from members
};

/// Maps \p net to K-LUTs.  When use_choices is set, \p net may carry MCH/DCH
/// choice classes; otherwise they are ignored.
LutNetwork lut_map(const Network& net, const LutMapParams& params = {},
                   LutMapStats* stats = nullptr);

/// Rebuilds a LUT network as a mixed network (each LUT resynthesized from
/// its truth table).  Used for verification and for iterated flows.
Network lut_network_to_network(const LutNetwork& lnet);

}  // namespace mcs
