#include "mcs/map/sta.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace mcs {

TimingInfo analyze_timing(const CellNetlist& netlist) {
  const std::size_t n = netlist.num_pis + netlist.instances.size();
  TimingInfo t;
  t.arrival.assign(n, 0.0);
  t.required.assign(n, 0.0);

  // Forward: arrival times (instances are stored in topological order).
  for (std::size_t i = 0; i < netlist.instances.size(); ++i) {
    const auto& inst = netlist.instances[i];
    const Cell& cell = netlist.library->cell(inst.cell);
    double arr = 0.0;
    for (std::size_t j = 0; j < inst.fanins.size(); ++j) {
      arr = std::max(arr, t.arrival[inst.fanins[j]] + cell.pin_delays[j]);
    }
    t.arrival[netlist.num_pis + i] = arr;
  }
  for (std::size_t i = 0; i < netlist.po_refs.size(); ++i) {
    if (!netlist.po_const[i]) {
      t.clock = std::max(t.clock, t.arrival[netlist.po_refs[i]]);
    }
  }

  // Backward: required times.
  t.required.assign(n, t.clock);
  for (std::size_t i = netlist.instances.size(); i-- > 0;) {
    const auto& inst = netlist.instances[i];
    const Cell& cell = netlist.library->cell(inst.cell);
    const double req = t.required[netlist.num_pis + i];
    for (std::size_t j = 0; j < inst.fanins.size(); ++j) {
      t.required[inst.fanins[j]] = std::min(
          t.required[inst.fanins[j]], req - cell.pin_delays[j]);
    }
  }
  return t;
}

std::vector<PathStep> critical_path(const CellNetlist& netlist,
                                    const TimingInfo& timing) {
  // Start from the latest PO and walk the max-arrival fanin chain.
  std::int32_t ref = -1;
  for (std::size_t i = 0; i < netlist.po_refs.size(); ++i) {
    if (netlist.po_const[i]) continue;
    if (ref < 0 ||
        timing.arrival[netlist.po_refs[i]] > timing.arrival[ref]) {
      ref = netlist.po_refs[i];
    }
  }
  std::vector<PathStep> path;
  while (ref >= 0) {
    PathStep step;
    step.ref = ref;
    step.arrival = timing.arrival[ref];
    if (ref >= netlist.num_pis) {
      const auto& inst = netlist.instances[ref - netlist.num_pis];
      const Cell& cell = netlist.library->cell(inst.cell);
      step.cell_name = cell.name;
      // The fanin whose (arrival + pin delay) realizes this arrival.
      std::int32_t next = -1;
      for (std::size_t j = 0; j < inst.fanins.size(); ++j) {
        if (std::abs(timing.arrival[inst.fanins[j]] + cell.pin_delays[j] -
                     step.arrival) < 1e-9) {
          next = inst.fanins[j];
          break;
        }
      }
      path.push_back(step);
      ref = next;
    } else {
      path.push_back(step);
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void report_timing(const CellNetlist& netlist, std::ostream& os) {
  const TimingInfo t = analyze_timing(netlist);
  os << "timing report: " << netlist.size() << " cells, critical delay "
     << t.clock << " ps\n";

  os << "critical path:\n";
  for (const PathStep& s : critical_path(netlist, t)) {
    if (s.cell_name.empty()) {
      os << "  pi" << s.ref << "  (arrival " << s.arrival << ")\n";
    } else {
      os << "  " << s.cell_name << " @ref" << s.ref << "  (arrival "
         << s.arrival << ")\n";
    }
  }

  // Slack histogram over instances (5 buckets of clock/5).
  if (t.clock > 0) {
    int buckets[5] = {};
    for (std::size_t i = 0; i < netlist.instances.size(); ++i) {
      const double sl = t.slack(netlist.num_pis + i);
      int b = static_cast<int>(5.0 * sl / t.clock);
      b = std::clamp(b, 0, 4);
      ++buckets[b];
    }
    os << "slack histogram (fraction of period):\n";
    const char* labels[5] = {"0-20%", "20-40%", "40-60%", "60-80%",
                             "80-100%"};
    for (int b = 0; b < 5; ++b) {
      os << "  " << labels[b] << ": " << buckets[b] << " cells\n";
    }
  }
}

}  // namespace mcs
