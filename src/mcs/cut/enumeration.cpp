#include "mcs/cut/enumeration.hpp"

#include <algorithm>
#include <cassert>

namespace mcs {

namespace {

/// Default ranking: fewer leaves first, then lexicographic leaf ids for
/// determinism.
bool default_better(const Cut& a, const Cut& b) {
  if (a.size != b.size) return a.size < b.size;
  return std::lexicographical_compare(a.leaves.begin(),
                                      a.leaves.begin() + a.size,
                                      b.leaves.begin(),
                                      b.leaves.begin() + b.size);
}

}  // namespace

CutEnumerator::CutEnumerator(const Network& net, const CutEnumParams& params)
    : net_(net), params_(params), cut_sets_(net.size()) {
  assert(params_.cut_size <= kMaxCutSize);
}

void CutEnumerator::run(const std::vector<NodeId>& order,
                        const AnnotateFn& annotate, const CompareFn& better) {
  for (const NodeId n : order) run_single(n, annotate, better);
}

void CutEnumerator::run_single(NodeId n, const AnnotateFn& annotate,
                               const CompareFn& better) {
  const CompareFn& cmp = better ? better : CompareFn(default_better);
  if (!net_.is_gate(n)) {
    // PIs and the constant have only the trivial cut.
    Cut t = Cut::trivial(n);
    if (annotate) annotate(n, t);
    cut_sets_[n].assign(1, t);
    return;
  }
  enumerate_node(n, annotate, cmp);
  if (params_.use_choices && net_.has_choice(n)) {
    merge_choice_cuts(n, annotate, cmp);
  }
}

void CutEnumerator::enumerate_node(NodeId n, const AnnotateFn& annotate,
                                   const CompareFn& better) {
  const Node& nd = net_.node(n);
  auto& out = cut_sets_[n];
  out.clear();

  const auto& set_a = cut_sets_[nd.fanin[0].node()];
  const auto& set_b = cut_sets_[nd.fanin[1].node()];
  assert(!set_a.empty() && !set_b.empty() &&
         "fanin cuts missing: order is not topological");

  auto combine = [&](const Cut& ca, const Cut& cb, const Cut* cc) {
    Cut merged;
    if (cc == nullptr) {
      if (!merge_cut_leaves(ca, cb, params_.cut_size, merged)) return;
    } else {
      Cut ab;
      if (!merge_cut_leaves(ca, cb, params_.cut_size, ab)) return;
      if (!merge_cut_leaves(ab, *cc, params_.cut_size, merged)) return;
    }
    // Local function of n over the merged leaves.
    Tt6 fa = expand_cut_function(ca.function, ca, merged);
    Tt6 fb = expand_cut_function(cb.function, cb, merged);
    if (nd.fanin[0].complemented()) fa = ~fa;
    if (nd.fanin[1].complemented()) fb = ~fb;
    Tt6 f = 0;
    switch (nd.type) {
      case GateType::kAnd2:
        f = fa & fb;
        break;
      case GateType::kXor2:
        f = fa ^ fb;
        break;
      case GateType::kMaj3:
      case GateType::kXor3: {
        Tt6 fc = expand_cut_function(cc->function, *cc, merged);
        if (nd.fanin[2].complemented()) fc = ~fc;
        f = nd.type == GateType::kMaj3 ? ((fa & fb) | (fa & fc) | (fb & fc))
                                       : (fa ^ fb ^ fc);
        break;
      }
      default:
        assert(false);
    }
    merged.function = tt6_replicate(f, merged.size);
    if (annotate) annotate(n, merged);
    insert_cut(out, merged, better);
  };

  if (nd.num_fanins == 2) {
    for (const Cut& ca : set_a) {
      for (const Cut& cb : set_b) combine(ca, cb, nullptr);
    }
  } else {
    const auto& set_c = cut_sets_[nd.fanin[2].node()];
    assert(!set_c.empty());
    for (const Cut& ca : set_a) {
      for (const Cut& cb : set_b) {
        for (const Cut& cc : set_c) combine(ca, cb, &cc);
      }
    }
  }

  // The trivial cut is always available (appended last, not counted in the
  // limit) so downstream merges can stop at this node.
  Cut t = Cut::trivial(n);
  if (annotate) annotate(n, t);
  out.push_back(t);
}

void CutEnumerator::merge_choice_cuts(NodeId repr, const AnnotateFn& annotate,
                                      const CompareFn& better) {
  auto& out = cut_sets_[repr];
  // Detach the trivial cut while inserting (it stays last).
  assert(!out.empty() && out.back().is_trivial());
  const Cut trivial = out.back();
  out.pop_back();

  for (NodeId m = net_.node(repr).next_choice; m != kNullNode;
       m = net_.node(m).next_choice) {
    const bool phase = net_.node(m).choice_phase;
    for (const Cut& c : cut_sets_[m]) {
      if (c.is_trivial()) continue;  // members are not mapping leaves here
      assert(!c.contains(repr) && "choice cut reaches its representative");
      Cut copy = c;
      if (phase) {
        copy.function = tt6_replicate(~copy.function, copy.size);
      }
      if (annotate) annotate(repr, copy);
      insert_cut(out, copy, better);
    }
  }
  out.push_back(trivial);
}

void CutEnumerator::insert_cut(std::vector<Cut>& set, const Cut& cut,
                               const CompareFn& better) const {
  // Dominance filtering: drop the new cut if an existing one dominates it;
  // drop existing cuts dominated by the new one.
  for (const Cut& c : set) {
    if (c.dominates(cut)) return;
  }
  set.erase(std::remove_if(set.begin(), set.end(),
                           [&](const Cut& c) { return cut.dominates(c); }),
            set.end());

  // Ordered insertion, capped at cut_limit.
  auto it = std::lower_bound(
      set.begin(), set.end(), cut,
      [&](const Cut& a, const Cut& b) { return better(a, b); });
  if (it == set.end() &&
      set.size() >= static_cast<std::size_t>(params_.cut_limit)) {
    return;
  }
  set.insert(it, cut);
  if (set.size() > static_cast<std::size_t>(params_.cut_limit)) {
    set.pop_back();
  }
}

std::size_t CutEnumerator::total_cuts() const noexcept {
  std::size_t n = 0;
  for (const auto& s : cut_sets_) n += s.size();
  return n;
}

}  // namespace mcs
