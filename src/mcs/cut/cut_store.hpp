/// \file cut_store.hpp
/// \brief Arena-backed cut storage: per-node cut sets as spans into one
/// contiguous buffer.
///
/// Cut enumeration used to keep a `std::vector<Cut>` per node -- one heap
/// allocation per node per pass, and fanin cut-set iteration hopping
/// between unrelated heap blocks.  CutStore replaces that with a single
/// bump-allocated arena: nodes are enumerated in topological order and each
/// node's cut set is *built in place* at the arena tail
/// (alloc_tail/commit_tail), so a node's cuts are contiguous, consecutive
/// nodes' cuts are adjacent, the fanin spans a merge step walks are
/// sequential in memory, and publishing a finished set costs nothing (no
/// copy-out of a working buffer).  The arena grows by doubling and is reset
/// per enumeration pass without releasing its buffer, so steady-state
/// passes allocate nothing.
///
/// alloc_tail() pre-reserves the whole worst-case tail region up front;
/// until the matching commit_tail() the arena is guaranteed not to move, so
/// spans of earlier nodes (the fanin sets being merged) stay valid while
/// the new set is assembled.  Cut is trivially copyable, which makes the
/// grow-by-doubling a plain memcpy.

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "mcs/cut/cut.hpp"
#include "mcs/obs/obs.hpp"

namespace mcs {

static_assert(std::is_trivially_copyable_v<Cut>,
              "the arena relies on memcpy/memmove of Cut");

class CutStore {
 public:
  explicit CutStore(std::size_t num_nodes) { reset(num_nodes); }

  /// Clears all cut sets, keeping the arena buffer for reuse.
  void reset(std::size_t num_nodes) {
    size_ = 0;
    spans_.assign(num_nodes, Span{});
  }

  /// The committed cut set of \p n (empty if never committed).
  std::span<const Cut> cuts(NodeId n) const noexcept {
    const Span s = spans_[n];
    return {arena_.get() + s.offset, s.count};
  }

  /// Reserves room for up to \p max_cuts cuts at the arena tail and returns
  /// the tail pointer.  Until commit_tail(), the arena will not move.
  Cut* alloc_tail(std::size_t max_cuts) {
    if (size_ + max_cuts > capacity_) grow(size_ + max_cuts);
    return arena_.get() + size_;
  }

  /// Publishes the first \p count cuts of the current tail region as node
  /// \p n's set (re-committing a node leaks its old span until reset()).
  void commit_tail(NodeId n, std::size_t count) noexcept {
    spans_[n] = {static_cast<std::uint32_t>(size_),
                 static_cast<std::uint32_t>(count)};
    size_ += count;
  }

  /// Total cuts over all committed nodes (statistics).
  std::size_t total_cuts() const noexcept {
    std::size_t n = 0;
    for (const Span s : spans_) n += s.count;
    return n;
  }

  /// Arena footprint in bytes (capacity, not committed size).
  std::size_t arena_bytes() const noexcept { return capacity_ * sizeof(Cut); }

 private:
  struct Span {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };

  void grow(std::size_t needed) {
    std::size_t cap = capacity_ == 0 ? 1024 : capacity_ * 2;
    while (cap < needed) cap *= 2;
    std::unique_ptr<Cut[]> next(new Cut[cap]);
    if (size_ != 0) {
      std::memcpy(next.get(), arena_.get(), size_ * sizeof(Cut));
    }
    arena_ = std::move(next);
    capacity_ = cap;
    // Growth is doubling-rare; a gauge write here is free in practice.
    const auto bytes = static_cast<std::int64_t>(capacity_ * sizeof(Cut));
    obs::gauge("cut.arena_bytes_max").set_max(bytes);
    obs::domain_peak_max(obs::DomainPeak::kArenaBytes, bytes);
  }

  std::unique_ptr<Cut[]> arena_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::vector<Span> spans_;
};

}  // namespace mcs
