/// \file cut.hpp
/// \brief Cuts: bounded leaf sets with local functions.
///
/// A cut of node n is a set of nodes (leaves) such that every PI-to-n path
/// crosses a leaf; the cut's function expresses n in terms of its leaves.
/// Cuts are the currency of every mapper in this library and of the MCH
/// construction (the candidates of Algorithm 2 are synthesized from cut
/// functions).  Leaf sets are kept sorted; functions are single-word truth
/// tables, so the maximum cut size is 6 (the paper's FPGA experiments use
/// 6-LUTs; ASIC matching uses 4-5).

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "mcs/network/network.hpp"
#include "mcs/tt/tt6.hpp"

namespace mcs {

inline constexpr int kMaxCutSize = 6;

/// A cut: sorted leaves + function + mapper cost fields.
struct Cut {
  std::array<NodeId, kMaxCutSize> leaves{};
  std::uint8_t size = 0;
  Tt6 function = 0;          ///< function of the cut root over the leaves
  std::uint64_t signature = 0;  ///< bloom filter over leaf ids

  float delay = 0.0f;      ///< arrival estimate under the current pass
  float area_flow = 0.0f;  ///< area-flow / exact-area estimate

  bool is_trivial() const noexcept { return size == 1; }

  static std::uint64_t leaf_bit(NodeId n) noexcept {
    return 1ull << (n & 63u);
  }

  /// Builds the trivial cut {n} (function = x0).
  static Cut trivial(NodeId n) noexcept {
    Cut c;
    c.leaves[0] = n;
    c.size = 1;
    c.function = tt6_var(0);
    c.signature = leaf_bit(n);
    return c;
  }

  bool contains(NodeId n) const noexcept {
    if (!(signature & leaf_bit(n))) return false;
    return std::find(leaves.begin(), leaves.begin() + size, n) !=
           leaves.begin() + size;
  }

  /// True iff every leaf of this cut also appears in \p other (this
  /// dominates other; the dominated cut is redundant).
  bool dominates(const Cut& other) const noexcept {
    if (size > other.size) return false;
    if ((signature & other.signature) != signature) return false;
    for (int i = 0; i < size; ++i) {
      if (!other.contains(leaves[i])) return false;
    }
    return true;
  }

  friend bool operator==(const Cut& a, const Cut& b) noexcept {
    if (a.size != b.size || a.signature != b.signature) return false;
    return std::equal(a.leaves.begin(), a.leaves.begin() + a.size,
                      b.leaves.begin());
  }
};

/// Merges the leaf sets of \p a and \p b into \p out (sorted union).
/// Returns false when the union exceeds \p max_size.
bool merge_cut_leaves(const Cut& a, const Cut& b, int max_size, Cut& out);

/// Expands \p f, a function over the (sorted) leaves of \p cut, to a
/// function over the (sorted) superset leaves of \p super.
/// \pre cut's leaves are a subset of super's leaves.
Tt6 expand_cut_function(Tt6 f, const Cut& cut, const Cut& super);

}  // namespace mcs
