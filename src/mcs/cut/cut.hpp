/// \file cut.hpp
/// \brief Cuts: bounded leaf sets with local functions.
///
/// A cut of node n is a set of nodes (leaves) such that every PI-to-n path
/// crosses a leaf; the cut's function expresses n in terms of its leaves.
/// Cuts are the currency of every mapper in this library and of the MCH
/// construction (the candidates of Algorithm 2 are synthesized from cut
/// functions).  Leaf sets are kept sorted; functions are single-word truth
/// tables, so the maximum cut size is 6 (the paper's FPGA experiments use
/// 6-LUTs; ASIC matching uses 4-5).

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>

#include "mcs/network/network.hpp"
#include "mcs/tt/tt6.hpp"

namespace mcs {

inline constexpr int kMaxCutSize = 6;

/// A cut: sorted leaves + function + mapper cost fields.  Cache-line
/// aligned: cut sets live densely packed in the enumeration arena, and the
/// alignment keeps every cut inside exactly one line during the all-pairs
/// merge walk (a 56-byte packed layout would straddle two lines for 7 of 8
/// cuts).
struct alignas(64) Cut {
  std::array<NodeId, kMaxCutSize> leaves{};
  std::uint8_t size = 0;
  Tt6 function = 0;          ///< function of the cut root over the leaves
  std::uint64_t signature = 0;  ///< bloom filter over leaf ids

  float delay = 0.0f;      ///< arrival estimate under the current pass
  float area_flow = 0.0f;  ///< area-flow / exact-area estimate

  bool is_trivial() const noexcept { return size == 1; }

  static std::uint64_t leaf_bit(NodeId n) noexcept {
    return 1ull << (n & 63u);
  }

  /// Builds the trivial cut {n} (function = x0).
  static Cut trivial(NodeId n) noexcept {
    Cut c;
    c.leaves[0] = n;
    c.size = 1;
    c.function = tt6_var(0);
    c.signature = leaf_bit(n);
    return c;
  }

  bool contains(NodeId n) const noexcept {
    if (!(signature & leaf_bit(n))) return false;
    return std::find(leaves.begin(), leaves.begin() + size, n) !=
           leaves.begin() + size;
  }

  /// True iff every leaf of this cut also appears in \p other (this
  /// dominates other; the dominated cut is redundant).  Both leaf arrays
  /// are sorted, so after the signature prefilter the subset test is one
  /// linear merge walk.
  bool dominates(const Cut& other) const noexcept {
    if (size > other.size) return false;
    if ((signature & other.signature) != signature) return false;
    if (size == other.size) {
      // Equal-size dominance is exact leaf equality: one flat compare
      // (the most common outcome -- duplicate merges -- on dense nets).
      return std::equal(leaves.begin(), leaves.begin() + size,
                        other.leaves.begin());
    }
    int i = 0;
    for (int j = 0; j < other.size; ++j) {
      if (leaves[i] < other.leaves[j]) return false;  // missing from other
      if (leaves[i] == other.leaves[j] && ++i == size) return true;
    }
    return false;
  }

  friend bool operator==(const Cut& a, const Cut& b) noexcept {
    if (a.size != b.size || a.signature != b.signature) return false;
    return std::equal(a.leaves.begin(), a.leaves.begin() + a.size,
                      b.leaves.begin());
  }
};

/// Merges the leaf sets of \p a and \p b into \p out (sorted union).
/// Returns false when the union exceeds \p max_size.
///
/// The signature popcount is a lower bound on the true union size (distinct
/// leaves may share a bloom bit, never the reverse), so an over-popcount
/// union is rejected with one popcount instead of the merge loop -- the
/// common outcome on dense networks.
///
/// Both helpers are defined inline: they are the innermost operations of
/// cut enumeration (tens of millions of calls per mapping pass) and must
/// inline into the templated merge loop.
inline bool merge_cut_leaves_prefilter(const Cut& a, const Cut& b,
                                       int max_size) noexcept {
  return std::popcount(a.signature | b.signature) <= max_size;
}

inline bool merge_cut_leaves(const Cut& a, const Cut& b, int max_size,
                             Cut& out) noexcept {
  // Branch-reduced sorted union: emit min(la, lb), advance whichever side
  // supplied it (both on ties) -- compiles to conditional moves instead of
  // a data-dependent 3-way branch.
  int ia = 0, ib = 0, n = 0;
  while (ia < a.size && ib < b.size) {
    if (n == max_size) return false;
    const NodeId la = a.leaves[ia];
    const NodeId lb = b.leaves[ib];
    out.leaves[n++] = la < lb ? la : lb;
    ia += la <= lb;
    ib += lb <= la;
  }
  while (ia < a.size) {
    if (n == max_size) return false;
    out.leaves[n++] = a.leaves[ia++];
  }
  while (ib < b.size) {
    if (n == max_size) return false;
    out.leaves[n++] = b.leaves[ib++];
  }
  out.size = static_cast<std::uint8_t>(n);
  out.signature = a.signature | b.signature;
  return true;
}

/// merge_cut_leaves variant that additionally records where each input
/// leaf landed in the union (\p pos_a / \p pos_b, one entry per input
/// leaf).  The positions come for free out of the merge walk and let the
/// function expansion skip its leaf-matching rescan.
inline bool merge_cut_leaves_track(const Cut& a, const Cut& b, int max_size,
                                   Cut& out, std::uint8_t* pos_a,
                                   std::uint8_t* pos_b) noexcept {
  // The explicit kMaxCutSize clamp tells the optimizer the pos_* writes
  // stay inside their 6-entry arrays (a.size is a uint8 as far as GCC's
  // range analysis knows).
  const int an = std::min<int>(a.size, kMaxCutSize);
  const int bn = std::min<int>(b.size, kMaxCutSize);
  // Branch-reduced union walk (see merge_cut_leaves).  Both position
  // slots are stored unconditionally: a slot written for the side that did
  // not advance is rewritten -- correctly -- the next time that leaf is
  // considered, so only the final store survives.
  int ia = 0, ib = 0, n = 0;
  while (ia < an && ib < bn) {
    if (n == max_size) return false;
    const NodeId la = a.leaves[ia];
    const NodeId lb = b.leaves[ib];
    pos_a[ia] = static_cast<std::uint8_t>(n);
    pos_b[ib] = static_cast<std::uint8_t>(n);
    out.leaves[n++] = la < lb ? la : lb;
    ia += la <= lb;
    ib += lb <= la;
  }
  while (ia < an) {
    if (n == max_size) return false;
    pos_a[ia] = static_cast<std::uint8_t>(n);
    out.leaves[n++] = a.leaves[ia++];
  }
  while (ib < bn) {
    if (n == max_size) return false;
    pos_b[ib] = static_cast<std::uint8_t>(n);
    out.leaves[n++] = b.leaves[ib++];
  }
  out.size = static_cast<std::uint8_t>(n);
  out.signature = a.signature | b.signature;
  return true;
}

/// Expands \p f, a function of \p n variables, onto \p super_n variables
/// where input variable i moves to position pos[i] (strictly increasing,
/// as produced by merge_cut_leaves_track).
inline Tt6 expand_cut_function_at(Tt6 f, int n, const std::uint8_t* pos,
                                  int super_n) noexcept {
  if (n == super_n) return f;  // identity placement, already replicated
  if (n == 1) return tt6_var(pos[0]);  // trivial cut: a projection
  for (int i = n - 1; i >= 0; --i) {
    if (pos[i] != i) f = tt6_swap(f, i, pos[i]);
  }
  return tt6_replicate(f, super_n);
}

/// Expands \p f, a function over the (sorted) leaves of \p cut, to a
/// function over the (sorted) superset leaves of \p super.
/// \pre cut's leaves are a subset of super's leaves.
inline Tt6 expand_cut_function(Tt6 f, const Cut& cut, const Cut& super) {
  // Equal sizes: a subset of equal cardinality is the identical leaf set,
  // and stored functions are already in replicated canonical form.
  if (cut.size == super.size) return f;
  // Positions of cut's leaves within super's leaves (strictly increasing).
  std::array<int, kMaxCutSize> pos{};
  int j = 0;
  for (int i = 0; i < cut.size; ++i) {
    while (j < super.size && super.leaves[j] != cut.leaves[i]) ++j;
    assert(j < super.size && "expand_cut_function: cut is not a subset");
    pos[i] = j++;
  }
  // Move variable i to position pos[i], processing from the highest index so
  // previously placed variables are never displaced (pos is increasing and
  // the target slots hold vacuous variables).
  for (int i = cut.size - 1; i >= 0; --i) {
    if (pos[i] != i) f = tt6_swap(f, i, pos[i]);
  }
  return tt6_replicate(f, super.size);
}

}  // namespace mcs
