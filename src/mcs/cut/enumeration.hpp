/// \file enumeration.hpp
/// \brief Priority-cut enumeration with optional choice-class merging.
///
/// Implements the cut computation used by the MCH builder (paper, Alg. 1
/// line 3) and by both technology mappers (Alg. 3 lines 1-8).  With
/// `use_choices`, after the cuts of a representative are computed the cut
/// sets of all its choice-class members are folded into the representative's
/// set (phase-corrected), exactly as in Algorithm 3: the mapper then
/// transparently evaluates structures coming from different logic
/// representations.
///
/// The caller supplies the processing order (`topo_order` or
/// `choice_topo_order`) plus optional annotate/compare hooks, which lets the
/// mappers re-run enumeration per pass with pass-specific costs
/// (priority cuts).
///
/// Hot-path design (this is the inner loop of every mapper and of MCH
/// construction):
///   - Cut sets live in a CutStore arena (one contiguous buffer, per-node
///     spans) instead of a vector-of-vectors: no per-node allocations, and
///     fanin cut iteration is sequential in memory.
///   - run/run_single are templated on the annotate/compare functors, so
///     mapper lambdas inline into the merge loop -- no std::function
///     dispatch per cut.  The AnnotateFn/CompareFn aliases remain for
///     callers that need runtime-selected hooks (registry-facing code);
///     they simply instantiate the template with the type-erased functors.
///   - A merged cut's truth table is only derived after the leaf-union +
///     signature dominance test admits it: dominated merges (the common
///     case on dense networks) cost two leaf merges and a signature check,
///     never a table expansion.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "mcs/cut/cut.hpp"
#include "mcs/cut/cut_store.hpp"
#include "mcs/network/network.hpp"

namespace mcs {

struct CutEnumParams {
  int cut_size = 6;   ///< k: maximum number of leaves
  int cut_limit = 8;  ///< l: maximum number of stored cuts per node
  bool use_choices = false;
};

/// Default no-op annotation hook.
struct CutNoAnnotate {
  static constexpr bool kNeedsFunction = false;
  void operator()(NodeId, Cut&) const noexcept {}
};

/// Marks an annotate functor as deriving its costs from the cut's *leaves*
/// only (never from cut.function).  For such hooks the enumerator runs the
/// full admission -- dominance, dominated-removal and the cut_limit
/// ranking -- before the merged cut's truth table is derived, so rejected
/// merges never pay for a table expansion.  The compare hook must likewise
/// not read cut.function (every comparator in this library ranks on
/// size/leaves/annotated costs).
template <typename F>
struct LeafOnlyAnnotate {
  static constexpr bool kNeedsFunction = false;
  const F& fn;
  void operator()(NodeId n, Cut& c) const { fn(n, c); }
};

/// Detects `A::kNeedsFunction == false`; defaults to true (safe: the
/// ASIC mapper's annotate hook NPN-matches the cut function).
template <typename A, typename = void>
struct CutAnnotateNeedsFunction : std::true_type {};
template <typename A>
struct CutAnnotateNeedsFunction<A, std::void_t<decltype(A::kNeedsFunction)>>
    : std::bool_constant<A::kNeedsFunction> {};

/// Default ranking: fewer leaves first, then lexicographic leaf ids for
/// determinism.
struct CutDefaultBetter {
  bool operator()(const Cut& a, const Cut& b) const noexcept {
    if (a.size != b.size) return a.size < b.size;
    return std::lexicographical_compare(a.leaves.begin(),
                                        a.leaves.begin() + a.size,
                                        b.leaves.begin(),
                                        b.leaves.begin() + b.size);
  }
};

class CutEnumerator {
 public:
  // Registry-facing callers that need runtime-selected hooks can pass
  // (non-empty) std::function objects to the same templates; only that
  // outer call pays the indirection.

  CutEnumerator(const Network& net, const CutEnumParams& params)
      : net_(net),
        params_(params),
        store_(net.size()),
        wsig_(static_cast<std::size_t>(params.cut_limit) + 2),
        wsize_(static_cast<std::size_t>(params.cut_limit) + 2) {
    assert(params_.cut_size <= kMaxCutSize);
  }

  /// Re-arms the enumerator for a fresh pass over the same network.  The
  /// arena buffer is kept, so steady-state passes allocate nothing.
  void reset() { store_.reset(net_.size()); }

  /// Enumerates cuts for every node of \p order (which must be
  /// topologically sorted; use choice_topo_order() with use_choices).
  template <typename Annotate, typename Compare>
  void run(const std::vector<NodeId>& order, const Annotate& annotate,
           const Compare& better) {
    obs::Span span("cut:enum");
    for (const NodeId n : order) run_single(n, annotate, better);
    // One flush per pass, not per node: keeps the per-node path clean.
    static obs::Counter& runs = obs::counter("cut.enum_runs");
    static obs::Counter& nodes = obs::counter("cut.nodes_enumerated");
    static obs::Counter& cuts = obs::counter("cut.cuts_stored");
    runs.increment();
    nodes.add(order.size());
    cuts.add(store_.total_cuts());
  }
  void run(const std::vector<NodeId>& order) {
    run(order, CutNoAnnotate{}, CutDefaultBetter{});
  }

  /// Enumerates cuts for a single node whose fanins (and, with choices, its
  /// class members) have already been processed.  Lets mappers interleave
  /// enumeration with per-node cost state (priority cuts).
  template <typename Annotate, typename Compare>
  void run_single(NodeId n, const Annotate& annotate, const Compare& better) {
    if (!net_.is_gate(n)) {
      // PIs and the constant have only the trivial cut.
      Cut* tail = store_.alloc_tail(1);
      tail[0] = Cut::trivial(n);
      annotate(n, tail[0]);
      store_.commit_tail(n, 1);
      return;
    }
    // The node's cut set is assembled in place at the arena tail (one slot
    // of transient headroom for insert-then-cap, plus the trivial cut).
    tail_ = store_.alloc_tail(static_cast<std::size_t>(params_.cut_limit) + 2);
    count_ = 0;
    enumerate_node(n, annotate, better);
    if (params_.use_choices && net_.has_choice(n)) {
      merge_choice_cuts(n, annotate, better);
    }
    // The trivial cut is always available (appended last, not counted in
    // the limit) so downstream merges can stop at this node.
    Cut t = Cut::trivial(n);
    annotate(n, t);
    tail_[count_++] = t;
    store_.commit_tail(n, count_);
  }
  void run_single(NodeId n) {
    run_single(n, CutNoAnnotate{}, CutDefaultBetter{});
  }

  /// The cut set of \p n.  Valid until the next run_single()/reset() (the
  /// arena may move when it grows).
  std::span<const Cut> cuts(NodeId n) const noexcept { return store_.cuts(n); }

  /// Total number of cuts over all nodes (statistics).
  std::size_t total_cuts() const noexcept { return store_.total_cuts(); }

 private:
  template <typename Annotate, typename Compare>
  void enumerate_node(NodeId n, const Annotate& annotate,
                      const Compare& better) {
    const Node& nd = net_.node(n);
    const std::span<const Cut> set_a = store_.cuts(nd.fanin[0].node());
    const std::span<const Cut> set_b = store_.cuts(nd.fanin[1].node());
    assert(!set_a.empty() && !set_b.empty() &&
           "fanin cuts missing: order is not topological");

    auto derive_function = [&](Cut& merged, const Cut& ca, const Cut& cb,
                               const Cut* cc) {
      // 2-input merges reuse the leaf positions recorded by the tracked
      // merge; the (rare) 3-input path re-derives them by subset matching.
      Tt6 fa, fb;
      if (cc == nullptr) {
        fa = expand_cut_function_at(ca.function, ca.size, posa_.data(),
                                    merged.size);
        fb = expand_cut_function_at(cb.function, cb.size, posb_.data(),
                                    merged.size);
      } else {
        fa = expand_cut_function(ca.function, ca, merged);
        fb = expand_cut_function(cb.function, cb, merged);
      }
      if (nd.fanin[0].complemented()) fa = ~fa;
      if (nd.fanin[1].complemented()) fb = ~fb;
      Tt6 f = 0;
      switch (nd.type) {
        case GateType::kAnd2:
          f = fa & fb;
          break;
        case GateType::kXor2:
          f = fa ^ fb;
          break;
        case GateType::kMaj3:
        case GateType::kXor3: {
          Tt6 fc = expand_cut_function(cc->function, *cc, merged);
          if (nd.fanin[2].complemented()) fc = ~fc;
          f = nd.type == GateType::kMaj3 ? ((fa & fb) | (fa & fc) | (fb & fc))
                                         : (fa ^ fb ^ fc);
          break;
        }
        default:
          assert(false);
      }
      merged.function = tt6_replicate(f, merged.size);
    };

    // The popcount overflow prefilter stays inline in the pair loops (a
    // handful of instructions rejecting ~a quarter of all pairs); the rest
    // of the combine is a single out-of-line body per functor pair, keeping
    // the loops themselves tiny.
    auto combine = [&](const Cut& ca, const Cut& cb, const Cut* cc) {
      // Stage 1: leaf union + signature (prefilter already passed).
      // The scratch cut is a member so the per-combine default-init of a
      // 56-byte local (22M+ times per pass) never happens; merge_cut_leaves
      // writes every field the admission stages read.
      Cut& merged = scratch_;
      if (cc == nullptr) {
        if (!merge_cut_leaves_track(ca, cb, params_.cut_size, merged,
                                    posa_.data(), posb_.data())) {
          return;
        }
      } else {
        Cut& ab = scratch3_;
        if (!merge_cut_leaves(ca, cb, params_.cut_size, ab)) return;
        if (!merge_cut_leaves_prefilter(ab, *cc, params_.cut_size)) return;
        if (!merge_cut_leaves(ab, *cc, params_.cut_size, merged)) return;
      }
      // Stage 2: dominance admission before any truth-table work.
      if (dominated_by_existing(merged)) return;
      // Stage 3: costs, limit admission, function, ordered insertion.
      // Leaf-only annotate hooks (the common case) let the full admission
      // run first, so limit-rejected merges never derive a truth table.
      if constexpr (!CutAnnotateNeedsFunction<Annotate>::value) {
        annotate(n, merged);
        const int pos = admit_position(merged, better);
        if (pos < 0) return;
        derive_function(merged, ca, cb, cc);
        insert_at(pos, merged);
      } else {
        derive_function(merged, ca, cb, cc);
        annotate(n, merged);
        const int pos = admit_position(merged, better);
        if (pos < 0) return;
        insert_at(pos, merged);
      }
    };

    const int k = params_.cut_size;
    if (nd.num_fanins == 2) {
      for (const Cut& ca : set_a) {
        const std::uint64_t sig_a = ca.signature;
        for (const Cut& cb : set_b) {
          if (std::popcount(sig_a | cb.signature) > k) continue;
          combine(ca, cb, nullptr);
        }
      }
    } else {
      const std::span<const Cut> set_c = store_.cuts(nd.fanin[2].node());
      assert(!set_c.empty());
      for (const Cut& ca : set_a) {
        const std::uint64_t sig_a = ca.signature;
        for (const Cut& cb : set_b) {
          if (std::popcount(sig_a | cb.signature) > k) continue;
          for (const Cut& cc : set_c) combine(ca, cb, &cc);
        }
      }
    }
  }

  template <typename Annotate, typename Compare>
  void merge_choice_cuts(NodeId repr, const Annotate& annotate,
                         const Compare& better) {
    for (NodeId m = net_.node(repr).next_choice; m != kNullNode;
         m = net_.node(m).next_choice) {
      const bool phase = net_.node(m).choice_phase;
      for (const Cut& c : store_.cuts(m)) {
        if (c.is_trivial()) continue;  // members are not mapping leaves here
        assert(!c.contains(repr) && "choice cut reaches its representative");
        if (dominated_by_existing(c)) continue;
        Cut copy = c;
        if (phase) {
          copy.function = tt6_replicate(~copy.function, copy.size);
        }
        annotate(repr, copy);
        const int pos = admit_position(copy, better);
        if (pos >= 0) insert_at(pos, copy);
      }
    }
  }

  /// True iff a cut already in the working set dominates \p cut (the new
  /// cut is redundant; equal leaf sets count as dominated).  The packed
  /// signature/size side arrays keep the scan on two cache lines; the
  /// 64-byte cuts themselves are only touched for the rare sig-subset
  /// survivors.
  bool dominated_by_existing(const Cut& cut) const noexcept {
    const std::uint64_t sig = cut.signature;
    for (std::size_t i = 0; i < count_; ++i) {
      if ((wsig_[i] & ~sig) != 0 || wsize_[i] > cut.size) continue;
      if (tail_[i].dominates(cut)) return true;
    }
    return false;
  }

  /// Admission of a non-dominated \p cut: drops existing cuts it dominates
  /// and returns its ordered-insertion index, or -1 when the working set is
  /// full and the cut ranks past its tail.  Separated from insert_at() so
  /// combine() can defer the truth-table derivation of admitted cuts until
  /// after the verdict (the comparator never reads cut.function).
  template <typename Compare>
  int admit_position(const Cut& cut, const Compare& better) {
    // A cut at the size cap cannot dominate anything already present: an
    // equal-size dominated cut would have the identical leaf set, and
    // those were already rejected by dominated_by_existing().
    if (cut.size < params_.cut_size) {
      const std::uint64_t sig = cut.signature;
      std::size_t w = 0;
      for (std::size_t r = 0; r < count_; ++r) {
        const bool drop = (sig & ~wsig_[r]) == 0 && cut.size <= wsize_[r] &&
                          cut.dominates(tail_[r]);
        if (drop) continue;
        if (w != r) {
          tail_[w] = tail_[r];
          wsig_[w] = wsig_[r];
          wsize_[w] = wsize_[r];
        }
        ++w;
      }
      count_ = w;
    }
    // Linear ordered-position scan: the working set holds at most
    // cut_limit (~8) cuts, where a predictable early-exiting forward walk
    // beats binary search.
    std::size_t pos = 0;
    while (pos < count_ && better(tail_[pos], cut)) ++pos;
    if (pos == count_ &&
        count_ >= static_cast<std::size_t>(params_.cut_limit)) {
      return -1;
    }
    return static_cast<int>(pos);
  }

  void insert_at(int pos, const Cut& cut) noexcept {
    // When the set is at the cap, the last cut is about to fall off: skip
    // moving it.
    std::size_t move = count_ - static_cast<std::size_t>(pos);
    if (count_ >= static_cast<std::size_t>(params_.cut_limit)) {
      move = move == 0 ? 0 : move - 1;
    } else {
      ++count_;
    }
    std::memmove(tail_ + pos + 1, tail_ + pos, move * sizeof(Cut));
    std::memmove(wsig_.data() + pos + 1, wsig_.data() + pos,
                 move * sizeof(std::uint64_t));
    std::memmove(wsize_.data() + pos + 1, wsize_.data() + pos, move);
    tail_[pos] = cut;
    wsig_[pos] = cut.signature;
    wsize_[pos] = cut.size;
  }

  const Network& net_;
  CutEnumParams params_;
  CutStore store_;
  Cut* tail_ = nullptr;     ///< working set of the node being enumerated
  std::size_t count_ = 0;   ///< live cuts in the working set
  /// Packed signatures/sizes of the working set, kept in sync by
  /// insert_at/admit_position: the dominance scans read these two compact
  /// arrays instead of striding over 64-byte cuts.
  std::vector<std::uint64_t> wsig_;
  std::vector<std::uint8_t> wsize_;
  Cut scratch_;             ///< merge scratch (avoids per-combine init)
  Cut scratch3_;            ///< intermediate scratch of 3-input merges
  std::array<std::uint8_t, kMaxCutSize> posa_{};  ///< leaf placements of ca
  std::array<std::uint8_t, kMaxCutSize> posb_{};  ///< leaf placements of cb
};

}  // namespace mcs
