/// \file enumeration.hpp
/// \brief Priority-cut enumeration with optional choice-class merging.
///
/// Implements the cut computation used by the MCH builder (paper, Alg. 1
/// line 3) and by both technology mappers (Alg. 3 lines 1-8).  With
/// `use_choices`, after the cuts of a representative are computed the cut
/// sets of all its choice-class members are folded into the representative's
/// set (phase-corrected), exactly as in Algorithm 3: the mapper then
/// transparently evaluates structures coming from different logic
/// representations.
///
/// The caller supplies the processing order (`topo_order` or
/// `choice_topo_order`) plus optional annotate/compare hooks, which lets the
/// mappers re-run enumeration per pass with pass-specific costs
/// (priority cuts).

#pragma once

#include <functional>
#include <vector>

#include "mcs/cut/cut.hpp"
#include "mcs/network/network.hpp"

namespace mcs {

struct CutEnumParams {
  int cut_size = 6;   ///< k: maximum number of leaves
  int cut_limit = 8;  ///< l: maximum number of stored cuts per node
  bool use_choices = false;
};

class CutEnumerator {
 public:
  /// Fills mapper cost fields of a freshly merged cut of node n.
  using AnnotateFn = std::function<void(NodeId, Cut&)>;
  /// Strict-weak-order "a is better than b" used to rank cuts.
  using CompareFn = std::function<bool(const Cut&, const Cut&)>;

  CutEnumerator(const Network& net, const CutEnumParams& params);

  /// Enumerates cuts for every node of \p order (which must be
  /// topologically sorted; use choice_topo_order() with use_choices).
  void run(const std::vector<NodeId>& order, const AnnotateFn& annotate = {},
           const CompareFn& better = {});

  /// Enumerates cuts for a single node whose fanins (and, with choices, its
  /// class members) have already been processed.  Lets mappers interleave
  /// enumeration with per-node cost state (priority cuts).
  void run_single(NodeId n, const AnnotateFn& annotate = {},
                  const CompareFn& better = {});

  const std::vector<Cut>& cuts(NodeId n) const noexcept {
    return cut_sets_[n];
  }
  std::vector<Cut>& cuts(NodeId n) noexcept { return cut_sets_[n]; }

  /// Total number of cuts over all nodes (statistics).
  std::size_t total_cuts() const noexcept;

 private:
  void enumerate_node(NodeId n, const AnnotateFn& annotate,
                      const CompareFn& better);
  void merge_choice_cuts(NodeId repr, const AnnotateFn& annotate,
                         const CompareFn& better);
  /// Inserts \p cut into \p set with dominance filtering and size capping.
  void insert_cut(std::vector<Cut>& set, const Cut& cut,
                  const CompareFn& better) const;

  const Network& net_;
  CutEnumParams params_;
  std::vector<std::vector<Cut>> cut_sets_;
};

}  // namespace mcs
