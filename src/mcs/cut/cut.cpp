#include "mcs/cut/cut.hpp"

#include <cassert>

namespace mcs {

bool merge_cut_leaves(const Cut& a, const Cut& b, int max_size, Cut& out) {
  int ia = 0, ib = 0, n = 0;
  while (ia < a.size && ib < b.size) {
    if (n == max_size) return false;
    if (a.leaves[ia] == b.leaves[ib]) {
      out.leaves[n++] = a.leaves[ia];
      ++ia;
      ++ib;
    } else if (a.leaves[ia] < b.leaves[ib]) {
      out.leaves[n++] = a.leaves[ia++];
    } else {
      out.leaves[n++] = b.leaves[ib++];
    }
  }
  while (ia < a.size) {
    if (n == max_size) return false;
    out.leaves[n++] = a.leaves[ia++];
  }
  while (ib < b.size) {
    if (n == max_size) return false;
    out.leaves[n++] = b.leaves[ib++];
  }
  out.size = static_cast<std::uint8_t>(n);
  out.signature = a.signature | b.signature;
  return true;
}

Tt6 expand_cut_function(Tt6 f, const Cut& cut, const Cut& super) {
  // Positions of cut's leaves within super's leaves (strictly increasing).
  std::array<int, kMaxCutSize> pos{};
  int j = 0;
  for (int i = 0; i < cut.size; ++i) {
    while (j < super.size && super.leaves[j] != cut.leaves[i]) ++j;
    assert(j < super.size && "expand_cut_function: cut is not a subset");
    pos[i] = j++;
  }
  // Move variable i to position pos[i], processing from the highest index so
  // previously placed variables are never displaced (pos is increasing and
  // the target slots hold vacuous variables).
  for (int i = cut.size - 1; i >= 0; --i) {
    if (pos[i] != i) f = tt6_swap(f, i, pos[i]);
  }
  return tt6_replicate(f, super.size);
}

}  // namespace mcs
