/// \file tt6.hpp
/// \brief Single-word truth tables for functions of up to 6 variables.
///
/// A function of n <= 6 variables is stored in the low 2^n bits of a
/// std::uint64_t, replicated to fill the word (the replication makes variable
/// operations independent of n).  This is the workhorse representation for
/// cut functions, NPN matching and library-cell functions: one word, no
/// allocation, branch-free operations.

#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>

namespace mcs {

/// Truth table word for up to 6 variables.
using Tt6 = std::uint64_t;

inline constexpr int kTt6MaxVars = 6;

/// Elementary variable truth tables: kTt6Projections[i] is the function x_i.
inline constexpr std::array<Tt6, 6> kTt6Projections = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

/// Mask selecting the 2^n valid function bits for an n-variable function.
constexpr Tt6 tt6_mask(int num_vars) noexcept {
  return num_vars >= 6 ? ~0ull : ((1ull << (1u << num_vars)) - 1ull);
}

/// The projection function x_i replicated over the full word.
constexpr Tt6 tt6_var(int i) noexcept { return kTt6Projections[i]; }

/// Constant functions over the full word.
constexpr Tt6 tt6_const0() noexcept { return 0ull; }
constexpr Tt6 tt6_const1() noexcept { return ~0ull; }

/// Restricts \p t to the canonical replicated form for \p num_vars variables:
/// the low 2^n bits are replicated across the word.
constexpr Tt6 tt6_replicate(Tt6 t, int num_vars) noexcept {
  t &= tt6_mask(num_vars);
  for (int v = num_vars; v < kTt6MaxVars; ++v) t |= t << (1u << v);
  return t;
}

/// Negative cofactor with respect to variable \p var (result replicated).
constexpr Tt6 tt6_cofactor0(Tt6 t, int var) noexcept {
  const Tt6 lo = t & ~kTt6Projections[var];
  return lo | (lo << (1u << var));
}

/// Positive cofactor with respect to variable \p var (result replicated).
constexpr Tt6 tt6_cofactor1(Tt6 t, int var) noexcept {
  const Tt6 hi = t & kTt6Projections[var];
  return hi | (hi >> (1u << var));
}

/// True iff \p t depends on variable \p var.
constexpr bool tt6_has_var(Tt6 t, int var) noexcept {
  return tt6_cofactor0(t, var) != tt6_cofactor1(t, var);
}

/// Flips (complements) variable \p var in \p t.
constexpr Tt6 tt6_flip_var(Tt6 t, int var) noexcept {
  assert(var >= 0 && var < kTt6MaxVars);
  const unsigned shift = 1u << var;
  return ((t & kTt6Projections[var]) >> shift) |
         ((t & ~kTt6Projections[var]) << shift);
}

/// Swap masks for adjacent-variable exchange: bits where var i is 1 and
/// var i+1 is 0.
inline constexpr std::array<Tt6, 5> kTt6SwapMasks = {
    0x2222222222222222ull, 0x0c0c0c0c0c0c0c0cull, 0x00f000f000f000f0ull,
    0x0000ff000000ff00ull, 0x00000000ffff0000ull,
};

/// Exchanges adjacent variables \p var and \p var + 1.
constexpr Tt6 tt6_swap_adjacent(Tt6 t, int var) noexcept {
  const unsigned shift = 1u << var;
  const Tt6 mv = kTt6SwapMasks[var];
  const Tt6 keep = t & ~(mv | (mv << shift));
  return keep | ((t & mv) << shift) | ((t >> shift) & mv);
}

/// Exchanges arbitrary variables \p a and \p b: one delta swap instead of
/// a cascade of adjacent exchanges.  Minterm index p with x_a=1, x_b=0
/// pairs with p + d (x_a=0, x_b=1), d = 2^b - 2^a; the butterfly swaps
/// exactly those bit pairs in constant time.
constexpr Tt6 tt6_swap(Tt6 t, int a, int b) noexcept {
  if (a == b) return t;
  if (a > b) {
    const int tmp = a;
    a = b;
    b = tmp;
  }
  const unsigned d = (1u << b) - (1u << a);
  const Tt6 m = kTt6Projections[a] & ~kTt6Projections[b];  // x_a=1, x_b=0
  const Tt6 x = (t ^ (t >> d)) & m;
  return t ^ x ^ (x << d);
}

/// Applies the permutation \p perm : new position -> old variable, i.e. the
/// result r satisfies r(x_0, ..) = t(x_{perm[0]}, ..) -- variable perm[i] of
/// \p t is moved to position i.
constexpr Tt6 tt6_permute(Tt6 t, const std::array<int, 6>& perm,
                          int num_vars) noexcept {
  std::array<int, 6> where{};  // where[v] = current position of original var v
  for (int v = 0; v < num_vars; ++v) where[v] = v;
  std::array<int, 6> at{};  // at[p] = original var currently at position p
  for (int v = 0; v < num_vars; ++v) at[v] = v;
  for (int pos = 0; pos < num_vars; ++pos) {
    const int want = perm[pos];
    const int cur = where[want];
    if (cur == pos) continue;
    t = tt6_swap(t, pos, cur);
    const int displaced = at[pos];
    at[cur] = displaced;
    where[displaced] = cur;
    at[pos] = want;
    where[want] = pos;
  }
  return t;
}

/// Number of minterms (ones) of an n-variable function.
constexpr int tt6_count_ones(Tt6 t, int num_vars) noexcept {
  return std::popcount(t & tt6_mask(num_vars));
}

/// True iff two n-variable functions are equal.
constexpr bool tt6_equal(Tt6 a, Tt6 b, int num_vars) noexcept {
  return ((a ^ b) & tt6_mask(num_vars)) == 0;
}

constexpr bool tt6_is_const0(Tt6 t, int num_vars) noexcept {
  return (t & tt6_mask(num_vars)) == 0;
}

constexpr bool tt6_is_const1(Tt6 t, int num_vars) noexcept {
  return ((~t) & tt6_mask(num_vars)) == 0;
}

/// Support mask: bit i set iff the function depends on variable i.
constexpr std::uint32_t tt6_support(Tt6 t, int num_vars) noexcept {
  std::uint32_t s = 0;
  for (int v = 0; v < num_vars; ++v) {
    if (tt6_has_var(t, v)) s |= (1u << v);
  }
  return s;
}

/// Compacts the support of \p t: variables not in the support are removed and
/// the remaining ones renumbered in order.  \p map_out[i] receives the old
/// index of new variable i.  Returns the new number of variables.
constexpr int tt6_shrink_support(Tt6& t, int num_vars,
                                 std::array<int, 6>& map_out) noexcept {
  int new_vars = 0;
  for (int v = 0; v < num_vars; ++v) {
    if (!tt6_has_var(t, v)) continue;
    if (v != new_vars) t = tt6_swap(t, new_vars, v);
    map_out[new_vars] = v;
    ++new_vars;
  }
  t = tt6_replicate(t & tt6_mask(new_vars), new_vars);
  return new_vars;
}

}  // namespace mcs
