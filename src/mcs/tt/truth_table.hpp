/// \file truth_table.hpp
/// \brief Dynamically sized truth tables (up to ~20 variables).
///
/// Used where cut functions can exceed 6 inputs: MFFC collapsing for the
/// area-oriented synthesis strategies, window simulation, and equivalence
/// checking of small cones.  Functions of <= 6 variables interoperate with
/// the single-word Tt6 representation (see tt6.hpp).

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "mcs/common/hash.hpp"
#include "mcs/tt/tt6.hpp"

namespace mcs {

/// A truth table over `num_vars()` variables stored as 64-bit words.
class TruthTable {
 public:
  TruthTable() = default;

  /// Constant-zero function of \p num_vars variables.
  explicit TruthTable(int num_vars)
      : num_vars_(num_vars),
        words_(num_words(num_vars), 0ull) {
    assert(num_vars >= 0 && num_vars <= kMaxVars);
  }

  /// Builds from a single word (num_vars <= 6).
  static TruthTable from_tt6(Tt6 t, int num_vars) {
    TruthTable r(num_vars);
    r.words_[0] = tt6_replicate(t, num_vars);
    return r;
  }

  /// The projection x_i as a \p num_vars-variable function.
  static TruthTable projection(int var, int num_vars) {
    TruthTable r(num_vars);
    if (var < kTt6MaxVars) {
      for (auto& w : r.words_) w = tt6_var(var);
    } else {
      const std::size_t period = std::size_t{1} << (var - kTt6MaxVars);
      for (std::size_t i = 0; i < r.words_.size(); ++i) {
        if (i & period) r.words_[i] = ~0ull;
      }
    }
    return r;
  }

  static TruthTable constant(bool value, int num_vars) {
    TruthTable r(num_vars);
    if (value) {
      for (auto& w : r.words_) w = ~0ull;
      r.trim();
    }
    return r;
  }

  int num_vars() const noexcept { return num_vars_; }
  std::size_t num_bits() const noexcept {
    return std::size_t{1} << num_vars_;
  }
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }
  std::vector<std::uint64_t>& words() noexcept { return words_; }

  /// Lowest word; for functions of <= 6 variables this is the Tt6 form.
  Tt6 to_tt6() const noexcept {
    assert(num_vars_ <= kTt6MaxVars);
    return tt6_replicate(words_[0], num_vars_);
  }

  bool get_bit(std::size_t index) const noexcept {
    return (words_[index >> 6] >> (index & 63)) & 1ull;
  }
  void set_bit(std::size_t index, bool value) noexcept {
    if (value) {
      words_[index >> 6] |= (1ull << (index & 63));
    } else {
      words_[index >> 6] &= ~(1ull << (index & 63));
    }
  }

  bool is_const0() const noexcept {
    for (auto w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  bool is_const1() const noexcept {
    TruthTable t = ~(*this);
    return t.is_const0();
  }

  int count_ones() const noexcept;

  bool depends_on(int var) const noexcept {
    return cofactor0(var) != cofactor1(var);
  }

  /// Negative/positive cofactors (still functions of num_vars variables).
  TruthTable cofactor0(int var) const;
  TruthTable cofactor1(int var) const;

  /// Complements variable \p var.
  TruthTable flip_var(int var) const;

  /// Swaps two variables.
  TruthTable swap_vars(int a, int b) const;

  /// Removes non-support variables; \p old_index_of[i] gets the previous
  /// index of new variable i.  Returns the shrunk table.
  TruthTable shrink_support(std::vector<int>& old_index_of) const;

  friend TruthTable operator~(TruthTable t) {
    for (auto& w : t.words_) w = ~w;
    t.trim();
    return t;
  }
  friend TruthTable operator&(TruthTable a, const TruthTable& b) {
    assert(a.num_vars_ == b.num_vars_);
    for (std::size_t i = 0; i < a.words_.size(); ++i) a.words_[i] &= b.words_[i];
    return a;
  }
  friend TruthTable operator|(TruthTable a, const TruthTable& b) {
    assert(a.num_vars_ == b.num_vars_);
    for (std::size_t i = 0; i < a.words_.size(); ++i) a.words_[i] |= b.words_[i];
    return a;
  }
  friend TruthTable operator^(TruthTable a, const TruthTable& b) {
    assert(a.num_vars_ == b.num_vars_);
    for (std::size_t i = 0; i < a.words_.size(); ++i) a.words_[i] ^= b.words_[i];
    return a;
  }
  friend bool operator==(const TruthTable& a, const TruthTable& b) {
    return a.num_vars_ == b.num_vars_ && a.words_ == b.words_;
  }

  std::uint64_t hash() const noexcept {
    std::uint64_t h = hash_mix64(static_cast<std::uint64_t>(num_vars_));
    for (auto w : words_) h = hash_combine(h, w);
    return h;
  }

  static constexpr int kMaxVars = 20;

  static std::size_t num_words(int num_vars) noexcept {
    return num_vars <= kTt6MaxVars ? 1
                                   : (std::size_t{1} << (num_vars - 6));
  }

 private:
  /// Keeps unused bits of the last (only) word in replicated canonical form.
  void trim() noexcept {
    if (num_vars_ < kTt6MaxVars) {
      words_[0] = tt6_replicate(words_[0], num_vars_);
    }
  }

  int num_vars_ = 0;
  std::vector<std::uint64_t> words_{0ull};
};

}  // namespace mcs
