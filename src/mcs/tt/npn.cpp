#include "mcs/tt/npn.hpp"

#include <algorithm>

namespace mcs {

NpnCanonResult npn_canonicalize_exact(Tt6 f, int num_vars) {
  f = tt6_replicate(f, num_vars);

  NpnCanonResult best;
  best.canon = ~0ull;
  bool first = true;

  std::array<int, 6> perm{0, 1, 2, 3, 4, 5};
  // Enumerate permutations of the first num_vars entries.
  std::array<int, 6> p = perm;
  do {
    for (std::uint32_t flips = 0; flips < (1u << num_vars); ++flips) {
      for (int out = 0; out < 2; ++out) {
        NpnTransform t;
        t.num_vars = num_vars;
        t.perm = p;
        t.flips = flips;
        t.out_flip = (out == 1);
        const Tt6 image = t.apply(f) & tt6_mask(num_vars);
        if (first || image < (best.canon & tt6_mask(num_vars))) {
          first = false;
          best.canon = tt6_replicate(image, num_vars);
          best.transform = t;
        }
      }
    }
  } while (std::next_permutation(p.begin(), p.begin() + num_vars));

  return best;
}

NpnMatch npn_match(const NpnTransform& tf, const NpnTransform& tg) noexcept {
  const int n = tf.num_vars;
  // Inverse of g's permutation: where did cell variable j end up?
  std::array<int, 6> g_inv{0, 1, 2, 3, 4, 5};
  for (int i = 0; i < n; ++i) g_inv[tg.perm[i]] = i;

  NpnMatch m;
  for (int j = 0; j < n; ++j) {
    const int leaf = tf.perm[g_inv[j]];
    m.pin_to_leaf[j] = leaf;
    const bool neg = ((tf.flips >> leaf) & 1u) != ((tg.flips >> j) & 1u);
    if (neg) m.pin_negation |= (1u << j);
  }
  m.output_negation = tf.out_flip != tg.out_flip;
  return m;
}

const NpnCanonResult& Npn4Cache::canonicalize(Tt6 f) {
  const auto key = static_cast<std::uint16_t>(f & tt6_mask(4));
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, npn_canonicalize_exact(key, 4)).first;
  }
  return it->second;
}

}  // namespace mcs
