#include "mcs/tt/truth_table.hpp"

#include <bit>

namespace mcs {

int TruthTable::count_ones() const noexcept {
  if (num_vars_ <= kTt6MaxVars) {
    return std::popcount(words_[0] & tt6_mask(num_vars_));
  }
  int n = 0;
  for (auto w : words_) n += std::popcount(w);
  return n;
}

TruthTable TruthTable::cofactor0(int var) const {
  TruthTable r = *this;
  if (0 <= var && var < kTt6MaxVars) {
    for (auto& w : r.words_) w = tt6_cofactor0(w, var);
  } else {
    const std::size_t period = std::size_t{1} << (var - kTt6MaxVars);
    for (std::size_t i = 0; i < r.words_.size(); ++i) {
      if (i & period) r.words_[i] = r.words_[i ^ period];
    }
  }
  return r;
}

TruthTable TruthTable::cofactor1(int var) const {
  TruthTable r = *this;
  if (0 <= var && var < kTt6MaxVars) {
    for (auto& w : r.words_) w = tt6_cofactor1(w, var);
  } else {
    const std::size_t period = std::size_t{1} << (var - kTt6MaxVars);
    for (std::size_t i = 0; i < r.words_.size(); ++i) {
      if (!(i & period)) r.words_[i] = r.words_[i ^ period];
    }
  }
  return r;
}

TruthTable TruthTable::flip_var(int var) const {
  TruthTable r = *this;
  if (0 <= var && var < kTt6MaxVars) {
    for (auto& w : r.words_) w = tt6_flip_var(w, var);
  } else {
    const std::size_t period = std::size_t{1} << (var - kTt6MaxVars);
    for (std::size_t i = 0; i < r.words_.size(); ++i) {
      if (!(i & period)) std::swap(r.words_[i], r.words_[i ^ period]);
    }
  }
  return r;
}

TruthTable TruthTable::swap_vars(int a, int b) const {
  if (a == b) return *this;
  if (a > b) std::swap(a, b);
  TruthTable r = *this;
  if (b < kTt6MaxVars) {
    for (auto& w : r.words_) w = tt6_swap(w, a, b);
    return r;
  }
  if (a >= kTt6MaxVars) {
    // Both variables index whole words: swap word blocks.
    const std::size_t pa = std::size_t{1} << (a - kTt6MaxVars);
    const std::size_t pb = std::size_t{1} << (b - kTt6MaxVars);
    for (std::size_t i = 0; i < r.words_.size(); ++i) {
      const bool bit_a = (i & pa) != 0;
      const bool bit_b = (i & pb) != 0;
      if (bit_a && !bit_b) {
        std::swap(r.words_[i], r.words_[(i ^ pa) | pb]);
      }
    }
    return r;
  }
  // Mixed: variable a is inside words, b selects words.  Exchange the
  // a-positive half of word i (b=0) with the a-negative half of word i|pb.
  const std::size_t pb = std::size_t{1} << (b - kTt6MaxVars);
  const unsigned shift = 1u << a;
  const Tt6 hi_mask = kTt6Projections[a];
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    if (i & pb) continue;
    std::uint64_t& lo = r.words_[i];
    std::uint64_t& hi = r.words_[i | pb];
    const std::uint64_t lo_hi = lo & hi_mask;        // a=1, b=0 part
    const std::uint64_t hi_lo = hi & ~hi_mask;       // a=0, b=1 part
    lo = (lo & ~hi_mask) | (hi_lo << shift);
    hi = (hi & hi_mask) | (lo_hi >> shift);
  }
  return r;
}

TruthTable TruthTable::shrink_support(std::vector<int>& old_index_of) const {
  old_index_of.clear();
  TruthTable t = *this;
  int new_vars = 0;
  for (int v = 0; v < num_vars_; ++v) {
    if (!t.depends_on(v)) continue;
    if (v != new_vars) t = t.swap_vars(new_vars, v);
    old_index_of.push_back(v);
    ++new_vars;
  }
  TruthTable r(new_vars);
  const std::size_t words_needed = num_words(new_vars);
  for (std::size_t i = 0; i < words_needed; ++i) r.words()[i] = t.words()[i];
  if (new_vars < kTt6MaxVars) {
    r.words()[0] = tt6_replicate(r.words()[0], new_vars);
  }
  return r;
}

}  // namespace mcs
