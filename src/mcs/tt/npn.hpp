/// \file npn.hpp
/// \brief NPN canonicalization of single-word truth tables.
///
/// Two functions are NPN-equivalent when one can be obtained from the other
/// by Negating inputs, Permuting inputs and/or Negating the output.  NPN
/// classes drive Boolean matching in the ASIC mapper (cut function vs.
/// library cell) and index the 4-input rewriting databases used by the
/// level-oriented synthesis strategy of the MCH operator (paper, Sec. III-A).

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "mcs/tt/tt6.hpp"

namespace mcs {

/// An NPN transform T = (perm, input flips, output flip).
///
/// Applying T to a function f yields, operationally,
///   1. flip every input i with bit i set in `flips` (indices refer to the
///      *original* variable numbering of f),
///   2. move original variable `perm[i]` to position i,
///   3. complement the output when `out_flip` is set.
struct NpnTransform {
  std::array<int, 6> perm{0, 1, 2, 3, 4, 5};  ///< perm[new_pos] = old_var
  std::uint32_t flips = 0;                    ///< input-negation mask (old vars)
  bool out_flip = false;                      ///< output negation
  int num_vars = 0;

  /// Applies this transform to \p f.
  [[nodiscard]] Tt6 apply(Tt6 f) const noexcept {
    for (int v = 0; v < num_vars; ++v) {
      if (flips & (1u << v)) f = tt6_flip_var(f, v);
    }
    f = tt6_permute(f, perm, num_vars);
    if (out_flip) f = ~f;
    return tt6_replicate(f, num_vars);
  }
};

/// Result of NPN canonicalization: `canon == transform.apply(original)`.
struct NpnCanonResult {
  Tt6 canon = 0;
  NpnTransform transform;
};

/// Exact (exhaustive) NPN canonicalization.
///
/// Enumerates all n! * 2^n * 2 transforms and returns the lexicographically
/// smallest image together with the transform that produces it.  Intended for
/// n <= 5; cost grows as n! * 2^n.
[[nodiscard]] NpnCanonResult npn_canonicalize_exact(Tt6 f, int num_vars);

/// Describes how to realize a function `f` using an implementation of `g`
/// when canon(f) == canon(g):  f(u) = out ^ g(z) with
/// z_j = u[pin_to_leaf[j]] ^ bit j of pin_negation.
struct NpnMatch {
  std::array<int, 6> pin_to_leaf{0, 1, 2, 3, 4, 5};
  std::uint32_t pin_negation = 0;
  bool output_negation = false;
};

/// Composes the canonicalizing transforms of \p f (tf) and of \p g (tg) into
/// the pin mapping that implements f in terms of g.  \pre both transforms
/// have the same num_vars and both canonical forms are equal.
[[nodiscard]] NpnMatch npn_match(const NpnTransform& tf,
                                 const NpnTransform& tg) noexcept;

/// Memoizing wrapper around exact canonicalization for 4-variable functions.
/// The 4-input space has only 65536 functions and 222 NPN classes, so the
/// cache converges very quickly in rewriting loops.
class Npn4Cache {
 public:
  /// \p f is interpreted as a 4-variable function (low 16 bits, replicated).
  const NpnCanonResult& canonicalize(Tt6 f);

  std::size_t size() const noexcept { return cache_.size(); }

 private:
  std::unordered_map<std::uint16_t, NpnCanonResult> cache_;
};

}  // namespace mcs
