/// \file blif_read.hpp
/// \brief BLIF reading (.names-based combinational subset).
///
/// Complements the BLIF writers: round-trips mapped LUT netlists and
/// accepts external combinational BLIF (each .names cover is rebuilt as
/// logic through the SOP synthesizer).  Latches and subcircuits are not
/// supported -- all experiments are combinational.

#pragma once

#include <iosfwd>
#include <string>

#include "mcs/network/network.hpp"

namespace mcs {

/// Parses a BLIF model into a mixed network.  Throws std::runtime_error on
/// malformed input, latches or .subckt.
Network read_blif(std::istream& is);
Network read_blif_file(const std::string& path);

}  // namespace mcs
