/// \file aiger.hpp
/// \brief AIGER reading and writing (ascii `aag` and binary `aig`).
///
/// AIGER is the de-facto exchange format for AIGs (EPFL benchmarks, ABC).
/// Writing requires an AND-only network (convert with expand_to_aig()
/// first); reading produces an AND-only mixed network.  Only the
/// combinational subset (no latches) is supported -- the EPFL suite and all
/// experiments in the paper are combinational.

#pragma once

#include <iosfwd>
#include <string>

#include "mcs/network/network.hpp"

namespace mcs {

/// Writes \p net in AIGER format.  \pre net.is_aig().
void write_aiger(const Network& net, std::ostream& os, bool binary = true);
void write_aiger_file(const Network& net, const std::string& path,
                      bool binary = true);

/// Reads an AIGER file (auto-detects `aag` vs `aig`).  Throws
/// std::runtime_error on malformed input or latches.
Network read_aiger(std::istream& is);
Network read_aiger_file(const std::string& path);

}  // namespace mcs
