/// \file writers.hpp
/// \brief BLIF and structural Verilog writers for networks and mapped
/// netlists.

#pragma once

#include <iosfwd>
#include <string>

#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network.hpp"

namespace mcs {

/// Writes the logic network in BLIF (.names per gate).
void write_blif(const Network& net, std::ostream& os,
                const std::string& model = "top");

/// Writes a mapped LUT network in BLIF (.names per LUT).
void write_blif(const LutNetwork& lnet, std::ostream& os,
                const std::string& model = "top");

/// Writes the logic network as behavioural-structural Verilog (one assign
/// per gate).
void write_verilog(const Network& net, std::ostream& os,
                   const std::string& module = "top");

/// Writes a mapped cell netlist as structural Verilog (one instance per
/// cell; cell modules are emitted as primitives comments).
void write_verilog(const CellNetlist& netlist, std::ostream& os,
                   const std::string& module = "top");

}  // namespace mcs
