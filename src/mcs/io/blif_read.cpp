#include "mcs/io/blif_read.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "mcs/fail/fail.hpp"
#include "mcs/network/network_utils.hpp"

namespace mcs {

namespace {

struct NamesBlock {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::pair<std::string, char>> rows;  // (input pattern, value)
};

/// Builds the cover of one .names block over already-resolved signals.
Signal build_cover(Network& net, const NamesBlock& block,
                   const std::vector<Signal>& inputs) {
  // BLIF covers list either the onset ("... 1") or the offset ("... 0");
  // mixing is illegal.
  bool has_on = false, has_off = false;
  for (const auto& [pattern, value] : block.rows) {
    (value == '1' ? has_on : has_off) = true;
  }
  if (has_on && has_off) {
    throw std::runtime_error("blif: mixed onset/offset cover for " +
                             block.output);
  }
  if (block.rows.empty()) return net.constant(false);  // empty onset

  Signal sum = net.constant(false);
  for (const auto& [pattern, value] : block.rows) {
    if (pattern.size() != block.inputs.size()) {
      throw std::runtime_error("blif: row width mismatch for " +
                               block.output);
    }
    Signal term = net.constant(true);
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i] == '-') continue;
      if (pattern[i] != '0' && pattern[i] != '1') {
        throw std::runtime_error("blif: bad cover character");
      }
      term = net.create_and(term, inputs[i] ^ (pattern[i] == '0'));
    }
    sum = net.create_or(sum, term);
  }
  return has_off ? !sum : sum;
}

}  // namespace

Network read_blif(std::istream& is) {
  fail::point("io.read.blif");
  // Join continuation lines and tokenize.
  std::vector<std::vector<std::string>> lines;
  {
    std::string raw, joined;
    while (std::getline(is, raw)) {
      if (const auto hash = raw.find('#'); hash != std::string::npos) {
        raw.resize(hash);
      }
      const bool cont = !raw.empty() && raw.back() == '\\';
      if (cont) raw.pop_back();
      joined += raw;
      if (cont) continue;
      std::istringstream ls(joined);
      std::vector<std::string> tok;
      std::string t;
      while (ls >> t) tok.push_back(t);
      if (!tok.empty()) lines.push_back(std::move(tok));
      joined.clear();
    }
  }

  std::vector<std::string> input_names, output_names;
  std::vector<NamesBlock> blocks;
  NamesBlock* current = nullptr;

  for (auto& tok : lines) {
    const std::string& kw = tok[0];
    if (kw == ".model" || kw == ".end") {
      current = nullptr;
    } else if (kw == ".inputs") {
      input_names.insert(input_names.end(), tok.begin() + 1, tok.end());
      current = nullptr;
    } else if (kw == ".outputs") {
      output_names.insert(output_names.end(), tok.begin() + 1, tok.end());
      current = nullptr;
    } else if (kw == ".names") {
      if (tok.size() < 2) throw std::runtime_error("blif: empty .names");
      NamesBlock b;
      b.inputs.assign(tok.begin() + 1, tok.end() - 1);
      b.output = tok.back();
      blocks.push_back(std::move(b));
      current = &blocks.back();
    } else if (kw == ".latch" || kw == ".subckt" || kw == ".gate") {
      throw std::runtime_error("blif: unsupported construct " + kw);
    } else if (kw[0] == '.') {
      current = nullptr;  // ignore other dot directives
    } else {
      // A cover row.
      if (current == nullptr) {
        throw std::runtime_error("blif: cover row outside .names");
      }
      if (tok.size() == 1) {
        // Constant block: single output column.
        current->rows.push_back({"", tok[0][0]});
      } else if (tok.size() == 2) {
        current->rows.push_back({tok[0], tok[1][0]});
      } else {
        throw std::runtime_error("blif: malformed cover row");
      }
    }
  }

  // Resolve blocks in dependency order (BLIF allows any order).
  Network net;
  std::unordered_map<std::string, Signal> signal_of;
  for (const auto& name : input_names) {
    signal_of.emplace(name, net.create_pi(name));
  }
  std::unordered_map<std::string, const NamesBlock*> block_of;
  for (const auto& b : blocks) {
    if (!block_of.emplace(b.output, &b).second) {
      throw std::runtime_error("blif: multiple drivers for " + b.output);
    }
  }

  // Iterative DFS resolution; the frame stack is exactly the current path,
  // so path membership detects combinational cycles precisely.
  struct Frame {
    const NamesBlock* block;
    std::size_t next_input = 0;
  };
  std::unordered_map<std::string, bool> on_path;
  auto resolve = [&](const std::string& name) {
    if (signal_of.count(name)) return;
    const auto it = block_of.find(name);
    if (it == block_of.end()) {
      throw std::runtime_error("blif: undriven signal " + name);
    }
    std::vector<Frame> stack{{it->second}};
    on_path[name] = true;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const NamesBlock* b = f.block;
      // Advance past already-resolved inputs.
      while (f.next_input < b->inputs.size() &&
             signal_of.count(b->inputs[f.next_input])) {
        ++f.next_input;
      }
      if (f.next_input < b->inputs.size()) {
        const std::string& in = b->inputs[f.next_input];
        const auto bit = block_of.find(in);
        if (bit == block_of.end()) {
          throw std::runtime_error("blif: undriven signal " + in);
        }
        if (on_path[in]) {
          throw std::runtime_error("blif: combinational cycle at " + in);
        }
        on_path[in] = true;
        stack.push_back({bit->second});
        continue;
      }
      std::vector<Signal> ins;
      ins.reserve(b->inputs.size());
      for (const auto& in : b->inputs) ins.push_back(signal_of.at(in));
      signal_of[b->output] = build_cover(net, *b, ins);
      on_path[b->output] = false;
      stack.pop_back();
    }
  };

  for (const auto& name : output_names) {
    resolve(name);
    net.create_po(signal_of.at(name), name);
  }
  return cleanup(net);
}

Network read_blif_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return read_blif(is);
}

}  // namespace mcs
