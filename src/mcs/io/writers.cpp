#include "mcs/io/writers.hpp"

#include <ostream>
#include <vector>

#include "mcs/network/network_utils.hpp"

namespace mcs {

namespace {

/// `prefix` + decimal `number` without operator+ chains (GCC 12's
/// -Wrestrict false-positives on inlined literal-plus-to_string concats).
std::string numbered(const char* prefix, std::uint64_t number) {
  std::string s(prefix);
  s += std::to_string(number);
  return s;
}

std::string net_name(NodeId n, const Network& net) {
  if (net.is_pi(n)) {
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      if (net.pi_at(i) == n) return net.pi_name(i);
    }
  }
  return numbered("n", n);
}

/// BLIF cover rows of one gate type over non-complemented inputs; the
/// complement pattern of the fanins is applied by flipping row bits.
void write_gate_cover(std::ostream& os, const Network& net, NodeId n) {
  const Node& nd = net.node(n);
  const int arity = nd.num_fanins;
  // Enumerate the onset of the gate function over its fanin values.
  for (unsigned m = 0; m < (1u << arity); ++m) {
    bool in[3] = {};
    for (int i = 0; i < arity; ++i) {
      in[i] = ((m >> i) & 1u) != 0;
      if (nd.fanin[i].complemented()) in[i] = !in[i];
    }
    bool out = false;
    switch (nd.type) {
      case GateType::kAnd2: out = in[0] && in[1]; break;
      case GateType::kXor2: out = in[0] != in[1]; break;
      case GateType::kMaj3: out = (in[0] + in[1] + in[2]) >= 2; break;
      case GateType::kXor3: out = in[0] ^ in[1] ^ in[2]; break;
      default: break;
    }
    if (!out) continue;
    for (int i = 0; i < arity; ++i) os << (((m >> i) & 1u) ? '1' : '0');
    os << " 1\n";
  }
}

}  // namespace

void write_blif(const Network& net, std::ostream& os,
                const std::string& model) {
  os << ".model " << model << "\n.inputs";
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    os << ' ' << net.pi_name(i);
  }
  os << "\n.outputs";
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    os << ' ' << net.po_name(i);
  }
  os << '\n';

  const auto order = topo_order(net);
  bool const_used = false;
  for (const Signal s : net.pos()) {
    if (net.is_const0(s.node())) const_used = true;
  }
  if (const_used) os << ".names n0\n";  // constant zero

  for (const NodeId n : order) {
    if (!net.is_gate(n)) continue;
    const Node& nd = net.node(n);
    os << ".names";
    for (int i = 0; i < nd.num_fanins; ++i) {
      os << ' ' << net_name(nd.fanin[i].node(), net);
    }
    os << ' ' << net_name(n, net) << '\n';
    write_gate_cover(os, net, n);
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    os << ".names " << net_name(s.node(), net) << ' ' << net.po_name(i)
       << '\n'
       << (s.complemented() ? "0 1\n" : "1 1\n");
  }
  os << ".end\n";
}

void write_blif(const LutNetwork& lnet, std::ostream& os,
                const std::string& model) {
  os << ".model " << model << "\n.inputs";
  for (int i = 0; i < lnet.num_pis; ++i) os << " pi" << i;
  os << "\n.outputs";
  for (std::size_t i = 0; i < lnet.po_refs.size(); ++i) os << " po" << i;
  os << '\n';

  auto ref_name = [&](std::int32_t r) {
    return r < lnet.num_pis ? numbered("pi", r)
                            : numbered("lut", r - lnet.num_pis);
  };

  for (std::size_t i = 0; i < lnet.luts.size(); ++i) {
    const auto& lut = lnet.luts[i];
    os << ".names";
    for (const auto r : lut.inputs) os << ' ' << ref_name(r);
    os << " lut" << i << '\n';
    const int k = static_cast<int>(lut.inputs.size());
    for (unsigned m = 0; m < (1u << k); ++m) {
      if (!((lut.function >> m) & 1ull)) continue;
      for (int j = 0; j < k; ++j) os << (((m >> j) & 1u) ? '1' : '0');
      if (k > 0) os << ' ';
      os << "1\n";
    }
  }
  for (std::size_t i = 0; i < lnet.po_refs.size(); ++i) {
    os << ".names " << ref_name(lnet.po_refs[i]) << " po" << i << '\n'
       << (lnet.po_compl[i] ? "0 1\n" : "1 1\n");
  }
  os << ".end\n";
}

void write_verilog(const Network& net, std::ostream& os,
                   const std::string& module) {
  os << "module " << module << " (";
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    os << net.pi_name(i) << ", ";
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    os << net.po_name(i) << (i + 1 < net.num_pos() ? ", " : "");
  }
  os << ");\n";
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    os << "  input " << net.pi_name(i) << ";\n";
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    os << "  output " << net.po_name(i) << ";\n";
  }

  auto sig = [&](Signal s) {
    if (net.is_const0(s.node())) return std::string(s.complemented() ? "1'b1" : "1'b0");
    const std::string base = net_name(s.node(), net);
    return s.complemented() ? "~" + base : base;
  };

  const auto order = topo_order(net);
  for (const NodeId n : order) {
    if (net.is_gate(n)) os << "  wire " << net_name(n, net) << ";\n";
  }
  for (const NodeId n : order) {
    if (!net.is_gate(n)) continue;
    const Node& nd = net.node(n);
    os << "  assign " << net_name(n, net) << " = ";
    switch (nd.type) {
      case GateType::kAnd2:
        os << sig(nd.fanin[0]) << " & " << sig(nd.fanin[1]);
        break;
      case GateType::kXor2:
        os << sig(nd.fanin[0]) << " ^ " << sig(nd.fanin[1]);
        break;
      case GateType::kXor3:
        os << sig(nd.fanin[0]) << " ^ " << sig(nd.fanin[1]) << " ^ "
           << sig(nd.fanin[2]);
        break;
      case GateType::kMaj3: {
        const auto a = sig(nd.fanin[0]), b = sig(nd.fanin[1]),
                   c = sig(nd.fanin[2]);
        os << "(" << a << " & " << b << ") | (" << a << " & " << c
           << ") | (" << b << " & " << c << ")";
        break;
      }
      default:
        break;
    }
    os << ";\n";
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    os << "  assign " << net.po_name(i) << " = " << sig(net.po_at(i))
       << ";\n";
  }
  os << "endmodule\n";
}

void write_verilog(const CellNetlist& netlist, std::ostream& os,
                   const std::string& module) {
  os << "// mapped with " << netlist.library->name() << ": area "
     << netlist.area << " um^2, delay " << netlist.delay << " ps\n";
  os << "module " << module << " (";
  for (int i = 0; i < netlist.num_pis; ++i) os << "pi" << i << ", ";
  for (std::size_t i = 0; i < netlist.po_refs.size(); ++i) {
    os << "po" << i << (i + 1 < netlist.po_refs.size() ? ", " : "");
  }
  os << ");\n";
  for (int i = 0; i < netlist.num_pis; ++i) os << "  input pi" << i << ";\n";
  for (std::size_t i = 0; i < netlist.po_refs.size(); ++i) {
    os << "  output po" << i << ";\n";
  }
  auto ref_name = [&](std::int32_t r) {
    return r < netlist.num_pis ? numbered("pi", r)
                               : numbered("w", r - netlist.num_pis);
  };
  for (std::size_t i = 0; i < netlist.instances.size(); ++i) {
    os << "  wire w" << i << ";\n";
  }
  for (std::size_t i = 0; i < netlist.instances.size(); ++i) {
    const auto& inst = netlist.instances[i];
    const Cell& cell = netlist.library->cell(inst.cell);
    os << "  " << cell.name << " g" << i << " (.Y(w" << i << ")";
    for (std::size_t j = 0; j < inst.fanins.size(); ++j) {
      os << ", ." << static_cast<char>('A' + j) << '('
         << ref_name(inst.fanins[j]) << ')';
    }
    os << ");\n";
  }
  for (std::size_t i = 0; i < netlist.po_refs.size(); ++i) {
    os << "  assign po" << i << " = ";
    if (netlist.po_const[i]) {
      os << (netlist.po_const_value[i] ? "1'b1" : "1'b0");
    } else {
      os << ref_name(netlist.po_refs[i]);
    }
    os << ";\n";
  }
  os << "endmodule\n";
}

}  // namespace mcs
