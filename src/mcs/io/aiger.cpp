#include "mcs/io/aiger.hpp"

#include <cassert>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "mcs/fail/fail.hpp"
#include "mcs/network/network_utils.hpp"

namespace mcs {

namespace {

/// AIGER literal of a signal given the node -> variable mapping.
unsigned lit_of(const std::vector<unsigned>& var, Signal s) {
  return 2 * var[s.node()] + (s.complemented() ? 1 : 0);
}

void write_delta(std::ostream& os, unsigned delta) {
  while (delta >= 0x80) {
    os.put(static_cast<char>(0x80 | (delta & 0x7f)));
    delta >>= 7;
  }
  os.put(static_cast<char>(delta));
}

unsigned read_delta(std::istream& is) {
  unsigned result = 0;
  int shift = 0;
  for (;;) {
    const int ch = is.get();
    if (ch == EOF) throw std::runtime_error("aiger: truncated binary body");
    result |= static_cast<unsigned>(ch & 0x7f) << shift;
    if (!(ch & 0x80)) return result;
    shift += 7;
  }
}

}  // namespace

void write_aiger(const Network& net, std::ostream& os, bool binary) {
  if (!net.is_aig()) {
    throw std::runtime_error("write_aiger: network is not an AIG");
  }
  // Assign AIGER variables: PIs first, then ANDs in topological order.
  std::vector<unsigned> var(net.size(), 0);
  unsigned next = 1;
  for (const NodeId pi : net.pis()) var[pi] = next++;
  std::vector<NodeId> ands;
  for (const NodeId n : topo_order(net)) {
    if (net.is_gate(n)) {
      ands.push_back(n);
      var[n] = next++;
    }
  }

  const std::size_t I = net.num_pis();
  const std::size_t A = ands.size();
  const std::size_t M = I + A;
  os << (binary ? "aig " : "aag ") << M << ' ' << I << " 0 "
     << net.num_pos() << ' ' << A << '\n';
  if (!binary) {
    for (std::size_t i = 0; i < I; ++i) os << 2 * (i + 1) << '\n';
  }
  for (const Signal s : net.pos()) os << lit_of(var, s) << '\n';
  for (const NodeId n : ands) {
    const Node& nd = net.node(n);
    unsigned lhs = 2 * var[n];
    unsigned r0 = lit_of(var, nd.fanin[0]);
    unsigned r1 = lit_of(var, nd.fanin[1]);
    if (r0 < r1) std::swap(r0, r1);
    if (binary) {
      assert(lhs > r0 && r0 >= r1);
      write_delta(os, lhs - r0);
      write_delta(os, r0 - r1);
    } else {
      os << lhs << ' ' << r0 << ' ' << r1 << '\n';
    }
  }
  // Symbol table: names for PIs/POs.
  for (std::size_t i = 0; i < I; ++i) {
    os << 'i' << i << ' ' << net.pi_name(i) << '\n';
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    os << 'o' << i << ' ' << net.po_name(i) << '\n';
  }
  os << "c\nwritten by mcs\n";
}

void write_aiger_file(const Network& net, const std::string& path,
                      bool binary) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path);
  write_aiger(net, os, binary);
}

Network read_aiger(std::istream& is) {
  fail::point("io.read.aiger");
  std::string format;
  std::size_t M, I, L, O, A;
  if (!(is >> format >> M >> I >> L >> O >> A)) {
    throw std::runtime_error("aiger: malformed header");
  }
  if (format != "aag" && format != "aig") {
    throw std::runtime_error("aiger: unknown format '" + format + "'");
  }
  if (L != 0) throw std::runtime_error("aiger: latches are not supported");
  // Plausibility before allocation: the header sizes drive reserves, and
  // this reader also sees attacker-chosen inline text through the job
  // server -- a 20-byte line claiming 4 billion variables must be
  // rejected here, not by the OOM killer.  The spec requires M >= I+L+A.
  constexpr std::size_t kMaxHeaderCount = std::size_t{1} << 28;
  if (M > kMaxHeaderCount || O > kMaxHeaderCount || I + A > M) {
    throw std::runtime_error("aiger: implausible header (M=" +
                             std::to_string(M) + " I=" + std::to_string(I) +
                             " O=" + std::to_string(O) +
                             " A=" + std::to_string(A) + ")");
  }
  const bool binary = format == "aig";

  Network net;
  net.reserve(1 + I + A);
  // lit -> signal mapping by variable index.
  std::vector<Signal> var(M + 1, Signal());
  var[0] = net.constant(false);
  auto sig_of = [&](unsigned lit) {
    const unsigned v = lit >> 1;
    if (v >= var.size()) throw std::runtime_error("aiger: literal overflow");
    return var[v] ^ ((lit & 1) != 0);
  };

  if (binary) {
    for (std::size_t i = 0; i < I; ++i) var[i + 1] = net.create_pi();
  } else {
    for (std::size_t i = 0; i < I; ++i) {
      unsigned lit;
      if (!(is >> lit) || (lit & 1) || lit / 2 > M) {
        throw std::runtime_error("aiger: bad input literal");
      }
      var[lit / 2] = net.create_pi();
    }
  }

  std::vector<unsigned> po_lits(O);
  for (std::size_t i = 0; i < O; ++i) {
    if (!(is >> po_lits[i])) throw std::runtime_error("aiger: bad output");
  }

  if (binary) {
    is.get();  // consume the newline before the binary body
    for (std::size_t i = 0; i < A; ++i) {
      const unsigned lhs = 2 * static_cast<unsigned>(I + i + 1);
      const unsigned d0 = read_delta(is);
      const unsigned d1 = read_delta(is);
      const unsigned r0 = lhs - d0;
      const unsigned r1 = r0 - d1;
      var[lhs / 2] = net.create_and(sig_of(r0), sig_of(r1));
    }
  } else {
    for (std::size_t i = 0; i < A; ++i) {
      unsigned lhs, r0, r1;
      if (!(is >> lhs >> r0 >> r1) || (lhs & 1)) {
        throw std::runtime_error("aiger: bad and line");
      }
      var[lhs / 2] = net.create_and(sig_of(r0), sig_of(r1));
    }
  }

  for (const unsigned lit : po_lits) net.create_po(sig_of(lit));
  return net;
}

Network read_aiger_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  return read_aiger(is);
}

}  // namespace mcs
