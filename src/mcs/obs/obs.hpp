/// \file obs.hpp
/// \brief mcs::obs -- always-on metrics, tracing and profiling substrate.
///
/// Every layer of the parallel synthesis stack (thread pool, strash, cut
/// arena, sweep, CEC, simulation, flow stages) reports into this subsystem;
/// the flow layer snapshots it per stage, the shell exposes it as the
/// `stats` / `trace` commands, and `MCS_TRACE=<file>` captures a whole
/// headless run.  Two pillars:
///
///   - **Metrics**: a process-wide registry of named counters, gauges and
///     histograms.  Counter/histogram increments land in *per-thread* cells
///     (plain load/store on memory the owning thread writes exclusively --
///     no locked RMW, no false sharing, ~1ns per add) and are aggregated
///     only when somebody reads: observation is cheap enough to stay
///     compiled into release builds.  Cells of finished threads are folded
///     into a retired accumulator, so totals survive pool reconstruction.
///   - **Tracing**: RAII scoped spans (`obs::Span`) with nesting depth and
///     thread attribution, buffered per thread and exportable as Chrome
///     `chrome://tracing` / Perfetto `trace_events` JSON, so one `run_flow`
///     renders as a flame chart of passes -> shards -> pool batches.
///     Tracing is off by default; a disabled span costs one relaxed load.
///
/// Determinism contract: nothing in this subsystem feeds back into any
/// algorithm -- metrics and spans only *observe*.  The 1-vs-N bit-identity
/// suites run with tracing enabled to enforce that.
///
/// Compile-time escape hatch: building with -DMCS_OBS_DISABLE (CMake option
/// of the same name) turns the whole API into no-op inline stubs, so the
/// zero-cost path is provable by construction and checked in CI.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::obs {

/// One aggregated metric reading (see snapshot()).
struct MetricValue {
  std::string name;
  std::int64_t value = 0;
};

/// A whole-registry reading: counters are monotonic sums over all threads
/// (live and retired); gauges are last-written values.
struct MetricsSnapshot {
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
};

/// Aggregated view of the spans recorded since some point in time.
struct SpanStats {
  std::string name;
  std::size_t count = 0;
  double seconds = 0.0;  ///< summed wall-clock duration
};

#ifndef MCS_OBS_DISABLE

namespace detail {

/// Slots per thread block.  Counters take one slot, histograms take
/// kHistBuckets consecutive slots; allocation beyond the block falls back
/// to a shared atomic (correct, merely contended).
inline constexpr std::size_t kMaxSlots = 512;
inline constexpr int kHistBuckets = 24;  ///< log2 buckets, last = overflow

/// Per-thread metric cells.  Only the owning thread writes a cell, so the
/// increment is a relaxed load+store pair (no locked RMW); aggregators read
/// the atomics relaxed.  Registered in a global list on first use, retired
/// (values folded into a global accumulator) on thread exit.
struct ThreadCells {
  std::atomic<std::uint64_t> cells[kMaxSlots];
  ThreadCells();
  ~ThreadCells();
};

/// Inline so the two hottest instructions of Counter::add (TLS address +
/// relaxed store) inline into callers; the thread_local's guard check is
/// the only per-access cost after the first touch.
inline ThreadCells& thread_cells() {
  thread_local ThreadCells cells;
  return cells;
}

void record_span(const char* name_literal, const std::string& name_owned,
                 std::uint64_t start_us, std::uint64_t dur_us,
                 std::uint64_t epoch);

extern std::atomic<bool> g_tracing;

/// Bumped by trace_clear(); a span records only if the epoch it started in
/// is still current, so in-flight spans cannot repopulate a cleared trace.
extern std::atomic<std::uint64_t> g_trace_epoch;

}  // namespace detail

/// Microseconds since process start (steady clock); the timestamp base of
/// every trace event.
std::uint64_t now_us() noexcept;

// --- metrics ----------------------------------------------------------------

/// A monotonic counter.  Obtain once (registry lookup takes a mutex), then
/// add() freely from any thread.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    if (slot_ < detail::kMaxSlots) {
      std::atomic<std::uint64_t>& c = detail::thread_cells().cells[slot_];
      c.store(c.load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
    } else {
      overflow_->fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void increment() noexcept { add(1); }

  /// Aggregated total over all threads, live and retired.
  std::uint64_t value() const;

 private:
  friend Counter& counter(std::string_view);
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_;
  /// Shared fallback cell, resolved at registration (slots never move), so
  /// overflow adds stay a single lock-free fetch_add.  Null below kMaxSlots.
  std::atomic<std::uint64_t>* overflow_ = nullptr;
};

/// A last-value gauge (single atomic; set/add from any thread).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  /// set(v) if v is greater than the current value (e.g. high-water marks).
  void set_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend Gauge& gauge(std::string_view);
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative samples (value v lands in
/// bucket floor(log2(v))+1, zero in bucket 0; the last bucket absorbs
/// overflow).  Buckets are per-thread cells like counters.
class Histogram {
 public:
  void observe(std::uint64_t v) noexcept {
    int b = 0;
    while (v != 0 && b < detail::kHistBuckets - 1) {
      v >>= 1;
      ++b;
    }
    const std::uint32_t slot = base_ + static_cast<std::uint32_t>(b);
    if (slot < detail::kMaxSlots) {
      std::atomic<std::uint64_t>& c = detail::thread_cells().cells[slot];
      c.store(c.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    } else {
      overflow_[b]->fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Aggregated per-bucket totals (kHistBuckets entries).
  std::vector<std::uint64_t> buckets() const;
  std::uint64_t total() const;

 private:
  friend Histogram& histogram(std::string_view);
  explicit Histogram(std::uint32_t base) : base_(base) {}
  std::uint32_t base_;
  /// Per-bucket shared fallback cells for slots past kMaxSlots, resolved at
  /// registration; entries for in-block buckets stay null.
  std::atomic<std::uint64_t>* overflow_[detail::kHistBuckets] = {};
};

/// Registry lookup-or-create.  The returned references are stable for the
/// process lifetime; hot paths cache them in function-local statics.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Aggregated reading of every registered metric, names sorted.
/// Histograms appear among the counters as `<name>.count` (total samples)
/// and `<name>.p50_bucket` (upper bound of the median log2 bucket).
MetricsSnapshot snapshot();

/// Counters that changed between \p before and now (name -> delta), plus
/// the current gauge values.  The flow layer attaches this to every stage.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& before);

/// Human-readable table of the whole registry (the shell's `stats`).
std::string metrics_text();

/// One JSON object {"counters": {...}, "gauges": {...}}.
std::string metrics_json();

// --- tracing ----------------------------------------------------------------

inline bool tracing_enabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Turns span recording on/off.  Enabling does not clear prior events;
/// see trace_clear().
void set_tracing(bool on);

/// Drops every recorded span.
void trace_clear();

/// Number of spans recorded so far (live + retired threads).
std::size_t trace_size();

/// The recorded spans as Chrome trace-event JSON ("X" complete events with
/// per-thread lanes and thread_name metadata); open in chrome://tracing or
/// https://ui.perfetto.dev.
std::string trace_json();

/// Writes trace_json() to \p path; false on I/O failure.
bool trace_dump(const std::string& path);

/// Aggregates spans whose *start* lies at/after \p since_us by name.
/// Sorted by summed duration, longest first.
std::vector<SpanStats> aggregate_spans(std::uint64_t since_us);

/// Names the calling thread in trace exports (e.g. "pool-worker-3").
void set_thread_name(const std::string& name);

/// If the MCS_TRACE environment variable names a file, enables tracing and
/// registers an atexit hook dumping the trace there.  Idempotent; called
/// from run_flow, the shell and the bench mains so headless runs are
/// covered without plumbing.
void init_from_env();

/// RAII scoped span.  When tracing is off, construction is one relaxed
/// load.  Two constructors: a string-literal one (zero-copy) and an owning
/// one for dynamic names (only evaluated when tracing is on -- pass a
/// maker lambda to avoid building strings eagerly on hot paths).
class Span {
 public:
  /// \p name must outlive the span (string literals qualify).
  explicit Span(const char* name) noexcept {
    if (tracing_enabled()) begin(name);
  }
  /// Owning variant for dynamic names.
  explicit Span(std::string name) {
    if (tracing_enabled()) {
      owned_ = std::move(name);
      begin(nullptr);
    }
  }
  /// Lazy-name variant: \p make_name() is only called when tracing is on.
  template <typename Fn,
            typename = decltype(std::string(std::declval<Fn>()()))>
  explicit Span(const Fn& make_name) {
    if (tracing_enabled()) {
      owned_ = make_name();
      begin(nullptr);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    // Re-check tracing so a span in flight across set_tracing(false) does
    // not record; the epoch guard likewise drops spans that straddle a
    // trace_clear() instead of repopulating the cleared buffers.
    if (active_ && tracing_enabled()) {
      detail::record_span(literal_, owned_, start_us_, now_us() - start_us_,
                          epoch_);
    }
  }

 private:
  void begin(const char* literal) noexcept {
    active_ = true;
    literal_ = literal;
    epoch_ = detail::g_trace_epoch.load(std::memory_order_relaxed);
    start_us_ = now_us();
  }

  bool active_ = false;
  const char* literal_ = nullptr;
  std::string owned_;
  std::uint64_t start_us_ = 0;
  std::uint64_t epoch_ = 0;
};

#else  // MCS_OBS_DISABLE -----------------------------------------------------

// No-op stubs: identical call surface, zero code on every hot path.  The
// read-side API returns empty data so the shell/flow plumbing still links.

inline std::uint64_t now_us() noexcept { return 0; }

class Counter {
 public:
  void add(std::uint64_t) noexcept {}
  void increment() noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void set_max(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void observe(std::uint64_t) noexcept {}
  std::vector<std::uint64_t> buckets() const { return {}; }
  std::uint64_t total() const noexcept { return 0; }
};

Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

inline MetricsSnapshot snapshot() { return {}; }
inline MetricsSnapshot snapshot_delta(const MetricsSnapshot&) { return {}; }
std::string metrics_text();
std::string metrics_json();

inline bool tracing_enabled() noexcept { return false; }
inline void set_tracing(bool) {}
inline void trace_clear() {}
inline std::size_t trace_size() { return 0; }
std::string trace_json();
inline bool trace_dump(const std::string&) { return false; }
inline std::vector<SpanStats> aggregate_spans(std::uint64_t) { return {}; }
inline void set_thread_name(const std::string&) {}
inline void init_from_env() {}

class Span {
 public:
  explicit Span(const char*) noexcept {}
  explicit Span(std::string) noexcept {}
  template <typename Fn,
            typename = decltype(std::string(std::declval<Fn>()()))>
  explicit Span(const Fn&) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // MCS_OBS_DISABLE

}  // namespace mcs::obs
