/// \file obs.hpp
/// \brief mcs::obs -- always-on metrics, tracing and profiling substrate.
///
/// Every layer of the parallel synthesis stack (thread pool, strash, cut
/// arena, sweep, CEC, simulation, flow stages) reports into this subsystem;
/// the flow layer snapshots it per stage, the shell exposes it as the
/// `stats` / `trace` commands, and `MCS_TRACE=<file>` captures a whole
/// headless run.  Three pillars:
///
///   - **Metrics**: a process-wide registry of named counters, gauges and
///     histograms.  Counter/histogram increments land in *per-thread* cells
///     (plain load/store on memory the owning thread writes exclusively --
///     no locked RMW, no false sharing, ~1ns per add) and are aggregated
///     only when somebody reads: observation is cheap enough to stay
///     compiled into release builds.  Cells of finished threads are folded
///     into a retired accumulator, so totals survive pool reconstruction.
///   - **Attribution**: a metric *domain* (`obs::Domain`) is a second,
///     job-scoped accumulator.  While a thread holds an `obs::Scope` every
///     counter/histogram increment is recorded twice -- in the process-wide
///     registry as before, and in the active domain.  The thread pool
///     inherits the submitting thread's domain into its tasks, so a flow
///     running on N workers still attributes all of its work to its own
///     domain even when jobs share the pool.  Domain increments accumulate
///     in a thread-local scratch block and are folded into the domain's
///     shared cells only at scope transitions (task boundaries), preserving
///     the write-exclusive hot path.  A scope also meters thread CPU time
///     (CLOCK_THREAD_CPUTIME_ID) into its domain, switching attribution on
///     every scope transition so stolen cross-job tasks charge the right
///     owner.
///   - **Tracing**: RAII scoped spans (`obs::Span`) with nesting depth and
///     thread attribution, buffered per thread and exportable as Chrome
///     `chrome://tracing` / Perfetto `trace_events` JSON, so one `run_flow`
///     renders as a flame chart of passes -> shards -> pool batches.
///     Tracing is off by default; a disabled span costs one relaxed load.
///
/// On top of the registry sits the *telemetry ring*: an optional sampler
/// thread (`sampler_start`) snapshots every metric each N ms into a
/// fixed-size ring with histogram percentiles, exported as JSON
/// (`ring_json`) and Prometheus text exposition format (`prometheus_text`)
/// -- the server's `stats` verb and `mcs_top` read from here.
///
/// Determinism contract: nothing in this subsystem feeds back into any
/// algorithm -- metrics and spans only *observe*.  The 1-vs-N bit-identity
/// suites run with tracing enabled to enforce that.
///
/// Compile-time escape hatch: building with -DMCS_OBS_DISABLE (CMake option
/// of the same name) turns the whole API into no-op inline stubs, so the
/// zero-cost path is provable by construction and checked in CI.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcs::obs {

/// One aggregated metric reading (see snapshot()).
struct MetricValue {
  std::string name;
  std::int64_t value = 0;
};

/// A whole-registry reading: counters are monotonic sums over all threads
/// (live and retired); gauges are last-written values.
struct MetricsSnapshot {
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
};

/// Aggregated view of the spans recorded since some point in time.
struct SpanStats {
  std::string name;
  std::size_t count = 0;
  double seconds = 0.0;  ///< summed wall-clock duration
};

/// One histogram's aggregated buckets (see histogram_snapshots()).
struct HistogramSnapshot {
  std::string name;
  std::vector<std::uint64_t> buckets;  ///< kHistBuckets log2 buckets
  std::uint64_t count = 0;             ///< total samples
  std::uint64_t sum = 0;               ///< sum of observed values
};

/// Per-domain high-water marks recorded by subsystems that track peak
/// memory (strash tables, cut arenas).
enum class DomainPeak : int { kStrashBytes = 0, kArenaBytes = 1 };
inline constexpr int kDomainPeaks = 2;

/// Counters that differ between \p now and \p before (name -> delta), plus
/// \p now's gauges verbatim.  Pure data transform; works on global and
/// domain snapshots alike.
inline MetricsSnapshot snapshot_diff(const MetricsSnapshot& now,
                                     const MetricsSnapshot& before) {
  MetricsSnapshot delta;
  delta.gauges = now.gauges;
  for (const MetricValue& mv : now.counters) {
    std::int64_t base = 0;
    for (const MetricValue& prev : before.counters) {
      if (prev.name == mv.name) {
        base = prev.value;
        break;
      }
    }
    if (mv.value != base) delta.counters.push_back({mv.name, mv.value - base});
  }
  return delta;
}

/// Interpolated percentile (p in [0,1]) over log2 buckets as laid out by
/// Histogram: bucket 0 holds exact zeros, bucket b >= 1 covers
/// [2^(b-1), 2^b - 1].  Linear interpolation inside the chosen bucket;
/// 0 when the histogram is empty.
inline double percentile_from_buckets(const std::vector<std::uint64_t>& buckets,
                                      double p) {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(total);
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(acc);
    acc += buckets[b];
    if (static_cast<double>(acc) >= target) {
      if (b == 0) return 0.0;
      const double lower =
          static_cast<double>(std::uint64_t{1} << (b - 1));
      const double upper = 2.0 * lower - 1.0;
      const double frac =
          (target - before) / static_cast<double>(buckets[b]);
      return lower + frac * (upper - lower);
    }
  }
  return 0.0;  // unreachable: total > 0 guarantees the loop returns
}

#ifndef MCS_OBS_DISABLE

class Domain;

namespace detail {

/// Slots per thread block.  Counters take one slot, histograms take
/// kHistBuckets + 1 consecutive slots (buckets + running sum); allocation
/// beyond the block falls back to a shared atomic (correct, merely
/// contended).
inline constexpr std::size_t kMaxSlots = 1024;
inline constexpr int kHistBuckets = 24;  ///< log2 buckets, last = overflow

/// Per-thread attribution state: the active domain and a plain (non-atomic,
/// write-exclusive) scratch block of pending deltas for it.  The scratch is
/// folded into the domain's shared cells only when the scope changes, so
/// hot-path increments never touch shared memory.
struct DomainState {
  Domain* current = nullptr;
  std::uint64_t last_cpu_ns = 0;
  std::uint64_t scratch[kMaxSlots] = {};
};

/// Per-thread metric cells.  Only the owning thread writes a cell, so the
/// increment is a relaxed load+store pair (no locked RMW); aggregators read
/// the atomics relaxed.  Registered in a global list on first use, retired
/// (values folded into a global accumulator) on thread exit.  The domain
/// attribution state lives in the same thread_local so one TLS resolution
/// (and one init-guard check) serves both halves of an increment.
struct ThreadCells {
  std::atomic<std::uint64_t> cells[kMaxSlots];
  DomainState domain;
  ThreadCells();
  ~ThreadCells();
};

/// Inline so the two hottest instructions of Counter::add (TLS address +
/// relaxed store) inline into callers; the thread_local's guard check is
/// the only per-access cost after the first touch.
inline ThreadCells& thread_cells() {
  thread_local ThreadCells cells;
  return cells;
}

inline DomainState& domain_state() { return thread_cells().domain; }

/// CLOCK_THREAD_CPUTIME_ID in nanoseconds (this thread's CPU time).
std::uint64_t thread_cpu_ns() noexcept;

void record_span(const char* name_literal, const std::string& name_owned,
                 std::uint64_t start_us, std::uint64_t dur_us,
                 std::uint64_t epoch);

extern std::atomic<bool> g_tracing;

/// Bumped by trace_clear(); a span records only if the epoch it started in
/// is still current, so in-flight spans cannot repopulate a cleared trace.
extern std::atomic<std::uint64_t> g_trace_epoch;

}  // namespace detail

/// Microseconds since process start (steady clock); the timestamp base of
/// every trace event.
std::uint64_t now_us() noexcept;

// --- attribution ------------------------------------------------------------

/// A job-scoped metric accumulator.  Install with an obs::Scope; every
/// counter/histogram increment made while the scope is active lands here as
/// well as in the process-wide registry.  Shared cells are only written at
/// scope transitions (a relaxed fetch_add per touched slot), so domains add
/// no contention to hot paths even when many pool workers share one.
///
/// Lifetime: a domain must outlive every task that inherited it through the
/// thread pool (the flow layer keeps it on the FlowContext, which outlives
/// the flow run).
class Domain {
 public:
  Domain() {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  }
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Folds a scratch delta into the shared cell.  Slots past the per-thread
  /// block are process-global only -- the domain simply misses them (the
  /// registry stays correct; attribution degrades, never corrupts).
  void add_slot(std::uint32_t slot, std::uint64_t delta) noexcept {
    if (slot < detail::kMaxSlots)
      cells_[slot].fetch_add(delta, std::memory_order_relaxed);
  }

  void add_cpu_ns(std::uint64_t ns) noexcept {
    cpu_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// Attributed CPU time over every thread that ran under this domain.
  std::uint64_t cpu_us() const noexcept {
    return cpu_ns_.load(std::memory_order_relaxed) / 1000;
  }

  void peak_max(DomainPeak k, std::int64_t v) noexcept {
    std::atomic<std::int64_t>& p = peaks_[static_cast<int>(k)];
    std::int64_t cur = p.load(std::memory_order_relaxed);
    while (v > cur &&
           !p.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t peak(DomainPeak k) const noexcept {
    return peaks_[static_cast<int>(k)].load(std::memory_order_relaxed);
  }

  /// Aggregated reading of this domain, in snapshot() shape: counters (and
  /// histogram `.count` / `.p50_bucket` derivations) hold the domain's own
  /// totals; gauges carry the domain peaks (`obs.domain.*`).  Process
  /// gauges are deliberately absent -- they are instantaneous global values
  /// that cannot be attributed.  Flushes the calling thread's pending
  /// scratch first, so a scope-holding thread sees its own increments.
  MetricsSnapshot snapshot();

 private:
  friend class Scope;
  std::atomic<std::uint64_t> cells_[detail::kMaxSlots];
  std::atomic<std::uint64_t> cpu_ns_{0};
  std::atomic<std::int64_t> peaks_[kDomainPeaks] = {};
};

/// RAII binding of a Domain to the current thread.  Nested scopes stack;
/// re-entering the already-active domain (e.g. a pool caller participating
/// in its own batch) is a no-op, so CPU time is never double counted.
/// Passing nullptr detaches the thread (increments go global-only).
class Scope {
 public:
  explicit Scope(Domain* d) noexcept {
    detail::DomainState& st = detail::domain_state();
    if (st.current == d) return;  // same domain (or both null): nothing to do
    active_ = true;
    prev_ = st.current;
    switch_domain(st, d);
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope() {
    if (active_) switch_domain(detail::domain_state(), prev_);
  }

  /// The calling thread's active domain (null when detached).  The thread
  /// pool captures this at submit time to inherit attribution into tasks.
  static Domain* current() noexcept { return detail::domain_state().current; }

 private:
  /// Flushes pending scratch and CPU time to the outgoing domain, then
  /// installs \p next and restarts the CPU meter.  Defined in obs.cpp.
  static void switch_domain(detail::DomainState& st, Domain* next) noexcept;

  bool active_ = false;
  Domain* prev_ = nullptr;
};

/// Records a peak-memory observation against the calling thread's active
/// domain (no-op when detached).  Subsystems with process-global high-water
/// gauges (strash, cut arena) call this next to their set_max.
inline void domain_peak_max(DomainPeak k, std::int64_t v) noexcept {
  detail::DomainState& st = detail::domain_state();
  if (st.current != nullptr) st.current->peak_max(k, v);
}

// --- metrics ----------------------------------------------------------------

/// A monotonic counter.  Obtain once (registry lookup takes a mutex), then
/// add() freely from any thread.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    if (slot_ < detail::kMaxSlots) {
      detail::ThreadCells& tc = detail::thread_cells();
      std::atomic<std::uint64_t>& c = tc.cells[slot_];
      c.store(c.load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
      if (tc.domain.current != nullptr) tc.domain.scratch[slot_] += delta;
    } else {
      overflow_->fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void increment() noexcept { add(1); }

  /// Aggregated total over all threads, live and retired.
  std::uint64_t value() const;

 private:
  friend Counter& counter(std::string_view);
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_;
  /// Shared fallback cell, resolved at registration (slots never move), so
  /// overflow adds stay a single lock-free fetch_add.  Null below kMaxSlots.
  std::atomic<std::uint64_t>* overflow_ = nullptr;
};

/// A last-value gauge (single atomic; set/add from any thread).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  /// set(v) if v is greater than the current value (e.g. high-water marks).
  void set_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend Gauge& gauge(std::string_view);
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative samples (value v lands in
/// bucket floor(log2(v))+1, zero in bucket 0; the last bucket absorbs
/// overflow).  Buckets are per-thread cells like counters; one extra slot
/// accumulates the running sum for Prometheus export.
class Histogram {
 public:
  void observe(std::uint64_t v) noexcept {
    const std::uint64_t orig = v;
    int b = 0;
    while (v != 0 && b < detail::kHistBuckets - 1) {
      v >>= 1;
      ++b;
    }
    bump(base_ + static_cast<std::uint32_t>(b), b, 1);
    bump(base_ + static_cast<std::uint32_t>(detail::kHistBuckets),
         detail::kHistBuckets, orig);
  }

  /// Aggregated per-bucket totals (kHistBuckets entries).
  std::vector<std::uint64_t> buckets() const;
  std::uint64_t total() const;
  /// Sum of all observed values (live + retired threads).
  std::uint64_t sum() const;
  /// Interpolated percentile of the observed distribution, p in [0,1].
  double percentile(double p) const { return percentile_from_buckets(buckets(), p); }

 private:
  friend Histogram& histogram(std::string_view);
  explicit Histogram(std::uint32_t base) : base_(base) {}

  void bump(std::uint32_t slot, int local, std::uint64_t delta) noexcept {
    if (slot < detail::kMaxSlots) {
      detail::ThreadCells& tc = detail::thread_cells();
      std::atomic<std::uint64_t>& c = tc.cells[slot];
      c.store(c.load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
      if (tc.domain.current != nullptr) tc.domain.scratch[slot] += delta;
    } else {
      overflow_[local]->fetch_add(delta, std::memory_order_relaxed);
    }
  }

  std::uint32_t base_;
  /// Per-bucket (plus sum) shared fallback cells for slots past kMaxSlots,
  /// resolved at registration; entries for in-block slots stay null.
  std::atomic<std::uint64_t>* overflow_[detail::kHistBuckets + 1] = {};
};

/// Registry lookup-or-create.  The returned references are stable for the
/// process lifetime; hot paths cache them in function-local statics.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Aggregated reading of every registered metric, names sorted.
/// Histograms appear among the counters as `<name>.count` (total samples)
/// and `<name>.p50_bucket` (upper bound of the median log2 bucket).
MetricsSnapshot snapshot();

/// Counters that changed between \p before and now (name -> delta), plus
/// the current gauge values.  The flow layer attaches this to every stage
/// (through the job's Domain when one is installed -- see FlowContext).
MetricsSnapshot snapshot_delta(const MetricsSnapshot& before);

/// Every registered histogram with raw buckets, count and sum; names
/// sorted.  Feeds metrics_text percentile columns, the telemetry ring and
/// the Prometheus export.
std::vector<HistogramSnapshot> histogram_snapshots();

/// Human-readable table of the whole registry (the shell's `stats`),
/// including a histogram section with p50/p95/p99 columns.
std::string metrics_text();

/// One JSON object {"counters": {...}, "gauges": {...}}.
std::string metrics_json();

/// The registry in Prometheus text exposition format: counters and gauges
/// as scalar families, histograms as `_bucket{le="..."}` cumulative series
/// plus `_sum` / `_count` (metric names sanitized, '.' -> '_').
std::string prometheus_text();

// --- telemetry ring ---------------------------------------------------------

/// Starts (or restarts with new parameters) the background sampler thread:
/// every \p interval_ms it snapshots the registry (with per-histogram
/// p50/p95/p99) into a ring of the last \p ring_capacity samples.
/// Overhead is one registry aggregation per tick, independent of load.
void sampler_start(unsigned interval_ms, std::size_t ring_capacity);

/// Stops and joins the sampler thread; the ring's contents are retained.
void sampler_stop();

bool sampler_running();

/// The retained ring as one JSON object:
/// {"interval_ms":N,"capacity":N,"samples":[{"t_us":...,"counters":{...},
///  "gauges":{...},"percentiles":{"<hist>":{"p50":...,"p95":...,"p99":...,
///  "count":N}}}, ...]} (oldest first).
std::string ring_json();

// --- tracing ----------------------------------------------------------------

inline bool tracing_enabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Turns span recording on/off.  Enabling does not clear prior events;
/// see trace_clear().
void set_tracing(bool on);

/// Drops every recorded span.
void trace_clear();

/// Number of spans recorded so far (live + retired threads).
std::size_t trace_size();

/// The recorded spans as Chrome trace-event JSON ("X" complete events with
/// per-thread lanes and thread_name metadata); open in chrome://tracing or
/// https://ui.perfetto.dev.
std::string trace_json();

/// Writes trace_json() to \p path; false on I/O failure.
bool trace_dump(const std::string& path);

/// Aggregates spans whose *start* lies at/after \p since_us by name.
/// Sorted by summed duration, longest first.
std::vector<SpanStats> aggregate_spans(std::uint64_t since_us);

/// Names the calling thread in trace exports (e.g. "pool-worker-3").
void set_thread_name(const std::string& name);

/// If the MCS_TRACE environment variable names a file, enables tracing and
/// registers an atexit hook dumping the trace there.  Idempotent; called
/// from run_flow, the shell and the bench mains so headless runs are
/// covered without plumbing.
void init_from_env();

/// RAII scoped span.  When tracing is off, construction is one relaxed
/// load.  Two constructors: a string-literal one (zero-copy) and an owning
/// one for dynamic names (only evaluated when tracing is on -- pass a
/// maker lambda to avoid building strings eagerly on hot paths).
class Span {
 public:
  /// \p name must outlive the span (string literals qualify).
  explicit Span(const char* name) noexcept {
    if (tracing_enabled()) begin(name);
  }
  /// Owning variant for dynamic names.
  explicit Span(std::string name) {
    if (tracing_enabled()) {
      owned_ = std::move(name);
      begin(nullptr);
    }
  }
  /// Lazy-name variant: \p make_name() is only called when tracing is on.
  template <typename Fn,
            typename = decltype(std::string(std::declval<Fn>()()))>
  explicit Span(const Fn& make_name) {
    if (tracing_enabled()) {
      owned_ = make_name();
      begin(nullptr);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    // Re-check tracing so a span in flight across set_tracing(false) does
    // not record; the epoch guard likewise drops spans that straddle a
    // trace_clear() instead of repopulating the cleared buffers.
    if (active_ && tracing_enabled()) {
      detail::record_span(literal_, owned_, start_us_, now_us() - start_us_,
                          epoch_);
    }
  }

 private:
  void begin(const char* literal) noexcept {
    active_ = true;
    literal_ = literal;
    epoch_ = detail::g_trace_epoch.load(std::memory_order_relaxed);
    start_us_ = now_us();
  }

  bool active_ = false;
  const char* literal_ = nullptr;
  std::string owned_;
  std::uint64_t start_us_ = 0;
  std::uint64_t epoch_ = 0;
};

#else  // MCS_OBS_DISABLE -----------------------------------------------------

// No-op stubs: identical call surface, zero code on every hot path.  The
// read-side API returns empty data so the shell/flow plumbing still links.

inline std::uint64_t now_us() noexcept { return 0; }

class Domain {
 public:
  Domain() = default;
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;
  void add_slot(std::uint32_t, std::uint64_t) noexcept {}
  void add_cpu_ns(std::uint64_t) noexcept {}
  std::uint64_t cpu_us() const noexcept { return 0; }
  void peak_max(DomainPeak, std::int64_t) noexcept {}
  std::int64_t peak(DomainPeak) const noexcept { return 0; }
  MetricsSnapshot snapshot() { return {}; }
};

class Scope {
 public:
  explicit Scope(Domain*) noexcept {}
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  static Domain* current() noexcept { return nullptr; }
};

inline void domain_peak_max(DomainPeak, std::int64_t) noexcept {}

class Counter {
 public:
  void add(std::uint64_t) noexcept {}
  void increment() noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void set_max(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void observe(std::uint64_t) noexcept {}
  std::vector<std::uint64_t> buckets() const { return {}; }
  std::uint64_t total() const noexcept { return 0; }
  std::uint64_t sum() const noexcept { return 0; }
  double percentile(double) const noexcept { return 0.0; }
};

Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

inline MetricsSnapshot snapshot() { return {}; }
inline MetricsSnapshot snapshot_delta(const MetricsSnapshot&) { return {}; }
inline std::vector<HistogramSnapshot> histogram_snapshots() { return {}; }
std::string metrics_text();
std::string metrics_json();
std::string prometheus_text();

inline void sampler_start(unsigned, std::size_t) {}
inline void sampler_stop() {}
inline bool sampler_running() { return false; }
std::string ring_json();

inline bool tracing_enabled() noexcept { return false; }
inline void set_tracing(bool) {}
inline void trace_clear() {}
inline std::size_t trace_size() { return 0; }
std::string trace_json();
inline bool trace_dump(const std::string&) { return false; }
inline std::vector<SpanStats> aggregate_spans(std::uint64_t) { return {}; }
inline void set_thread_name(const std::string&) {}
inline void init_from_env() {}

class Span {
 public:
  explicit Span(const char*) noexcept {}
  explicit Span(std::string) noexcept {}
  template <typename Fn,
            typename = decltype(std::string(std::declval<Fn>()()))>
  explicit Span(const Fn&) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // MCS_OBS_DISABLE

}  // namespace mcs::obs
