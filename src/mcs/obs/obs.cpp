/// \file obs.cpp
/// \brief Registry, per-thread cell lifecycle, domains, the telemetry ring
/// and trace export for mcs::obs.

#include "mcs/obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace mcs::obs {

#ifndef MCS_OBS_DISABLE

namespace {

// ---------------------------------------------------------------------------
// Metric registry

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  MetricKind kind;
  std::uint32_t slot;  // first slot (histograms span kHistBuckets + 1 slots)
};

struct TraceEvent {
  const char* literal;   // nullptr when the name is owned
  std::string owned;
  std::uint64_t start_us;
  std::uint64_t dur_us;
};

struct TraceBufData {
  int tid = 0;
  std::string name;
  std::vector<TraceEvent> events;
};

/// Live per-thread trace buffer.  The owning thread appends under `mu`
/// (record_span, set_thread_name); aggregating readers hold reg.mu to walk
/// the buffer lists and additionally take each buffer's `mu` to touch its
/// events.  Lock order: reg.mu before buf.mu; writers take buf.mu alone, so
/// a worker finishing a late span can never race trace_json/aggregate_spans
/// or trace_clear on another thread.
struct ThreadTraceBuf : TraceBufData {
  std::mutex mu;
};

/// Everything mutex-guarded lives here; the hot paths never touch it after
/// their function-local statics are initialised.
struct Registry {
  std::mutex mu;

  // metrics
  std::unordered_map<std::string, std::size_t> index;  // name -> infos idx
  std::vector<MetricInfo> infos;
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;
  std::uint32_t next_slot = 0;
  std::vector<detail::ThreadCells*> live_cells;
  std::uint64_t retired[detail::kMaxSlots] = {};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> overflow;

  // tracing
  int next_tid = 0;
  std::vector<ThreadTraceBuf*> live_bufs;
  std::vector<TraceBufData> retired_bufs;  // dead threads: reg.mu suffices

  std::uint64_t read_slot_locked(std::uint32_t slot) const {
    if (slot >= detail::kMaxSlots) {
      const std::size_t i = slot - detail::kMaxSlots;
      return i < overflow.size()
                 ? overflow[i]->load(std::memory_order_relaxed)
                 : 0;
    }
    std::uint64_t sum = retired[slot];
    for (const detail::ThreadCells* tc : live_cells)
      sum += tc->cells[slot].load(std::memory_order_relaxed);
    return sum;
  }
};

Registry& registry() {
  // Leaked intentionally: threads (pool workers, detached users) may touch
  // their cells during static destruction; a leaked registry outlives them.
  static Registry* r = new Registry();
  return *r;
}

std::uint32_t allocate_slots(Registry& reg, std::uint32_t count) {
  const std::uint32_t base = reg.next_slot;
  reg.next_slot += count;
  while (reg.next_slot > detail::kMaxSlots &&
         reg.overflow.size() < reg.next_slot - detail::kMaxSlots) {
    reg.overflow.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  return base;
}

const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

struct ThreadTraceHolder {
  ThreadTraceBuf buf;
  ThreadTraceHolder() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buf.tid = reg.next_tid++;
    reg.live_bufs.push_back(&buf);
  }
  ~ThreadTraceHolder() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live_bufs.erase(
        std::find(reg.live_bufs.begin(), reg.live_bufs.end(), &buf));
    // Only this thread writes buf, and readers reach it via live_bufs under
    // reg.mu (held here), so the data slice can be moved out lock-free.
    if (!buf.events.empty() || !buf.name.empty())
      reg.retired_bufs.push_back(std::move(static_cast<TraceBufData&>(buf)));
  }
};

ThreadTraceBuf& thread_trace_buf() {
  thread_local ThreadTraceHolder holder;
  return holder.buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

std::string g_trace_path;  // set once by init_from_env before the atexit hook

void dump_trace_at_exit() {
  if (!g_trace_path.empty()) trace_dump(g_trace_path);
}

/// Appends the derived counter entries of one histogram (`<name>.count`,
/// `<name>.p50_bucket`).  Shared by the global snapshot and Domain
/// snapshots so both produce bit-identical derivations from equal buckets.
void append_histogram_derived(std::vector<MetricValue>& out,
                              const std::string& name,
                              const std::vector<std::uint64_t>& buckets) {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  out.push_back({name + ".count", static_cast<std::int64_t>(total)});
  // median bucket upper bound: the smallest value v such that
  // buckets <= floor(log2(v))+1 cover half the samples
  std::uint64_t acc = 0;
  int median_bucket = 0;
  for (int b = 0; b < detail::kHistBuckets; ++b) {
    acc += buckets[static_cast<std::size_t>(b)];
    if (acc * 2 >= total) {
      median_bucket = b;
      break;
    }
  }
  const std::int64_t upper =
      median_bucket == 0 ? 0 : (std::int64_t{1} << median_bucket) - 1;
  out.push_back({name + ".p50_bucket", upper});
}

}  // namespace

namespace detail {

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_trace_epoch{0};

ThreadCells::ThreadCells() {
  for (auto& c : cells) c.store(0, std::memory_order_relaxed);
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live_cells.push_back(this);
}

ThreadCells::~ThreadCells() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live_cells.erase(
      std::find(reg.live_cells.begin(), reg.live_cells.end(), this));
  for (std::size_t s = 0; s < kMaxSlots; ++s)
    reg.retired[s] += cells[s].load(std::memory_order_relaxed);
}

std::uint64_t thread_cpu_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void record_span(const char* name_literal, const std::string& name_owned,
                 std::uint64_t start_us, std::uint64_t dur_us,
                 std::uint64_t epoch) {
  ThreadTraceBuf& buf = thread_trace_buf();
  TraceEvent ev;
  ev.literal = name_literal;
  if (name_literal == nullptr) ev.owned = name_owned;
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  std::lock_guard<std::mutex> lock(buf.mu);
  // trace_clear bumps the epoch before clearing each buffer under buf.mu,
  // so checking under the same lock guarantees a cleared buffer never gains
  // a pre-clear event afterwards.
  if (epoch != g_trace_epoch.load(std::memory_order_relaxed)) return;
  buf.events.push_back(std::move(ev));
}

}  // namespace detail

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - g_process_start)
          .count());
}

// --- attribution ------------------------------------------------------------

void Scope::switch_domain(detail::DomainState& st, Domain* next) noexcept {
  if (st.current != nullptr) {
    Domain& d = *st.current;
    for (std::size_t i = 0; i < detail::kMaxSlots; ++i) {
      if (st.scratch[i] != 0) {
        d.cells_[i].fetch_add(st.scratch[i], std::memory_order_relaxed);
        st.scratch[i] = 0;
      }
    }
    const std::uint64_t now = detail::thread_cpu_ns();
    d.cpu_ns_.fetch_add(now - st.last_cpu_ns, std::memory_order_relaxed);
    st.last_cpu_ns = now;
  } else if (next != nullptr) {
    st.last_cpu_ns = detail::thread_cpu_ns();
  }
  st.current = next;
}

// --- metrics ----------------------------------------------------------------

namespace {

// Name -> object side tables (the Registry keeps ownership + slot layout;
// these give lookup-or-create its fast path without poking at privates).
struct TypedRegistry {
  std::unordered_map<std::string, Counter*> counters;
  std::unordered_map<std::string, Gauge*> gauges;
  std::unordered_map<std::string, Histogram*> histograms;
};

TypedRegistry& typed() {
  static TypedRegistry* t = new TypedRegistry();
  return *t;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string key(name);
  auto it = typed().counters.find(key);
  if (it != typed().counters.end()) return *it->second;
  const std::uint32_t slot = allocate_slots(reg, 1);
  reg.index.emplace(key, reg.infos.size());
  reg.infos.push_back({key, MetricKind::kCounter, slot});
  reg.counters.emplace_back(new Counter(slot));
  Counter* c = reg.counters.back().get();
  if (slot >= detail::kMaxSlots)
    c->overflow_ = reg.overflow[slot - detail::kMaxSlots].get();
  typed().counters.emplace(std::move(key), c);
  return *c;
}

Gauge& gauge(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string key(name);
  auto it = typed().gauges.find(key);
  if (it != typed().gauges.end()) return *it->second;
  reg.index.emplace(key, reg.infos.size());
  reg.infos.push_back({key, MetricKind::kGauge, 0});
  reg.gauges.emplace_back(new Gauge());
  Gauge* g = reg.gauges.back().get();
  typed().gauges.emplace(std::move(key), g);
  return *g;
}

Histogram& histogram(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string key(name);
  auto it = typed().histograms.find(key);
  if (it != typed().histograms.end()) return *it->second;
  const std::uint32_t base = allocate_slots(
      reg, static_cast<std::uint32_t>(detail::kHistBuckets) + 1);
  reg.index.emplace(key, reg.infos.size());
  reg.infos.push_back({key, MetricKind::kHistogram, base});
  reg.histograms.emplace_back(new Histogram(base));
  Histogram* h = reg.histograms.back().get();
  for (int b = 0; b <= detail::kHistBuckets; ++b) {
    const std::uint32_t slot = base + static_cast<std::uint32_t>(b);
    if (slot >= detail::kMaxSlots)
      h->overflow_[b] = reg.overflow[slot - detail::kMaxSlots].get();
  }
  typed().histograms.emplace(std::move(key), h);
  return *h;
}

std::uint64_t Counter::value() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.read_slot_locked(slot_);
}

std::vector<std::uint64_t> Histogram::buckets() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::uint64_t> out(detail::kHistBuckets, 0);
  for (int b = 0; b < detail::kHistBuckets; ++b)
    out[static_cast<std::size_t>(b)] =
        reg.read_slot_locked(base_ + static_cast<std::uint32_t>(b));
  return out;
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t b : buckets()) sum += b;
  return sum;
}

std::uint64_t Histogram::sum() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.read_slot_locked(base_ +
                              static_cast<std::uint32_t>(detail::kHistBuckets));
}

MetricsSnapshot Domain::snapshot() {
  // Fold this thread's pending scratch in first, so a scope-holding thread
  // (e.g. run_stage bracketing a stage) observes its own increments.
  detail::DomainState& st = detail::domain_state();
  if (st.current == this) {
    for (std::size_t i = 0; i < detail::kMaxSlots; ++i) {
      if (st.scratch[i] != 0) {
        cells_[i].fetch_add(st.scratch[i], std::memory_order_relaxed);
        st.scratch[i] = 0;
      }
    }
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snap;
  std::vector<const MetricInfo*> sorted;
  sorted.reserve(reg.infos.size());
  for (const MetricInfo& info : reg.infos) sorted.push_back(&info);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricInfo* a, const MetricInfo* b) {
              return a->name < b->name;
            });
  auto cell = [&](std::uint32_t slot) -> std::uint64_t {
    return slot < detail::kMaxSlots
               ? cells_[slot].load(std::memory_order_relaxed)
               : 0;  // overflow slots are process-global only
  };
  for (const MetricInfo* info : sorted) {
    switch (info->kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(
            {info->name, static_cast<std::int64_t>(cell(info->slot))});
        break;
      case MetricKind::kGauge:
        break;  // process gauges are instantaneous and unattributable
      case MetricKind::kHistogram: {
        std::vector<std::uint64_t> buckets(
            static_cast<std::size_t>(detail::kHistBuckets));
        for (int b = 0; b < detail::kHistBuckets; ++b)
          buckets[static_cast<std::size_t>(b)] =
              cell(info->slot + static_cast<std::uint32_t>(b));
        append_histogram_derived(snap.counters, info->name, buckets);
        break;
      }
    }
  }
  // Domain-owned gauges: the peak-memory marks (sorted order preserved).
  snap.gauges.push_back(
      {"obs.domain.arena_bytes_max", peak(DomainPeak::kArenaBytes)});
  snap.gauges.push_back(
      {"obs.domain.strash_bytes_max", peak(DomainPeak::kStrashBytes)});
  return snap;
}

MetricsSnapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snap;
  // Deterministic order: sort by name.
  std::vector<const MetricInfo*> sorted;
  sorted.reserve(reg.infos.size());
  for (const MetricInfo& info : reg.infos) sorted.push_back(&info);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricInfo* a, const MetricInfo* b) {
              return a->name < b->name;
            });
  for (const MetricInfo* info : sorted) {
    switch (info->kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(
            {info->name,
             static_cast<std::int64_t>(reg.read_slot_locked(info->slot))});
        break;
      case MetricKind::kGauge: {
        auto it = typed().gauges.find(info->name);
        snap.gauges.push_back({info->name, it->second->value()});
        break;
      }
      case MetricKind::kHistogram: {
        std::vector<std::uint64_t> buckets(
            static_cast<std::size_t>(detail::kHistBuckets));
        for (int b = 0; b < detail::kHistBuckets; ++b)
          buckets[static_cast<std::size_t>(b)] =
              reg.read_slot_locked(info->slot + static_cast<std::uint32_t>(b));
        append_histogram_derived(snap.counters, info->name, buckets);
        break;
      }
    }
  }
  return snap;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before) {
  MetricsSnapshot now = snapshot();
  std::unordered_map<std::string_view, std::int64_t> prev;
  prev.reserve(before.counters.size());
  for (const MetricValue& mv : before.counters) prev.emplace(mv.name, mv.value);
  MetricsSnapshot delta;
  delta.gauges = now.gauges;
  for (const MetricValue& mv : now.counters) {
    auto it = prev.find(mv.name);
    const std::int64_t base = it == prev.end() ? 0 : it->second;
    if (mv.value != base) delta.counters.push_back({mv.name, mv.value - base});
  }
  return delta;
}

std::vector<HistogramSnapshot> histogram_snapshots() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<HistogramSnapshot> out;
  for (const MetricInfo& info : reg.infos) {
    if (info.kind != MetricKind::kHistogram) continue;
    HistogramSnapshot hs;
    hs.name = info.name;
    hs.buckets.resize(static_cast<std::size_t>(detail::kHistBuckets));
    for (int b = 0; b < detail::kHistBuckets; ++b) {
      hs.buckets[static_cast<std::size_t>(b)] =
          reg.read_slot_locked(info.slot + static_cast<std::uint32_t>(b));
      hs.count += hs.buckets[static_cast<std::size_t>(b)];
    }
    hs.sum = reg.read_slot_locked(
        info.slot + static_cast<std::uint32_t>(detail::kHistBuckets));
    out.push_back(std::move(hs));
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string metrics_text() {
  const MetricsSnapshot snap = snapshot();
  const std::vector<HistogramSnapshot> hists = histogram_snapshots();
  std::string out;
  std::size_t width = 0;
  for (const MetricValue& mv : snap.counters)
    width = std::max(width, mv.name.size());
  for (const MetricValue& mv : snap.gauges)
    width = std::max(width, mv.name.size());
  for (const HistogramSnapshot& hs : hists)
    width = std::max(width, hs.name.size());
  auto row = [&](const MetricValue& mv) {
    out += "  ";
    out += mv.name;
    out.append(width - mv.name.size() + 1, ' ');
    out += std::to_string(mv.value);
    out += '\n';
  };
  if (!snap.counters.empty()) out += "counters:\n";
  for (const MetricValue& mv : snap.counters) row(mv);
  if (!snap.gauges.empty()) out += "gauges:\n";
  for (const MetricValue& mv : snap.gauges) row(mv);
  if (!hists.empty()) out += "histograms:\n";
  for (const HistogramSnapshot& hs : hists) {
    out += "  ";
    out += hs.name;
    out.append(width - hs.name.size() + 1, ' ');
    char line[160];
    std::snprintf(line, sizeof(line),
                  "count %llu sum %llu p50 %.1f p95 %.1f p99 %.1f",
                  static_cast<unsigned long long>(hs.count),
                  static_cast<unsigned long long>(hs.sum),
                  percentile_from_buckets(hs.buckets, 0.50),
                  percentile_from_buckets(hs.buckets, 0.95),
                  percentile_from_buckets(hs.buckets, 0.99));
    out += line;
    out += '\n';
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string metrics_json() {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const MetricValue& mv : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, mv.name);
    out += "\":";
    out += std::to_string(mv.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricValue& mv : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, mv.name);
    out += "\":";
    out += std::to_string(mv.value);
  }
  out += "}}";
  return out;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// (notably the '.' separators of the registry) becomes '_'.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

}  // namespace

std::string prometheus_text() {
  const MetricsSnapshot snap = snapshot();
  const std::vector<HistogramSnapshot> hists = histogram_snapshots();
  // Histogram-derived pseudo counters (`.count`, `.p50_bucket`) are listed
  // among snap.counters; skip them here -- histograms export natively.
  std::string out;
  for (const MetricValue& mv : snap.counters) {
    bool derived = false;
    for (const HistogramSnapshot& hs : hists) {
      if (mv.name.size() > hs.name.size() &&
          mv.name.compare(0, hs.name.size(), hs.name) == 0 &&
          mv.name[hs.name.size()] == '.') {
        derived = true;
        break;
      }
    }
    if (derived) continue;
    const std::string n = prom_name(mv.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(mv.value) + "\n";
  }
  for (const MetricValue& mv : snap.gauges) {
    const std::string n = prom_name(mv.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(mv.value) + "\n";
  }
  for (const HistogramSnapshot& hs : hists) {
    const std::string n = prom_name(hs.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (int b = 0; b < detail::kHistBuckets - 1; ++b) {
      cum += hs.buckets[static_cast<std::size_t>(b)];
      const std::uint64_t le =
          b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
      out += n + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(hs.count) + "\n";
    out += n + "_sum " + std::to_string(hs.sum) + "\n";
    out += n + "_count " + std::to_string(hs.count) + "\n";
  }
  return out;
}

// --- telemetry ring ---------------------------------------------------------

namespace {

struct RingSample {
  std::uint64_t t_us = 0;
  MetricsSnapshot snap;
  struct HistPcts {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0, p95 = 0, p99 = 0;
  };
  std::vector<HistPcts> pcts;
};

struct Sampler {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stop = false;
  unsigned interval_ms = 0;
  std::size_t capacity = 0;
  std::deque<RingSample> ring;
};

Sampler& sampler() {
  // Leaked for the same reason as the registry: the ring may be read while
  // other statics destruct.
  static Sampler* s = new Sampler();
  return *s;
}

RingSample take_sample() {
  RingSample smp;
  smp.t_us = now_us();
  smp.snap = snapshot();
  for (const HistogramSnapshot& hs : histogram_snapshots()) {
    RingSample::HistPcts p;
    p.name = hs.name;
    p.count = hs.count;
    p.p50 = percentile_from_buckets(hs.buckets, 0.50);
    p.p95 = percentile_from_buckets(hs.buckets, 0.95);
    p.p99 = percentile_from_buckets(hs.buckets, 0.99);
    smp.pcts.push_back(std::move(p));
  }
  return smp;
}

void sampler_loop(Sampler& s) {
  set_thread_name("obs-sampler");
  for (;;) {
    unsigned interval_ms;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      interval_ms = s.interval_ms;
      if (s.cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                        [&] { return s.stop; })) {
        return;
      }
    }
    RingSample smp = take_sample();  // aggregates outside the sampler lock
    std::lock_guard<std::mutex> lock(s.mu);
    s.ring.push_back(std::move(smp));
    while (s.ring.size() > s.capacity) s.ring.pop_front();
  }
}

}  // namespace

void sampler_start(unsigned interval_ms, std::size_t ring_capacity) {
  sampler_stop();
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mu);
  s.stop = false;
  s.interval_ms = interval_ms == 0 ? 1 : interval_ms;
  s.capacity = ring_capacity == 0 ? 1 : ring_capacity;
  while (s.ring.size() > s.capacity) s.ring.pop_front();
  s.running = true;
  s.thread = std::thread([&s] { sampler_loop(s); });
}

void sampler_stop() {
  Sampler& s = sampler();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.running) return;
    s.stop = true;
  }
  s.cv.notify_all();
  s.thread.join();
  std::lock_guard<std::mutex> lock(s.mu);
  s.running = false;
}

bool sampler_running() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.running;
}

std::string ring_json() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\"interval_ms\":";
  out += std::to_string(s.interval_ms);
  out += ",\"capacity\":";
  out += std::to_string(s.capacity);
  out += ",\"samples\":[";
  bool first_sample = true;
  auto object = [&](const std::vector<MetricValue>& values) {
    bool first = true;
    out += '{';
    for (const MetricValue& mv : values) {
      if (!first) out += ',';
      first = false;
      out += '"';
      append_json_escaped(out, mv.name);
      out += "\":";
      out += std::to_string(mv.value);
    }
    out += '}';
  };
  for (const RingSample& smp : s.ring) {
    if (!first_sample) out += ',';
    first_sample = false;
    out += "{\"t_us\":";
    out += std::to_string(smp.t_us);
    out += ",\"counters\":";
    object(smp.snap.counters);
    out += ",\"gauges\":";
    object(smp.snap.gauges);
    out += ",\"percentiles\":{";
    bool first = true;
    for (const RingSample::HistPcts& p : smp.pcts) {
      if (!first) out += ',';
      first = false;
      out += '"';
      append_json_escaped(out, p.name);
      out += "\":{\"count\":";
      out += std::to_string(p.count);
      char buf[96];
      std::snprintf(buf, sizeof(buf), ",\"p50\":%.2f,\"p95\":%.2f,\"p99\":%.2f}",
                    p.p50, p.p95, p.p99);
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

// --- tracing ----------------------------------------------------------------

void set_tracing(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

void trace_clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Invalidate in-flight spans first: once a buffer is cleared below, any
  // span that started before this call sees a stale epoch and drops itself.
  detail::g_trace_epoch.fetch_add(1, std::memory_order_relaxed);
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  reg.retired_bufs.clear();
}

std::size_t trace_size() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t n = 0;
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  for (const TraceBufData& buf : reg.retired_bufs) n += buf.events.size();
  return n;
}

void set_thread_name(const std::string& name) {
  ThreadTraceBuf& buf = thread_trace_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = name;
}

namespace {

void append_trace_events(std::string& out, const TraceBufData& buf,
                         bool& first) {
  if (!buf.name.empty()) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buf.tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_json_escaped(out, buf.name);
    out += "\"}}";
  }
  for (const TraceEvent& ev : buf.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(buf.tid);
    out += ",\"name\":\"";
    append_json_escaped(out, ev.literal != nullptr ? std::string_view(ev.literal)
                                                   : std::string_view(ev.owned));
    out += "\",\"ts\":";
    out += std::to_string(ev.start_us);
    out += ",\"dur\":";
    out += std::to_string(ev.dur_us);
    out += '}';
  }
}

}  // namespace

std::string trace_json() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    append_trace_events(out, *buf, first);
  }
  for (const TraceBufData& buf : reg.retired_bufs)
    append_trace_events(out, buf, first);
  out += "]}";
  return out;
}

bool trace_dump(const std::string& path) {
  const std::string json = trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

std::vector<SpanStats> aggregate_spans(std::uint64_t since_us) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::map<std::string, SpanStats> agg;
  auto fold = [&](const TraceBufData& buf) {
    for (const TraceEvent& ev : buf.events) {
      if (ev.start_us < since_us) continue;
      const std::string name =
          ev.literal != nullptr ? std::string(ev.literal) : ev.owned;
      SpanStats& st = agg[name];
      st.name = name;
      st.count += 1;
      st.seconds += static_cast<double>(ev.dur_us) * 1e-6;
    }
  };
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    fold(*buf);
  }
  for (const TraceBufData& buf : reg.retired_bufs) fold(buf);
  std::vector<SpanStats> out;
  out.reserve(agg.size());
  for (auto& [name, st] : agg) out.push_back(std::move(st));
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    if (a.seconds != b.seconds) return a.seconds > b.seconds;
    return a.name < b.name;
  });
  return out;
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("MCS_TRACE");
    if (path == nullptr || *path == '\0') return;
    g_trace_path = path;
    set_tracing(true);
    std::atexit(dump_trace_at_exit);
  });
}

#else  // MCS_OBS_DISABLE -----------------------------------------------------

namespace {
// Single shared no-op instances: the stubs carry no state.
Counter g_counter;
Gauge g_gauge;
Histogram g_histogram;
}  // namespace

Counter& counter(std::string_view) { return g_counter; }
Gauge& gauge(std::string_view) { return g_gauge; }
Histogram& histogram(std::string_view) { return g_histogram; }
std::string metrics_text() { return "(observability disabled at build time)\n"; }
std::string metrics_json() { return "{\"counters\":{},\"gauges\":{}}"; }
std::string prometheus_text() { return ""; }
std::string ring_json() {
  return "{\"interval_ms\":0,\"capacity\":0,\"samples\":[]}";
}
std::string trace_json() {
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
}

#endif  // MCS_OBS_DISABLE

}  // namespace mcs::obs
