/// \file obs.cpp
/// \brief Registry, per-thread cell lifecycle and trace export for mcs::obs.

#include "mcs/obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace mcs::obs {

#ifndef MCS_OBS_DISABLE

namespace {

// ---------------------------------------------------------------------------
// Metric registry

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  MetricKind kind;
  std::uint32_t slot;  // first slot (histograms span kHistBuckets slots)
};

struct TraceEvent {
  const char* literal;   // nullptr when the name is owned
  std::string owned;
  std::uint64_t start_us;
  std::uint64_t dur_us;
};

struct TraceBufData {
  int tid = 0;
  std::string name;
  std::vector<TraceEvent> events;
};

/// Live per-thread trace buffer.  The owning thread appends under `mu`
/// (record_span, set_thread_name); aggregating readers hold reg.mu to walk
/// the buffer lists and additionally take each buffer's `mu` to touch its
/// events.  Lock order: reg.mu before buf.mu; writers take buf.mu alone, so
/// a worker finishing a late span can never race trace_json/aggregate_spans
/// or trace_clear on another thread.
struct ThreadTraceBuf : TraceBufData {
  std::mutex mu;
};

/// Everything mutex-guarded lives here; the hot paths never touch it after
/// their function-local statics are initialised.
struct Registry {
  std::mutex mu;

  // metrics
  std::unordered_map<std::string, std::size_t> index;  // name -> infos idx
  std::vector<MetricInfo> infos;
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;
  std::uint32_t next_slot = 0;
  std::vector<detail::ThreadCells*> live_cells;
  std::uint64_t retired[detail::kMaxSlots] = {};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> overflow;

  // tracing
  int next_tid = 0;
  std::vector<ThreadTraceBuf*> live_bufs;
  std::vector<TraceBufData> retired_bufs;  // dead threads: reg.mu suffices

  std::uint64_t read_slot_locked(std::uint32_t slot) const {
    if (slot >= detail::kMaxSlots) {
      const std::size_t i = slot - detail::kMaxSlots;
      return i < overflow.size()
                 ? overflow[i]->load(std::memory_order_relaxed)
                 : 0;
    }
    std::uint64_t sum = retired[slot];
    for (const detail::ThreadCells* tc : live_cells)
      sum += tc->cells[slot].load(std::memory_order_relaxed);
    return sum;
  }
};

Registry& registry() {
  // Leaked intentionally: threads (pool workers, detached users) may touch
  // their cells during static destruction; a leaked registry outlives them.
  static Registry* r = new Registry();
  return *r;
}

std::uint32_t allocate_slots(Registry& reg, std::uint32_t count) {
  const std::uint32_t base = reg.next_slot;
  reg.next_slot += count;
  while (reg.next_slot > detail::kMaxSlots &&
         reg.overflow.size() < reg.next_slot - detail::kMaxSlots) {
    reg.overflow.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  return base;
}

const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

struct ThreadTraceHolder {
  ThreadTraceBuf buf;
  ThreadTraceHolder() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buf.tid = reg.next_tid++;
    reg.live_bufs.push_back(&buf);
  }
  ~ThreadTraceHolder() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live_bufs.erase(
        std::find(reg.live_bufs.begin(), reg.live_bufs.end(), &buf));
    // Only this thread writes buf, and readers reach it via live_bufs under
    // reg.mu (held here), so the data slice can be moved out lock-free.
    if (!buf.events.empty() || !buf.name.empty())
      reg.retired_bufs.push_back(std::move(static_cast<TraceBufData&>(buf)));
  }
};

ThreadTraceBuf& thread_trace_buf() {
  thread_local ThreadTraceHolder holder;
  return holder.buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

std::string g_trace_path;  // set once by init_from_env before the atexit hook

void dump_trace_at_exit() {
  if (!g_trace_path.empty()) trace_dump(g_trace_path);
}

}  // namespace

namespace detail {

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_trace_epoch{0};

ThreadCells::ThreadCells() {
  for (auto& c : cells) c.store(0, std::memory_order_relaxed);
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live_cells.push_back(this);
}

ThreadCells::~ThreadCells() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live_cells.erase(
      std::find(reg.live_cells.begin(), reg.live_cells.end(), this));
  for (std::size_t s = 0; s < kMaxSlots; ++s)
    reg.retired[s] += cells[s].load(std::memory_order_relaxed);
}

void record_span(const char* name_literal, const std::string& name_owned,
                 std::uint64_t start_us, std::uint64_t dur_us,
                 std::uint64_t epoch) {
  ThreadTraceBuf& buf = thread_trace_buf();
  TraceEvent ev;
  ev.literal = name_literal;
  if (name_literal == nullptr) ev.owned = name_owned;
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  std::lock_guard<std::mutex> lock(buf.mu);
  // trace_clear bumps the epoch before clearing each buffer under buf.mu,
  // so checking under the same lock guarantees a cleared buffer never gains
  // a pre-clear event afterwards.
  if (epoch != g_trace_epoch.load(std::memory_order_relaxed)) return;
  buf.events.push_back(std::move(ev));
}

}  // namespace detail

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - g_process_start)
          .count());
}

// --- metrics ----------------------------------------------------------------

namespace {

// Name -> object side tables (the Registry keeps ownership + slot layout;
// these give lookup-or-create its fast path without poking at privates).
struct TypedRegistry {
  std::unordered_map<std::string, Counter*> counters;
  std::unordered_map<std::string, Gauge*> gauges;
  std::unordered_map<std::string, Histogram*> histograms;
};

TypedRegistry& typed() {
  static TypedRegistry* t = new TypedRegistry();
  return *t;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string key(name);
  auto it = typed().counters.find(key);
  if (it != typed().counters.end()) return *it->second;
  const std::uint32_t slot = allocate_slots(reg, 1);
  reg.index.emplace(key, reg.infos.size());
  reg.infos.push_back({key, MetricKind::kCounter, slot});
  reg.counters.emplace_back(new Counter(slot));
  Counter* c = reg.counters.back().get();
  if (slot >= detail::kMaxSlots)
    c->overflow_ = reg.overflow[slot - detail::kMaxSlots].get();
  typed().counters.emplace(std::move(key), c);
  return *c;
}

Gauge& gauge(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string key(name);
  auto it = typed().gauges.find(key);
  if (it != typed().gauges.end()) return *it->second;
  reg.index.emplace(key, reg.infos.size());
  reg.infos.push_back({key, MetricKind::kGauge, 0});
  reg.gauges.emplace_back(new Gauge());
  Gauge* g = reg.gauges.back().get();
  typed().gauges.emplace(std::move(key), g);
  return *g;
}

Histogram& histogram(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string key(name);
  auto it = typed().histograms.find(key);
  if (it != typed().histograms.end()) return *it->second;
  const std::uint32_t base =
      allocate_slots(reg, static_cast<std::uint32_t>(detail::kHistBuckets));
  reg.index.emplace(key, reg.infos.size());
  reg.infos.push_back({key, MetricKind::kHistogram, base});
  reg.histograms.emplace_back(new Histogram(base));
  Histogram* h = reg.histograms.back().get();
  for (int b = 0; b < detail::kHistBuckets; ++b) {
    const std::uint32_t slot = base + static_cast<std::uint32_t>(b);
    if (slot >= detail::kMaxSlots)
      h->overflow_[b] = reg.overflow[slot - detail::kMaxSlots].get();
  }
  typed().histograms.emplace(std::move(key), h);
  return *h;
}

std::uint64_t Counter::value() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.read_slot_locked(slot_);
}

std::vector<std::uint64_t> Histogram::buckets() const {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::uint64_t> out(detail::kHistBuckets, 0);
  for (int b = 0; b < detail::kHistBuckets; ++b)
    out[static_cast<std::size_t>(b)] =
        reg.read_slot_locked(base_ + static_cast<std::uint32_t>(b));
  return out;
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t b : buckets()) sum += b;
  return sum;
}

MetricsSnapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snap;
  // Deterministic order: sort by name.
  std::vector<const MetricInfo*> sorted;
  sorted.reserve(reg.infos.size());
  for (const MetricInfo& info : reg.infos) sorted.push_back(&info);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricInfo* a, const MetricInfo* b) {
              return a->name < b->name;
            });
  for (const MetricInfo* info : sorted) {
    switch (info->kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(
            {info->name,
             static_cast<std::int64_t>(reg.read_slot_locked(info->slot))});
        break;
      case MetricKind::kGauge: {
        auto it = typed().gauges.find(info->name);
        snap.gauges.push_back({info->name, it->second->value()});
        break;
      }
      case MetricKind::kHistogram: {
        std::uint64_t total = 0;
        std::vector<std::uint64_t> buckets(
            static_cast<std::size_t>(detail::kHistBuckets));
        for (int b = 0; b < detail::kHistBuckets; ++b) {
          buckets[static_cast<std::size_t>(b)] =
              reg.read_slot_locked(info->slot + static_cast<std::uint32_t>(b));
          total += buckets[static_cast<std::size_t>(b)];
        }
        snap.counters.push_back(
            {info->name + ".count", static_cast<std::int64_t>(total)});
        // median bucket upper bound: the smallest value v such that
        // buckets <= floor(log2(v))+1 cover half the samples
        std::uint64_t acc = 0;
        int median_bucket = 0;
        for (int b = 0; b < detail::kHistBuckets; ++b) {
          acc += buckets[static_cast<std::size_t>(b)];
          if (acc * 2 >= total) {
            median_bucket = b;
            break;
          }
        }
        const std::int64_t upper =
            median_bucket == 0 ? 0 : (std::int64_t{1} << median_bucket) - 1;
        snap.counters.push_back({info->name + ".p50_bucket", upper});
        break;
      }
    }
  }
  return snap;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before) {
  MetricsSnapshot now = snapshot();
  std::unordered_map<std::string_view, std::int64_t> prev;
  prev.reserve(before.counters.size());
  for (const MetricValue& mv : before.counters) prev.emplace(mv.name, mv.value);
  MetricsSnapshot delta;
  delta.gauges = now.gauges;
  for (const MetricValue& mv : now.counters) {
    auto it = prev.find(mv.name);
    const std::int64_t base = it == prev.end() ? 0 : it->second;
    if (mv.value != base) delta.counters.push_back({mv.name, mv.value - base});
  }
  return delta;
}

std::string metrics_text() {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  std::size_t width = 0;
  for (const MetricValue& mv : snap.counters)
    width = std::max(width, mv.name.size());
  for (const MetricValue& mv : snap.gauges)
    width = std::max(width, mv.name.size());
  auto row = [&](const MetricValue& mv) {
    out += "  ";
    out += mv.name;
    out.append(width - mv.name.size() + 1, ' ');
    out += std::to_string(mv.value);
    out += '\n';
  };
  if (!snap.counters.empty()) out += "counters:\n";
  for (const MetricValue& mv : snap.counters) row(mv);
  if (!snap.gauges.empty()) out += "gauges:\n";
  for (const MetricValue& mv : snap.gauges) row(mv);
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string metrics_json() {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const MetricValue& mv : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, mv.name);
    out += "\":";
    out += std::to_string(mv.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricValue& mv : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, mv.name);
    out += "\":";
    out += std::to_string(mv.value);
  }
  out += "}}";
  return out;
}

// --- tracing ----------------------------------------------------------------

void set_tracing(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

void trace_clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Invalidate in-flight spans first: once a buffer is cleared below, any
  // span that started before this call sees a stale epoch and drops itself.
  detail::g_trace_epoch.fetch_add(1, std::memory_order_relaxed);
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  reg.retired_bufs.clear();
}

std::size_t trace_size() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t n = 0;
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  for (const TraceBufData& buf : reg.retired_bufs) n += buf.events.size();
  return n;
}

void set_thread_name(const std::string& name) {
  ThreadTraceBuf& buf = thread_trace_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = name;
}

namespace {

void append_trace_events(std::string& out, const TraceBufData& buf,
                         bool& first) {
  if (!buf.name.empty()) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buf.tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_json_escaped(out, buf.name);
    out += "\"}}";
  }
  for (const TraceEvent& ev : buf.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(buf.tid);
    out += ",\"name\":\"";
    append_json_escaped(out, ev.literal != nullptr ? std::string_view(ev.literal)
                                                   : std::string_view(ev.owned));
    out += "\",\"ts\":";
    out += std::to_string(ev.start_us);
    out += ",\"dur\":";
    out += std::to_string(ev.dur_us);
    out += '}';
  }
}

}  // namespace

std::string trace_json() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    append_trace_events(out, *buf, first);
  }
  for (const TraceBufData& buf : reg.retired_bufs)
    append_trace_events(out, buf, first);
  out += "]}";
  return out;
}

bool trace_dump(const std::string& path) {
  const std::string json = trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

std::vector<SpanStats> aggregate_spans(std::uint64_t since_us) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::map<std::string, SpanStats> agg;
  auto fold = [&](const TraceBufData& buf) {
    for (const TraceEvent& ev : buf.events) {
      if (ev.start_us < since_us) continue;
      const std::string name =
          ev.literal != nullptr ? std::string(ev.literal) : ev.owned;
      SpanStats& st = agg[name];
      st.name = name;
      st.count += 1;
      st.seconds += static_cast<double>(ev.dur_us) * 1e-6;
    }
  };
  for (ThreadTraceBuf* buf : reg.live_bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    fold(*buf);
  }
  for (const TraceBufData& buf : reg.retired_bufs) fold(buf);
  std::vector<SpanStats> out;
  out.reserve(agg.size());
  for (auto& [name, st] : agg) out.push_back(std::move(st));
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    if (a.seconds != b.seconds) return a.seconds > b.seconds;
    return a.name < b.name;
  });
  return out;
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("MCS_TRACE");
    if (path == nullptr || *path == '\0') return;
    g_trace_path = path;
    set_tracing(true);
    std::atexit(dump_trace_at_exit);
  });
}

#else  // MCS_OBS_DISABLE -----------------------------------------------------

namespace {
// Single shared no-op instances: the stubs carry no state.
Counter g_counter;
Gauge g_gauge;
Histogram g_histogram;
}  // namespace

Counter& counter(std::string_view) { return g_counter; }
Gauge& gauge(std::string_view) { return g_gauge; }
Histogram& histogram(std::string_view) { return g_histogram; }
std::string metrics_text() { return "(observability disabled at build time)\n"; }
std::string metrics_json() { return "{\"counters\":{},\"gauges\":{}}"; }
std::string trace_json() {
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
}

#endif  // MCS_OBS_DISABLE

}  // namespace mcs::obs
