/// \file obs_passes.cpp
/// \brief Flow registration for the observability layer: the `stats` pass
/// (dump / reset the metrics registry) and the `trace` pass
/// (on | off | clear | dump <file> | summary).  Both are analysis passes:
/// they never touch the working network, so observation stays separated
/// from synthesis by construction.

#include <string>

#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/obs/obs.hpp"

// The registrations below use designated initializers and deliberately
// leave defaulted PassInfo/ParamSpec members out; GCC's -Wextra flags
// every omitted member, so silence that one diagnostic here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

void register_obs_passes(PassRegistry& registry) {
  registry.add({
      .name = "stats",
      .summary = "print the process-wide metrics registry (counters, gauges)",
      .kind = PassKind::kAnalysis,
      .params = {{.key = "json",
                  .type = ParamType::kBool,
                  .default_value = "false",
                  .help = "emit one JSON object instead of the text table"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            const std::string text =
                args.get_bool("json") ? obs::metrics_json() + "\n"
                                      : obs::metrics_text();
            std::fputs(text.c_str(), stdout);
            (void)ctx;
          },
  });

  registry.add({
      .name = "trace",
      .summary = "control span tracing (cmd: on, off, clear, summary, dump)",
      .kind = PassKind::kAnalysis,
      .params = {{.key = "cmd",
                  .type = ParamType::kString,
                  .default_value = "summary",
                  .help = "on, off, clear, summary, or dump"},
                 {.key = "file",
                  .type = ParamType::kString,
                  .default_value = "",
                  .help = "output path for dump (Chrome trace-event JSON)"}},
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            const std::string cmd = args.get_string("cmd");
            if (cmd == "on") {
              obs::set_tracing(true);
              ctx.note = "tracing on";
            } else if (cmd == "off") {
              obs::set_tracing(false);
              ctx.note = "tracing off";
            } else if (cmd == "clear") {
              obs::trace_clear();
              ctx.note = "trace buffer cleared";
            } else if (cmd == "summary") {
              const auto spans = obs::aggregate_spans(0);
              if (spans.empty()) {
                std::printf("(no spans recorded%s)\n",
                            obs::tracing_enabled() ? "" : "; tracing is off");
              } else {
                std::printf("%-28s %10s %12s\n", "span", "count", "seconds");
                for (const obs::SpanStats& s : spans) {
                  std::printf("%-28s %10zu %12.6f\n", s.name.c_str(), s.count,
                              s.seconds);
                }
              }
              ctx.note = std::to_string(obs::trace_size()) + " spans";
            } else if (cmd == "dump") {
              const std::string file = args.get_string("file");
              if (file.empty()) {
                throw FlowError("trace: dump needs file=<path>");
              }
              if (!obs::trace_dump(file)) {
                throw FlowError("trace: cannot write '" + file + "'");
              }
              ctx.note = std::to_string(obs::trace_size()) + " spans -> " +
                         file;
            } else {
              throw FlowError(
                  "trace: unknown command '" + cmd +
                  "' (expected on, off, clear, summary, or dump)");
            }
          },
  });
}

}  // namespace mcs::flow
