/// \file simulator.hpp
/// \brief Word-parallel logic simulation of mixed networks.
///
/// Two flavors:
///   - random simulation with W 64-bit words per node (signature computation
///     for SAT sweeping / DCH and fast falsification in CEC),
///   - exhaustive simulation producing complete truth tables of every node /
///     PO for networks with few primary inputs (test oracles).

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/network/network.hpp"
#include "mcs/tt/truth_table.hpp"

namespace mcs {

/// Random word-parallel simulation.
///
/// Every node (including choice members and dangling candidate cones) gets
/// `num_words` 64-bit values.  PI words are *seed-derived per node*: the
/// words of the i-th interface PI are a pure function of (seed, i), never
/// of any draw order.  Two consequences:
///   - two networks with the same PI count see identical input vectors for
///     the same seed (what the CEC falsification stage relies on), and
///   - evaluation order is free, so the gate sweep can run level-blocked
///     on \p num_threads workers (all gates of one level are independent)
///     with bit-identical values for any thread count.
///
/// Incremental re-simulation: construction may *budget* capacity for extra
/// words (\p reserve_extra_words) and add_pattern_words() then appends
/// directed words per PI -- how the SAT-sweeping engine (mcs/sweep) feeds
/// counterexample patterns back into the signatures without recomputing the
/// random words.  The budget is lazy: the value table is allocated with the
/// tight `num_words` stride and only re-strided (one copy) on the first
/// add_pattern_words() call, so sweeps that never see a counterexample --
/// the common case on equivalence-heavy netlists -- never pay for the
/// reservation in memory or in construction-time zero-fill.
class RandomSimulation {
 public:
  /// \p num_threads: workers for the gate sweep; values < 1 resolve via
  /// ThreadPool::resolve_threads (MCS_THREADS / hardware).  The computed
  /// values are identical for every thread count.
  /// \p reserve_extra_words: budget for add_pattern_words() calls (not
  /// allocated until the first call actually needs it).
  RandomSimulation(const Network& net, int num_words, std::uint64_t seed,
                   int num_threads = 1, int reserve_extra_words = 0);

  int num_words() const noexcept { return num_words_; }

  /// Words still available for add_pattern_words() within the budget.
  int spare_words() const noexcept { return budget_words_ - num_words_; }

  /// Appends \p count simulation words in one incremental sweep:
  /// \p pi_words[w * num_pis + i] becomes value word (num_words() + w) of
  /// the i-th interface PI, and every gate is re-evaluated for the new
  /// words only (ascending node ids are a topological order).  Signatures
  /// and values_equal() immediately reflect the added patterns.
  /// \pre pi_words.size() == count * net.num_pis(), 1 <= count <=
  /// spare_words().
  void add_pattern_words(const std::vector<std::uint64_t>& pi_words,
                         int count);

  /// Value words of node \p n (non-complemented function).
  const std::uint64_t* node_values(NodeId n) const noexcept {
    return values_.data() + static_cast<std::size_t>(n) * capacity_words_;
  }

  /// Signature (hash of the value words) of the *function* of signal \p s.
  /// Complemented signals hash the complemented words, so equal signatures
  /// are a necessary condition for functional equality of signals.
  std::uint64_t signature(Signal s) const noexcept;

  /// True iff the simulated values of the two signals agree on every vector.
  bool values_equal(Signal a, Signal b) const noexcept;

 private:
  std::uint64_t* mutable_values(NodeId n) noexcept {
    return values_.data() + static_cast<std::size_t>(n) * capacity_words_;
  }
  void eval_node(NodeId n, int begin_word, int end_word) noexcept;
  /// Grows the per-node stride to budget_words_ (one row-by-row copy);
  /// no-op once capacity_words_ == budget_words_.
  void restride_to_budget();

  const Network& net_;
  int num_words_;
  int capacity_words_;  ///< current allocation stride per node
  int budget_words_;    ///< num_words at construction + reserve_extra_words
  std::vector<std::uint64_t> values_;
};

/// Random-simulation falsification of two networks with the same PI/PO
/// interface: simulates both on identical seed-derived input words and
/// returns the index of the first PO whose values differ (respecting PO
/// complement flags), or -1 when every PO agrees on every vector.  This is
/// CEC stage 1 and the flow `sim` pass -- one implementation for both.
std::ptrdiff_t sim_falsify(const Network& a, const Network& b, int num_words,
                           std::uint64_t seed, int num_threads = 1);

/// Exhaustive simulation: complete truth table of every PO over the PIs.
/// \pre net.num_pis() <= TruthTable::kMaxVars.
std::vector<TruthTable> simulate_pos(const Network& net);

/// Exhaustive simulation of a single signal's global function.
TruthTable simulate_signal(const Network& net, Signal s);

}  // namespace mcs
