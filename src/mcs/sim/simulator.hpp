/// \file simulator.hpp
/// \brief Word-parallel logic simulation of mixed networks.
///
/// Two flavors:
///   - random simulation with W 64-bit words per node (signature computation
///     for SAT sweeping / DCH and fast falsification in CEC),
///   - exhaustive simulation producing complete truth tables of every node /
///     PO for networks with few primary inputs (test oracles).

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/network/network.hpp"
#include "mcs/tt/truth_table.hpp"

namespace mcs {

/// Random word-parallel simulation.
///
/// Every node (including choice members and dangling candidate cones) gets
/// `num_words` 64-bit values; PIs are filled from the seeded generator.
class RandomSimulation {
 public:
  RandomSimulation(const Network& net, int num_words, std::uint64_t seed);

  int num_words() const noexcept { return num_words_; }

  /// Value words of node \p n (non-complemented function).
  const std::uint64_t* node_values(NodeId n) const noexcept {
    return values_.data() + static_cast<std::size_t>(n) * num_words_;
  }

  /// Signature (hash of the value words) of the *function* of signal \p s.
  /// Complemented signals hash the complemented words, so equal signatures
  /// are a necessary condition for functional equality of signals.
  std::uint64_t signature(Signal s) const noexcept;

  /// True iff the simulated values of the two signals agree on every vector.
  bool values_equal(Signal a, Signal b) const noexcept;

 private:
  const Network& net_;
  int num_words_;
  std::vector<std::uint64_t> values_;
};

/// Exhaustive simulation: complete truth table of every PO over the PIs.
/// \pre net.num_pis() <= TruthTable::kMaxVars.
std::vector<TruthTable> simulate_pos(const Network& net);

/// Exhaustive simulation of a single signal's global function.
TruthTable simulate_signal(const Network& net, Signal s);

}  // namespace mcs
