/// \file simulator.hpp
/// \brief Word-parallel logic simulation of mixed networks.
///
/// Two flavors:
///   - random simulation with W 64-bit words per node (signature computation
///     for SAT sweeping / DCH and fast falsification in CEC),
///   - exhaustive simulation producing complete truth tables of every node /
///     PO for networks with few primary inputs (test oracles).

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/network/network.hpp"
#include "mcs/tt/truth_table.hpp"

namespace mcs {

/// Random word-parallel simulation.
///
/// Every node (including choice members and dangling candidate cones) gets
/// `num_words` 64-bit values.  PI words are *seed-derived per node*: the
/// words of the i-th interface PI are a pure function of (seed, i), never
/// of any draw order.  Two consequences:
///   - two networks with the same PI count see identical input vectors for
///     the same seed (what the CEC falsification stage relies on), and
///   - evaluation order is free, so the gate sweep can run level-blocked
///     on \p num_threads workers (all gates of one level are independent)
///     with bit-identical values for any thread count.
class RandomSimulation {
 public:
  /// \p num_threads: workers for the gate sweep; values < 1 resolve via
  /// ThreadPool::resolve_threads (MCS_THREADS / hardware).  The computed
  /// values are identical for every thread count.
  RandomSimulation(const Network& net, int num_words, std::uint64_t seed,
                   int num_threads = 1);

  int num_words() const noexcept { return num_words_; }

  /// Value words of node \p n (non-complemented function).
  const std::uint64_t* node_values(NodeId n) const noexcept {
    return values_.data() + static_cast<std::size_t>(n) * num_words_;
  }

  /// Signature (hash of the value words) of the *function* of signal \p s.
  /// Complemented signals hash the complemented words, so equal signatures
  /// are a necessary condition for functional equality of signals.
  std::uint64_t signature(Signal s) const noexcept;

  /// True iff the simulated values of the two signals agree on every vector.
  bool values_equal(Signal a, Signal b) const noexcept;

 private:
  const Network& net_;
  int num_words_;
  std::vector<std::uint64_t> values_;
};

/// Random-simulation falsification of two networks with the same PI/PO
/// interface: simulates both on identical seed-derived input words and
/// returns the index of the first PO whose values differ (respecting PO
/// complement flags), or -1 when every PO agrees on every vector.  This is
/// CEC stage 1 and the flow `sim` pass -- one implementation for both.
std::ptrdiff_t sim_falsify(const Network& a, const Network& b, int num_words,
                           std::uint64_t seed, int num_threads = 1);

/// Exhaustive simulation: complete truth table of every PO over the PIs.
/// \pre net.num_pis() <= TruthTable::kMaxVars.
std::vector<TruthTable> simulate_pos(const Network& net);

/// Exhaustive simulation of a single signal's global function.
TruthTable simulate_signal(const Network& net, Signal s);

}  // namespace mcs
