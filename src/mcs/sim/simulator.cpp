#include "mcs/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "mcs/common/hash.hpp"
#include "mcs/common/rng.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/par/thread_pool.hpp"

namespace mcs {

namespace {

/// Minimum gates on one level before the sweep fans that level out; below
/// this the submit_bulk bookkeeping costs more than the evaluation.
constexpr std::size_t kParallelGrain = 128;

}  // namespace

RandomSimulation::RandomSimulation(const Network& net, int num_words,
                                   std::uint64_t seed, int num_threads,
                                   int reserve_extra_words)
    : net_(net),
      num_words_(num_words),
      // The stride stays tight here; the reserve is only a *budget* and
      // materializes lazily in restride_to_budget() on the first
      // add_pattern_words() -- sweeps without counterexamples never touch
      // (or zero-fill) the reserved columns.
      capacity_words_(num_words),
      budget_words_(num_words + std::max(0, reserve_extra_words)) {
  obs::Span span("sim:random");
  // gate-words: one 64-pattern word evaluated for one gate.
  obs::counter("sim.gate_words")
      .add(static_cast<std::uint64_t>(net.num_gates()) *
           static_cast<std::uint64_t>(num_words));
  values_.assign(net.size() * static_cast<std::size_t>(capacity_words_),
                 0ull);

  // PI words are a pure function of (seed, interface index) -- never of a
  // shared generator's draw order -- so any evaluation schedule (and any
  // network with the same PI count) sees identical input vectors.
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    Rng rng(hash_combine(hash_mix64(seed), i + 1));
    std::uint64_t* w = mutable_values(net.pi_at(i));
    for (int k = 0; k < num_words_; ++k) w[k] = rng.next();
  }

  auto eval = [&](NodeId n) { eval_node(n, 0, num_words_); };

  const std::size_t threads = ThreadPool::resolve_threads(num_threads);
  if (threads <= 1) {
    // The node array is a topological order by construction.
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_gate(n)) eval(n);
    }
    return;
  }

  // Level-blocked parallel sweep: gates of one level depend only on lower
  // levels (fanin levels are strictly smaller), so each level block fans
  // out freely; blocks run in ascending level order.  Every gate writes
  // exactly its own words, so values are bit-identical to the serial sweep
  // for any thread count.  Levels are used instead of a plain node-range
  // split because node ids within a level are NOT contiguous.
  std::uint32_t max_level = 0;
  std::size_t num_gates = 0;
  for (NodeId n = 0; n < net.size(); ++n) {
    if (!net.is_gate(n)) continue;
    max_level = std::max(max_level, net.level(n));
    ++num_gates;
  }
  std::vector<std::size_t> offset(max_level + 2, 0);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (net.is_gate(n)) ++offset[net.level(n) + 1];
  }
  for (std::size_t l = 1; l < offset.size(); ++l) offset[l] += offset[l - 1];
  std::vector<NodeId> by_level(num_gates);
  {
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_gate(n)) by_level[cursor[net.level(n)]++] = n;
    }
  }

  ThreadPool& pool = ThreadPool::global();
  for (std::uint32_t l = 1; l <= max_level; ++l) {
    const std::size_t begin = offset[l];
    const std::size_t count = offset[l + 1] - begin;
    if (count == 0) continue;
    if (count < 2 * kParallelGrain) {
      for (std::size_t k = 0; k < count; ++k) eval(by_level[begin + k]);
      continue;
    }
    const std::size_t chunks =
        std::min(threads * 2, (count + kParallelGrain - 1) / kParallelGrain);
    const std::size_t chunk = (count + chunks - 1) / chunks;
    pool.submit_bulk(
        chunks,
        [&](std::size_t c) {
          const std::size_t lo = begin + c * chunk;
          const std::size_t hi = std::min(begin + count, lo + chunk);
          for (std::size_t k = lo; k < hi; ++k) eval(by_level[k]);
        },
        threads);
  }
}

void RandomSimulation::eval_node(NodeId n, int begin_word,
                                 int end_word) noexcept {
  const Node& nd = net_.node(n);
  std::uint64_t* out = mutable_values(n);
  const std::uint64_t* a = node_values(nd.fanin[0].node());
  const std::uint64_t* b = node_values(nd.fanin[1].node());
  const std::uint64_t ac = nd.fanin[0].complemented() ? ~0ull : 0ull;
  const std::uint64_t bc = nd.fanin[1].complemented() ? ~0ull : 0ull;
  switch (nd.type) {
    case GateType::kAnd2:
      for (int i = begin_word; i < end_word; ++i) {
        out[i] = (a[i] ^ ac) & (b[i] ^ bc);
      }
      break;
    case GateType::kXor2:
      for (int i = begin_word; i < end_word; ++i) {
        out[i] = (a[i] ^ ac) ^ (b[i] ^ bc);
      }
      break;
    case GateType::kMaj3:
    case GateType::kXor3: {
      const std::uint64_t* c = node_values(nd.fanin[2].node());
      const std::uint64_t cc = nd.fanin[2].complemented() ? ~0ull : 0ull;
      if (nd.type == GateType::kMaj3) {
        for (int i = begin_word; i < end_word; ++i) {
          const std::uint64_t x = a[i] ^ ac;
          const std::uint64_t y = b[i] ^ bc;
          const std::uint64_t z = c[i] ^ cc;
          out[i] = (x & y) | (x & z) | (y & z);
        }
      } else {
        for (int i = begin_word; i < end_word; ++i) {
          out[i] = (a[i] ^ ac) ^ (b[i] ^ bc) ^ (c[i] ^ cc);
        }
      }
      break;
    }
    default:
      break;
  }
}

void RandomSimulation::add_pattern_words(
    const std::vector<std::uint64_t>& pi_words, int count) {
  assert(count >= 1);
  assert(pi_words.size() == net_.num_pis() * static_cast<std::size_t>(count));
  // A silent overrun would spill words into the next node's value row and
  // corrupt its signatures (unsound merges downstream) -- fail loudly even
  // in Release builds.
  if (count < 1 || count > spare_words()) {
    throw std::length_error("RandomSimulation::add_pattern_words: " +
                            std::to_string(count) + " words requested, " +
                            std::to_string(spare_words()) + " reserved");
  }
  restride_to_budget();
  const int w0 = num_words_;
  for (std::size_t i = 0; i < net_.num_pis(); ++i) {
    std::uint64_t* w = mutable_values(net_.pi_at(i));
    for (int k = 0; k < count; ++k) {
      w[w0 + k] = pi_words[static_cast<std::size_t>(k) * net_.num_pis() + i];
    }
  }
  // A handful of words across the whole network is cheap; the serial
  // ascending-id sweep (a valid topological order) keeps the result
  // trivially deterministic.
  for (NodeId n = 0; n < net_.size(); ++n) {
    if (net_.is_gate(n)) eval_node(n, w0, w0 + count);
  }
  num_words_ += count;
  obs::counter("sim.gate_words")
      .add(static_cast<std::uint64_t>(net_.num_gates()) *
           static_cast<std::uint64_t>(count));
}

void RandomSimulation::restride_to_budget() {
  if (capacity_words_ == budget_words_) return;
  std::vector<std::uint64_t> wide(
      net_.size() * static_cast<std::size_t>(budget_words_), 0ull);
  for (std::size_t n = 0; n < net_.size(); ++n) {
    const std::uint64_t* src = values_.data() + n * capacity_words_;
    std::uint64_t* dst = wide.data() + n * budget_words_;
    std::copy(src, src + num_words_, dst);
  }
  values_ = std::move(wide);
  capacity_words_ = budget_words_;
  obs::counter("sim.restrides").increment();
}

std::uint64_t RandomSimulation::signature(Signal s) const noexcept {
  const std::uint64_t flip = s.complemented() ? ~0ull : 0ull;
  const std::uint64_t* w = node_values(s.node());
  std::uint64_t h = 0x12345678u;
  for (int i = 0; i < num_words_; ++i) h = hash_combine(h, w[i] ^ flip);
  return h;
}

bool RandomSimulation::values_equal(Signal a, Signal b) const noexcept {
  const std::uint64_t* wa = node_values(a.node());
  const std::uint64_t* wb = node_values(b.node());
  const std::uint64_t flip =
      (a.complemented() != b.complemented()) ? ~0ull : 0ull;
  for (int i = 0; i < num_words_; ++i) {
    if ((wa[i] ^ flip) != wb[i]) return false;
  }
  return true;
}

std::ptrdiff_t sim_falsify(const Network& a, const Network& b, int num_words,
                           std::uint64_t seed, int num_threads) {
  assert(a.num_pis() == b.num_pis());
  assert(a.num_pos() == b.num_pos());
  const RandomSimulation sa(a, num_words, seed, num_threads);
  const RandomSimulation sb(b, num_words, seed, num_threads);
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    const Signal pa = a.po_at(i);
    const Signal pb = b.po_at(i);
    const std::uint64_t flip =
        pa.complemented() != pb.complemented() ? ~0ull : 0ull;
    const std::uint64_t* wa = sa.node_values(pa.node());
    const std::uint64_t* wb = sb.node_values(pb.node());
    for (int w = 0; w < num_words; ++w) {
      if ((wa[w] ^ flip) != wb[w]) return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

std::vector<TruthTable> simulate_pos(const Network& net) {
  const int n = static_cast<int>(net.num_pis());
  assert(n <= TruthTable::kMaxVars);

  std::vector<TruthTable> value(net.size(), TruthTable(n));
  for (int i = 0; i < n; ++i) {
    value[net.pi_at(i)] = TruthTable::projection(i, n);
  }
  for (NodeId id = 0; id < net.size(); ++id) {
    const Node& nd = net.node(id);
    if (!net.is_gate(id)) continue;
    std::array<TruthTable, 3> in;
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = value[nd.fanin[i].node()];
      if (nd.fanin[i].complemented()) in[i] = ~in[i];
    }
    switch (nd.type) {
      case GateType::kAnd2:
        value[id] = in[0] & in[1];
        break;
      case GateType::kXor2:
        value[id] = in[0] ^ in[1];
        break;
      case GateType::kMaj3:
        value[id] = (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2]);
        break;
      case GateType::kXor3:
        value[id] = in[0] ^ in[1] ^ in[2];
        break;
      default:
        break;
    }
  }

  std::vector<TruthTable> pos;
  pos.reserve(net.num_pos());
  for (const Signal s : net.pos()) {
    TruthTable t = value[s.node()];
    if (s.complemented()) t = ~t;
    pos.push_back(std::move(t));
  }
  return pos;
}

TruthTable simulate_signal(const Network& net, Signal s) {
  assert(static_cast<int>(net.num_pis()) <= TruthTable::kMaxVars);
  std::vector<NodeId> leaves(net.pis());
  return cone_function(net, s, leaves);
}

}  // namespace mcs
