#include "mcs/sim/simulator.hpp"

#include <cassert>

#include "mcs/common/hash.hpp"
#include "mcs/common/rng.hpp"
#include "mcs/network/network_utils.hpp"

namespace mcs {

RandomSimulation::RandomSimulation(const Network& net, int num_words,
                                   std::uint64_t seed)
    : net_(net), num_words_(num_words) {
  values_.assign(net.size() * static_cast<std::size_t>(num_words), 0ull);
  Rng rng(seed);

  auto words = [&](NodeId n) {
    return values_.data() + static_cast<std::size_t>(n) * num_words_;
  };

  for (const NodeId pi : net.pis()) {
    std::uint64_t* w = words(pi);
    for (int i = 0; i < num_words_; ++i) w[i] = rng.next();
  }

  // The node array is a topological order by construction.
  for (NodeId n = 0; n < net.size(); ++n) {
    const Node& nd = net.node(n);
    if (!net.is_gate(n)) continue;
    std::uint64_t* out = words(n);
    const std::uint64_t* a = words(nd.fanin[0].node());
    const std::uint64_t* b = words(nd.fanin[1].node());
    const std::uint64_t ac = nd.fanin[0].complemented() ? ~0ull : 0ull;
    const std::uint64_t bc = nd.fanin[1].complemented() ? ~0ull : 0ull;
    switch (nd.type) {
      case GateType::kAnd2:
        for (int i = 0; i < num_words_; ++i) out[i] = (a[i] ^ ac) & (b[i] ^ bc);
        break;
      case GateType::kXor2:
        for (int i = 0; i < num_words_; ++i) out[i] = (a[i] ^ ac) ^ (b[i] ^ bc);
        break;
      case GateType::kMaj3:
      case GateType::kXor3: {
        const std::uint64_t* c = words(nd.fanin[2].node());
        const std::uint64_t cc = nd.fanin[2].complemented() ? ~0ull : 0ull;
        if (nd.type == GateType::kMaj3) {
          for (int i = 0; i < num_words_; ++i) {
            const std::uint64_t x = a[i] ^ ac;
            const std::uint64_t y = b[i] ^ bc;
            const std::uint64_t z = c[i] ^ cc;
            out[i] = (x & y) | (x & z) | (y & z);
          }
        } else {
          for (int i = 0; i < num_words_; ++i) {
            out[i] = (a[i] ^ ac) ^ (b[i] ^ bc) ^ (c[i] ^ cc);
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

std::uint64_t RandomSimulation::signature(Signal s) const noexcept {
  const std::uint64_t flip = s.complemented() ? ~0ull : 0ull;
  const std::uint64_t* w = node_values(s.node());
  std::uint64_t h = 0x12345678u;
  for (int i = 0; i < num_words_; ++i) h = hash_combine(h, w[i] ^ flip);
  return h;
}

bool RandomSimulation::values_equal(Signal a, Signal b) const noexcept {
  const std::uint64_t* wa = node_values(a.node());
  const std::uint64_t* wb = node_values(b.node());
  const std::uint64_t flip =
      (a.complemented() != b.complemented()) ? ~0ull : 0ull;
  for (int i = 0; i < num_words_; ++i) {
    if ((wa[i] ^ flip) != wb[i]) return false;
  }
  return true;
}

std::vector<TruthTable> simulate_pos(const Network& net) {
  const int n = static_cast<int>(net.num_pis());
  assert(n <= TruthTable::kMaxVars);

  std::vector<TruthTable> value(net.size(), TruthTable(n));
  for (int i = 0; i < n; ++i) {
    value[net.pi_at(i)] = TruthTable::projection(i, n);
  }
  for (NodeId id = 0; id < net.size(); ++id) {
    const Node& nd = net.node(id);
    if (!net.is_gate(id)) continue;
    std::array<TruthTable, 3> in;
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = value[nd.fanin[i].node()];
      if (nd.fanin[i].complemented()) in[i] = ~in[i];
    }
    switch (nd.type) {
      case GateType::kAnd2:
        value[id] = in[0] & in[1];
        break;
      case GateType::kXor2:
        value[id] = in[0] ^ in[1];
        break;
      case GateType::kMaj3:
        value[id] = (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2]);
        break;
      case GateType::kXor3:
        value[id] = in[0] ^ in[1] ^ in[2];
        break;
      default:
        break;
    }
  }

  std::vector<TruthTable> pos;
  pos.reserve(net.num_pos());
  for (const Signal s : net.pos()) {
    TruthTable t = value[s.node()];
    if (s.complemented()) t = ~t;
    pos.push_back(std::move(t));
  }
  return pos;
}

TruthTable simulate_signal(const Network& net, Signal s) {
  assert(static_cast<int>(net.num_pis()) <= TruthTable::kMaxVars);
  std::vector<NodeId> leaves(net.pis());
  return cone_function(net, s, leaves);
}

}  // namespace mcs
