#include "mcs/choice/mch.hpp"

#include <algorithm>
#include <cassert>

#include "mcs/cut/enumeration.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {

std::vector<bool> collect_critical_nodes(const Network& net, double ratio) {
  std::vector<bool> critical(net.size(), false);
  const std::uint32_t depth = net.depth();
  if (depth == 0) return critical;
  const auto threshold =
      static_cast<std::uint32_t>(static_cast<double>(depth) * ratio);

  // Required times seeded by critical POs; a node is critical when its
  // level equals its required time (zero slack on a path to a critical PO).
  std::vector<std::uint32_t> required(net.size(), 0);
  for (const Signal s : net.pos()) {
    const NodeId n = s.node();
    if (net.level(n) >= threshold) {
      required[n] = std::max(required[n], net.level(n));
    }
  }
  // Nodes are stored in topological order; sweep backwards.
  for (NodeId n = static_cast<NodeId>(net.size()); n-- > 0;) {
    if (required[n] == 0 || required[n] != net.level(n)) continue;
    critical[n] = true;
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId c = nd.fanin[i].node();
      required[c] = std::max(required[c], required[n] - 1);
    }
  }
  return critical;
}

namespace {

/// Attempts to attach the candidate rooted at \p cand as a choice of \p n.
void try_attach(Network& net, NodeId n, Signal cand, const MchParams& params,
                const RandomSimulation* sim, MchStats& stats) {
  ++stats.num_candidates_tried;
  const NodeId c = cand.node();
  if (c == n) {
    ++stats.num_rejected_same;
    return;
  }
  if (!net.is_gate(c)) return;  // degenerate candidate (constant or leaf)
  if (!net.is_repr(c) || net.node(c).next_choice != kNullNode) {
    // Already a member elsewhere, or heads its own class.
    ++stats.num_rejected_class;
    return;
  }
  if (!net.is_repr(n)) return;
  // Acyclicity guard: n must not be a dependency of the candidate cone.
  if (choice_reaches(net, c, n)) {
    ++stats.num_rejected_cycle;
    return;
  }
  const bool phase = cand.complemented();
  net.add_choice(n, c, phase);
  ++stats.num_choices_added;
  (void)sim;
  (void)params;
}

/// Counts current members of a class.
int class_size(const Network& net, NodeId repr) {
  int k = 0;
  for (NodeId m = net.node(repr).next_choice; m != kNullNode;
       m = net.node(m).next_choice) {
    ++k;
  }
  return k;
}

}  // namespace

Network build_mch(const Network& input, const MchParams& params,
                  MchStats* stats_out) {
  MchStats stats;

  // Line 1 of Algorithm 1: one-to-one mapping into the (mixed) network that
  // will host heterogeneous candidates.  cleanup() gives a compact verbatim
  // copy whose node array is topologically ordered.  Pre-existing choice
  // classes (e.g. from a DCH pass) are preserved: MCH subsumes traditional
  // structural choices and stacks heterogeneous candidates on top.
  Network net = cleanup(input, {.keep_choices = true});
  const NodeId original_size = static_cast<NodeId>(net.size());

  // Line 2: critical-path collection controlled by the ratio r.
  const auto critical = collect_critical_nodes(net, params.critical_ratio);
  stats.num_critical_nodes = static_cast<std::size_t>(
      std::count(critical.begin(), critical.end(), true));

  // Line 3: cut enumeration on the original nodes (no choices exist yet).
  CutEnumerator cuts(net, {.cut_size = params.cut_size,
                           .cut_limit = params.cut_limit});
  cuts.run(topo_order(net));

  const StrategyLibrary default_level = StrategyLibrary::level_oriented();
  const StrategyLibrary default_area = StrategyLibrary::area_oriented();
  const StrategyLibrary& level_lib =
      params.level_lib ? *params.level_lib : default_level;
  const StrategyLibrary& area_lib =
      params.area_lib ? *params.area_lib : default_area;

  // Optional defensive verification uses one simulation of the final net;
  // cheaper to verify per candidate against the cut function, which is
  // already guaranteed, so we verify classes at the end instead.

  // Lines 4 (Algorithm 2): multi-strategy structural choices.
  for (NodeId n = 1; n < original_size; ++n) {
    if (!net.is_gate(n)) continue;
    if (!net.is_repr(n)) continue;  // members of inherited classes
    const bool is_critical = critical[n];
    const StrategyLibrary& lib = is_critical ? level_lib : area_lib;

    auto synthesize_from = [&](const TruthTable& f,
                               const std::vector<Signal>& leaves) {
      for (const auto& strategy : lib.strategies()) {
        if (class_size(net, n) >= params.max_choices_per_node) {
          ++stats.num_rejected_cap;
          return;
        }
        const auto cand =
            strategy->synthesize(net, params.candidate_basis, f, leaves);
        if (!cand) continue;
        try_attach(net, n, *cand, params, nullptr, stats);
      }
    };

    // Candidates from the node's cuts (critical and non-critical alike;
    // the strategy bundle differs).
    for (const Cut& cut : cuts.cuts(n)) {
      if (cut.is_trivial() || cut.size < 2) continue;
      if (class_size(net, n) >= params.max_choices_per_node) break;
      std::vector<Signal> leaves;
      leaves.reserve(cut.size);
      bool usable = true;
      for (int i = 0; i < cut.size; ++i) {
        const NodeId leaf = cut.leaves[i];
        if (!net.is_repr(leaf)) {
          usable = false;  // leaf became a member; skip this cut
          break;
        }
        leaves.emplace_back(leaf, false);
      }
      if (!usable) continue;
      synthesize_from(TruthTable::from_tt6(cut.function, cut.size), leaves);
    }

    // Lines 8-11: non-critical nodes additionally resynthesize their MFFC
    // (a larger area-recovery window than any single cut).
    if (!is_critical &&
        class_size(net, n) < params.max_choices_per_node) {
      const Cone mffc = compute_mffc(net, n, params.mffc_max_pi);
      if (mffc.inner.size() >= 2 && !mffc.leaves.empty() &&
          static_cast<int>(mffc.leaves.size()) <= params.mffc_max_pi) {
        const TruthTable f =
            cone_function(net, Signal(n, false), mffc.leaves);
        std::vector<Signal> leaves;
        leaves.reserve(mffc.leaves.size());
        for (const NodeId leaf : mffc.leaves) leaves.emplace_back(leaf, false);
        synthesize_from(f, leaves);
      }
    }
  }

  // Defensive verification: every choice class must agree under random
  // simulation (candidates are correct by construction; this catches
  // phase-bookkeeping regressions in O(#nodes) time).
  if (params.verify_candidates) {
    RandomSimulation sim(net, /*num_words=*/8, /*seed=*/0xabcdef);
    for (NodeId n = 0; n < net.size(); ++n) {
      if (!net.has_choice(n)) continue;
      for (NodeId m = net.node(n).next_choice; m != kNullNode;
           m = net.node(m).next_choice) {
        const bool phase = net.node(m).choice_phase;
        assert(sim.values_equal(Signal(n, false), Signal(m, phase)) &&
               "MCH candidate disagrees with its representative");
        (void)phase;
      }
    }
  }

  if (stats_out) *stats_out = stats;
  return net;
}

}  // namespace mcs
