/// \file analysis.hpp
/// \brief Introspection of choice networks: class-size distribution,
/// heterogeneity of the candidates, and cone statistics.
///
/// The paper's argument rests on candidates being *structurally diverse*
/// (different representations) rather than merely numerous.  These metrics
/// quantify that for any choice network, and the ablation benches use them
/// to explain when MCH does or does not help.

#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>

#include "mcs/network/network.hpp"

namespace mcs {

struct ChoiceAnalysis {
  std::size_t num_classes = 0;
  std::size_t num_members = 0;
  std::size_t max_class_size = 0;   ///< members of the largest class
  double avg_class_size = 0.0;      ///< members per class

  /// Gate-type mix of the reachable original (representative) logic and of
  /// the candidate cones, indexed And2/Xor2/Maj3/Xor3.
  std::array<std::size_t, 4> repr_gates{};
  std::array<std::size_t, 4> candidate_gates{};

  std::size_t num_phase_flipped = 0;  ///< members with choice_phase == 1

  /// Fraction of candidate gates that use primitives absent from the
  /// representative logic (the "heterogeneity" of the choice network);
  /// 0 when candidates only reuse the original representation.
  double heterogeneity = 0.0;
};

/// Computes the metrics for \p net.
ChoiceAnalysis analyze_choices(const Network& net);

/// Prints a short report.
void report_choices(const Network& net, std::ostream& os);

}  // namespace mcs
