#include "mcs/choice/analysis.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "mcs/network/network_utils.hpp"

namespace mcs {

namespace {

int type_index(GateType t) {
  switch (t) {
    case GateType::kAnd2: return 0;
    case GateType::kXor2: return 1;
    case GateType::kMaj3: return 2;
    case GateType::kXor3: return 3;
    default: return -1;
  }
}

}  // namespace

ChoiceAnalysis analyze_choices(const Network& net) {
  ChoiceAnalysis a;

  // Representative logic: reachable through fanins only.  (Both traversal
  // helpers reset the shared mark epoch, so membership is tracked
  // explicitly.)
  std::vector<bool> in_repr(net.size(), false);
  for (const NodeId n : topo_order(net)) {
    in_repr[n] = true;
    if (!net.is_gate(n)) continue;
    const int t = type_index(net.node(n).type);
    if (t >= 0) ++a.repr_gates[t];
  }

  // Candidate cones: nodes reachable only via choice lists.
  for (const NodeId n : choice_topo_order(net)) {
    if (in_repr[n]) continue;
    if (net.is_gate(n)) {
      const int t = type_index(net.node(n).type);
      if (t >= 0) ++a.candidate_gates[t];
    }
  }

  for (NodeId n = 0; n < net.size(); ++n) {
    if (!net.has_choice(n)) continue;
    ++a.num_classes;
    std::size_t members = 0;
    for (NodeId m = net.node(n).next_choice; m != kNullNode;
         m = net.node(m).next_choice) {
      ++members;
      if (net.node(m).choice_phase) ++a.num_phase_flipped;
    }
    a.num_members += members;
    a.max_class_size = std::max(a.max_class_size, members);
  }
  if (a.num_classes > 0) {
    a.avg_class_size =
        static_cast<double>(a.num_members) / static_cast<double>(a.num_classes);
  }

  // Heterogeneity: candidate gates whose type is unused by the
  // representative logic.
  std::size_t total = 0, foreign = 0;
  for (int t = 0; t < 4; ++t) {
    total += a.candidate_gates[t];
    if (a.repr_gates[t] == 0) foreign += a.candidate_gates[t];
  }
  a.heterogeneity =
      total == 0 ? 0.0 : static_cast<double>(foreign) / static_cast<double>(total);
  return a;
}

void report_choices(const Network& net, std::ostream& os) {
  const ChoiceAnalysis a = analyze_choices(net);
  os << "choice network: " << a.num_classes << " classes, " << a.num_members
     << " members (avg " << a.avg_class_size << ", max " << a.max_class_size
     << ", " << a.num_phase_flipped << " phase-flipped)\n";
  const char* names[4] = {"and2", "xor2", "maj3", "xor3"};
  os << "  representative gates:";
  for (int t = 0; t < 4; ++t) {
    if (a.repr_gates[t]) os << ' ' << names[t] << '=' << a.repr_gates[t];
  }
  os << "\n  candidate gates:     ";
  for (int t = 0; t < 4; ++t) {
    if (a.candidate_gates[t]) {
      os << ' ' << names[t] << '=' << a.candidate_gates[t];
    }
  }
  os << "\n  heterogeneity: " << 100.0 * a.heterogeneity
     << "% of candidate gates use primitives foreign to the original\n";
}

}  // namespace mcs
