/// \file mch.hpp
/// \brief Mixed Structural Choices construction (the paper's Algorithms 1-2).
///
/// The MCH operator builds a *mixed choice network*: the input network is
/// preserved verbatim (its nodes become class representatives) while
/// functionally equivalent candidate structures -- synthesized in a
/// different, typically more expressive gate basis -- are attached as choice
/// nodes.  Candidates are produced by a *multi-strategy* pass driven by path
/// classification:
///
///   - nodes on critical paths (selected by the ratio parameter r) receive
///     level-oriented candidates (NPN database, Shannon, DSD),
///   - all other nodes receive area-oriented candidates (SOP factoring,
///     DSD), synthesized both from their cuts and from their MFFCs.
///
/// Nothing is ever replaced: equivalence is preserved by construction
/// (candidates are synthesized from exact cut/MFFC functions) and guarded
/// against covering cycles.  The resulting network feeds directly into the
/// choice-aware mappers (Algorithm 3).

#pragma once

#include <cstddef>

#include "mcs/network/network.hpp"
#include "mcs/resyn/basis.hpp"
#include "mcs/resyn/strategies.hpp"

namespace mcs {

/// Parameters of Algorithm 1.
struct MchParams {
  int cut_size = 4;      ///< k: maximum cut size for candidate extraction
  int cut_limit = 8;     ///< l: cuts stored per node
  int mffc_max_pi = 8;   ///< K: maximum MFFC leaf count
  double critical_ratio = 0.9;  ///< r: POs with level >= r * depth are critical

  /// Basis in which candidates are synthesized; mixing this with the input
  /// representation is what makes the choices "heterogeneous".
  GateBasis candidate_basis = GateBasis::xmg();

  /// Maximum number of choices attached to one representative (keeps the
  /// choice network and mapping time bounded).
  int max_choices_per_node = 4;

  /// Defensively re-verify every accepted candidate by random simulation
  /// (candidates are correct by construction; this guards the guards).
  bool verify_candidates = false;

  /// Strategy bundles; when null the defaults
  /// (StrategyLibrary::level_oriented / ::area_oriented) are used.
  const StrategyLibrary* level_lib = nullptr;
  const StrategyLibrary* area_lib = nullptr;
};

/// Construction statistics (reported by the benches).
struct MchStats {
  std::size_t num_critical_nodes = 0;
  std::size_t num_candidates_tried = 0;
  std::size_t num_choices_added = 0;
  std::size_t num_rejected_same = 0;     ///< strash found the original node
  std::size_t num_rejected_cycle = 0;    ///< acyclicity guard fired
  std::size_t num_rejected_class = 0;    ///< candidate already classed
  std::size_t num_rejected_cap = 0;      ///< per-node cap reached
};

/// Builds the mixed choice network for \p input (Algorithm 1).
/// The returned network contains a verbatim copy of \p input plus choice
/// candidates; its PI/PO interface is identical.
Network build_mch(const Network& input, const MchParams& params,
                  MchStats* stats = nullptr);

/// Returns the set of critical nodes used for path classification: nodes
/// with zero slack with respect to the POs whose level is at least
/// r * depth.  Exposed for tests and ablations.
std::vector<bool> collect_critical_nodes(const Network& net, double ratio);

}  // namespace mcs
