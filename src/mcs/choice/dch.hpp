/// \file dch.hpp
/// \brief Traditional structural choices (the DCH baseline of the paper).
///
/// Classic "lossless synthesis" choices (Chatterjee et al., TCAD'06; ABC's
/// `dch`): several technology-independent optimization snapshots of the same
/// network are merged into one strashed graph, functionally equivalent nodes
/// are detected by random-simulation signatures and proven by SAT, and the
/// proven classes become choice classes.  Unlike MCH, every candidate comes
/// from a homogeneous optimization of the whole network, which is exactly
/// the structural-bias limitation the paper addresses.

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/network/network.hpp"

namespace mcs {

struct DchParams {
  int sim_words = 16;               ///< random words per node for signatures
  std::uint64_t sim_seed = 0x5eed;  ///< signature seed
  std::int64_t conflict_limit = 300;  ///< SAT budget per candidate pair
  std::size_t max_pairs = 1u << 20;   ///< overall pair budget
  /// Worker threads for the equivalence proofs (the mcs::sweep engine's
  /// parallel proof batches); values < 1 resolve through
  /// ThreadPool::resolve_threads.  The classes are identical for any
  /// thread count.
  int num_threads = 1;
};

struct DchStats {
  std::size_t num_candidate_pairs = 0;
  std::size_t num_proven = 0;
  std::size_t num_disproven = 0;
  std::size_t num_timeout = 0;
  std::size_t num_rejected_cycle = 0;
};

/// Merges \p snapshots (functionally equivalent networks with identical
/// PI/PO interfaces; snapshots[0] provides the PO structure) into a single
/// choice network.  Returns a network whose choice classes contain the
/// alternative structures contributed by the other snapshots.
Network build_dch(const std::vector<Network>& snapshots,
                  const DchParams& params = {}, DchStats* stats = nullptr);

}  // namespace mcs
