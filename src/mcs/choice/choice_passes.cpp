/// \file choice_passes.cpp
/// \brief Flow registrations for choice construction: `mch` (the paper's
/// mixed structural choices, Algorithms 1-2) and `dch` (the traditional
/// snapshot-based baseline).

#include "mcs/choice/dch.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/opt/optimize.hpp"

// The registrations below use designated initializers and deliberately
// leave defaulted PassInfo/ParamSpec members out; GCC's -Wextra flags
// every omitted member, so silence that one diagnostic here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

void register_choice_passes(PassRegistry& registry) {
  registry.add({
      .name = "mch",
      .summary = "attach mixed structural choices (heterogeneous candidates)",
      .kind = PassKind::kChoice,
      .params = {{.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "candidate synthesis basis"},
                 {.key = "ratio",
                  .type = ParamType::kDouble,
                  .default_value = "0.9",
                  .help = "critical-path ratio r"},
                 {.key = "cut",
                  .type = ParamType::kInt,
                  .default_value = "4",
                  .help = "cut size k"},
                 {.key = "max_choices",
                  .type = ParamType::kInt,
                  .default_value = "4",
                  .help = "choices per representative"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            MchParams params;
            params.candidate_basis = args.get_basis("basis");
            params.critical_ratio = args.get_double("ratio");
            params.cut_size = static_cast<int>(args.get_int("cut"));
            params.max_choices_per_node =
                static_cast<int>(args.get_int("max_choices"));
            if (params.critical_ratio < 0.0 || params.critical_ratio > 1.0) {
              throw FlowError("mch: ratio must be in [0, 1]");
            }
            MchStats stats;
            ctx.net = build_mch(ctx.net, params, &stats);
            ctx.note = std::to_string(stats.num_choices_added) +
                       " choices added (" +
                       std::to_string(stats.num_candidates_tried) +
                       " candidates tried)";
          },
  });

  registry.add({
      .name = "dch",
      .summary = "traditional structural choices (snapshots + SAT)",
      .kind = PassKind::kChoice,
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs&) {
            DchParams params;
            // Equivalence proofs run on the flow's worker setting.
            params.num_threads = ctx.par.num_threads;
            if (ctx.seed != 0) params.sim_seed = ctx.seed;
            DchStats stats;
            ctx.net = build_dch({ctx.net, balance(ctx.net), rewrite(ctx.net)},
                                params, &stats);
            ctx.note = std::to_string(stats.num_proven) + " choices proven";
          },
  });
}

}  // namespace mcs::flow
