#include "mcs/choice/dch.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

#include "mcs/common/hash.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sat/cnf.hpp"
#include "mcs/sat/solver.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {

namespace {

/// Signature of a node's simulated values with a canonical phase: returns
/// (hash, phase) where phase is true when the complemented values hash
/// lower.  Nodes of one functional class (up to complement) share the hash.
std::pair<std::uint64_t, bool> canonical_signature(
    const RandomSimulation& sim, NodeId n) {
  const std::uint64_t h0 = sim.signature(Signal(n, false));
  const std::uint64_t h1 = sim.signature(Signal(n, true));
  return h0 <= h1 ? std::make_pair(h0, false) : std::make_pair(h1, true);
}

}  // namespace

Network build_dch(const std::vector<Network>& snapshots,
                  const DchParams& params, DchStats* stats_out) {
  assert(!snapshots.empty());
  DchStats stats;

  // --- merge all snapshots into one strashed network -------------------
  Network dst;
  std::vector<Signal> pi_map;
  for (std::size_t i = 0; i < snapshots[0].num_pis(); ++i) {
    pi_map.push_back(dst.create_pi(snapshots[0].pi_name(i)));
  }
  std::vector<Signal> primary_pos;  // snapshot[0]'s POs in dst space
  for (const Network& snap : snapshots) {
    assert(snap.num_pis() == snapshots[0].num_pis());
    assert(snap.num_pos() == snapshots[0].num_pos());
    for (std::size_t i = 0; i < snap.num_pos(); ++i) {
      const Signal s = copy_cone(snap, dst, snap.po_at(i), pi_map);
      if (&snap == &snapshots[0]) primary_pos.push_back(s);
    }
  }

  // --- candidate classes from simulation signatures --------------------
  RandomSimulation sim(dst, params.sim_words, params.sim_seed);
  std::unordered_map<std::uint64_t, std::vector<NodeId>> groups;
  for (NodeId n = 0; n < dst.size(); ++n) {
    if (!dst.is_gate(n)) continue;
    groups[canonical_signature(sim, n).first].push_back(n);
  }

  // --- one incremental SAT instance over the merged network ------------
  // Timed-out proofs leave their learned clauses behind (the solver has no
  // deletion), so the instance is re-encoded when it grows too large.
  auto solver = std::make_unique<sat::Solver>();
  auto cnf = std::make_unique<sat::CnfMapping>(dst.size());
  sat::encode_network(dst, *solver, *cnf);
  const std::size_t base_clauses = solver->num_clauses();

  auto prove_equal = [&](Signal a, Signal b) -> int {
    if (solver->num_clauses() >
        base_clauses + params.solver_clause_budget) {
      solver = std::make_unique<sat::Solver>();
      cnf = std::make_unique<sat::CnfMapping>(dst.size());
      sat::encode_network(dst, *solver, *cnf);
    }
    // Returns 1 proven, 0 disproven, -1 unknown.
    const sat::Var t = solver->new_var();
    const sat::Lit lt = sat::mk_lit(t);
    const sat::Lit la = cnf->lit(a);
    const sat::Lit lb = cnf->lit(b);
    // t -> (a != b).
    solver->add_clause(sat::negate(lt), la, lb);
    solver->add_clause(sat::negate(lt), sat::negate(la), sat::negate(lb));
    switch (solver->solve({lt}, params.conflict_limit)) {
      case sat::Result::kUnsat:
        // No distinguishing input: a == b.  Lock t to false so the learnt
        // clauses stay consistent and cheap.
        solver->add_clause(sat::negate(lt));
        return 1;
      case sat::Result::kSat:
        return 0;
      default:
        return -1;
    }
  };

  // Candidate pairs, processed bottom-up (by member id): once a shallow
  // pair is proven, its equality is asserted into the solver, so deeper
  // miters collapse structurally -- the cascading that makes SAT sweeping
  // scale (without it, arithmetic circuits hit the conflict limit).
  struct Pair {
    NodeId member;
    NodeId repr;
    bool phase;
  };
  std::vector<Pair> pairs;
  for (auto& [hash, nodes] : groups) {
    if (nodes.size() < 2) continue;
    std::sort(nodes.begin(), nodes.end());
    // Largest id is the representative: all dependency edges then point
    // from smaller to larger ids, which guarantees acyclicity.
    const NodeId repr = nodes.back();
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      const NodeId m = nodes[i];
      // Establish the phase from simulation; hash collisions are filtered
      // here (values must match exactly in one phase).
      bool phase;
      if (sim.values_equal(Signal(m, false), Signal(repr, false))) {
        phase = false;
      } else if (sim.values_equal(Signal(m, false), Signal(repr, true))) {
        phase = true;
      } else {
        continue;
      }
      pairs.push_back({m, repr, phase});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.member < b.member; });

  // Proven equalities must be re-asserted after a solver re-encode.
  std::vector<Pair> proven_pairs;
  std::size_t pairs_done = 0;
  for (const Pair& p : pairs) {
    if (pairs_done >= params.max_pairs) break;
    if (!dst.is_repr(p.member) ||
        dst.node(p.member).next_choice != kNullNode) {
      continue;
    }
    if (!dst.is_repr(p.repr)) continue;

    ++pairs_done;
    ++stats.num_candidate_pairs;
    const std::size_t clauses_before = solver->num_clauses();
    const int proven =
        prove_equal(Signal(p.member, false), Signal(p.repr, p.phase));
    if (solver->num_clauses() < clauses_before) {
      // The solver was re-encoded inside prove_equal: replay equalities.
      for (const Pair& q : proven_pairs) {
        const sat::Lit la = cnf->lit(Signal(q.member, false));
        const sat::Lit lb = cnf->lit(Signal(q.repr, q.phase));
        solver->add_clause(sat::negate(la), lb);
        solver->add_clause(la, sat::negate(lb));
      }
    }
    if (proven == 0) {
      ++stats.num_disproven;
      continue;
    }
    if (proven < 0) {
      ++stats.num_timeout;
      continue;
    }
    // Assert the proven equality: later miters over this cone collapse.
    {
      const sat::Lit la = cnf->lit(Signal(p.member, false));
      const sat::Lit lb = cnf->lit(Signal(p.repr, p.phase));
      solver->add_clause(sat::negate(la), lb);
      solver->add_clause(la, sat::negate(lb));
      proven_pairs.push_back(p);
    }
    if (choice_reaches(dst, p.member, p.repr)) {
      ++stats.num_rejected_cycle;  // defensive; unreachable by id order
      continue;
    }
    dst.add_choice(p.repr, p.member, p.phase);
    ++stats.num_proven;
  }

  // --- POs must point at representatives -------------------------------
  for (std::size_t i = 0; i < primary_pos.size(); ++i) {
    Signal s = primary_pos[i];
    if (!dst.is_repr(s.node())) {
      const Node& nd = dst.node(s.node());
      s = Signal(nd.repr, s.complemented() ^ nd.choice_phase);
    }
    dst.create_po(s, snapshots[0].po_name(i));
  }

  if (stats_out) *stats_out = stats;
  return dst;
}

}  // namespace mcs
