#include "mcs/choice/dch.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "mcs/network/network_utils.hpp"
#include "mcs/sweep/sweep.hpp"

namespace mcs {

Network build_dch(const std::vector<Network>& snapshots,
                  const DchParams& params, DchStats* stats_out) {
  assert(!snapshots.empty());
  DchStats stats;

  // --- merge all snapshots into one strashed network -------------------
  Network dst;
  std::vector<Signal> pi_map;
  for (std::size_t i = 0; i < snapshots[0].num_pis(); ++i) {
    pi_map.push_back(dst.create_pi(snapshots[0].pi_name(i)));
  }
  std::vector<Signal> primary_pos;  // snapshot[0]'s POs in dst space
  for (const Network& snap : snapshots) {
    assert(snap.num_pis() == snapshots[0].num_pis());
    assert(snap.num_pos() == snapshots[0].num_pos());
    for (std::size_t i = 0; i < snap.num_pos(); ++i) {
      const Signal s = copy_cone(snap, dst, snap.po_at(i), pi_map);
      if (&snap == &snapshots[0]) primary_pos.push_back(s);
    }
  }

  // --- prove equivalence classes with the mcs::sweep engine ------------
  // Simulation-seeded candidate classes, parallel batched cone-restricted
  // miters with proof cascading, counterexample-driven refinement.  The
  // alternative structures contributed by the other snapshots live here as
  // dangling cones, so the engine must consider unreachable nodes too; the
  // constant class is disabled (a constant is no useful choice member).
  FraigParams fp;
  fp.num_threads = params.num_threads;
  fp.sim_words = params.sim_words;
  fp.sim_seed = params.sim_seed;
  fp.conflict_limit = params.conflict_limit;
  fp.max_pairs = params.max_pairs;
  fp.sweep_constants = false;
  fp.include_dangling = true;
  FraigStats fs;
  const std::vector<ProvenEquiv> proven = sweep_equivalences(dst, fp, &fs);
  stats.num_candidate_pairs = fs.num_candidate_pairs;
  stats.num_disproven = fs.num_disproven;
  stats.num_timeout = fs.num_unknown;

  // --- proven classes become choice classes ----------------------------
  // The engine's representative is the class *minimum*; choice classes
  // want the *largest* id as their head so every choice edge points from a
  // smaller to a larger node, which guarantees acyclicity of the covering
  // relation.  Regroup each proven class and re-phase its members against
  // the largest node.
  std::unordered_map<NodeId, std::vector<ProvenEquiv>> classes;
  std::vector<NodeId> reprs;
  for (const ProvenEquiv& e : proven) {
    auto& members = classes[e.repr];
    if (members.empty()) reprs.push_back(e.repr);
    members.push_back(e);
  }
  std::sort(reprs.begin(), reprs.end());
  for (const NodeId r : reprs) {
    // The whole class in dst space: (node, phase vs r), including r.
    std::vector<std::pair<NodeId, bool>> members{{r, false}};
    for (const ProvenEquiv& e : classes[r]) {
      members.push_back({e.node, e.phase});
    }
    const auto [head, head_phase] = members.back();  // largest id (sorted)
    for (const auto& [node, phase] : members) {
      if (node == head) continue;
      if (!dst.is_repr(node) || dst.node(node).next_choice != kNullNode ||
          !dst.is_repr(head)) {
        continue;  // defensive; engine classes are disjoint
      }
      if (choice_reaches(dst, node, head)) {
        ++stats.num_rejected_cycle;  // defensive; unreachable by id order
        continue;
      }
      dst.add_choice(head, node, phase ^ head_phase);
      ++stats.num_proven;
    }
  }

  // --- POs must point at representatives -------------------------------
  for (std::size_t i = 0; i < primary_pos.size(); ++i) {
    Signal s = primary_pos[i];
    if (!dst.is_repr(s.node())) {
      const Node& nd = dst.node(s.node());
      s = Signal(nd.repr, s.complemented() ^ nd.choice_phase);
    }
    dst.create_po(s, snapshots[0].po_name(i));
  }

  if (stats_out) *stats_out = stats;
  return dst;
}

}  // namespace mcs
