/// \file sweep.hpp
/// \brief mcs::sweep -- parallel incremental SAT sweeping (fraiging).
///
/// The engine behind the `fraig` pass, `opt::sweep()` and the DCH choice
/// construction.  It proves functional node equivalences on one network
/// with the simulate / prove / refine loop of ABC-style fraiging:
///
///   1. *Seed* candidate equivalence classes from random-simulation
///      signatures (RandomSimulation; seed-derived PI words).  Nodes whose
///      value words are all-0/all-1 form the constant-candidate class.
///   2. *Prove* each class member against the class representative (the
///      smallest node id) with cone-restricted SAT miters
///      (sat::IncrementalMiter), batched and fanned out on
///      ThreadPool::global().  Batches are fixed-size slices of the
///      member-ordered pair list -- a function of the candidates alone,
///      never of the thread count -- and each batch owns one incremental
///      solver that cascades its own proofs and the previously proven
///      equalities falling inside its cone.
///   3. *Refine*: SAT answers yield counterexample input assignments; they
///      are packed 64-per-word, injected into the simulation
///      (RandomSimulation::add_pattern_words) and split every candidate
///      class they distinguish.  UNSAT answers become proven equivalences.
///      Iterate until no counterexample is found (fixpoint) or the round /
///      pair budgets run out; conflict-limited (kUnknown) pairs are never
///      retried, since no refinement can change their class.
///
/// Determinism contract (same as mcs::par): the proven set, and therefore
/// the fraig()ed network, is bit-identical for any thread count.  Batches
/// are independent solvers whose content depends only on the pair list,
/// results are merged in member-id order, and counterexample patterns are
/// harvested in that same order -- threads only change wall-clock time.
/// This holds even under a finite conflict_limit (unlike parallel CEC,
/// where the serial path solves a different, monolithic miter).

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/network/network.hpp"

namespace mcs {

struct FraigParams {
  /// Worker threads for simulation and the proof batches; values < 1
  /// resolve through ThreadPool::resolve_threads (MCS_THREADS / hardware).
  int num_threads = 1;
  int sim_words = 16;                  ///< random words seeding the classes
  std::uint64_t sim_seed = 0xdead5eed;
  std::int64_t conflict_limit = 300;   ///< SAT budget per candidate pair
  int max_rounds = 16;                 ///< simulate/prove/refine iterations
  std::size_t max_pairs = 1u << 20;    ///< overall proof budget
  /// Also sweep nodes whose simulated values are constant into the
  /// constant node.  Off for choice construction (a constant makes no
  /// sense as a choice-class member).
  bool sweep_constants = true;
  /// Consider nodes not reachable from the POs as candidates too.  Off for
  /// fraig() (merging into a dangling node would be meaningless); on for
  /// DCH, whose merged snapshots keep candidate structures as dangling
  /// cones.
  bool include_dangling = false;
};

struct FraigStats {
  std::size_t num_rounds = 0;
  std::size_t num_candidate_pairs = 0;  ///< proof attempts
  std::size_t num_proven = 0;           ///< UNSAT: equality holds
  std::size_t num_disproven = 0;        ///< SAT: counterexample found
  std::size_t num_unknown = 0;          ///< conflict limit hit
  std::size_t num_patterns_added = 0;   ///< cex words injected into the sim
  std::size_t num_threads = 0;
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;  ///< set by fraig(); 0 from sweep_equivalences
};

/// One proven functional equality: function(node) == function(repr) ^ phase,
/// with repr < node (repr is the smallest member of the candidate class;
/// 0 = the constant node).  A non-constant repr can itself be proven
/// constant (one-level chain); rebuilding in ascending id order resolves
/// that for free.  With sweep_constants off (DCH), representatives are
/// never themselves proven equal to anything, so no chains exist.
struct ProvenEquiv {
  NodeId node;
  NodeId repr;
  bool phase;
};

/// Runs the engine and returns every proven equivalence, sorted by node id.
/// The network is not modified.
std::vector<ProvenEquiv> sweep_equivalences(const Network& net,
                                            const FraigParams& params = {},
                                            FraigStats* stats = nullptr);

/// SAT sweeping: proves equivalences and merges them -- the network is
/// rebuilt with every proven node redirected onto its representative (the
/// strash rewires the fanouts) and cleaned up.  CEC-equivalent to the
/// input; bit-identical for any thread count.
Network fraig(const Network& net, const FraigParams& params = {},
              FraigStats* stats = nullptr);

}  // namespace mcs
