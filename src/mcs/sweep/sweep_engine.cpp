#include "mcs/sweep/sweep.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "mcs/fail/fail.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/miter.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {

namespace {

/// Candidate pairs per proof batch.  One batch = one IncrementalMiter on
/// one worker; the size trades encode reuse (bigger batches share cones
/// and cascade more proofs through one solver) against fan-out granularity.
constexpr std::size_t kPairBatch = 32;

/// Counterexample words injected per refinement round (64 patterns each).
/// Surplus counterexamples are dropped; their pairs re-prove next round,
/// and every injected pattern is guaranteed to split the class it came
/// from, so rounds strictly refine.
constexpr int kMaxCexWordsPerRound = 8;

/// Cap on the simulation words reserved for refinement, decoupling the
/// up-front values_ allocation from max_rounds (rounds can be huge; most
/// runs reach fixpoint in 1-3 rounds).  When the reserve runs dry the
/// engine simply stops refining -- sound, just fewer rounds.
constexpr int kMaxReserveWords = 4 * kMaxCexWordsPerRound;

struct Candidate {
  NodeId member;
  NodeId repr;
  bool phase;  ///< function(member) == function(repr) ^ phase (per sim)
};

enum class Verdict : std::uint8_t { kProven, kCex, kUnknown };

struct PairResult {
  Verdict verdict = Verdict::kUnknown;
  std::vector<std::uint8_t> cex;  ///< PI assignment, kCex only
};

/// True iff all \p num_words value words equal \p fill.
bool words_are(const std::uint64_t* w, int num_words, std::uint64_t fill) {
  for (int i = 0; i < num_words; ++i) {
    if (w[i] != fill) return false;
  }
  return true;
}

}  // namespace

std::vector<ProvenEquiv> sweep_equivalences(const Network& net,
                                            const FraigParams& params,
                                            FraigStats* stats_out) {
  obs::Span sweep_span("sweep:equivalences");
  FraigStats stats;
  const std::size_t threads = ThreadPool::resolve_threads(params.num_threads);
  stats.num_threads = threads;
  stats.initial_gates = net.num_gates();

  // Nodes eligible as candidates: gates, and (unless include_dangling)
  // only those reachable from the POs -- merging a PO cone onto a dangling
  // representative would redirect onto logic the rebuild drops.
  std::vector<std::uint8_t> eligible(net.size(), 0);
  if (params.include_dangling) {
    for (NodeId n = 1; n < net.size(); ++n) eligible[n] = net.is_gate(n);
  } else {
    for (const NodeId n : topo_order(net)) eligible[n] = net.is_gate(n);
  }

  const int max_rounds = std::max(1, params.max_rounds);
  RandomSimulation sim(
      net, params.sim_words, params.sim_seed, params.num_threads,
      /*reserve_extra_words=*/
      max_rounds <= 4 ? max_rounds * kMaxCexWordsPerRound : kMaxReserveWords);

  std::vector<ProvenEquiv> proven;
  // proven_at[n] = index into `proven` of n's equality, or -1.  Batches use
  // it to look cascadable facts up by cone node instead of scanning the
  // whole proven list; mutated only between rounds.
  std::vector<std::int32_t> proven_at(net.size(), -1);
  std::vector<std::uint8_t> merged(net.size(), 0);
  // Pairs that hit the conflict limit are never retried: refinement cannot
  // change a class that produced no counterexample.
  std::unordered_set<std::uint64_t> unknown_pairs;
  const auto pair_key = [](const Candidate& c) {
    return (static_cast<std::uint64_t>(c.member) << 32) | c.repr;
  };

  for (int round = 0; round < max_rounds; ++round) {
    // --- 1. candidate classes from the current signatures ----------------
    std::vector<Candidate> pairs;
    {
      const int words = sim.num_words();
      std::unordered_map<std::uint64_t, std::vector<NodeId>> groups;
      for (NodeId n = 1; n < net.size(); ++n) {
        if (!eligible[n] || merged[n]) continue;
        const std::uint64_t* w = sim.node_values(n);
        if (params.sweep_constants) {
          // All-0 / all-1 values: candidate for the constant class.  The
          // node still joins its signature group below -- if the constant
          // proof hits the conflict limit, the node-vs-node pair may still
          // be provable (near-identical cones make easy miters), so
          // routing constants exclusively would lose merges.
          if (words_are(w, words, 0ull)) {
            pairs.push_back({n, 0, false});
          } else if (words_are(w, words, ~0ull)) {
            pairs.push_back({n, 0, true});
          }
        }
        const std::uint64_t h0 = sim.signature(Signal(n, false));
        const std::uint64_t h1 = sim.signature(Signal(n, true));
        groups[std::min(h0, h1)].push_back(n);
      }
      for (auto& [hash, nodes] : groups) {
        if (nodes.size() < 2) continue;
        // Smallest id is the representative: every merge then points from
        // a later node to an earlier one, so redirections never chase
        // chains or create cycles.  (Node ids are already ascending here.)
        const NodeId repr = nodes.front();
        for (std::size_t i = 1; i < nodes.size(); ++i) {
          const NodeId m = nodes[i];
          // Establish the phase from the values; signature collisions are
          // filtered here (values must match exactly in one phase).
          bool phase;
          if (sim.values_equal(Signal(m, false), Signal(repr, false))) {
            phase = false;
          } else if (sim.values_equal(Signal(m, false), Signal(repr, true))) {
            phase = true;
          } else {
            continue;
          }
          pairs.push_back({m, repr, phase});
        }
      }
    }
    // (member, repr) order is the canonical pair order: a member appears in
    // at most two pairs (constant first -- repr 0 sorts lowest -- then its
    // class repr), so the sort erases the hash-map iteration order.
    std::sort(pairs.begin(), pairs.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.member != b.member ? a.member < b.member
                                            : a.repr < b.repr;
              });
    pairs.erase(std::remove_if(pairs.begin(), pairs.end(),
                               [&](const Candidate& c) {
                                 return unknown_pairs.count(pair_key(c)) > 0;
                               }),
                pairs.end());
    if (stats.num_candidate_pairs + pairs.size() > params.max_pairs) {
      pairs.resize(params.max_pairs - std::min(params.max_pairs,
                                               stats.num_candidate_pairs));
    }
    if (pairs.empty()) break;
    ++stats.num_rounds;

    // --- 2. parallel batched proving -------------------------------------
    // Batches are fixed-size slices of the canonical pair list -- a
    // function of the candidates alone, never of the thread count -- and
    // results land in indexed slots, so the outcome is identical for 1 and
    // N threads (submit_bulk's min-index determinism covers exceptions).
    const std::size_t num_batches =
        (pairs.size() + kPairBatch - 1) / kPairBatch;
    std::vector<PairResult> results(pairs.size());
    static obs::Counter& sat_calls = obs::counter("sweep.sat_calls");
    static obs::Counter& conflicts = obs::counter("sweep.conflicts");
    static obs::Counter& cascades = obs::counter("sweep.cascade_asserts");
    ThreadPool::global().submit_bulk(
        num_batches,
        [&](std::size_t b) {
          obs::Span batch_span("sweep:batch");
          // Propagates via the pool's min-index exception capture: the
          // whole fraig pass fails deterministically, never the process.
          fail::point("sweep.batch");
          const std::size_t begin = b * kPairBatch;
          const std::size_t end = std::min(pairs.size(), begin + kPairBatch);
          sat::IncrementalMiter miter(net);
          // Encode the batch's shared cone in one traversal, then assert
          // the equalities proven in earlier rounds that fall inside it
          // (cross-round proof cascading; each is a proven fact), looked
          // up by cone node through proven_at.
          std::vector<Signal> roots;
          roots.reserve(2 * (end - begin));
          for (std::size_t i = begin; i < end; ++i) {
            roots.push_back(Signal(pairs[i].member, false));
            roots.push_back(Signal(pairs[i].repr, pairs[i].phase));
          }
          std::uint64_t num_cascades = 0;
          for (const NodeId n : miter.encode(roots)) {
            const std::int32_t idx = proven_at[n];
            if (idx < 0) continue;
            const ProvenEquiv& e = proven[idx];
            if (miter.encoded(e.repr)) {
              miter.assert_equal(Signal(e.node, false),
                                 Signal(e.repr, e.phase));
              ++num_cascades;
            }
          }
          for (std::size_t i = begin; i < end; ++i) {
            const Candidate& c = pairs[i];
            const Signal a(c.member, false);
            const Signal b_sig(c.repr, c.phase);
            switch (miter.prove_equal(a, b_sig, params.conflict_limit)) {
              case sat::Result::kUnsat:
                results[i].verdict = Verdict::kProven;
                // In-batch cascading: deeper miters of this batch collapse.
                miter.assert_equal(a, b_sig);
                ++num_cascades;
                break;
              case sat::Result::kSat: {
                results[i].verdict = Verdict::kCex;
                std::vector<std::uint8_t>& cex = results[i].cex;
                cex.resize(net.num_pis());
                for (std::size_t p = 0; p < net.num_pis(); ++p) {
                  cex[p] = miter.pi_model(p) ? 1 : 0;
                }
                break;
              }
              default:
                results[i].verdict = Verdict::kUnknown;
                break;
            }
          }
          // Flushed once per batch (owner-thread cells; cheap but tidy).
          sat_calls.add(end - begin);
          conflicts.add(static_cast<std::uint64_t>(miter.num_conflicts()));
          cascades.add(num_cascades);
        },
        threads);

    // --- 3. deterministic merge + counterexample refinement --------------
    std::vector<const std::vector<std::uint8_t>*> cex_list;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const Candidate& c = pairs[i];
      ++stats.num_candidate_pairs;
      switch (results[i].verdict) {
        case Verdict::kProven:
          if (merged[c.member]) break;  // already merged (constant wins)
          proven_at[c.member] = static_cast<std::int32_t>(proven.size());
          proven.push_back({c.member, c.repr, c.phase});
          merged[c.member] = 1;
          ++stats.num_proven;
          break;
        case Verdict::kCex:
          ++stats.num_disproven;
          if (cex_list.size() <
              std::min(static_cast<std::size_t>(kMaxCexWordsPerRound),
                       static_cast<std::size_t>(sim.spare_words())) *
                  64) {
            cex_list.push_back(&results[i].cex);
          }
          break;
        case Verdict::kUnknown:
          ++stats.num_unknown;
          unknown_pairs.insert(pair_key(c));
          break;
      }
    }
    if (cex_list.empty()) {
      // Fixpoint, or the word reserve ran dry: no class can refine
      // further -- everything left is merged or permanently undecided.
      break;
    }
    if (round + 1 == max_rounds) break;  // nobody would consume the words
    // Pack the counterexamples 64 per word (bit j of word w = pattern
    // w*64+j; unused bits stay 0 -- the all-zero input is just one more
    // valid simulation vector) and re-simulate all new words in one
    // incremental sweep.
    const std::size_t num_new_words = (cex_list.size() + 63) / 64;
    std::vector<std::uint64_t> pi_words(num_new_words * net.num_pis(), 0ull);
    for (std::size_t k = 0; k < cex_list.size(); ++k) {
      const std::vector<std::uint8_t>& cex = *cex_list[k];
      std::uint64_t* words = pi_words.data() + (k / 64) * net.num_pis();
      for (std::size_t p = 0; p < net.num_pis(); ++p) {
        if (cex[p]) words[p] |= 1ull << (k % 64);
      }
    }
    sim.add_pattern_words(pi_words, static_cast<int>(num_new_words));
    stats.num_patterns_added += num_new_words;
    obs::counter("sweep.cex_words").add(num_new_words);
  }
  obs::counter("sweep.proven").add(stats.num_proven);
  obs::counter("sweep.disproven").add(stats.num_disproven);
  obs::counter("sweep.unknown").add(stats.num_unknown);
  obs::counter("sweep.rounds").add(stats.num_rounds);

  // Already in ascending member order within each round; make the whole
  // list canonical for consumers.
  std::sort(proven.begin(), proven.end(),
            [](const ProvenEquiv& a, const ProvenEquiv& b) {
              return a.node < b.node;
            });
  if (stats_out) *stats_out = stats;
  return proven;
}

Network fraig(const Network& net, const FraigParams& params,
              FraigStats* stats_out) {
  FraigStats stats;
  const std::vector<ProvenEquiv> proven =
      sweep_equivalences(net, params, &stats);

  // merge[n] = (target, phase): n is functionally target ^ phase.  A
  // target (class minimum) can itself be merged only onto the constant
  // node; the ascending-id rebuild below resolves such one-level chains
  // naturally (map[target] is final before any member reads it).
  std::vector<std::pair<NodeId, bool>> merge(net.size(), {kNullNode, false});
  for (const ProvenEquiv& e : proven) merge[e.node] = {e.repr, e.phase};

  // Rebuild, redirecting merged nodes; the strash rewires the fanouts.
  // Ascending node ids are a valid topological order in a strashed Network
  // AND guarantee every merge target (repr < node) is rebuilt before its
  // members -- a DFS post-order from the POs guarantees neither for
  // representatives living in a different PO cone.  Dangling nodes rebuilt
  // along the way are dropped by the cleanup below.
  Network dst;
  dst.reserve(net.size());
  std::vector<Signal> map(net.size());
  map[0] = dst.constant(false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = dst.create_pi(net.pi_name(i));
  }
  for (NodeId n = 1; n < net.size(); ++n) {
    if (!net.is_gate(n)) continue;
    if (merge[n].first != kNullNode) {
      map[n] = map[merge[n].first] ^ merge[n].second;
      continue;
    }
    const Node& nd = net.node(n);
    std::array<Signal, 3> in{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    map[n] = dst.create_gate(nd.type, in);
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    dst.create_po(map[s.node()] ^ s.complemented(), net.po_name(i));
  }
  Network result = cleanup(dst);
  stats.final_gates = result.num_gates();
  if (stats_out) *stats_out = stats;
  return result;
}

}  // namespace mcs
