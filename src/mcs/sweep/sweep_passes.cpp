/// \file sweep_passes.cpp
/// \brief Flow registration for the parallel SAT-sweeping engine: the
/// `fraig` pass (simulation-seeded, counterexample-refined, batched
/// parallel SAT sweeping).  `sweep` (opt_passes.cpp) is the legacy name
/// for the same engine with the classic SweepParams defaults.

#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/sweep/sweep.hpp"

// The registrations below use designated initializers and deliberately
// leave defaulted PassInfo/ParamSpec members out; GCC's -Wextra flags
// every omitted member, so silence that one diagnostic here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

void register_sweep_passes(PassRegistry& registry) {
  registry.add({
      .name = "fraig",
      .summary = "parallel SAT sweeping (sim classes + cex-refined proofs)",
      .kind = PassKind::kTransform,
      .params = {{.key = "threads",
                  .type = ParamType::kInt,
                  .default_value = "0",
                  .help = "proof workers; 0 = the flow `threads` setting"},
                 {.key = "conflicts",
                  .type = ParamType::kInt,
                  .default_value = "300",
                  .help = "SAT budget per candidate pair; -1 = unlimited"},
                 {.key = "rounds",
                  .type = ParamType::kInt,
                  .default_value = "16",
                  .help = "max simulate/prove/refine rounds"},
                 {.key = "words",
                  .type = ParamType::kInt,
                  .default_value = "16",
                  .help = "random words seeding the classes"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            FraigParams params;
            const long long threads = args.get_int("threads");
            params.num_threads = threads > 0 ? static_cast<int>(threads)
                                             : ctx.par.num_threads;
            params.conflict_limit = args.get_int("conflicts");
            params.max_rounds = static_cast<int>(args.get_int("rounds"));
            if (params.max_rounds < 1) {
              throw FlowError("fraig: rounds must be >= 1");
            }
            const long long words = args.get_int("words");
            if (words < 1 || words > 4096) {
              throw FlowError("fraig: words must be in [1, 4096]");
            }
            params.sim_words = static_cast<int>(words);
            if (ctx.seed != 0) params.sim_seed = ctx.seed;
            FraigStats stats;
            ctx.net = fraig(ctx.net, params, &stats);
            ctx.note = std::to_string(stats.num_proven) + " merged, " +
                       std::to_string(stats.num_disproven) + " cex, " +
                       std::to_string(stats.num_unknown) + " unknown in " +
                       std::to_string(stats.num_rounds) + " rounds on " +
                       std::to_string(stats.num_threads) + " threads";
          },
  });
}

}  // namespace mcs::flow
