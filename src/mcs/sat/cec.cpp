#include "mcs/sat/cec.hpp"

#include <cassert>
#include <vector>

#include "mcs/sat/cnf.hpp"
#include "mcs/sat/solver.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {

namespace {

/// Fresh variable t with t -> (x != y); asserting t makes the solver search
/// for a distinguishing input.
sat::Lit make_diff(sat::Solver& solver, sat::Lit x, sat::Lit y) {
  const sat::Var t = solver.new_var();
  const sat::Lit lt = sat::mk_lit(t);
  // t -> (x | y), t -> (!x | !y): t implies x != y.
  solver.add_clause(sat::negate(lt), x, y);
  solver.add_clause(sat::negate(lt), sat::negate(x), sat::negate(y));
  // (x != y) -> t, so the OR over all diffs is complete.
  solver.add_clause(lt, sat::negate(x), y);
  solver.add_clause(lt, x, sat::negate(y));
  return lt;
}

}  // namespace

CecResult check_equivalence(const Network& a, const Network& b,
                            const CecOptions& opts) {
  assert(a.num_pis() == b.num_pis());
  assert(a.num_pos() == b.num_pos());

  // Stage 1: random-simulation falsification.
  {
    RandomSimulation sa(a, opts.sim_words, opts.sim_seed);
    RandomSimulation sb(b, opts.sim_words, opts.sim_seed);
    for (std::size_t i = 0; i < a.num_pos(); ++i) {
      const Signal pa = a.po_at(i);
      const Signal pb = b.po_at(i);
      const std::uint64_t fa =
          pa.complemented() != pb.complemented() ? ~0ull : 0ull;
      const std::uint64_t* wa = sa.node_values(pa.node());
      const std::uint64_t* wb = sb.node_values(pb.node());
      for (int w = 0; w < opts.sim_words; ++w) {
        if ((wa[w] ^ fa) != wb[w]) return CecResult::kNotEquivalent;
      }
    }
  }

  // Stage 2: SAT miter with shared PI variables.
  sat::Solver solver;
  sat::CnfMapping ma(a.size());
  sat::CnfMapping mb(b.size());
  for (std::size_t i = 0; i < a.num_pis(); ++i) {
    const sat::Var v = solver.new_var();
    ma.set_var(a.pi_at(i), v);
    mb.set_var(b.pi_at(i), v);
  }
  sat::encode_network(a, solver, ma);
  sat::encode_network(b, solver, mb);

  std::vector<sat::Lit> diffs;
  diffs.reserve(a.num_pos());
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    diffs.push_back(
        make_diff(solver, ma.lit(a.po_at(i)), mb.lit(b.po_at(i))));
  }
  solver.add_clause(std::move(diffs));

  switch (solver.solve({}, opts.conflict_limit)) {
    case sat::Result::kUnsat:
      return CecResult::kEquivalent;
    case sat::Result::kSat:
      return CecResult::kNotEquivalent;
    default:
      return CecResult::kUnknown;
  }
}

CecResult check_signals_equivalent(const Network& net, Signal x, Signal y,
                                   const CecOptions& opts) {
  if (x == y) return CecResult::kEquivalent;

  {
    RandomSimulation sim(net, opts.sim_words, opts.sim_seed);
    if (!sim.values_equal(x, y)) return CecResult::kNotEquivalent;
  }

  sat::Solver solver;
  sat::CnfMapping m(net.size());
  sat::encode_network(net, solver, m);
  solver.add_clause(make_diff(solver, m.lit(x), m.lit(y)));

  switch (solver.solve({}, opts.conflict_limit)) {
    case sat::Result::kUnsat:
      return CecResult::kEquivalent;
    case sat::Result::kSat:
      return CecResult::kNotEquivalent;
    default:
      return CecResult::kUnknown;
  }
}

}  // namespace mcs
