#include "mcs/sat/cec.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <vector>

#include "mcs/obs/obs.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/cnf.hpp"
#include "mcs/sat/solver.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {

namespace {

/// Fresh variable t with t -> (x != y); asserting t makes the solver search
/// for a distinguishing input.
sat::Lit make_diff(sat::Solver& solver, sat::Lit x, sat::Lit y) {
  const sat::Var t = solver.new_var();
  const sat::Lit lt = sat::mk_lit(t);
  // t -> (x | y), t -> (!x | !y): t implies x != y.
  solver.add_clause(sat::negate(lt), x, y);
  solver.add_clause(sat::negate(lt), sat::negate(x), sat::negate(y));
  // (x != y) -> t, so the OR over all diffs is complete.
  solver.add_clause(lt, sat::negate(x), y);
  solver.add_clause(lt, x, sat::negate(y));
  return lt;
}

/// One miter over the PO range [begin, end) of the two networks, with
/// shared PI variables and cone-restricted encodings.
sat::Result solve_miter_range(const Network& a, const Network& b,
                              std::size_t begin, std::size_t end,
                              std::int64_t conflict_limit) {
  sat::Solver solver;
  sat::CnfMapping ma(a.size());
  sat::CnfMapping mb(b.size());
  for (std::size_t i = 0; i < a.num_pis(); ++i) {
    const sat::Var v = solver.new_var();
    ma.set_var(a.pi_at(i), v);
    mb.set_var(b.pi_at(i), v);
  }
  std::vector<Signal> roots_a;
  std::vector<Signal> roots_b;
  roots_a.reserve(end - begin);
  roots_b.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    roots_a.push_back(a.po_at(i));
    roots_b.push_back(b.po_at(i));
  }
  sat::encode_cone(a, roots_a, solver, ma);
  sat::encode_cone(b, roots_b, solver, mb);

  std::vector<sat::Lit> diffs;
  diffs.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    diffs.push_back(
        make_diff(solver, ma.lit(a.po_at(i)), mb.lit(b.po_at(i))));
  }
  solver.add_clause(std::move(diffs));
  return solver.solve({}, conflict_limit);
}

}  // namespace

CecResult check_equivalence(const Network& a, const Network& b,
                            const CecOptions& opts) {
  assert(a.num_pis() == b.num_pis());
  assert(a.num_pos() == b.num_pos());
  obs::Span cec_span("cec:check");
  obs::counter("cec.checks").increment();
  const std::size_t threads = ThreadPool::resolve_threads(opts.num_threads);

  // Stage 1: random-simulation falsification (level-blocked parallel; PI
  // words are seed-derived per interface index, so both networks see the
  // same vectors and any thread count sees the same values).
  if (sim_falsify(a, b, opts.sim_words, opts.sim_seed, opts.num_threads) >=
      0) {
    obs::counter("cec.sim_refuted").increment();
    return CecResult::kNotEquivalent;
  }

  // Stage 2: SAT miter with shared PI variables.  Serial path: one
  // monolithic miter over every PO.
  if (threads <= 1 || a.num_pos() < 2) {
    obs::counter("cec.batches").increment();
    switch (solve_miter_range(a, b, 0, a.num_pos(), opts.conflict_limit)) {
      case sat::Result::kUnsat:
        return CecResult::kEquivalent;
      case sat::Result::kSat:
        return CecResult::kNotEquivalent;
      default:
        return CecResult::kUnknown;
    }
  }

  // Parallel path: per-PO-batch miters.  The batching depends only on the
  // PO count and the verdict merge is order-independent (SAT dominates
  // Unknown), so the verdict does not depend on the thread count; once a
  // counterexample is found, batches not yet started are skipped.
  const std::size_t num_pos = a.num_pos();
  const std::size_t num_batches = (num_pos + kCecPoBatch - 1) / kCecPoBatch;
  std::atomic<bool> found_sat{false};
  std::atomic<bool> found_unknown{false};
  static obs::Counter& batches_run = obs::counter("cec.batches");
  static obs::Counter& early_exits = obs::counter("cec.early_exits");
  ThreadPool::global().submit_bulk(
      num_batches,
      [&](std::size_t batch) {
        if (found_sat.load(std::memory_order_relaxed)) {
          early_exits.increment();
          return;  // early exit
        }
        obs::Span batch_span("cec:batch");
        batches_run.increment();
        const std::size_t begin = batch * kCecPoBatch;
        const std::size_t end = std::min(num_pos, begin + kCecPoBatch);
        switch (solve_miter_range(a, b, begin, end, opts.conflict_limit)) {
          case sat::Result::kSat:
            found_sat.store(true, std::memory_order_relaxed);
            break;
          case sat::Result::kUnknown:
            found_unknown.store(true, std::memory_order_relaxed);
            break;
          default:
            break;
        }
      },
      threads);
  if (found_sat.load()) return CecResult::kNotEquivalent;
  if (found_unknown.load()) return CecResult::kUnknown;
  return CecResult::kEquivalent;
}

CecResult check_signals_equivalent(const Network& net, Signal x, Signal y,
                                   const CecOptions& opts) {
  if (x == y) return CecResult::kEquivalent;

  {
    RandomSimulation sim(net, opts.sim_words, opts.sim_seed, opts.num_threads);
    if (!sim.values_equal(x, y)) return CecResult::kNotEquivalent;
  }

  sat::Solver solver;
  sat::CnfMapping m(net.size());
  sat::encode_cone(net, {x, y}, solver, m);
  solver.add_clause(make_diff(solver, m.lit(x), m.lit(y)));

  switch (solver.solve({}, opts.conflict_limit)) {
    case sat::Result::kUnsat:
      return CecResult::kEquivalent;
    case sat::Result::kSat:
      return CecResult::kNotEquivalent;
    default:
      return CecResult::kUnknown;
  }
}

}  // namespace mcs
