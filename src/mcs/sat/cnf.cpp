#include "mcs/sat/cnf.hpp"

#include <cassert>

#include "mcs/network/network_utils.hpp"

namespace mcs::sat {

void encode_gate(Solver& solver, GateType type, Lit y, Lit a, Lit b, Lit c) {
  switch (type) {
    case GateType::kAnd2:
      solver.add_clause(negate(y), a);
      solver.add_clause(negate(y), b);
      solver.add_clause(y, negate(a), negate(b));
      break;
    case GateType::kXor2:
      solver.add_clause(negate(y), a, b);
      solver.add_clause(negate(y), negate(a), negate(b));
      solver.add_clause(y, negate(a), b);
      solver.add_clause(y, a, negate(b));
      break;
    case GateType::kMaj3:
      solver.add_clause(negate(y), a, b);
      solver.add_clause(negate(y), a, c);
      solver.add_clause(negate(y), b, c);
      solver.add_clause(y, negate(a), negate(b));
      solver.add_clause(y, negate(a), negate(c));
      solver.add_clause(y, negate(b), negate(c));
      break;
    case GateType::kXor3:
      // y == a ^ b ^ c: forbid the eight inconsistent assignments.
      for (int mask = 0; mask < 8; ++mask) {
        const bool pa = mask & 1, pb = mask & 2, pc = mask & 4;
        const bool parity = pa ^ pb ^ pc;
        // If (a,b,c) == (pa,pb,pc) then y must equal parity; clause forbids
        // y == !parity under that assignment.
        std::vector<Lit> cl{pa ? negate(a) : a, pb ? negate(b) : b,
                            pc ? negate(c) : c, parity ? y : negate(y)};
        solver.add_clause(std::move(cl));
      }
      break;
    default:
      assert(false && "encode_gate: not a gate");
  }
}

void encode_network(const Network& net, Solver& solver, CnfMapping& mapping) {
  // Constant node.
  if (!mapping.has_var(0)) {
    const Var v = solver.new_var();
    mapping.set_var(0, v);
    solver.add_clause(mk_lit(v, true));
  }
  for (NodeId n = 1; n < net.size(); ++n) {
    if (!mapping.has_var(n)) mapping.set_var(n, solver.new_var());
  }
  for (NodeId n = 1; n < net.size(); ++n) {
    const Node& nd = net.node(n);
    if (!net.is_gate(n)) continue;
    const Lit y = mk_lit(mapping.var_of_node(n));
    const Lit a = mapping.lit(nd.fanin[0]);
    const Lit b = mapping.lit(nd.fanin[1]);
    const Lit c =
        nd.num_fanins == 3 ? mapping.lit(nd.fanin[2]) : Lit{0};
    encode_gate(solver, nd.type, y, a, b, c);
  }
}

void encode_cone(const Network& net, const std::vector<Signal>& roots,
                 Solver& solver, CnfMapping& mapping) {
  // collect_cone_nodes uses local scratch (not the network's shared
  // traversal marks), so concurrent encodes of disjoint solvers over one
  // network -- the parallel CEC batches -- are safe; its ascending-id
  // order also makes the variable numbering deterministic.
  std::vector<NodeId> root_nodes;
  root_nodes.reserve(roots.size());
  for (const Signal s : roots) root_nodes.push_back(s.node());
  std::vector<char> seen;
  const std::vector<NodeId> cone =
      collect_cone_nodes(net, root_nodes, /*follow_choices=*/false, seen);

  for (const NodeId n : cone) {
    if (mapping.has_var(n)) continue;
    const Var v = solver.new_var();
    mapping.set_var(n, v);
    if (net.is_const0(n)) solver.add_clause(mk_lit(v, true));
  }
  for (const NodeId n : cone) {
    const Node& nd = net.node(n);
    if (!net.is_gate(n)) continue;
    const Lit y = mk_lit(mapping.var_of_node(n));
    const Lit a = mapping.lit(nd.fanin[0]);
    const Lit b = mapping.lit(nd.fanin[1]);
    const Lit c =
        nd.num_fanins == 3 ? mapping.lit(nd.fanin[2]) : Lit{0};
    encode_gate(solver, nd.type, y, a, b, c);
  }
}

}  // namespace mcs::sat
