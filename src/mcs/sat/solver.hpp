/// \file solver.hpp
/// \brief A compact CDCL SAT solver (MiniSat-style).
///
/// Used by the combinational equivalence checker (cec.hpp) and by the
/// SAT-sweeping engine that builds DCH-style structural choices.  The solver
/// implements two-watched-literal propagation, first-UIP clause learning,
/// VSIDS branching with a binary heap, phase saving and Luby restarts.
/// Clause deletion is intentionally omitted: the instances produced by logic
/// synthesis windows and miters stay small enough.

#pragma once

#include <cstdint>
#include <vector>

namespace mcs::sat {

/// Boolean variable index (0-based).
using Var = std::int32_t;

/// Literal: 2 * var + (1 if negated).
using Lit = std::int32_t;

constexpr Lit mk_lit(Var v, bool negated = false) noexcept {
  return 2 * v + (negated ? 1 : 0);
}
constexpr Lit negate(Lit l) noexcept { return l ^ 1; }
constexpr Var var_of(Lit l) noexcept { return l >> 1; }
constexpr bool sign_of(Lit l) noexcept { return (l & 1) != 0; }

enum class Result { kSat, kUnsat, kUnknown };

class Solver {
 public:
  Solver() = default;

  /// Creates a fresh variable and returns its index.
  Var new_var();

  int num_vars() const noexcept { return static_cast<int>(assign_.size()); }

  /// Adds a clause.  Returns false when the clause system is already
  /// unsatisfiable at the root level.
  bool add_clause(std::vector<Lit> lits);

  /// Convenience overloads.
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(std::vector<Lit>{a, b, c});
  }

  /// Solves under the given assumptions.  \p conflict_limit < 0 means no
  /// limit; when the limit is hit the result is kUnknown.
  Result solve(const std::vector<Lit>& assumptions = {},
               std::int64_t conflict_limit = -1);

  /// Model value of \p v after a kSat answer.
  bool model_value(Var v) const noexcept { return model_[v] == 1; }

  std::int64_t num_conflicts() const noexcept { return conflicts_total_; }
  std::size_t num_clauses() const noexcept { return clauses_.size(); }

 private:
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Watch {
    ClauseRef clause;
    Lit blocker;
  };

  // lbool encoding: 0 = false, 1 = true, 2 = unassigned.
  static constexpr std::uint8_t kFalse = 0;
  static constexpr std::uint8_t kTrue = 1;
  static constexpr std::uint8_t kUndef = 2;

  std::uint8_t lit_value(Lit l) const noexcept {
    const std::uint8_t v = assign_[var_of(l)];
    return v == kUndef ? kUndef : (v ^ static_cast<std::uint8_t>(l & 1));
  }

  void attach_clause(ClauseRef cr);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level);
  void backtrack(int level);
  int decision_level() const noexcept {
    return static_cast<int>(trail_lim_.size());
  }
  Lit pick_branch();
  void bump_var(Var v);
  void decay_activities();

  // Variable-order heap (max-heap on activity).
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const noexcept { return heap_.empty(); }
  void heap_sift_up(int i);
  void heap_sift_down(int i);

  std::vector<std::vector<Lit>> clauses_;
  std::vector<std::vector<Watch>> watches_;  // indexed by literal
  std::vector<std::uint8_t> assign_;         // per var
  std::vector<std::uint8_t> model_;          // per var, saved on SAT
  std::vector<std::uint8_t> phase_;          // saved phase per var
  std::vector<ClauseRef> reason_;            // per var
  std::vector<std::int32_t> level_;          // per var
  std::vector<double> activity_;             // per var
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<std::int32_t> heap_;           // heap of vars
  std::vector<std::int32_t> heap_pos_;       // var -> position or -1

  std::vector<std::uint8_t> seen_;           // analyze() scratch
  double var_inc_ = 1.0;
  bool ok_ = true;
  std::int64_t conflicts_total_ = 0;
};

}  // namespace mcs::sat
