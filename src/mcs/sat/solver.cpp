#include "mcs/sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mcs/fail/fail.hpp"

namespace mcs::sat {

namespace {

/// Luby restart sequence scaled by \p base.
std::int64_t luby(std::int64_t base, std::int64_t i) {
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return base << seq;
}

}  // namespace

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(kUndef);
  model_.push_back(kFalse);
  phase_.push_back(kFalse);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  assert(decision_level() == 0);

  // Normalize: sort, drop duplicates and false literals, detect tautology
  // and satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  out.reserve(lits.size());
  Lit prev = -1;
  for (const Lit l : lits) {
    if (l == prev) continue;
    if (prev >= 0 && l == negate(prev) && var_of(l) == var_of(prev)) {
      return true;  // tautology
    }
    const auto v = lit_value(l);
    if (v == kTrue) return true;  // already satisfied at root
    if (v == kFalse) continue;    // falsified at root: drop
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const ClauseRef cr = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back(std::move(out));
  attach_clause(cr);
  return true;
}

void Solver::attach_clause(ClauseRef cr) {
  const auto& c = clauses_[cr];
  watches_[negate(c[0])].push_back({cr, c[1]});
  watches_[negate(c[1])].push_back({cr, c[0]});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = var_of(l);
  assert(assign_[v] == kUndef);
  assign_[v] = sign_of(l) ? kFalse : kTrue;
  reason_[v] = reason;
  level_[v] = decision_level();
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    auto& ws = watches_[p];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watch w = ws[i];
      if (lit_value(w.blocker) == kTrue) {
        ws[keep++] = w;
        continue;
      }
      auto& c = clauses_[w.clause];
      // Ensure the falsified literal negate(p) is at position 1.
      const Lit not_p = negate(p);
      if (c[0] == not_p) std::swap(c[0], c[1]);
      assert(c[1] == not_p);
      if (lit_value(c[0]) == kTrue) {
        ws[keep++] = {w.clause, c[0]};
        continue;
      }
      // Find a new literal to watch.
      bool found = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (lit_value(c[k]) != kFalse) {
          std::swap(c[1], c[k]);
          watches_[negate(c[1])].push_back({w.clause, c[0]});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[keep++] = w;
      if (lit_value(c[0]) == kFalse) {
        // Conflict: restore untouched watches and bail out.
        for (std::size_t k = i + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        propagate_head_ = trail_.size();
        return w.clause;
      }
      enqueue(c[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     int& bt_level) {
  learnt.clear();
  learnt.push_back(0);  // placeholder for the asserting literal

  int counter = 0;
  Lit p = -1;
  std::size_t index = trail_.size();
  ClauseRef cr = conflict;

  do {
    const auto& c = clauses_[cr];
    for (std::size_t i = (p == -1 ? 0 : 1); i < c.size(); ++i) {
      const Lit q = c[i];
      const Var v = var_of(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      bump_var(v);
      if (level_[v] == decision_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[var_of(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    cr = reason_[var_of(p)];
    seen_[var_of(p)] = 0;
    --counter;
    if (counter > 0) {
      // The reason of a non-decision marked literal must exist.
      assert(cr != kNoReason);
      // Move p's position: reason clause c has p at position 0.
      auto& rc = clauses_[cr];
      if (rc[0] != p) {
        // p must be first; reason clauses always propagate their first lit.
        for (std::size_t i = 1; i < rc.size(); ++i) {
          if (rc[i] == p) {
            std::swap(rc[0], rc[i]);
            break;
          }
        }
      }
    }
  } while (counter > 0);
  learnt[0] = negate(p);

  // Backtrack level: second-highest level in the learnt clause.
  bt_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[var_of(learnt[i])] > level_[var_of(learnt[max_i])]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[var_of(learnt[1])];
  }

  for (const Lit l : learnt) seen_[var_of(l)] = 0;
}

void Solver::backtrack(int level) {
  if (decision_level() <= level) return;
  const std::int32_t limit = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(limit);) {
    const Var v = var_of(trail_[i]);
    phase_[v] = assign_[v];
    assign_[v] = kUndef;
    reason_[v] = kNoReason;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(limit);
  trail_lim_.resize(level);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  while (!heap_empty()) {
    const Var v = heap_pop();
    if (assign_[v] == kUndef) {
      return mk_lit(v, phase_[v] == kFalse);
    }
  }
  return -1;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_update(v);
}

void Solver::decay_activities() { var_inc_ /= 0.95; }

Result Solver::solve(const std::vector<Lit>& assumptions,
                     std::int64_t conflict_limit) {
  fail::point("sat.solve");  // delay here simulates a stalled SAT call
  if (!ok_) return Result::kUnsat;
  backtrack(0);

  std::int64_t conflicts = 0;
  int restart_count = 0;
  std::int64_t restart_budget = luby(64, restart_count);

  std::vector<Lit> learnt;
  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++conflicts;
      ++conflicts_total_;
      if (decision_level() == 0) return Result::kUnsat;
      // Conflicts below/at the assumption levels: treat as UNSAT under
      // assumptions if analysis would backtrack into them.
      int bt;
      analyze(conflict, learnt, bt);
      const int num_assumed = static_cast<int>(assumptions.size());
      if (decision_level() <= num_assumed) {
        // The conflict depends only on assumptions.
        backtrack(0);
        return Result::kUnsat;
      }
      backtrack(std::max(bt, 0));
      if (learnt.size() == 1) {
        if (decision_level() != 0) backtrack(0);
        if (lit_value(learnt[0]) == kFalse) return Result::kUnsat;
        if (lit_value(learnt[0]) == kUndef) enqueue(learnt[0], kNoReason);
      } else {
        const ClauseRef cr = static_cast<ClauseRef>(clauses_.size());
        clauses_.push_back(learnt);
        attach_clause(cr);
        if (lit_value(learnt[0]) == kUndef) enqueue(learnt[0], cr);
      }
      decay_activities();
      if (conflict_limit >= 0 && conflicts >= conflict_limit) {
        backtrack(0);
        return Result::kUnknown;
      }
      if (conflicts >= restart_budget) {
        conflicts = 0;
        ++restart_count;
        restart_budget = luby(64, restart_count);
        backtrack(0);
      }
      continue;
    }

    // No conflict: apply pending assumptions as decisions.
    if (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[decision_level()];
      const auto v = lit_value(a);
      if (v == kTrue) {
        // Already satisfied: open an empty decision level.
        trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      } else if (v == kFalse) {
        backtrack(0);
        return Result::kUnsat;
      } else {
        trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
        enqueue(a, kNoReason);
      }
      continue;
    }

    const Lit next = pick_branch();
    if (next < 0) {
      // All variables assigned: model found.
      model_ = assign_;
      backtrack(0);
      return Result::kSat;
    }
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
    enqueue(next, kNoReason);
  }
}

// --- binary max-heap keyed by activity --------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_pos_[v]);
}

void Solver::heap_update(Var v) { heap_sift_up(heap_pos_[v]); }

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_sift_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

}  // namespace mcs::sat
