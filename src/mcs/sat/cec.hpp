/// \file cec.hpp
/// \brief Combinational equivalence checking (the role of ABC's `cec`).
///
/// Every experiment in the paper is formally verified; we provide the same
/// guarantee with a two-stage check: word-parallel random simulation for
/// fast falsification, then a SAT miter for proof.

#pragma once

#include <cstdint>

#include "mcs/network/network.hpp"

namespace mcs {

enum class CecResult { kEquivalent, kNotEquivalent, kUnknown };

struct CecOptions {
  int sim_words = 16;                  ///< random words per node in stage 1
  std::uint64_t sim_seed = 0xc0ffee;   ///< simulation seed
  std::int64_t conflict_limit = -1;    ///< SAT budget; < 0 means unlimited
};

/// Checks combinational equivalence of two networks with identical PI/PO
/// counts (POs are compared positionally).
CecResult check_equivalence(const Network& a, const Network& b,
                            const CecOptions& opts = {});

/// Checks functional equality of two signals of the same network
/// (used to validate choice classes).
CecResult check_signals_equivalent(const Network& net, Signal x, Signal y,
                                   const CecOptions& opts = {});

}  // namespace mcs
