/// \file cec.hpp
/// \brief Combinational equivalence checking (the role of ABC's `cec`).
///
/// Every experiment in the paper is formally verified; we provide the same
/// guarantee with a two-stage check: word-parallel random simulation for
/// fast falsification, then a SAT miter for proof.

#pragma once

#include <cstddef>
#include <cstdint>

#include "mcs/network/network.hpp"

namespace mcs {

enum class CecResult { kEquivalent, kNotEquivalent, kUnknown };

struct CecOptions {
  int sim_words = 16;                  ///< random words per node in stage 1
  std::uint64_t sim_seed = 0xc0ffee;   ///< simulation seed
  std::int64_t conflict_limit = -1;    ///< SAT budget; < 0 means unlimited

  /// Worker threads for both stages; values < 1 resolve through
  /// ThreadPool::resolve_threads (MCS_THREADS / hardware).  With more than
  /// one thread the SAT stage solves per-PO-batch miters (cone-restricted
  /// encodings, kPoBatch POs each, early exit once a counterexample is
  /// found) instead of one monolithic miter.  The batch structure depends
  /// only on the PO count -- never on the thread count -- and the verdict
  /// merge is order-independent (any SAT batch => kNotEquivalent, else any
  /// kUnknown => kUnknown), so with an unlimited conflict budget the
  /// verdict is identical for every thread count.  Under a finite
  /// conflict_limit the budget applies per batch, so the serial
  /// single-miter path may return kUnknown where the batched path decides
  /// (or vice versa).
  int num_threads = 1;
};

/// POs per parallel miter batch (see CecOptions::num_threads).
inline constexpr std::size_t kCecPoBatch = 8;

/// Checks combinational equivalence of two networks with identical PI/PO
/// counts (POs are compared positionally).
CecResult check_equivalence(const Network& a, const Network& b,
                            const CecOptions& opts = {});

/// Checks functional equality of two signals of the same network
/// (used to validate choice classes).
CecResult check_signals_equivalent(const Network& net, Signal x, Signal y,
                                   const CecOptions& opts = {});

}  // namespace mcs
