#include "mcs/sat/miter.hpp"

#include "mcs/network/network_utils.hpp"

namespace mcs::sat {

void IncrementalMiter::encode(Signal s) {
  if (cnf_.has_var(s.node())) return;
  encode(std::vector<Signal>{s});
}

std::vector<NodeId> IncrementalMiter::encode(
    const std::vector<Signal>& roots) {
  // collect_cone_nodes uses caller-owned scratch (not the network's shared
  // traversal marks), so concurrent miters over one network -- the
  // parallel proof batches -- are safe; its ascending-id order makes the
  // variable numbering deterministic and guarantees fanins are encoded
  // before their fanouts.
  std::vector<NodeId> root_nodes;
  root_nodes.reserve(roots.size());
  for (const Signal s : roots) root_nodes.push_back(s.node());
  const std::vector<NodeId> cone =
      collect_cone_nodes(net_, root_nodes, /*follow_choices=*/false, seen_);
  for (const NodeId n : cone) {
    // Variables are only ever created here, together with the node's
    // clauses, so has_var(n) implies n is fully encoded.
    if (cnf_.has_var(n)) continue;
    const Var v = solver_.new_var();
    cnf_.set_var(n, v);
    if (net_.is_const0(n)) {
      solver_.add_clause(mk_lit(v, true));
      continue;
    }
    if (!net_.is_gate(n)) continue;  // PI: free variable
    const Node& nd = net_.node(n);
    encode_gate(solver_, nd.type, mk_lit(v), cnf_.lit(nd.fanin[0]),
                cnf_.lit(nd.fanin[1]),
                nd.num_fanins == 3 ? cnf_.lit(nd.fanin[2]) : Lit{0});
  }
  return cone;
}

Result IncrementalMiter::prove_equal(Signal a, Signal b,
                                     std::int64_t conflict_limit) {
  encode(a);
  encode(b);
  const Lit la = cnf_.lit(a);
  const Lit lb = cnf_.lit(b);
  const Var t = solver_.new_var();
  const Lit lt = mk_lit(t);
  // t -> (a != b): asserting t makes the solver search a distinguishing
  // input.
  solver_.add_clause(negate(lt), la, lb);
  solver_.add_clause(negate(lt), negate(la), negate(lb));
  const Result r = solver_.solve({lt}, conflict_limit);
  // Retire the activation literal: the two clauses above become satisfied
  // and learnt clauses mentioning t stay consistent, so this query can
  // never slow a later one down.  (Sound for every outcome -- t is
  // auxiliary.)
  solver_.add_clause(negate(lt));
  return r;
}

void IncrementalMiter::assert_equal(Signal a, Signal b) {
  encode(a);
  encode(b);
  const Lit la = cnf_.lit(a);
  const Lit lb = cnf_.lit(b);
  solver_.add_clause(negate(la), lb);
  solver_.add_clause(la, negate(lb));
}

bool IncrementalMiter::pi_model(std::size_t i) const noexcept {
  const NodeId pi = net_.pi_at(i);
  if (!cnf_.has_var(pi)) return false;
  return solver_.model_value(cnf_.var_of_node(pi));
}

}  // namespace mcs::sat
