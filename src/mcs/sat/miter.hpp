/// \file miter.hpp
/// \brief Incremental, assumption-based equivalence miters over one network.
///
/// The SAT-sweeping engine (mcs/sweep) proves many candidate equalities
/// against the same network.  Paying one monolithic encode_network per
/// solver -- what the legacy sweep and DCH did -- makes every proof carry
/// the whole circuit; paying a fresh solver per pair throws the learnt
/// clauses away.  IncrementalMiter is the middle ground one worker holds
/// per proof batch: cones are Tseitin-encoded lazily (a node is encoded at
/// most once, shared cones are shared), each query is activated through a
/// fresh assumption literal that is retired afterwards, and proven
/// equalities can be asserted permanently so later miters over the same
/// cone collapse (proof cascading).

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/network/network.hpp"
#include "mcs/sat/cnf.hpp"
#include "mcs/sat/solver.hpp"

namespace mcs::sat {

class IncrementalMiter {
 public:
  explicit IncrementalMiter(const Network& net)
      : net_(net), cnf_(net.size()) {}

  /// Encodes the fanin cone of \p s (no-op for already-encoded nodes; the
  /// constant node gets a variable forced to 0, PIs stay free).
  void encode(Signal s);

  /// Encodes the union of the fanin cones of all \p roots in a single
  /// traversal (one scratch pass, however many roots) and returns the
  /// union cone as an ascending node-id list, including nodes that were
  /// already encoded.  This is the batch preamble of the sweeping engine:
  /// collect once, encode once, then look equalities up by cone node.
  std::vector<NodeId> encode(const std::vector<Signal>& roots);

  bool encoded(NodeId n) const noexcept { return cnf_.has_var(n); }

  /// Proves a == b: encodes both cones, activates a one-shot miter
  /// (t -> a != b) under assumption t and solves with \p conflict_limit
  /// conflicts (< 0 = unlimited).  kUnsat means the equality holds; kSat
  /// leaves a distinguishing model readable through pi_model().  The
  /// activation literal is retired after the query either way, so learnt
  /// clauses never block later queries.
  Result prove_equal(Signal a, Signal b, std::int64_t conflict_limit);

  /// Permanently asserts a == b (both cones are encoded if needed).  Sound
  /// only for proven facts; used for cascading within and across batches.
  void assert_equal(Signal a, Signal b);

  /// After a kSat prove_equal(): the model value of interface PI \p i.
  /// PIs outside every encoded cone read as 0 -- together with the solver
  /// this makes the returned counterexample a deterministic total input
  /// assignment.
  bool pi_model(std::size_t i) const noexcept;

  std::size_t num_clauses() const noexcept { return solver_.num_clauses(); }

  /// Total solver conflicts over this miter's lifetime (effort metric; the
  /// sweep engine folds it into the sweep.conflicts counter per batch).
  std::int64_t num_conflicts() const noexcept {
    return solver_.num_conflicts();
  }

 private:
  const Network& net_;
  Solver solver_;
  CnfMapping cnf_;
  std::vector<char> seen_;  ///< cone-collection scratch
};

}  // namespace mcs::sat
