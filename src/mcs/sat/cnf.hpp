/// \file cnf.hpp
/// \brief Tseitin encoding of mixed networks into CNF.

#pragma once

#include <vector>

#include "mcs/network/network.hpp"
#include "mcs/sat/solver.hpp"

namespace mcs::sat {

/// Maps network nodes to solver variables.
class CnfMapping {
 public:
  explicit CnfMapping(std::size_t num_nodes) : node_var_(num_nodes, -1) {}

  Var var_of_node(NodeId n) const noexcept { return node_var_[n]; }
  bool has_var(NodeId n) const noexcept { return node_var_[n] >= 0; }
  void set_var(NodeId n, Var v) noexcept { node_var_[n] = v; }

  /// Solver literal of a network signal.
  Lit lit(Signal s) const noexcept {
    return mk_lit(node_var_[s.node()], s.complemented());
  }

 private:
  std::vector<Var> node_var_;
};

/// Encodes every node of \p net (including choice members and dangling
/// cones) into \p solver.  PIs get fresh variables unless pre-assigned in
/// \p mapping (enables PI sharing for miters).  The constant node is encoded
/// as a variable forced to 0.
void encode_network(const Network& net, Solver& solver, CnfMapping& mapping);

/// Encodes only the transitive fanin cones of \p roots (fanin edges; choice
/// lists are not followed).  Nodes already carrying a variable in
/// \p mapping keep it (PI sharing for miters); cone nodes without one get
/// fresh variables; the constant node is encoded iff some cone reaches it.
/// This is what the per-PO-batch parallel miter uses: each batch pays for
/// its own cone, not for the whole network.
void encode_cone(const Network& net, const std::vector<Signal>& roots,
                 Solver& solver, CnfMapping& mapping);

/// Adds the clauses for a single gate given fanin literals.
void encode_gate(Solver& solver, GateType type, Lit out, Lit a, Lit b, Lit c);

}  // namespace mcs::sat
