#include "mcs/circuits/wordlib.hpp"

#include <algorithm>
#include <cassert>

namespace mcs::circuits {

Word make_pi_word(Network& net, int bits, const std::string& prefix) {
  Word w;
  w.reserve(bits);
  for (int i = 0; i < bits; ++i) {
    w.push_back(net.create_pi(prefix + "[" + std::to_string(i) + "]"));
  }
  return w;
}

Word const_word(Network& net, std::uint64_t value, int bits) {
  Word w;
  w.reserve(bits);
  // Words can be wider than the 64-bit seed value (a 2n-bit product row
  // seeded with 0); bits past the value are 0, not a UB-wide shift.
  for (int i = 0; i < bits; ++i) {
    const bool bit = i < 64 && ((value >> i) & 1ull) != 0;
    w.push_back(net.constant(bit));
  }
  return w;
}

void make_po_word(Network& net, const Word& w, const std::string& prefix) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    net.create_po(w[i], prefix + "[" + std::to_string(i) + "]");
  }
}

namespace {

Signal reduce(Network& net, Word w, Signal (Network::*op)(Signal, Signal),
              Signal empty) {
  if (w.empty()) return empty;
  // Balanced reduction tree.
  while (w.size() > 1) {
    Word next;
    for (std::size_t i = 0; i + 1 < w.size(); i += 2) {
      next.push_back((net.*op)(w[i], w[i + 1]));
    }
    if (w.size() % 2) next.push_back(w.back());
    w = std::move(next);
  }
  return w[0];
}

}  // namespace

Signal reduce_or(Network& net, const Word& w) {
  return reduce(net, w, &Network::create_or, net.constant(false));
}
Signal reduce_and(Network& net, const Word& w) {
  return reduce(net, w, &Network::create_and, net.constant(true));
}
Signal reduce_xor(Network& net, const Word& w) {
  return reduce(net, w, &Network::create_xor, net.constant(false));
}

Word mux_word(Network& net, Signal sel, const Word& t, const Word& e) {
  assert(t.size() == e.size());
  Word r;
  r.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    r.push_back(net.create_ite(sel, t[i], e[i]));
  }
  return r;
}

Word add(Network& net, const Word& a, const Word& b, Signal carry_in,
         bool with_carry_out) {
  const std::size_t n = std::max(a.size(), b.size());
  Word r;
  r.reserve(n + 1);
  Signal carry = carry_in;
  for (std::size_t i = 0; i < n; ++i) {
    const Signal ai = i < a.size() ? a[i] : net.constant(false);
    const Signal bi = i < b.size() ? b[i] : net.constant(false);
    r.push_back(net.create_xor3(ai, bi, carry));
    carry = net.create_maj(ai, bi, carry);
  }
  if (with_carry_out) r.push_back(carry);
  return r;
}

Word sub(Network& net, const Word& a, const Word& b, Signal* no_borrow) {
  assert(a.size() >= b.size());
  Word nb;
  nb.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    nb.push_back(i < b.size() ? !b[i] : net.constant(true));
  }
  Word r = add(net, a, nb, net.constant(true), /*with_carry_out=*/true);
  if (no_borrow) *no_borrow = r.back();
  r.pop_back();
  return r;
}

Signal less_than(Network& net, const Word& a, const Word& b) {
  // a < b  <=>  borrow out of a - b.
  Word bp = b;
  if (bp.size() < a.size()) bp.resize(a.size(), net.constant(false));
  Word ap = a;
  if (ap.size() < bp.size()) ap.resize(bp.size(), net.constant(false));
  Signal no_borrow = net.constant(true);
  (void)sub(net, ap, bp, &no_borrow);
  return !no_borrow;
}

namespace {

Word shift_impl(Network& net, Word w, const Word& amount, bool left,
                bool rotate) {
  const int n = static_cast<int>(w.size());
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const int k = 1 << s;
    if (k >= n && !rotate) {
      // Shifting by >= n zeroes everything when the bit is set.
      Word zero = const_word(net, 0, n);
      w = mux_word(net, amount[s], zero, w);
      continue;
    }
    Word shifted(n, net.constant(false));
    for (int i = 0; i < n; ++i) {
      const int src = left ? i - (k % n) : i + (k % n);
      if (rotate) {
        shifted[i] = w[((src % n) + n) % n];
      } else if (src >= 0 && src < n) {
        shifted[i] = w[src];
      }
    }
    w = mux_word(net, amount[s], shifted, w);
  }
  return w;
}

}  // namespace

Word shift_left(Network& net, const Word& a, const Word& amount) {
  return shift_impl(net, a, amount, /*left=*/true, /*rotate=*/false);
}
Word shift_right(Network& net, const Word& a, const Word& amount) {
  return shift_impl(net, a, amount, /*left=*/false, /*rotate=*/false);
}
Word rotate_left(Network& net, const Word& a, const Word& amount) {
  return shift_impl(net, a, amount, /*left=*/true, /*rotate=*/true);
}
Word rotate_right(Network& net, const Word& a, const Word& amount) {
  return shift_impl(net, a, amount, /*left=*/false, /*rotate=*/true);
}

Word multiply(Network& net, const Word& a, const Word& b) {
  Word acc = const_word(net, 0, static_cast<int>(a.size() + b.size()));
  for (std::size_t j = 0; j < b.size(); ++j) {
    // Partial product a * b[j] << j.
    Word pp(a.size() + b.size(), net.constant(false));
    for (std::size_t i = 0; i < a.size(); ++i) {
      pp[i + j] = net.create_and(a[i], b[j]);
    }
    acc = add(net, acc, pp);
    acc.resize(a.size() + b.size(), net.constant(false));
  }
  return acc;
}

std::pair<Word, Word> divide(Network& net, const Word& a, const Word& b) {
  assert(a.size() >= b.size());
  const int n = static_cast<int>(a.size());
  // Restoring division, MSB-first.
  Word rem = const_word(net, 0, n + 1);
  Word quo(n, net.constant(false));
  Word bw = b;
  bw.resize(n + 1, net.constant(false));
  for (int i = n - 1; i >= 0; --i) {
    // rem = (rem << 1) | a[i].
    Word shifted(n + 1, net.constant(false));
    shifted[0] = a[i];
    for (int k = 1; k <= n; ++k) shifted[k] = rem[k - 1];
    Signal no_borrow = net.constant(true);
    const Word diff = sub(net, shifted, bw, &no_borrow);
    quo[i] = no_borrow;  // subtraction succeeded
    rem = mux_word(net, no_borrow, diff, shifted);
  }
  rem.resize(static_cast<int>(b.size()), net.constant(false));
  return {quo, rem};
}

Word isqrt(Network& net, const Word& a) {
  const int n = static_cast<int>(a.size());
  const int rn = (n + 1) / 2;
  // Restoring square root: try setting result bits MSB-first and keep the
  // candidate when candidate^2 <= a.  The comparison is done on a running
  // remainder to bound the structure.
  Word root = const_word(net, 0, rn);
  // Build with explicit compare against the input (simple and regular):
  for (int bit = rn - 1; bit >= 0; --bit) {
    Word trial = root;
    trial[bit] = net.constant(true);
    // trial^2 <= a?
    Word sq = multiply(net, trial, trial);
    sq = resize(net, std::move(sq), n + 1);
    Word aw = resize(net, a, n + 1);
    const Signal le = !less_than(net, aw, sq);  // a >= sq
    root = mux_word(net, le, trial, root);
  }
  return root;
}

Word popcount(Network& net, const Word& a) {
  // Tree of word additions over single-bit words.
  std::vector<Word> items;
  items.reserve(a.size());
  for (const Signal s : a) items.push_back(Word{s});
  while (items.size() > 1) {
    std::vector<Word> next;
    for (std::size_t i = 0; i + 1 < items.size(); i += 2) {
      next.push_back(add(net, items[i], items[i + 1],
                         /*with_carry_out=*/true));
    }
    if (items.size() % 2) next.push_back(items.back());
    items = std::move(next);
  }
  return items[0];
}

Word resize(Network& net, Word w, int bits) {
  w.resize(bits, net.constant(false));
  return w;
}

}  // namespace mcs::circuits
