/// \file wordlib.hpp
/// \brief Word-level construction helpers for the benchmark generators.
///
/// Multi-bit buses are vectors of signals (LSB first).  All operators build
/// straightforward textbook structures (ripple carry, array multiplier,
/// restoring divider, barrel shifter): the goal is circuits with the same
/// structural character as the EPFL arithmetic suite, not optimized RTL.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mcs/network/network.hpp"

namespace mcs::circuits {

using Word = std::vector<Signal>;

/// Creates \p bits named primary inputs (LSB first).
Word make_pi_word(Network& net, int bits, const std::string& prefix);

/// Constant word.
Word const_word(Network& net, std::uint64_t value, int bits);

/// Creates POs for every bit of the word.
void make_po_word(Network& net, const Word& w, const std::string& prefix);

/// Variadic reductions.
Signal reduce_or(Network& net, const Word& w);
Signal reduce_and(Network& net, const Word& w);
Signal reduce_xor(Network& net, const Word& w);

/// Bitwise select: sel ? t : e (per bit).
Word mux_word(Network& net, Signal sel, const Word& t, const Word& e);

/// Ripple-carry addition; result has the size of the wider operand, the
/// carry-out is appended when \p with_carry_out.
Word add(Network& net, const Word& a, const Word& b,
         Signal carry_in, bool with_carry_out = false);
inline Word add(Network& net, const Word& a, const Word& b,
                bool with_carry_out = false) {
  return add(net, a, b, net.constant(false), with_carry_out);
}

/// a - b (two's complement); \p borrow_out, when non-null, receives
/// NOT(carry) == (a < b) for equal-width operands.
Word sub(Network& net, const Word& a, const Word& b,
         Signal* no_borrow = nullptr);

/// Unsigned comparison a < b.
Signal less_than(Network& net, const Word& a, const Word& b);

/// Logical shifts by a variable amount (barrel structure, one mux stage per
/// amount bit).  Shifted-out positions fill with zero.
Word shift_left(Network& net, const Word& a, const Word& amount);
Word shift_right(Network& net, const Word& a, const Word& amount);
/// Rotations by a variable amount.  rotate_left moves bit j to j+k
/// (result[i] = a[i-k mod n]); rotate_right is the inverse.
Word rotate_left(Network& net, const Word& a, const Word& amount);
Word rotate_right(Network& net, const Word& a, const Word& amount);

/// Array multiplier; result has size(a) + size(b) bits.
Word multiply(Network& net, const Word& a, const Word& b);

/// Restoring array divider: returns (quotient, remainder).
/// \pre a.size() >= b.size(); division by zero yields all-ones quotient.
std::pair<Word, Word> divide(Network& net, const Word& a, const Word& b);

/// Integer square root (bit-serial restoring method); result has
/// ceil(size/2) bits.
Word isqrt(Network& net, const Word& a);

/// Population count of the word (result has enough bits for the count).
Word popcount(Network& net, const Word& a);

/// Zero-extends / truncates to \p bits.
Word resize(Network& net, Word w, int bits);

}  // namespace mcs::circuits
