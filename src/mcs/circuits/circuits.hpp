/// \file circuits.hpp
/// \brief EPFL-analogue benchmark circuits, generated programmatically.
///
/// The paper evaluates on the EPFL combinational benchmark suite (10
/// arithmetic + 10 random/control circuits).  The suite's files are not
/// redistributable inside this repository, so we generate functionally
/// analogous circuits of the same families and structural character
/// (carry chains, shifter mux columns, divider arrays, priority chains,
/// majority trees, control SOPs).  Absolute sizes are scaled down to keep
/// the full 6-flow evaluation tractable on one core; the win/lose *shape*
/// of the experiments is structure-driven and preserved (see DESIGN.md).

#pragma once

#include <string>
#include <vector>

#include "mcs/network/network.hpp"

namespace mcs::circuits {

// --- arithmetic family ----------------------------------------------------

Network adder(int bits = 64);           ///< ripple-carry adder with carry out
Network barrel_shifter(int bits = 64);  ///< variable left-rotate
Network divider(int bits = 16);         ///< restoring array divider
Network hypotenuse(int bits = 12);      ///< isqrt(a^2 + b^2)
Network log2_approx(int bits = 16);     ///< integer log2 + normalized mantissa
Network max4(int bits = 32);            ///< max of four operands
Network multiplier(int bits = 16);      ///< array multiplier
Network sin_approx(int bits = 10);      ///< polynomial sine approximation
Network sqrt_circuit(int bits = 24);    ///< integer square root
Network square(int bits = 20);          ///< a^2

// --- random / control family ----------------------------------------------

Network round_robin_arbiter(int clients = 32);
Network cavlc_like();        ///< code-length decoding tree
Network ctrl_like();         ///< small FSM next-state/control logic
Network decoder(int addr_bits = 7);
Network i2c_like();          ///< bus-control style logic
Network int2float_like();    ///< 32-bit int -> tiny float converter
Network mem_ctrl_like();     ///< request decode + bank control + priority
Network priority_encoder(int width = 64);
Network router_like();       ///< route-select + grant logic
Network voter(int inputs = 63);  ///< majority of many inputs

// --- registry ---------------------------------------------------------------

struct BenchmarkCircuit {
  std::string name;
  Network net;
};

/// The full 20-circuit suite in the paper's Table I order (arithmetic then
/// random/control).  \p scale in (0, 1] shrinks the arithmetic bit-widths
/// for quick runs.
std::vector<BenchmarkCircuit> epfl_suite(double scale = 1.0);

/// A small subset (names) used by quick benches and tests.
std::vector<BenchmarkCircuit> epfl_suite_small();

}  // namespace mcs::circuits
