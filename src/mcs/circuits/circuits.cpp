#include "mcs/circuits/circuits.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mcs/circuits/wordlib.hpp"
#include "mcs/common/rng.hpp"

namespace mcs::circuits {

namespace {

/// Seeded random control-logic block: a layered mixture of SOP terms over
/// the inputs (the EPFL "random control" circuits are exactly this kind of
/// flattened controller logic).  Deterministic for a given seed.
Word random_control_block(Network& net, const Word& in, int num_out,
                          int terms_per_out, std::uint64_t seed) {
  Rng rng(seed);
  Word out;
  out.reserve(num_out);
  for (int o = 0; o < num_out; ++o) {
    Word terms;
    for (int t = 0; t < terms_per_out; ++t) {
      const int width = 2 + static_cast<int>(rng.next_below(3));
      Signal term = net.constant(true);
      for (int k = 0; k < width; ++k) {
        Signal lit = in[rng.next_below(in.size())];
        if (rng.next_bool()) lit = !lit;
        term = net.create_and(term, lit);
      }
      terms.push_back(term);
    }
    out.push_back(reduce_or(net, terms));
  }
  return out;
}

}  // namespace

// --- arithmetic --------------------------------------------------------------

Network adder(int bits) {
  Network net;
  net.reserve(1 + static_cast<std::size_t>(bits) * 8);
  const Word a = make_pi_word(net, bits, "a");
  const Word b = make_pi_word(net, bits, "b");
  const Word s = add(net, a, b, /*with_carry_out=*/true);
  make_po_word(net, s, "sum");
  return net;
}

Network barrel_shifter(int bits) {
  Network net;
  int amount_bits = 0;
  while ((1 << amount_bits) < bits) ++amount_bits;
  const Word a = make_pi_word(net, bits, "a");
  const Word amt = make_pi_word(net, amount_bits, "shift");
  const Word r = rotate_left(net, a, amt);
  make_po_word(net, r, "out");
  return net;
}

Network divider(int bits) {
  Network net;
  const Word a = make_pi_word(net, bits, "a");
  const Word b = make_pi_word(net, bits, "b");
  const auto [q, r] = divide(net, a, b);
  make_po_word(net, q, "quot");
  make_po_word(net, r, "rem");
  return net;
}

Network hypotenuse(int bits) {
  Network net;
  const Word a = make_pi_word(net, bits, "a");
  const Word b = make_pi_word(net, bits, "b");
  const Word a2 = multiply(net, a, a);
  const Word b2 = multiply(net, b, b);
  Word sum = add(net, a2, b2, /*with_carry_out=*/true);
  const Word r = isqrt(net, sum);
  make_po_word(net, r, "hyp");
  return net;
}

Network log2_approx(int bits) {
  Network net;
  const Word a = make_pi_word(net, bits, "a");
  // Integer part: position of the most significant set bit (priority).
  int pos_bits = 0;
  while ((1 << pos_bits) < bits) ++pos_bits;
  Word ipart = const_word(net, 0, pos_bits);
  Signal seen = net.constant(false);
  for (int i = bits - 1; i >= 0; --i) {
    const Signal here = net.create_and(a[i], !seen);
    for (int k = 0; k < pos_bits; ++k) {
      if ((i >> k) & 1) ipart[k] = net.create_or(ipart[k], here);
    }
    seen = net.create_or(seen, a[i]);
  }
  // Mantissa: normalize a to the left (shift by bits-1 - ipart).
  Word shift_amt = sub(net, const_word(net, bits - 1, pos_bits), ipart);
  const Word mant = shift_left(net, a, shift_amt);
  make_po_word(net, ipart, "ilog");
  make_po_word(net, mant, "mant");
  net.create_po(seen, "valid");
  return net;
}

Network max4(int bits) {
  Network net;
  Word ops[4];
  for (int i = 0; i < 4; ++i) {
    ops[i] = make_pi_word(net, bits, "op" + std::to_string(i));
  }
  auto max2 = [&](const Word& x, const Word& y) {
    const Signal lt = less_than(net, x, y);
    return mux_word(net, lt, y, x);
  };
  const Word m = max2(max2(ops[0], ops[1]), max2(ops[2], ops[3]));
  make_po_word(net, m, "max");
  return net;
}

Network multiplier(int bits) {
  Network net;
  // An array multiplier is ~bits^2 full adders of a few gates each.
  net.reserve(1 + static_cast<std::size_t>(bits) * bits * 8);
  const Word a = make_pi_word(net, bits, "a");
  const Word b = make_pi_word(net, bits, "b");
  const Word p = multiply(net, a, b);
  make_po_word(net, p, "prod");
  return net;
}

Network sin_approx(int bits) {
  Network net;
  // Parabolic approximation on x in [0,1):  s0 = 4x(1-x), refined with
  // s = s0 * (0.775 + 0.225 * s0) -- two multiplier arrays plus adders,
  // the same multiply-add structure as a table-free sine datapath.
  const Word x = make_pi_word(net, bits, "x");
  Word one_minus_x = sub(net, const_word(net, (1u << bits) - 1, bits), x);
  Word s0 = multiply(net, x, one_minus_x);  // scale 2^(2bits-2) ~ x(1-x)
  // Keep the top `bits` bits (s0 <<= 2 for the factor 4).
  Word s0_top(s0.end() - bits, s0.end());
  const std::uint64_t c775 =
      static_cast<std::uint64_t>(0.775 * ((1u << bits) - 1));
  const std::uint64_t c225 =
      static_cast<std::uint64_t>(0.225 * ((1u << bits) - 1));
  Word scaled = multiply(net, s0_top, const_word(net, c225, bits));
  Word scaled_top(scaled.end() - bits, scaled.end());
  Word coeff = add(net, scaled_top, const_word(net, c775, bits));
  coeff.resize(bits, net.constant(false));
  Word s = multiply(net, s0_top, coeff);
  Word s_top(s.end() - bits, s.end());
  make_po_word(net, s_top, "sin");
  return net;
}

Network sqrt_circuit(int bits) {
  Network net;
  const Word a = make_pi_word(net, bits, "a");
  const Word r = isqrt(net, a);
  make_po_word(net, r, "root");
  return net;
}

Network square(int bits) {
  Network net;
  const Word a = make_pi_word(net, bits, "a");
  const Word p = multiply(net, a, a);
  make_po_word(net, p, "sq");
  return net;
}

// --- random / control --------------------------------------------------------

Network round_robin_arbiter(int clients) {
  Network net;
  int ptr_bits = 0;
  while ((1 << ptr_bits) < clients) ++ptr_bits;
  const Word req = make_pi_word(net, clients, "req");
  const Word ptr = make_pi_word(net, ptr_bits, "ptr");

  // Rotate requests so the pointer position becomes index 0, grant the
  // first set bit, rotate the one-hot grant back.
  Word rot = rotate_right(net, req, ptr);  // rot[i] = req[(i + ptr) mod n]
  Word grant_rot(clients, net.constant(false));
  Signal taken = net.constant(false);
  for (int i = 0; i < clients; ++i) {
    grant_rot[i] = net.create_and(rot[i], !taken);
    taken = net.create_or(taken, rot[i]);
  }
  // Rotate back: grant[(i + ptr) mod n] = grant_rot[i].
  const Word grant = rotate_left(net, grant_rot, ptr);
  make_po_word(net, grant, "grant");
  net.create_po(taken, "any");
  return net;
}

Network cavlc_like() {
  Network net;
  // Code-length decoding: a 10-bit codeword and a 2-bit table id select a
  // 5-bit length plus 3 flag bits through nested comparator/mux trees --
  // the shape of H.264 CAVLC length decoding.
  const Word code = make_pi_word(net, 10, "code");
  const Word table = make_pi_word(net, 2, "tab");
  Rng rng(0xca41c);
  Word outs;
  for (int t = 0; t < 4; ++t) {
    // Each table: compare against 8 thresholds; the count of thresholds
    // below the code value is the length.
    Word len = const_word(net, 0, 5);
    for (int k = 0; k < 8; ++k) {
      const Word threshold =
          const_word(net, rng.next_below(1u << 10), 10);
      const Signal above = !less_than(net, code, threshold);
      len = add(net, len, Word{above});
      len.resize(5, net.constant(false));
    }
    const Signal sel = net.create_and(table[0] ^ !(t & 1),
                                      table[1] ^ !((t >> 1) & 1));
    if (outs.empty()) {
      for (const Signal s : len) outs.push_back(net.create_and(sel, s));
    } else {
      for (std::size_t i = 0; i < len.size(); ++i) {
        outs[i] = net.create_or(outs[i], net.create_and(sel, len[i]));
      }
    }
  }
  make_po_word(net, outs, "len");
  net.create_po(reduce_xor(net, code), "parity");
  return net;
}

Network ctrl_like() {
  Network net;
  const Word in = make_pi_word(net, 7, "in");
  const Word out = random_control_block(net, in, 26, 5, 0xc791);
  make_po_word(net, out, "ctl");
  return net;
}

Network decoder(int addr_bits) {
  Network net;
  const Word addr = make_pi_word(net, addr_bits, "addr");
  for (int i = 0; i < (1 << addr_bits); ++i) {
    Word lits;
    for (int k = 0; k < addr_bits; ++k) {
      lits.push_back(((i >> k) & 1) ? addr[k] : !addr[k]);
    }
    net.create_po(reduce_and(net, lits), "dec[" + std::to_string(i) + "]");
  }
  return net;
}

Network i2c_like() {
  Network net;
  // Bus controller style: state decode + counter compare + shift control.
  const Word state = make_pi_word(net, 4, "state");
  const Word cnt = make_pi_word(net, 8, "cnt");
  const Word data = make_pi_word(net, 8, "data");
  const Signal scl = net.create_pi("scl");
  const Signal sda = net.create_pi("sda");

  Word all = state;
  all.insert(all.end(), cnt.begin(), cnt.end());
  all.push_back(scl);
  all.push_back(sda);
  const Word ctl = random_control_block(net, all, 12, 4, 0x12c0);
  const Signal cnt_done =
      !less_than(net, cnt, const_word(net, 200, 8));
  Word next_cnt = add(net, cnt, const_word(net, 1, 8));
  next_cnt.resize(8, net.constant(false));
  next_cnt = mux_word(net, cnt_done, const_word(net, 0, 8), next_cnt);
  const Word shifted = mux_word(net, ctl[0], Word(data.begin() + 1, data.end()),
                                Word(data.begin(), data.end() - 1));
  make_po_word(net, ctl, "ctl");
  make_po_word(net, next_cnt, "cnt_n");
  make_po_word(net, shifted, "sh");
  net.create_po(cnt_done, "done");
  return net;
}

Network int2float_like() {
  Network net;
  const int n = 32;
  const Word a = make_pi_word(net, n, "a");
  // Leading-one position -> exponent; normalized top bits -> mantissa.
  Word exp = const_word(net, 0, 6);
  Signal seen = net.constant(false);
  for (int i = n - 1; i >= 0; --i) {
    const Signal here = net.create_and(a[i], !seen);
    for (int k = 0; k < 6; ++k) {
      if ((i >> k) & 1) exp[k] = net.create_or(exp[k], here);
    }
    seen = net.create_or(seen, a[i]);
  }
  Word shift_amt = sub(net, const_word(net, n - 1, 6), exp);
  const Word norm = shift_left(net, a, shift_amt);
  Word mant(norm.end() - 11, norm.end() - 1);  // 10 bits below the MSB
  make_po_word(net, exp, "exp");
  make_po_word(net, mant, "mant");
  net.create_po(seen, "nonzero");
  return net;
}

Network mem_ctrl_like() {
  Network net;
  // Four requestors, bank decode, a priority grant and control SOPs.
  const Word addr = make_pi_word(net, 12, "addr");
  const Word req = make_pi_word(net, 4, "req");
  const Word state = make_pi_word(net, 6, "state");
  const Word cfg = make_pi_word(net, 8, "cfg");

  // Bank decode from the top 4 address bits.
  Word bank;
  for (int i = 0; i < 16; ++i) {
    Word lits;
    for (int k = 0; k < 4; ++k) {
      lits.push_back(((i >> k) & 1) ? addr[8 + k] : !addr[8 + k]);
    }
    bank.push_back(reduce_and(net, lits));
  }
  // Priority grant among the requestors, qualified by config bits.
  Word grant(4, net.constant(false));
  Signal taken = net.constant(false);
  for (int i = 0; i < 4; ++i) {
    const Signal q = net.create_and(req[i], cfg[i]);
    grant[i] = net.create_and(q, !taken);
    taken = net.create_or(taken, q);
  }
  // Row/column compare against config.
  const Signal row_hit =
      !less_than(net, Word(addr.begin(), addr.begin() + 8), cfg);
  Word all = state;
  all.insert(all.end(), cfg.begin(), cfg.end());
  all.insert(all.end(), grant.begin(), grant.end());
  all.push_back(row_hit);
  const Word ctl = random_control_block(net, all, 24, 6, 0x3e3c);

  make_po_word(net, bank, "bank");
  make_po_word(net, grant, "gnt");
  make_po_word(net, ctl, "ctl");
  net.create_po(row_hit, "rowhit");
  return net;
}

Network priority_encoder(int width) {
  Network net;
  const Word in = make_pi_word(net, width, "in");
  int pos_bits = 0;
  while ((1 << pos_bits) < width) ++pos_bits;
  Word pos = const_word(net, 0, pos_bits);
  Signal seen = net.constant(false);
  for (int i = width - 1; i >= 0; --i) {
    const Signal here = net.create_and(in[i], !seen);
    for (int k = 0; k < pos_bits; ++k) {
      if ((i >> k) & 1) pos[k] = net.create_or(pos[k], here);
    }
    seen = net.create_or(seen, in[i]);
  }
  make_po_word(net, pos, "pos");
  net.create_po(seen, "valid");
  return net;
}

Network router_like() {
  Network net;
  // 4-port route selection: destination compare per port + arbitration +
  // a small payload mux.
  const Word dest = make_pi_word(net, 4, "dest");
  const Word my_addr = make_pi_word(net, 4, "my");
  const Word req = make_pi_word(net, 4, "req");
  const Word payload = make_pi_word(net, 8, "pay");

  Signal local = net.constant(true);
  for (int i = 0; i < 4; ++i) {
    local = net.create_and(local, net.create_xnor(dest[i], my_addr[i]));
  }
  // Direction: compare dest vs my_addr (less/greater per nibble half).
  const Signal go_east = less_than(net, my_addr, dest);
  Word grant(4, net.constant(false));
  Signal taken = net.constant(false);
  for (int i = 0; i < 4; ++i) {
    grant[i] = net.create_and(req[i], !taken);
    taken = net.create_or(taken, req[i]);
  }
  Word out = mux_word(net, local, payload,
                      mux_word(net, go_east,
                               Word(payload.rbegin(), payload.rend()),
                               payload));
  make_po_word(net, grant, "gnt");
  make_po_word(net, out, "out");
  net.create_po(local, "local");
  net.create_po(go_east, "east");
  return net;
}

Network voter(int inputs) {
  Network net;
  const Word in = make_pi_word(net, inputs, "v");
  const Word count = popcount(net, in);
  const int majority = inputs / 2 + 1;
  const Signal yes =
      !less_than(net, count, const_word(net, majority,
                                        static_cast<int>(count.size())));
  net.create_po(yes, "maj");
  return net;
}

// --- registry ---------------------------------------------------------------

std::vector<BenchmarkCircuit> epfl_suite(double scale) {
  auto sc = [&](int bits, int min_bits) {
    return std::max(min_bits, static_cast<int>(std::lround(bits * scale)));
  };
  std::vector<BenchmarkCircuit> suite;
  suite.push_back({"adder", adder(sc(64, 8))});
  suite.push_back({"bar", barrel_shifter(sc(64, 8))});
  suite.push_back({"div", divider(sc(16, 4))});
  suite.push_back({"hyp", hypotenuse(sc(12, 4))});
  suite.push_back({"log2", log2_approx(sc(16, 4))});
  suite.push_back({"max", max4(sc(32, 4))});
  suite.push_back({"multiplier", multiplier(sc(16, 4))});
  suite.push_back({"sin", sin_approx(sc(10, 4))});
  suite.push_back({"sqrt", sqrt_circuit(sc(24, 4))});
  suite.push_back({"square", square(sc(20, 4))});
  suite.push_back({"arbiter", round_robin_arbiter(sc(32, 8))});
  suite.push_back({"cavlc", cavlc_like()});
  suite.push_back({"ctrl", ctrl_like()});
  suite.push_back({"dec", decoder(scale >= 0.9 ? 7 : 5)});
  suite.push_back({"i2c", i2c_like()});
  suite.push_back({"int2float", int2float_like()});
  suite.push_back({"mem_ctrl", mem_ctrl_like()});
  suite.push_back({"priority", priority_encoder(sc(64, 8))});
  suite.push_back({"router", router_like()});
  suite.push_back({"voter", voter(scale >= 0.9 ? 63 : 15)});
  return suite;
}

std::vector<BenchmarkCircuit> epfl_suite_small() { return epfl_suite(0.35); }

}  // namespace mcs::circuits
