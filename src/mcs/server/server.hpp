/// \file server.hpp
/// \brief mcs::server -- a persistent multi-tenant synthesis job server.
///
/// JobServer turns the library into a long-running service: many clients
/// submit synthesis jobs (flow-spec strings, optionally with an inline
/// AIGER/BLIF input network) over the newline-delimited JSON protocol
/// (protocol.hpp), each job runs as its own flow::FlowContext through the
/// registered passes, and per-stage StageReport JSON -- including the
/// mcs::obs metrics/span deltas -- streams back to the submitting client
/// as stages complete.
///
/// **Fair scheduling.**  Jobs multiplex over a small set of runner threads
/// at *stage* granularity with a weighted-deficit (virtual-time) queue:
/// every job carries a vtime that grows by `stage_seconds / weight` per
/// executed stage, runners always dispatch the runnable job with the
/// smallest vtime, and newly accepted jobs start at the observed vtime
/// floor.  A heavy mult64 fraig therefore cannot starve a hundred small
/// adder maps: after its first expensive stage its vtime is far above the
/// floor, so every waiting small job is dispatched first, while the other
/// runner slots keep draining short jobs even during the heavy stage
/// itself.  Stages execute through flow::run_stage and fan out internally
/// on the shared ThreadPool::global() -- the scheduler decides *which*
/// job's stage runs next, the pool decides how a stage's own parallelism
/// lands on the hardware.
///
/// **Cancellation and timeouts.**  Each job owns a flow::CancelToken
/// (cancel request + wall-clock deadline armed at accept time), checked at
/// every stage boundary -- a cancel during a running stage takes effect
/// when that stage finishes, never tearing a pass mid-flight.  Stopped
/// jobs emit a final synthetic stage ("cancelled"/"timeout") and a "done"
/// line; other jobs are unaffected.
///
/// **Transports.**  The core is transport-agnostic: attach() registers a
/// client sink, handle_line() feeds one protocol line.  serve_stream()
/// adapts any istream/ostream pair (the `mcs_server --pipe` mode used by
/// tests and CI -- no networking involved); tools/mcs_server.cpp adds
/// Unix/TCP socket listeners on top of the same three calls.
///
/// **Observability.**  Every job runs under a `server:job` span (each
/// stage additionally under `server:stage`), and the server maintains
/// `server.*` counters (accepted/completed/cancelled/timed-out/...),
/// queue-wait and job-latency histograms and running/queued gauges -- see
/// the README metric catalogue.  Since obs v2 each accepted job also gets
/// its own obs::Domain (installed on the FlowContext, inherited by every
/// pool task the job fans out), so streamed per-stage "metrics" are exact
/// per-job deltas even under concurrency, and the job's attributed CPU
/// time (`server.job_cpu_us`) and peak arena/strash bytes are live in the
/// "jobs" admin verb.  The ctor starts the obs ring sampler
/// (telemetry_interval_ms/telemetry_ring) and the admin verbs "stats" /
/// "health" / "jobs" answer at any time -- including mid-drain -- which is
/// what `mcs_top` polls.
///
/// **Robustness.**  With ServerOptions::journal_path set, every job
/// transition lands in a durable fsync'd journal (journal.hpp) before the
/// client hears about it; a restarted worker (see `mcs_server --supervise`)
/// replays accepted-but-unfinished jobs (done lines marked "retried") and
/// answers "attach" requests for completed ones from the retained done
/// cache.  With stage_checkpoints on, each journaled job additionally
/// snapshots its network (mcs::ckpt) at every completed stage, so the
/// replay *resumes* at the last checkpointed stage instead of re-running
/// the flow from scratch -- the done line then carries "resumed_stage".
/// The journal itself auto-compacts past journal_max_bytes, rewriting to
/// the live state (in-flight accepts + latest checkpoints + done cache)
/// so a long-lived daemon's journal stays bounded.  Degradation guards (max inline-input bytes, per-client job
/// quota, memory high-water shedding) reject excess load with an "error"
/// line instead of letting it take the process down, and the mcs::fail
/// injection sites (server.line / server.emit / server.input) let tests
/// and CI prove all of this under deterministic fire.
///
/// **Multi-tenant safety.**  Jobs share pool workers, so process-wide
/// state must be either immutable, thread-local, or observation-only.
/// The audit (PR 7): ThreadPool::global() is result-neutral by the
/// determinism contract; obs never feeds back; the pass registry is
/// immutable after first access; `NpnDatabase::shared` is thread_local
/// with entries that are pure functions of the class key (see
/// npn_db.hpp), so interleaving jobs on one worker cannot change any
/// result -- tests/test_server.cpp proves two concurrent flows are
/// bit-identical to their serial runs.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "mcs/flow/flow.hpp"
#include "mcs/server/journal.hpp"
#include "mcs/server/protocol.hpp"

namespace mcs::server {

struct ServerOptions {
  /// Concurrent job-runner threads (stage-granular multiplexing happens on
  /// top of these).  <= 0 derives a default: at least 2 slots -- so small
  /// jobs keep flowing while a heavy stage occupies one slot even on one
  /// core -- capped at the resolved thread default and at 8.
  int job_slots = 0;

  /// Default ctx.par.num_threads for jobs that do not request their own
  /// (0 = the process default, i.e. MCS_THREADS / hardware).
  int threads_per_job = 1;

  /// Default wall-clock budget per job in milliseconds; 0 = unlimited.
  /// A job's own "timeout_ms" overrides.
  std::int64_t default_timeout_ms = 0;

  /// Submissions beyond this many in-flight jobs are rejected (backpressure
  /// instead of unbounded queue growth).
  std::size_t max_jobs_in_flight = 4096;

  /// Stream per-stage "stage" lines (on by default; "done" always sent).
  bool stream_stages = true;

  // --- graceful degradation guards ------------------------------------------

  /// Inline "input" text larger than this is rejected before parsing
  /// (one malicious submit must not balloon the daemon).
  std::size_t max_input_bytes = std::size_t{16} << 20;

  /// Per-client in-flight job quota; submissions beyond it are rejected
  /// (one chatty tenant cannot monopolize the job table).
  std::size_t max_jobs_per_client = 1024;

  /// Reject new submissions once the process's kernel-arena high-water
  /// marks (obs gauges `strash.bytes_max` + `cut.arena_bytes_max`) exceed
  /// this many MiB; 0 = off.  High-water marks only rise, so a tripped
  /// guard stays tripped until the (supervised) worker is recycled --
  /// shedding load beats being OOM-killed mid-job.
  std::size_t max_memory_mb = 0;

  // --- crash recovery -------------------------------------------------------

  /// Path of the fsync'd NDJSON job journal (see journal.hpp); "" = no
  /// journaling.  On construction the journal is replayed: jobs accepted
  /// but unfinished by a previous life are re-queued (their done lines
  /// carry "retried": true) and completed jobs' done lines are retained
  /// to answer "attach" requests.
  std::string journal_path{};

  /// Auto-compact the journal once it grows past this many bytes: rewrite
  /// it down to the live state (in-flight accepts + latest checkpoints +
  /// the done cache) through Journal::rewrite_and_reopen.  0 = never.
  std::size_t journal_max_bytes = std::size_t{64} << 20;

  /// Done lines retained for "attach" after completion (FIFO-bounded);
  /// also the journal's compaction budget (Journal::analyze keep_done).
  std::size_t done_cache = 256;

  /// Write a network snapshot (mcs::ckpt) at every completed stage of a
  /// journaled job, so a crashed worker's replacement resumes the job at
  /// the last checkpointed stage instead of stage 0.  Only active when
  /// journal_path is set.
  bool stage_checkpoints = true;

  /// Directory of the per-job stage checkpoint files; "" derives
  /// "<journal_path>.ckpt".  Created on startup if missing.
  std::string ckpt_dir{};

  // --- retained telemetry ---------------------------------------------------

  /// Period of the obs ring sampler (registry snapshots retained in memory
  /// and served by the "stats" verb); 0 disables the sampler.  The sampler
  /// is process-global: the first server to start it owns it, and stops it
  /// on destruction.
  unsigned telemetry_interval_ms = 500;

  /// Capacity of the retained telemetry ring (oldest samples evicted).
  std::size_t telemetry_ring = 120;
};

class JobServer {
 public:
  /// A client's output: receives complete protocol lines (no newline).
  /// Invoked from runner and protocol threads, serialized per client by
  /// the server.  Must not call back into the JobServer.
  using Sink = std::function<void(const std::string& line)>;

  explicit JobServer(ServerOptions options = {});

  /// Drains (waits for every accepted job) and joins the runners.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Registers a client; the returned id scopes job ids and routes
  /// responses to \p sink.
  std::uint64_t attach(Sink sink);

  /// Unregisters a client; its pending responses are dropped.  With
  /// \p cancel_jobs, the client's in-flight jobs are cancelled (socket
  /// disconnect semantics); without, they run to completion unobserved.
  void detach(std::uint64_t client, bool cancel_jobs = false);

  /// Feeds one protocol line from \p client.  Responses (including all
  /// errors) arrive through the client's sink; this never throws on
  /// malformed input, and a failed line leaves the server healthy.
  void handle_line(std::uint64_t client, const std::string& line);

  /// Requests cancellation of the named job regardless of owning client
  /// (the in-process/admin path; protocol "cancel" is client-scoped).
  /// False when no in-flight job has this id.
  bool cancel(std::string_view job_id);

  /// Stops accepting submissions and blocks until every accepted job has
  /// finished.  Idempotent.
  void drain();

  bool draining() const;
  std::size_t jobs_in_flight() const;
  ServerCounters counters() const;

  /// One-client stream transport (the --pipe mode): reads request lines
  /// from \p in until EOF or a "shutdown" request, writes every response
  /// line to \p out (flushed per line), then drains and emits a final
  /// "drained" line.  Tests and CI drive the whole server through this --
  /// no sockets required.
  void serve_stream(std::istream& in, std::ostream& out);

 private:
  struct Client {
    Sink sink;
    std::mutex write_mutex;  ///< one response line at a time
  };

  struct Job {
    std::uint64_t seq = 0;  ///< accept order; vtime tiebreak
    /// Owning client.  Atomic because "attach" re-binds a replayed or
    /// orphaned job to a new client while its stages may be streaming
    /// (writers hold mutex_; the on_stage closure reads lock-free).
    std::atomic<std::uint64_t> client{0};
    std::string id;
    double weight = 1.0;
    bool retried = false;   ///< replayed from the journal after a crash
    /// First stage the job actually executes after a checkpoint restore;
    /// -1 = not resumed.  Set during journal recovery, before runners
    /// exist, and read-only afterwards.
    std::ptrdiff_t resumed_stage = -1;
    /// Verbatim submit line, kept for journal auto-compaction (the
    /// rewritten journal re-emits the job's "accepted" entry).  Written
    /// under mutex_ at accept time, read under mutex_ during compaction.
    std::string request_line;
    /// The job's "started" entry is on disk (journal auto-compaction must
    /// preserve it).  Atomic: set by runners without mutex_.
    std::atomic<bool> journal_started{false};
    /// Index of the last stage whose "stage_ckpt" entry was journaled;
    /// -1 = none.  Atomic for the same reason.
    std::atomic<std::ptrdiff_t> last_ckpt_journaled{-1};
    bool orig_ckpt_written = false;  ///< runner-only state, no lock needed
    std::string emit;       ///< "aiger" = inline the result in "done"
    flow::Flow flow;
    flow::FlowContext ctx;
    std::shared_ptr<flow::CancelToken> token;
    /// Atomic: advanced by the owning runner between stages without
    /// mutex_, read by the "jobs" admin verb under it.
    std::atomic<std::size_t> next_stage{0};
    double vtime = 0.0;  ///< consumed seconds / weight (fair-share key)
    bool running = false;    ///< a runner is executing a stage right now
    bool finalized = false;  ///< done line sent (guards double-finalize)
    std::chrono::steady_clock::time_point accepted_at;
    /// started / queue_wait_seconds are written under mutex_ at first
    /// dispatch so the "jobs" verb can read them under the same lock.
    bool started = false;
    double queue_wait_seconds = 0.0;
    std::unique_ptr<obs::Span> span;  ///< server:job, accept -> done
  };

  void handle_submit(std::uint64_t client, const Request& req);
  void handle_cancel(std::uint64_t client, const Request& req);
  void handle_attach(std::uint64_t client, const Request& req);
  // Admin verbs: observation-only, never touch job state, and safe (by
  // design: drain() releases mutex_ while it waits) during an active drain.
  void handle_stats(std::uint64_t client);
  void handle_health(std::uint64_t client);
  void handle_jobs(std::uint64_t client);
  /// Journal recovery (constructor, before runners start): compact the
  /// old journal, seed the done cache, re-queue unfinished jobs.
  void recover_from_journal();
  /// Recovery detail: fast-forwards a replayed job to its last stage
  /// checkpoint (restore snapshot, audit it, bump next_stage); any
  /// failure falls back to a from-scratch replay.
  void resume_job_from_checkpoint(const PendingJob& pending);
  bool cancel_job_locked(const std::shared_ptr<Job>& job,
                         std::unique_lock<std::mutex>& lock);
  void runner_loop(std::size_t index);
  /// Sends the final "done" line and retires the job.  \p status is one of
  /// "ok" / "error" / "cancelled" / "timeout".
  void finalize(const std::shared_ptr<Job>& job, std::string_view status,
                const std::string& error);
  void emit(std::uint64_t client, const std::string& line);
  void update_gauges_locked();
  ServerCounters counters_locked() const;

  // --- stage checkpoints (mcs::ckpt) ---------------------------------------
  /// Path of a job's stage snapshot ("<ckpt_dir>/<sanitized id><suffix>").
  std::string ckpt_path(const std::string& job_id, const char* suffix) const;
  /// Snapshots job state after a completed stage: the working network
  /// (and, once, the sim-reference original) to disk, then a "stage_ckpt"
  /// journal entry.  Failures degrade to a warning -- the job still has
  /// its stage entries and replays from stage 0.
  void write_stage_checkpoint(const std::shared_ptr<Job>& job,
                              std::size_t completed_stage);
  /// Deletes a finished job's checkpoint files (best effort).
  void remove_stage_checkpoints(const std::shared_ptr<Job>& job);
  /// Rewrites the journal down to live state when it outgrows
  /// options_.journal_max_bytes.
  void maybe_compact_journal();

  ServerOptions options_;
  std::chrono::steady_clock::time_point started_at_;  ///< uptime base
  bool sampler_owner_ = false;  ///< this server started the global sampler

  mutable std::mutex mutex_;
  std::condition_variable cv_ready_;    ///< runners wait for ready jobs
  std::condition_variable cv_drained_;  ///< drain() waits for empty
  bool stop_ = false;
  bool draining_ = false;
  std::uint64_t next_client_ = 1;
  std::uint64_t next_seq_ = 1;
  double vfloor_ = 0.0;  ///< max vtime ever dispatched; entry point for new jobs
  std::map<std::uint64_t, std::shared_ptr<Client>> clients_;
  /// In-flight jobs by (client, id) -- the uniqueness domain of job ids.
  std::map<std::pair<std::uint64_t, std::string>, std::shared_ptr<Job>> jobs_;
  /// Runnable jobs keyed by (vtime, seq): begin() is the fair-share pick.
  std::map<std::pair<double, std::uint64_t>, std::shared_ptr<Job>> ready_;
  ServerCounters counters_;
  std::vector<std::thread> runners_;

  /// Crash-recovery journal (inactive when options_.journal_path is "").
  Journal journal_;
  bool replaying_ = false;  ///< ctor-only: marks re-queued jobs retried
  /// Done lines of recently finished jobs, the "attach" answer cache
  /// (bounded FIFO; also rebuilt from the journal on recovery).
  std::map<std::string, std::string> done_cache_;
  std::vector<std::string> done_cache_order_;
};

}  // namespace mcs::server
