#include "mcs/server/server.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "mcs/ckpt/snapshot.hpp"
#include "mcs/fail/fail.hpp"
#include "mcs/io/aiger.hpp"
#include "mcs/io/blif_read.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/par/thread_pool.hpp"

namespace mcs::server {

namespace {

/// Cached metric handles (registry lookup takes a mutex; handles are
/// process-stable).  All server metrics are catalogued in the README.
struct ServerMetrics {
  obs::Counter& jobs_accepted = obs::counter("server.jobs_accepted");
  obs::Counter& jobs_completed = obs::counter("server.jobs_completed");
  obs::Counter& jobs_failed = obs::counter("server.jobs_failed");
  obs::Counter& jobs_cancelled = obs::counter("server.jobs_cancelled");
  obs::Counter& jobs_timed_out = obs::counter("server.jobs_timed_out");
  obs::Counter& jobs_rejected = obs::counter("server.jobs_rejected");
  obs::Counter& protocol_errors = obs::counter("server.protocol_errors");
  obs::Counter& stages_run = obs::counter("server.stages_run");
  obs::Counter& restarts = obs::counter("server.restarts");
  obs::Counter& jobs_retried = obs::counter("server.jobs_retried");
  obs::Counter& jobs_resumed = obs::counter("ckpt.resumes");
  obs::Counter& ckpt_stage_writes = obs::counter("ckpt.stage_writes");
  obs::Counter& journal_compactions = obs::counter("ckpt.journal_compactions");
  obs::Gauge& strash_bytes = obs::gauge("strash.bytes_max");
  obs::Gauge& cut_arena_bytes = obs::gauge("cut.arena_bytes_max");
  obs::Histogram& queue_wait_us = obs::histogram("server.queue_wait_us");
  obs::Histogram& job_latency_us = obs::histogram("server.job_latency_us");
  obs::Histogram& job_cpu_us = obs::histogram("server.job_cpu_us");
  obs::Gauge& jobs_running = obs::gauge("server.jobs_running");
  obs::Gauge& jobs_queued = obs::gauge("server.jobs_queued");
  obs::Gauge& jobs_in_flight_hwm = obs::gauge("server.jobs_in_flight_hwm");
};

ServerMetrics& metrics() {
  static ServerMetrics m;
  return m;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Suffix of the per-stage snapshot file.  The stage index is part of the
/// name so a crash between a snapshot's rename and its "stage_ckpt"
/// journal entry can never pair a journal index with a newer network: the
/// journaled index always resolves to exactly its own file.
std::string stage_suffix(std::ptrdiff_t stage) {
  return ".s" + std::to_string(stage) + ".snap";
}

int default_job_slots() {
  const int resolved = static_cast<int>(ThreadPool::resolve_threads(0));
  // At least 2 slots so short jobs keep flowing past one heavy stage even
  // on a single core; capped because slots multiplex *jobs*, not cores --
  // each stage still fans out on the shared pool.
  return std::clamp(resolved, 2, 8);
}

}  // namespace

JobServer::JobServer(ServerOptions options)
    : options_(options), started_at_(std::chrono::steady_clock::now()) {
  if (options_.job_slots <= 0) options_.job_slots = default_job_slots();
  // The telemetry ring sampler is process-global; the first server to
  // start it owns its lifetime.  sampler_running() stays false when obs is
  // compiled out, so sampler_owner_ never arms there.
  if (options_.telemetry_interval_ms > 0 && !obs::sampler_running()) {
    obs::sampler_start(options_.telemetry_interval_ms,
                       options_.telemetry_ring);
    sampler_owner_ = obs::sampler_running();
  }
  if (options_.journal_path.empty()) options_.stage_checkpoints = false;
  if (options_.stage_checkpoints) {
    if (options_.ckpt_dir.empty()) {
      options_.ckpt_dir = options_.journal_path + ".ckpt";
    }
    if (::mkdir(options_.ckpt_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr,
                   "mcs_server: cannot create checkpoint dir %s (%s); "
                   "stage checkpoints off\n",
                   options_.ckpt_dir.c_str(), std::strerror(errno));
      options_.stage_checkpoints = false;
    }
  }
  // Recovery runs before the runners exist: replayed jobs queue up
  // exactly like live submissions and dispatch once the slots spin up.
  if (!options_.journal_path.empty()) recover_from_journal();
  runners_.reserve(static_cast<std::size_t>(options_.job_slots));
  for (int i = 0; i < options_.job_slots; ++i) {
    runners_.emplace_back(
        [this, i] { runner_loop(static_cast<std::size_t>(i)); });
  }
}

void JobServer::recover_from_journal() {
  std::size_t skipped = 0;
  const std::vector<JournalEntry> entries =
      Journal::load(options_.journal_path, &skipped);
  const Recovery rec = Journal::analyze(entries, options_.done_cache);
  // Compact before reopening: pending jobs re-journal their accepted
  // entries on re-submission below, so only the done cache carries over.
  Journal::compact(options_.journal_path, rec);
  journal_.open(options_.journal_path);

  for (const auto& [job, line] : rec.completed) {
    if (done_cache_.emplace(job, line).second) {
      done_cache_order_.push_back(job);
    }
  }
  if (!rec.clean_shutdown && rec.entries > 0) {
    // This process replaces one that died with work on the books.
    metrics().restarts.increment();
    std::fprintf(stderr,
                 "mcs_server: unclean journal (%zu entries, %zu torn): "
                 "replaying %zu unfinished job(s)\n",
                 rec.entries, skipped, rec.pending.size());
  }
  replaying_ = true;
  for (const PendingJob& pending : rec.pending) {
    // Client 0 is never attached: responses drop until the owner
    // re-attaches by job id.  The replay reuses the full live submit
    // path, so validation/quota/journal behavior is identical.
    handle_line(0, pending.request);
    resume_job_from_checkpoint(pending);
  }
  replaying_ = false;
}

/// Patches a just-replayed job so it resumes at its last checkpointed
/// stage instead of stage 0.  Runs in the constructor, before any runner
/// exists, so the job's state is free to patch without races.  Every
/// failure (missing/corrupt snapshot, invariant-audit reject) degrades to
/// a warning and a from-scratch replay -- a checkpoint is an
/// optimization, never a correctness dependency.
void JobServer::resume_job_from_checkpoint(const PendingJob& pending) {
  if (!options_.stage_checkpoints || pending.ckpt_index < 0) return;
  const auto it = jobs_.find(std::make_pair(std::uint64_t{0}, pending.id));
  if (it == jobs_.end()) return;  // replay itself was rejected
  const std::shared_ptr<Job>& job = it->second;
  const std::size_t resume_at = static_cast<std::size_t>(pending.ckpt_index) + 1;
  if (resume_at > job->flow.stages().size()) {
    std::fprintf(stderr,
                 "mcs_server: job %s checkpoint index %td exceeds its flow "
                 "(%zu stages); replaying from scratch\n",
                 pending.id.c_str(), pending.ckpt_index,
                 job->flow.stages().size());
    return;
  }
  const std::string snap =
      ckpt_path(pending.id, stage_suffix(pending.ckpt_index).c_str());
  try {
    Network net = ckpt::read_snapshot_file(snap);
    std::string why;
    if (!net.check(&why)) {
      throw ckpt::SnapshotError("restored network fails invariant audit: " +
                                why);
    }
    const std::string orig = ckpt_path(pending.id, ".orig.snap");
    if (::access(orig.c_str(), R_OK) == 0) {
      Network original = ckpt::read_snapshot_file(orig);
      if (!original.check(&why)) {
        throw ckpt::SnapshotError("restored original fails invariant audit: " +
                                  why);
      }
      job->ctx.original = std::move(original);
      job->orig_ckpt_written = true;
    }
    job->ctx.net = std::move(net);
    job->next_stage = resume_at;
    job->resumed_stage = static_cast<std::ptrdiff_t>(resume_at);
    // Re-journal the checkpoint: recovery compacted the old journal away,
    // and a second crash before the next fresh checkpoint must still find
    // this one (the snapshot file is untouched on disk).
    JournalEntry e;
    e.kind = JournalEntry::Kind::kStageCkpt;
    e.job = pending.id;
    e.index = static_cast<std::size_t>(pending.ckpt_index);
    journal_.append(e);
    job->last_ckpt_journaled.store(pending.ckpt_index,
                                   std::memory_order_relaxed);
    ++counters_.resumed;
    metrics().jobs_resumed.increment();
    std::fprintf(stderr, "mcs_server: job %s resumes at stage %zu/%zu\n",
                 pending.id.c_str(), resume_at, job->flow.stages().size());
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "mcs_server: job %s checkpoint unusable (%s); replaying "
                 "from scratch\n",
                 pending.id.c_str(), e.what());
  }
}

JobServer::~JobServer() {
  drain();
  if (journal_.is_open()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kShutdown;
    journal_.append(e);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_ready_.notify_all();
  for (std::thread& t : runners_) t.join();
  if (sampler_owner_) obs::sampler_stop();
}

std::uint64_t JobServer::attach(Sink sink) {
  auto client = std::make_shared<Client>();
  client->sink = std::move(sink);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_client_++;
  clients_.emplace(id, std::move(client));
  return id;
}

void JobServer::detach(std::uint64_t client, bool cancel_jobs) {
  std::vector<std::shared_ptr<flow::CancelToken>> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    clients_.erase(client);
    if (cancel_jobs) {
      for (const auto& [key, job] : jobs_) {
        if (key.first == client) to_cancel.push_back(job->token);
      }
    }
  }
  // Queued jobs are not plucked from the ready queue here: their runner
  // dispatch hits check_interrupted immediately and finalizes them (the
  // done line then goes nowhere, which is exactly detach semantics).
  for (const auto& token : to_cancel) token->request_cancel();
  if (!to_cancel.empty()) cv_ready_.notify_all();
}

void JobServer::emit(std::uint64_t client, const std::string& line) {
  std::shared_ptr<Client> c;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return;  // detached; drop the line
    c = it->second;
  }
  std::lock_guard<std::mutex> write_lock(c->write_mutex);
  try {
    fail::point("server.emit");  // simulates a sink dying mid-write
    c->sink(line);
  } catch (...) {
    // A dying sink (broken pipe wrapper etc.) must not take the server
    // down; the client's lines are simply lost.
  }
}

void JobServer::handle_line(std::uint64_t client, const std::string& line) {
  // Blank lines are keep-alive no-ops, not protocol errors.
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return;

  Request req;
  try {
    // Injected faults land in the catch below and become protocol-error
    // responses -- the daemon-stays-healthy contract under fire.
    fail::point("server.line");
    req = parse_request(line);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.protocol_errors;
    }
    metrics().protocol_errors.increment();
    emit(client, error_line("", e.what()));
    return;
  }

  switch (req.kind) {
    case Request::Kind::kSubmit:
      handle_submit(client, req);
      return;
    case Request::Kind::kCancel:
      handle_cancel(client, req);
      return;
    case Request::Kind::kAttach:
      handle_attach(client, req);
      return;
    case Request::Kind::kPing:
      emit(client, pong_line(counters()));
      return;
    case Request::Kind::kStats:
      handle_stats(client);
      return;
    case Request::Kind::kHealth:
      handle_health(client);
      return;
    case Request::Kind::kJobs:
      handle_jobs(client);
      return;
    case Request::Kind::kShutdown: {
      ServerCounters snap;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
        snap = counters_locked();
      }
      emit(client, draining_line(snap));
      return;
    }
  }
}

void JobServer::handle_submit(std::uint64_t client, const Request& req) {
  auto reject = [&](const std::string& why) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.rejected;
    }
    metrics().jobs_rejected.increment();
    emit(client, error_line(req.id, why));
  };

  // Graceful degradation, cheapest checks first: an oversized inline
  // input is refused before it is parsed, and a memory-pressured process
  // sheds new load instead of growing toward an OOM kill.
  if (req.input_text.size() > options_.max_input_bytes) {
    reject("input: " + std::to_string(req.input_text.size()) +
           " bytes exceeds the inline limit of " +
           std::to_string(options_.max_input_bytes) + " bytes");
    return;
  }
  if (options_.max_memory_mb > 0) {
    const std::int64_t used = metrics().strash_bytes.value() +
                              metrics().cut_arena_bytes.value();
    if (used > static_cast<std::int64_t>(options_.max_memory_mb) << 20) {
      reject("server memory high-water exceeded (" +
             std::to_string(used >> 20) + " MiB > " +
             std::to_string(options_.max_memory_mb) +
             " MiB); resubmit later");
      return;
    }
  }

  auto job = std::make_shared<Job>();
  job->client.store(client, std::memory_order_relaxed);
  job->id = req.id;
  job->weight = req.weight;
  job->retried = replaying_;
  job->emit = req.emit;

  // Everything about the job that can fail is validated here, before it
  // becomes visible: flow spec parse, inline input parse.  A rejected
  // submit leaves no trace beyond the counter.
  try {
    job->flow = flow::Flow::parse(req.flow_spec);
  } catch (const flow::FlowError& e) {
    reject(std::string("flow: ") + e.what());
    return;
  }
  if (job->flow.stages().empty()) {
    reject("flow: empty pipeline");
    return;
  }

  if (!req.input_format.empty()) {
    try {
      // A short-read fault truncates the inline text, exercising the
      // reject path the way a torn transport would.
      const std::size_t n =
          fail::short_read("server.input", req.input_text.size());
      std::istringstream in(n == req.input_text.size()
                                ? req.input_text
                                : req.input_text.substr(0, n));
      Network net =
          req.input_format == "aiger" ? read_aiger(in) : read_blif(in);
      job->ctx.net = std::move(net);
      job->ctx.original = job->ctx.net;
    } catch (const std::exception& e) {
      reject(std::string("input: ") + e.what());
      return;
    }
  }

  job->ctx.par.num_threads =
      req.threads > 0 ? req.threads : options_.threads_per_job;
  job->token = std::make_shared<flow::CancelToken>();
  const std::int64_t timeout_ms =
      req.timeout_ms > 0 ? req.timeout_ms : options_.default_timeout_ms;
  if (timeout_ms > 0) {
    job->token->set_deadline_after(std::chrono::milliseconds(timeout_ms));
  }
  job->ctx.cancel = job->token;
  // The job's metric domain: run_stage installs it, the pool propagates it
  // into every task the job fans out, so streamed stage "metrics" are this
  // job's exact deltas and the "jobs" verb reads live attribution off it.
  job->ctx.domain = std::make_shared<obs::Domain>();
  if (options_.stream_stages) {
    // Captures `this`, a raw Job* and values only: the job must not own a
    // closure that owns the job.  JobServer outlives every job (the
    // destructor drains) and the raw pointer is only dereferenced from
    // inside a running stage, where the runner holds the shared_ptr.  The
    // owning client is re-read per stage so "attach" re-routes streaming
    // mid-job.
    job->ctx.on_stage = [this, raw = job.get(), id = job->id](
                            const flow::StageReport& report,
                            std::size_t index) {
      emit(raw->client.load(std::memory_order_relaxed),
           stage_line(id, index, report));
    };
  }
  job->accepted_at = std::chrono::steady_clock::now();

  std::string why;
  std::size_t queued = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      why = "server is draining; submission refused";
    } else if (jobs_.size() >= options_.max_jobs_in_flight) {
      why = "server at capacity (" +
            std::to_string(options_.max_jobs_in_flight) +
            " jobs in flight); resubmit later";
    } else if (jobs_.count(std::make_pair(client, job->id)) != 0) {
      why = "duplicate job id \"" + job->id + "\" (still in flight)";
    } else {
      // Per-client quota: keys sharing a client id are contiguous in the
      // (client, id)-ordered map.
      std::size_t client_jobs = 0;
      for (auto it = jobs_.lower_bound(std::make_pair(client, std::string()));
           it != jobs_.end() && it->first.first == client; ++it) {
        ++client_jobs;
      }
      if (client_jobs >= options_.max_jobs_per_client) {
        why = "per-client quota reached (" +
              std::to_string(options_.max_jobs_per_client) +
              " jobs in flight); resubmit later";
      } else {
        job->seq = next_seq_++;
        job->vtime = vfloor_;
        jobs_.emplace(std::make_pair(client, job->id), job);
        ready_.emplace(std::make_pair(job->vtime, job->seq), job);
        ++counters_.accepted;
        if (job->retried) ++counters_.retried;
        queued = ready_.size();
        update_gauges_locked();
        metrics().jobs_in_flight_hwm.set_max(
            static_cast<std::int64_t>(jobs_.size()));
        if (journal_.is_open()) {
          // Inside the critical section so no runner can journal this
          // job's "started" before its "accepted" hits the disk.  The
          // request line sticks around on the job for auto-compaction.
          job->request_line = submit_line(req);
          JournalEntry e;
          e.kind = JournalEntry::Kind::kAccepted;
          e.job = job->id;
          e.payload = job->request_line;
          journal_.append(e);
        }
      }
    }
  }
  if (!why.empty()) {
    reject(why);
    return;
  }
  cv_ready_.notify_one();
  metrics().jobs_accepted.increment();
  if (job->retried) metrics().jobs_retried.increment();
  emit(client, accepted_line(job->id, queued));
}

void JobServer::handle_attach(std::uint64_t client, const Request& req) {
  std::string response;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Find an in-flight job with this id; an orphan replayed from the
    // journal (internal client 0) wins over any live client's job.
    std::shared_ptr<Job> found;
    std::uint64_t found_client = 0;
    for (const auto& [key, job] : jobs_) {
      if (key.second != req.id) continue;
      if (found == nullptr || key.first == 0) {
        found = job;
        found_client = key.first;
      }
      if (key.first == 0) break;
    }
    if (found != nullptr) {
      if (found_client != client &&
          jobs_.count(std::make_pair(client, req.id)) != 0) {
        response = error_line(
            req.id, "attach: a job with this id is already yours");
      } else {
        if (found_client != client) {
          jobs_.erase(std::make_pair(found_client, req.id));
          jobs_.emplace(std::make_pair(client, req.id), found);
          found->client.store(client, std::memory_order_relaxed);
        }
        response =
            attached_line(req.id, found->running ? "running" : "queued");
      }
    } else if (auto it = done_cache_.find(req.id); it != done_cache_.end()) {
      response = it->second;  // the exact done line, replayed
    } else {
      response = error_line(req.id,
                            "attach: unknown job (never accepted, or its "
                            "done line aged out of the cache)");
    }
  }
  emit(client, response);
}

void JobServer::handle_stats(std::uint64_t client) {
  // Everything here is observation-only: counters under mutex_, the obs
  // registry / ring / Prometheus rendering lock-free or under obs's own
  // locks -- so "stats" answers even while drain() blocks on cv_drained_.
  emit(client, stats_line(counters(), seconds_since(started_at_),
                          obs::metrics_json(), obs::ring_json(),
                          obs::prometheus_text()));
}

void JobServer::handle_health(std::uint64_t client) {
  HealthInfo h;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    h.draining = draining_;
    h.queued = ready_.size();
    h.running = jobs_.size() - ready_.size();
  }
  h.uptime_seconds = seconds_since(started_at_);
  h.journal_bytes = journal_.is_open() ? journal_.bytes() : 0;
  h.memory_bytes =
      metrics().strash_bytes.value() + metrics().cut_arena_bytes.value();
  h.memory_limit_bytes =
      static_cast<std::int64_t>(options_.max_memory_mb) << 20;
  h.telemetry = obs::sampler_running();
  emit(client, health_line(h));
}

void JobServer::handle_jobs(std::uint64_t client) {
  std::vector<JobInfo> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows.reserve(jobs_.size());
    for (const auto& [key, job] : jobs_) {
      JobInfo info;
      info.id = job->id;
      info.state = job->running ? "running" : "queued";
      const std::size_t at = job->next_stage.load(std::memory_order_relaxed);
      info.stage = at;
      info.stages = job->flow.stages().size();
      if (at < info.stages) info.pass = job->flow.stages()[at].pass->name;
      info.weight = job->weight;
      info.seconds = seconds_since(job->accepted_at);
      info.queue_wait_seconds = job->started ? job->queue_wait_seconds : 0.0;
      if (job->ctx.domain != nullptr) {
        info.cpu_us = job->ctx.domain->cpu_us();
        info.strash_bytes =
            job->ctx.domain->peak(obs::DomainPeak::kStrashBytes);
        info.arena_bytes = job->ctx.domain->peak(obs::DomainPeak::kArenaBytes);
      }
      rows.push_back(std::move(info));
    }
  }
  emit(client, jobs_line(rows));
}

void JobServer::handle_cancel(std::uint64_t client, const Request& req) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(std::make_pair(client, req.id));
  if (it == jobs_.end()) {
    lock.unlock();
    emit(client, error_line(req.id, "cancel: no such in-flight job"));
    return;
  }
  std::shared_ptr<Job> job = it->second;  // keep alive past the map erase
  cancel_job_locked(job, lock);
}

bool JobServer::cancel(std::string_view job_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (const auto& [key, job] : jobs_) {
    if (key.second == job_id) {
      std::shared_ptr<Job> keep = job;
      return cancel_job_locked(keep, lock);
    }
  }
  return false;
}

/// Requests cancellation of \p job.  A *queued* job (not running, still in
/// the ready queue) is finalized right here -- it will never touch a
/// runner.  A *running* job only gets its token tripped; the owning runner
/// observes it at the next stage boundary.  May release \p lock (and does
/// not re-acquire it); callers must not rely on it afterwards.
bool JobServer::cancel_job_locked(const std::shared_ptr<Job>& job,
                                  std::unique_lock<std::mutex>& lock) {
  job->token->request_cancel();
  if (job->running || job->finalized) return true;
  ready_.erase(std::make_pair(job->vtime, job->seq));
  update_gauges_locked();
  lock.unlock();
  finalize(job, "cancelled", "cancelled before start");
  return true;
}

void JobServer::runner_loop(std::size_t /*index*/) {
  for (;;) {
    std::shared_ptr<Job> job;
    bool first_dispatch = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_ready_.wait(lock, [this] { return stop_ || !ready_.empty(); });
      if (stop_ && ready_.empty()) return;
      auto it = ready_.begin();
      job = it->second;
      ready_.erase(it);
      job->running = true;
      // The dispatch floor only ever rises: newly accepted jobs enter at
      // the vtime of the fair-share frontier instead of at 0, so a
      // long-lived server does not hand newcomers an unbounded credit.
      vfloor_ = std::max(vfloor_, job->vtime);
      update_gauges_locked();
      // First dispatch fixes the queue wait while mutex_ is held, so the
      // "jobs" verb reads a consistent started/queue_wait pair.
      if (!job->started) {
        job->started = true;
        job->queue_wait_seconds = seconds_since(job->accepted_at);
        first_dispatch = true;
      }
    }

    if (first_dispatch) {
      metrics().queue_wait_us.observe(
          static_cast<std::uint64_t>(job->queue_wait_seconds * 1e6));
      job->span = std::make_unique<obs::Span>("server:job");
      if (journal_.is_open()) {
        JournalEntry e;
        e.kind = JournalEntry::Kind::kStarted;
        e.job = job->id;
        journal_.append(e);
        job->journal_started.store(true, std::memory_order_relaxed);
      }
    }

    // A resumed job whose checkpoint covered the final stage has nothing
    // left to run -- its previous life died between the last stage and
    // the done entry.
    if (job->next_stage >= job->flow.stages().size()) {
      finalize(job, "ok", "");
      continue;
    }

    const flow::Flow::Stage& stage = job->flow.stages()[job->next_stage];

    // Stage boundary: a tripped token stops the job with a synthetic
    // failed stage (streamed like any other) instead of running the pass.
    if (auto stopped = flow::check_interrupted(job->ctx, *stage.pass)) {
      const bool timed_out = stopped->note == "timeout";
      finalize(job, timed_out ? "timeout" : "cancelled", stopped->note);
      continue;
    }

    flow::StageReport report;
    {
      obs::Span span("server:stage");
      // The transactional runner: with the job's TxnPolicy armed (the
      // `ckpt` pass), a throwing/fault-injected/invariant-breaking stage
      // rolls the network back to its pre-stage snapshot and retries or
      // skips per policy instead of failing the job outright.
      report = flow::run_stage_txn(job->ctx, *stage.pass, stage.args);
    }
    metrics().stages_run.increment();
    // Floor per-stage cost so zero-measure stages still advance vtime and
    // a flood of trivial jobs cannot pin the queue head forever.
    job->vtime += std::max(report.seconds, 1e-7) / job->weight;
    ++job->next_stage;
    if (report.ok && journal_.is_open()) {
      JournalEntry e;
      e.kind = JournalEntry::Kind::kStage;
      e.job = job->id;
      e.index = job->next_stage - 1;
      journal_.append(e);
      write_stage_checkpoint(job, job->next_stage - 1);
      maybe_compact_journal();
    }

    if (!report.ok) {
      finalize(job, "error",
               report.note.empty() ? (report.pass + " failed")
                                   : (report.pass + ": " + report.note));
      continue;
    }
    if (job->next_stage >= job->flow.stages().size()) {
      finalize(job, "ok", "");
      continue;
    }

    // Check again after the stage so a cancel/timeout that landed while
    // the pass ran finalizes now instead of after another queue round-trip.
    const flow::Flow::Stage& next = job->flow.stages()[job->next_stage];
    if (auto stopped = flow::check_interrupted(job->ctx, *next.pass)) {
      const bool timed_out = stopped->note == "timeout";
      finalize(job, timed_out ? "timeout" : "cancelled", stopped->note);
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->running = false;
      ready_.emplace(std::make_pair(job->vtime, job->seq), job);
      update_gauges_locked();
    }
    cv_ready_.notify_one();
  }
}

void JobServer::finalize(const std::shared_ptr<Job>& job,
                         std::string_view status_in,
                         const std::string& error_in) {
  // The result artifact is serialized before the job leaves the table:
  // a failure here downgrades the status (the client asked for the
  // netlist; "ok" without it would be a silent lie).
  std::string status(status_in);
  std::string error = error_in;
  DoneExtras extras;
  extras.retried = job->retried;
  extras.resumed_stage = job->resumed_stage;
  if (status == "ok" && job->emit == "aiger") {
    try {
      std::ostringstream os;
      if (job->ctx.net.is_aig()) {
        write_aiger(job->ctx.net, os, /*binary=*/false);
      } else {
        const Network aig = expand_to_aig(job->ctx.net);
        write_aiger(aig, os, /*binary=*/false);
      }
      extras.artifact_format = "aiger";
      extras.artifact_text = os.str();
    } catch (const std::exception& e) {
      status = "error";
      error = std::string("artifact: ") + e.what();
    }
  }

  const double total_seconds = seconds_since(job->accepted_at);
  const std::string line =
      done_line(job->id, status, error, job->ctx.history.size(),
                total_seconds, job->queue_wait_seconds, job->ctx, extras);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->finalized) return;
    job->finalized = true;
    job->running = false;
    jobs_.erase(std::make_pair(job->client.load(std::memory_order_relaxed),
                               job->id));
    if (status == "ok") {
      ++counters_.completed;
    } else if (status == "cancelled") {
      ++counters_.cancelled;
    } else if (status == "timeout") {
      ++counters_.timed_out;
    } else {
      ++counters_.failed;
    }
    update_gauges_locked();
    // Retain the done line for late attach() calls, FIFO-bounded.
    if (done_cache_.emplace(job->id, line).second) {
      done_cache_order_.push_back(job->id);
      if (done_cache_order_.size() > options_.done_cache) {
        done_cache_.erase(done_cache_order_.front());
        done_cache_order_.erase(done_cache_order_.begin());
      }
    } else {
      done_cache_[job->id] = line;  // id reuse: newest outcome wins
    }
  }

  ServerMetrics& m = metrics();
  if (status == "ok") {
    m.jobs_completed.increment();
  } else if (status == "cancelled") {
    m.jobs_cancelled.increment();
  } else if (status == "timeout") {
    m.jobs_timed_out.increment();
  } else {
    m.jobs_failed.increment();
  }
  m.job_latency_us.observe(static_cast<std::uint64_t>(total_seconds * 1e6));
  // Attributed CPU over every thread that worked for this job's domain --
  // the per-job cost number the wall-clock latency histogram cannot give.
  if (job->ctx.domain != nullptr) {
    m.job_cpu_us.observe(job->ctx.domain->cpu_us());
  }
  job->span.reset();  // records server:job on this thread

  if (journal_.is_open()) {
    // Durability before acknowledgment: the entry is on disk before the
    // client can see the done line.  A crash in between replays the job
    // (at-least-once); a crash after never re-runs it.
    JournalEntry e;
    e.kind = JournalEntry::Kind::kDone;
    e.job = job->id;
    e.status = status;
    e.payload = line;
    journal_.append(e);
  }
  remove_stage_checkpoints(job);
  maybe_compact_journal();

  emit(job->client.load(std::memory_order_relaxed), line);

  cv_drained_.notify_all();
}

void JobServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  cv_drained_.wait(lock, [this] { return jobs_.empty(); });
}

bool JobServer::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::size_t JobServer::jobs_in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

ServerCounters JobServer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_locked();
}

ServerCounters JobServer::counters_locked() const {
  ServerCounters c = counters_;
  c.queued = ready_.size();
  c.running = jobs_.size() - ready_.size();
  c.draining = draining_;
  return c;
}

void JobServer::update_gauges_locked() {
  metrics().jobs_queued.set(static_cast<std::int64_t>(ready_.size()));
  metrics().jobs_running.set(
      static_cast<std::int64_t>(jobs_.size() - ready_.size()));
}

// --- stage checkpoints (mcs::ckpt) ------------------------------------------

std::string JobServer::ckpt_path(const std::string& job_id,
                                 const char* suffix) const {
  // Job ids are client-chosen: escape everything outside [A-Za-z0-9_.-]
  // as %XX so an id cannot traverse out of the checkpoint directory.
  std::string name;
  name.reserve(job_id.size());
  for (const char c : job_id) {
    const bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                       c == '-';
    if (plain) {
      name += c;
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      name += buf;
    }
  }
  return options_.ckpt_dir + "/" + name + suffix;
}

void JobServer::write_stage_checkpoint(const std::shared_ptr<Job>& job,
                                       std::size_t completed_stage) {
  if (!options_.stage_checkpoints || !journal_.is_open()) return;
  try {
    // The cec/simcheck reference network is part of the resumable state:
    // snapshot it once, the first time a stage leaves one behind.
    if (!job->orig_ckpt_written && job->ctx.original.has_value()) {
      ckpt::write_snapshot_file(*job->ctx.original,
                                ckpt_path(job->id, ".orig.snap"));
      job->orig_ckpt_written = true;
    }
    const std::ptrdiff_t prev =
        job->last_ckpt_journaled.load(std::memory_order_relaxed);
    const std::ptrdiff_t stage = static_cast<std::ptrdiff_t>(completed_stage);
    ckpt::write_snapshot_file(job->ctx.net,
                              ckpt_path(job->id, stage_suffix(stage).c_str()));
    JournalEntry e;
    e.kind = JournalEntry::Kind::kStageCkpt;
    e.job = job->id;
    e.index = completed_stage;
    journal_.append(e);
    job->last_ckpt_journaled.store(stage, std::memory_order_relaxed);
    // The previous snapshot is deleted only after the new entry is
    // durable, so the journal's newest stage_ckpt always has its file.
    if (prev >= 0 && prev != stage) {
      ::unlink(ckpt_path(job->id, stage_suffix(prev).c_str()).c_str());
    }
    metrics().ckpt_stage_writes.increment();
  } catch (const std::exception& e) {
    // Injected ckpt.write faults land here too: checkpointing degrades to
    // a warning, the job itself is unaffected (a crash replays it from
    // its last good checkpoint, or stage 0).
    std::fprintf(stderr,
                 "mcs_server: stage checkpoint for job %s failed: %s\n",
                 job->id.c_str(), e.what());
  }
}

void JobServer::remove_stage_checkpoints(const std::shared_ptr<Job>& job) {
  if (!options_.stage_checkpoints) return;
  const std::ptrdiff_t last =
      job->last_ckpt_journaled.load(std::memory_order_relaxed);
  if (last >= 0) {
    ::unlink(ckpt_path(job->id, stage_suffix(last).c_str()).c_str());
  }
  if (job->orig_ckpt_written) {
    ::unlink(ckpt_path(job->id, ".orig.snap").c_str());
  }
}

void JobServer::maybe_compact_journal() {
  if (!journal_.is_open() || options_.journal_max_bytes == 0) return;
  if (journal_.bytes() <= options_.journal_max_bytes) return;
  // mutex_ is held across the rewrite so a submit (which journals its
  // accepted entry under mutex_) can never fall between the state
  // snapshot below and the file swap -- it lands fully before (and is in
  // the snapshot) or fully after (and appends to the new file).  Runner
  // appends without mutex_ can land in the discarded old file; those are
  // stage/checkpoint markers whose loss only degrades a future resume,
  // never a job's at-least-once execution.  Lock order (mutex_ then the
  // journal's append lock) matches handle_submit.
  std::lock_guard<std::mutex> lock(mutex_);
  if (journal_.bytes() <= options_.journal_max_bytes) return;  // lost the race
  std::vector<JournalEntry> entries;
  for (const auto& [key, job] : jobs_) {
    if (job->request_line.empty()) continue;  // accepted while degraded
    JournalEntry a;
    a.kind = JournalEntry::Kind::kAccepted;
    a.job = job->id;
    a.payload = job->request_line;
    entries.push_back(std::move(a));
    if (job->journal_started.load(std::memory_order_relaxed)) {
      JournalEntry s;
      s.kind = JournalEntry::Kind::kStarted;
      s.job = job->id;
      entries.push_back(std::move(s));
    }
    const std::ptrdiff_t ck =
        job->last_ckpt_journaled.load(std::memory_order_relaxed);
    if (ck >= 0) {
      JournalEntry c;
      c.kind = JournalEntry::Kind::kStageCkpt;
      c.job = job->id;
      c.index = static_cast<std::size_t>(ck);
      entries.push_back(std::move(c));
    }
  }
  for (const std::string& id : done_cache_order_) {
    const auto it = done_cache_.find(id);
    if (it == done_cache_.end()) continue;
    JournalEntry d;
    d.kind = JournalEntry::Kind::kDone;
    d.job = id;
    d.status = "kept";
    d.payload = it->second;
    entries.push_back(std::move(d));
  }
  journal_.rewrite_and_reopen(options_.journal_path, entries);
  metrics().journal_compactions.increment();
}

void JobServer::serve_stream(std::istream& in, std::ostream& out) {
  std::mutex out_mutex;  // the sink mutex is per client; this guards `out`
  const std::uint64_t client =
      attach([&out, &out_mutex](const std::string& line) {
        std::lock_guard<std::mutex> lock(out_mutex);
        out << line << '\n';
        out.flush();
      });

  std::string line;
  while (std::getline(in, line)) {
    handle_line(client, line);
    // A "shutdown" request flips draining_ (and was answered with a
    // "draining" line); stop reading and fall through to the drain.
    if (draining()) break;
  }
  drain();
  emit(client, drained_line(counters()));
  detach(client);
}

}  // namespace mcs::server
