#include "mcs/server/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace mcs::server {

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw JsonError("json: " + what + " at offset " + std::to_string(at));
}

}  // namespace

/// Single-pass recursive-descent parser over a string_view.  Depth is
/// bounded so hostile input cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Json::string(string_token());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return Json::null();
        fail(pos_, "invalid literal");
      default: return number_token();
    }
  }

  Json object(int depth) {
    Json out;
    out.type_ = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = string_token();
      skip_ws();
      if (peek() != ':') fail(pos_, "expected ':'");
      ++pos_;
      out.obj_.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  Json array(int depth) {
    Json out;
    out.type_ = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.arr_.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string string_token() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "invalid \\u escape");
          }
          // Encode as UTF-8.  Surrogate pairs are not combined (the
          // protocol only ever escapes control bytes); lone surrogates
          // are rejected rather than emitted as invalid UTF-8.
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail(pos_ - 4, "surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "invalid escape");
      }
    }
  }

  Json number_token() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    const auto [p, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || p != text_.data() + pos_ || pos_ == start) {
      fail(start, "invalid number");
    }
    return Json::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) { return JsonParser(text).run(); }

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(v);
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw JsonError("json: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw JsonError("json: not a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw JsonError("json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) throw JsonError("json: not an object");
  return obj_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
}

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  append_json_escaped(out, s);
  out += '"';
  return out;
}

}  // namespace mcs::server
