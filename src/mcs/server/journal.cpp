#include "mcs/server/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "mcs/server/json.hpp"

namespace mcs::server {

namespace {

const char* kind_tag(JournalEntry::Kind k) {
  switch (k) {
    case JournalEntry::Kind::kAccepted: return "accepted";
    case JournalEntry::Kind::kStarted: return "started";
    case JournalEntry::Kind::kStage: return "stage";
    case JournalEntry::Kind::kStageCkpt: return "stage_ckpt";
    case JournalEntry::Kind::kDone: return "done";
    case JournalEntry::Kind::kShutdown: return "shutdown";
  }
  return "?";
}

std::string require_string(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    throw std::runtime_error(std::string("journal: missing string \"") + key +
                             "\"");
  }
  return v->as_string();
}

}  // namespace

std::string JournalEntry::to_line() const {
  std::string out = "{\"e\": \"";
  out += kind_tag(kind);
  out += '"';
  if (kind != Kind::kShutdown) {
    out += ", \"job\": " + json_quote(job);
  }
  switch (kind) {
    case Kind::kAccepted:
      out += ", \"request\": " + json_quote(payload);
      break;
    case Kind::kStage:
    case Kind::kStageCkpt:
      out += ", \"index\": " + std::to_string(index);
      break;
    case Kind::kDone:
      out += ", \"status\": " + json_quote(status);
      out += ", \"line\": " + json_quote(payload);
      break;
    case Kind::kStarted:
    case Kind::kShutdown:
      break;
  }
  out += "}";
  return out;
}

JournalEntry JournalEntry::parse(const std::string& line) {
  const Json obj = Json::parse(line);
  if (!obj.is_object()) throw std::runtime_error("journal: not an object");
  const std::string e = require_string(obj, "e");

  JournalEntry entry;
  if (e == "shutdown") {
    entry.kind = Kind::kShutdown;
    return entry;
  }
  entry.job = require_string(obj, "job");
  if (e == "accepted") {
    entry.kind = Kind::kAccepted;
    entry.payload = require_string(obj, "request");
  } else if (e == "started") {
    entry.kind = Kind::kStarted;
  } else if (e == "stage" || e == "stage_ckpt") {
    entry.kind = e == "stage" ? Kind::kStage : Kind::kStageCkpt;
    const Json* idx = obj.find("index");
    if (idx == nullptr || !idx->is_number()) {
      throw std::runtime_error("journal: stage entry without index");
    }
    entry.index = static_cast<std::size_t>(idx->as_int());
  } else if (e == "done") {
    entry.kind = Kind::kDone;
    entry.status = require_string(obj, "status");
    entry.payload = require_string(obj, "line");
  } else {
    throw std::runtime_error("journal: unknown entry kind \"" + e + "\"");
  }
  return entry;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  open_locked(path);
}

void Journal::open_locked(const std::string& path) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st {};
  bytes_.store(::fstat(fd_, &st) == 0 ? static_cast<std::size_t>(st.st_size)
                                      : 0,
               std::memory_order_relaxed);
}

void Journal::append(const JournalEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  const std::string line = entry.to_line() + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr,
                   "mcs_server: journal write failed (%s); journaling off\n",
                   std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
  // The durability point: an entry we acted on (told a client about)
  // must survive a crash of this process *and* the machine.
  ::fdatasync(fd_);
  bytes_.fetch_add(line.size(), std::memory_order_relaxed);
}

std::vector<JournalEntry> Journal::load(const std::string& path,
                                        std::size_t* skipped) {
  std::vector<JournalEntry> entries;
  std::size_t bad = 0;
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        entries.push_back(JournalEntry::parse(line));
      } catch (const std::exception&) {
        ++bad;  // torn tail or corruption; recovery works from the rest
      }
    }
  }
  if (skipped != nullptr) *skipped = bad;
  return entries;
}

Recovery Journal::analyze(const std::vector<JournalEntry>& entries,
                          std::size_t keep_done) {
  Recovery rec;
  rec.entries = entries.size();
  // job id -> pending record, insertion-ordered via the keys vector.
  std::unordered_map<std::string, PendingJob> open_jobs;
  std::vector<std::string> accept_order;
  for (const JournalEntry& e : entries) {
    rec.clean_shutdown = false;
    switch (e.kind) {
      case JournalEntry::Kind::kAccepted: {
        auto [it, inserted] = open_jobs.try_emplace(e.job);
        if (inserted) accept_order.push_back(e.job);
        it->second.id = e.job;
        it->second.request = e.payload;  // replayed accept: newest request
        break;
      }
      case JournalEntry::Kind::kStageCkpt: {
        // Only meaningful for a job still on the books; checkpoints only
        // move forward, but "last entry wins" also tolerates a compacted
        // journal that kept a single entry.
        auto it = open_jobs.find(e.job);
        if (it != open_jobs.end()) {
          it->second.ckpt_index = static_cast<std::ptrdiff_t>(e.index);
        }
        break;
      }
      case JournalEntry::Kind::kDone:
        open_jobs.erase(e.job);
        rec.completed.emplace_back(e.job, e.payload);
        break;
      case JournalEntry::Kind::kShutdown:
        rec.clean_shutdown = true;
        break;
      case JournalEntry::Kind::kStarted:
      case JournalEntry::Kind::kStage:
        break;
    }
  }
  for (const std::string& job : accept_order) {
    auto it = open_jobs.find(job);
    if (it != open_jobs.end()) rec.pending.push_back(std::move(it->second));
  }
  // Dedup retained done entries by job id (newest wins), then keep only
  // the most recent keep_done of them.
  std::unordered_set<std::string> seen;
  std::vector<std::pair<std::string, std::string>> dedup;
  for (auto it = rec.completed.rbegin(); it != rec.completed.rend(); ++it) {
    if (seen.insert(it->first).second) dedup.push_back(*it);
  }
  std::reverse(dedup.begin(), dedup.end());
  if (dedup.size() > keep_done) {
    dedup.erase(dedup.begin(),
                dedup.end() - static_cast<std::ptrdiff_t>(keep_done));
  }
  rec.completed = std::move(dedup);
  return rec;
}

namespace {

/// Writes \p body to \p path via temp file + fsync + atomic rename: a
/// crash mid-write leaves the previous file intact.  Throws on I/O errors.
void write_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      throw std::runtime_error("journal: cannot write " + tmp + ": " +
                               std::strerror(errno));
    }
    std::size_t off = 0;
    while (off < body.size()) {
      const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        throw std::runtime_error(std::string("journal: write failed: ") +
                                 std::strerror(err));
      }
      off += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("journal: rename failed: " +
                             std::string(std::strerror(errno)));
  }
}

}  // namespace

void Journal::compact(const std::string& path, const Recovery& recovery) {
  std::string body;
  for (const auto& [job, line] : recovery.completed) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kDone;
    e.job = job;
    e.payload = line;
    // Status is recoverable from the done line itself; "kept" marks the
    // entry as a compaction survivor rather than a live transition.
    e.status = "kept";
    body += e.to_line() + "\n";
  }
  write_atomic(path, body);
}

void Journal::rewrite_and_reopen(const std::string& path,
                                 const std::vector<JournalEntry>& entries) {
  std::string body;
  for (const JournalEntry& e : entries) body += e.to_line() + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    write_atomic(path, body);
  } catch (const std::exception& e) {
    // Same degradation contract as a failed append: keep serving without
    // durability rather than dying over a disk problem.
    std::fprintf(stderr,
                 "mcs_server: journal compaction failed (%s); journaling "
                 "off\n",
                 e.what());
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    return;
  }
  open_locked(path);
}

}  // namespace mcs::server
