#include "mcs/server/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "mcs/server/json.hpp"

namespace mcs::server {

namespace {

std::string get_string(const Json& obj, std::string_view key, bool required) {
  const Json* v = obj.find(key);
  if (v == nullptr) {
    if (required) {
      throw ProtocolError("request: missing field \"" + std::string(key) +
                          "\"");
    }
    return {};
  }
  if (!v->is_string()) {
    throw ProtocolError("request: field \"" + std::string(key) +
                        "\" must be a string");
  }
  return v->as_string();
}

std::int64_t get_int(const Json& obj, std::string_view key,
                     std::int64_t fallback) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw ProtocolError("request: field \"" + std::string(key) +
                        "\" must be a number");
  }
  return v->as_int();
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

Request parse_request(const std::string& line) {
  Json msg = Json::null();
  try {
    msg = Json::parse(line);
  } catch (const JsonError& e) {
    throw ProtocolError(std::string("request: ") + e.what());
  }
  if (!msg.is_object()) {
    throw ProtocolError("request: expected a JSON object");
  }
  const std::string type = get_string(msg, "type", /*required=*/true);

  Request req;
  if (type == "ping") {
    req.kind = Request::Kind::kPing;
    return req;
  }
  if (type == "shutdown") {
    req.kind = Request::Kind::kShutdown;
    return req;
  }
  if (type == "cancel") {
    req.kind = Request::Kind::kCancel;
    req.id = get_string(msg, "id", /*required=*/true);
    if (req.id.empty()) throw ProtocolError("cancel: empty job id");
    return req;
  }
  if (type == "attach") {
    req.kind = Request::Kind::kAttach;
    req.id = get_string(msg, "id", /*required=*/true);
    if (req.id.empty()) throw ProtocolError("attach: empty job id");
    return req;
  }
  if (type == "stats") {
    req.kind = Request::Kind::kStats;
    return req;
  }
  if (type == "health") {
    req.kind = Request::Kind::kHealth;
    return req;
  }
  if (type == "jobs") {
    req.kind = Request::Kind::kJobs;
    return req;
  }
  if (type != "submit") {
    throw ProtocolError("request: unknown type \"" + type + "\"");
  }

  req.kind = Request::Kind::kSubmit;
  req.id = get_string(msg, "id", /*required=*/true);
  if (req.id.empty()) throw ProtocolError("submit: empty job id");
  req.flow_spec = get_string(msg, "flow", /*required=*/true);
  if (req.flow_spec.empty()) throw ProtocolError("submit: empty flow spec");

  req.timeout_ms = get_int(msg, "timeout_ms", 0);
  if (req.timeout_ms < 0) throw ProtocolError("submit: negative timeout_ms");
  req.threads = static_cast<int>(get_int(msg, "threads", 0));
  if (req.threads < 0) throw ProtocolError("submit: negative threads");

  if (const Json* w = msg.find("weight")) {
    if (!w->is_number()) throw ProtocolError("submit: weight must be a number");
    req.weight = w->as_number();
    if (!(req.weight > 0.0) || !std::isfinite(req.weight)) {
      throw ProtocolError("submit: weight must be finite and > 0");
    }
  }

  req.emit = get_string(msg, "emit", /*required=*/false);
  if (!req.emit.empty() && req.emit != "aiger") {
    throw ProtocolError("submit: emit must be \"aiger\", got \"" + req.emit +
                        "\"");
  }

  if (const Json* input = msg.find("input")) {
    if (!input->is_object()) {
      throw ProtocolError("submit: \"input\" must be an object");
    }
    req.input_format = get_string(*input, "format", /*required=*/true);
    if (req.input_format != "aiger" && req.input_format != "blif") {
      throw ProtocolError("submit: input format must be \"aiger\" or "
                          "\"blif\", got \"" + req.input_format + "\"");
    }
    req.input_text = get_string(*input, "text", /*required=*/true);
    if (req.input_text.empty()) throw ProtocolError("submit: empty input text");
  }
  return req;
}

// --- response builders ------------------------------------------------------

std::string accepted_line(std::string_view job, std::size_t queued) {
  std::string out = "{\"type\": \"accepted\", \"job\": ";
  out += json_quote(job);
  out += ", \"queued\": " + std::to_string(queued) + "}";
  return out;
}

std::string stage_line(std::string_view job, std::size_t index,
                       const flow::StageReport& report) {
  std::string out = "{\"type\": \"stage\", \"job\": ";
  out += json_quote(job);
  out += ", \"index\": " + std::to_string(index);
  out += ", \"stage\": " + report.to_json() + "}";
  return out;
}

std::string done_line(std::string_view job, std::string_view status,
                      std::string_view error, std::size_t stages,
                      double seconds, double queue_wait_seconds,
                      const flow::FlowContext& ctx,
                      const DoneExtras& extras) {
  std::string out = "{\"type\": \"done\", \"job\": ";
  out += json_quote(job);
  out += ", \"status\": ";
  out += json_quote(status);
  out += ", \"error\": ";
  out += json_quote(error);
  out += ", \"stages\": " + std::to_string(stages);
  out += ", \"seconds\": ";
  append_double(out, seconds);
  out += ", \"queue_wait_seconds\": ";
  append_double(out, queue_wait_seconds);
  out += ", \"gates\": " + std::to_string(ctx.net.num_gates());
  out += ", \"depth\": " + std::to_string(ctx.net.depth());
  out += ", \"luts\": " +
         std::to_string(ctx.luts ? ctx.luts->size() : std::size_t{0});
  out += ", \"cells\": " +
         std::to_string(ctx.cells ? ctx.cells->size() : std::size_t{0});
  if (extras.retried) out += ", \"retried\": true";
  if (extras.resumed_stage >= 0) {
    out += ", \"resumed_stage\": " + std::to_string(extras.resumed_stage);
  }
  if (!extras.artifact_format.empty()) {
    out += ", \"artifact\": {\"format\": ";
    out += json_quote(extras.artifact_format);
    out += ", \"text\": ";
    out += json_quote(extras.artifact_text);
    out += "}";
  }
  out += "}";
  return out;
}

std::string attached_line(std::string_view job, std::string_view state) {
  std::string out = "{\"type\": \"attached\", \"job\": ";
  out += json_quote(job);
  out += ", \"state\": ";
  out += json_quote(state);
  out += "}";
  return out;
}

std::string error_line(std::string_view job, std::string_view message) {
  std::string out = "{\"type\": \"error\"";
  if (!job.empty()) {
    out += ", \"job\": ";
    out += json_quote(job);
  }
  out += ", \"error\": ";
  out += json_quote(message);
  out += "}";
  return out;
}

namespace {

std::string counters_body(const ServerCounters& c) {
  std::string out;
  out += "\"accepted\": " + std::to_string(c.accepted);
  out += ", \"completed\": " + std::to_string(c.completed);
  out += ", \"failed\": " + std::to_string(c.failed);
  out += ", \"cancelled\": " + std::to_string(c.cancelled);
  out += ", \"timed_out\": " + std::to_string(c.timed_out);
  out += ", \"rejected\": " + std::to_string(c.rejected);
  out += ", \"protocol_errors\": " + std::to_string(c.protocol_errors);
  out += ", \"retried\": " + std::to_string(c.retried);
  out += ", \"resumed\": " + std::to_string(c.resumed);
  out += ", \"running\": " + std::to_string(c.running);
  out += ", \"queued\": " + std::to_string(c.queued);
  out += ", \"draining\": ";
  out += c.draining ? "true" : "false";
  return out;
}

}  // namespace

std::string pong_line(const ServerCounters& c) {
  return "{\"type\": \"pong\", " + counters_body(c) + "}";
}

std::string draining_line(const ServerCounters& c) {
  return "{\"type\": \"draining\", \"jobs\": " +
         std::to_string(c.running + c.queued) + ", " + counters_body(c) + "}";
}

std::string drained_line(const ServerCounters& c) {
  return "{\"type\": \"drained\", \"jobs\": " +
         std::to_string(c.running + c.queued) + ", " + counters_body(c) + "}";
}

std::string stats_line(const ServerCounters& c, double uptime_seconds,
                       const std::string& metrics_json,
                       const std::string& ring_json,
                       const std::string& prometheus_text) {
  std::string out = "{\"type\": \"stats\", \"uptime_seconds\": ";
  append_double(out, uptime_seconds);
  out += ", " + counters_body(c);
  // The sub-documents are pre-rendered JSON objects from mcs::obs; they are
  // embedded verbatim, not re-quoted.  Prometheus is a *text* format, so it
  // rides along as an escaped string.
  out += ", \"metrics\": " + metrics_json;
  out += ", \"ring\": " + ring_json;
  out += ", \"prometheus\": ";
  out += json_quote(prometheus_text);
  out += "}";
  return out;
}

std::string health_line(const HealthInfo& h) {
  std::string out = "{\"type\": \"health\", \"status\": ";
  out += json_quote(h.draining ? "draining" : "ok");
  out += ", \"running\": " + std::to_string(h.running);
  out += ", \"queued\": " + std::to_string(h.queued);
  out += ", \"uptime_seconds\": ";
  append_double(out, h.uptime_seconds);
  out += ", \"journal_bytes\": " + std::to_string(h.journal_bytes);
  out += ", \"memory_bytes\": " + std::to_string(h.memory_bytes);
  out += ", \"memory_limit_bytes\": " + std::to_string(h.memory_limit_bytes);
  out += ", \"telemetry\": ";
  out += h.telemetry ? "true" : "false";
  out += "}";
  return out;
}

std::string jobs_line(const std::vector<JobInfo>& jobs) {
  std::string out = "{\"type\": \"jobs\", \"jobs\": [";
  bool first = true;
  for (const JobInfo& j : jobs) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": ";
    out += json_quote(j.id);
    out += ", \"state\": ";
    out += json_quote(j.state);
    out += ", \"stage\": " + std::to_string(j.stage);
    out += ", \"stages\": " + std::to_string(j.stages);
    out += ", \"pass\": ";
    out += json_quote(j.pass);
    out += ", \"weight\": ";
    append_double(out, j.weight);
    out += ", \"seconds\": ";
    append_double(out, j.seconds);
    out += ", \"queue_wait_seconds\": ";
    append_double(out, j.queue_wait_seconds);
    out += ", \"cpu_us\": " + std::to_string(j.cpu_us);
    out += ", \"strash_bytes\": " + std::to_string(j.strash_bytes);
    out += ", \"arena_bytes\": " + std::to_string(j.arena_bytes);
    out += "}";
  }
  out += "]}";
  return out;
}

// --- request builders -------------------------------------------------------

std::string submit_line(const Request& req) {
  std::string out = "{\"type\": \"submit\", \"id\": ";
  out += json_quote(req.id);
  out += ", \"flow\": ";
  out += json_quote(req.flow_spec);
  if (req.timeout_ms > 0) {
    out += ", \"timeout_ms\": " + std::to_string(req.timeout_ms);
  }
  if (req.threads > 0) {
    out += ", \"threads\": " + std::to_string(req.threads);
  }
  if (req.weight != 1.0) {
    out += ", \"weight\": ";
    append_double(out, req.weight);
  }
  if (!req.emit.empty()) {
    out += ", \"emit\": ";
    out += json_quote(req.emit);
  }
  if (!req.input_format.empty()) {
    out += ", \"input\": {\"format\": ";
    out += json_quote(req.input_format);
    out += ", \"text\": ";
    out += json_quote(req.input_text);
    out += "}";
  }
  out += "}";
  return out;
}

std::string cancel_line(std::string_view id) {
  std::string out = "{\"type\": \"cancel\", \"id\": ";
  out += json_quote(id);
  out += "}";
  return out;
}

std::string attach_line(std::string_view id) {
  std::string out = "{\"type\": \"attach\", \"id\": ";
  out += json_quote(id);
  out += "}";
  return out;
}

std::string ping_line() { return "{\"type\": \"ping\"}"; }

std::string stats_request_line() { return "{\"type\": \"stats\"}"; }

std::string health_request_line() { return "{\"type\": \"health\"}"; }

std::string jobs_request_line() { return "{\"type\": \"jobs\"}"; }

std::string shutdown_line() { return "{\"type\": \"shutdown\"}"; }

}  // namespace mcs::server
