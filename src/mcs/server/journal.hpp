/// \file journal.hpp
/// \brief Durable NDJSON job journal for crash recovery.
///
/// The supervised server (`mcs_server --supervise`) appends every job
/// transition to an append-only journal, fsync'd per entry, so a worker
/// that dies mid-job (crash, OOM-kill, `kill -9`) leaves enough on disk
/// for its replacement to finish the work: on startup the new worker
/// replays the journal, re-queues every job that was accepted but never
/// reached its "done" entry, and answers re-attaching clients from the
/// retained done entries of jobs that *did* finish.
///
/// **Format.**  One JSON object per line, six entry kinds:
///
///   {"e":"accepted",   "job":"j1", "request":"<the full submit line>"}
///   {"e":"started",    "job":"j1"}
///   {"e":"stage",      "job":"j1", "index":0}
///   {"e":"stage_ckpt", "job":"j1", "index":0}
///   {"e":"done",       "job":"j1", "status":"ok", "line":"<the done line>"}
///   {"e":"shutdown"}
///
/// "stage_ckpt" records that a network snapshot of the job as of the
/// completed stage `index` is on disk (mcs::ckpt, see server.hpp): a
/// replayed job with one resumes at stage index+1 instead of stage 0.
///
/// "accepted" stores the *verbatim submit request line* -- replay is
/// re-submission, so recovery automatically benefits from every
/// validation and scheduling rule of the live path.  "done" stores the
/// verbatim response line, so an attach after completion replays the
/// exact bytes the client would have received.  A trailing "shutdown"
/// marks a clean drain: nothing is replayed past one.
///
/// **Durability and tolerance.**  append() issues fdatasync before
/// returning, so an entry a client was told about survives power loss.
/// load() tolerates a torn tail: a final line cut mid-write (the one
/// crash artifact an append-only file can have) is skipped, as is any
/// malformed line, counted in Recovery::skipped.
///
/// **Compaction.**  Replay rewrites the journal before reopening it:
/// only the done entries of the most recent completed jobs are retained
/// (the attach answer cache); pending jobs re-journal their own accepted
/// entries when re-submitted.  The rewrite goes through a temp file +
/// fsync + atomic rename, so a crash during compaction leaves either the
/// old journal or the new one, never a mix.  The same rewrite backs
/// *runtime* auto-compaction: JobServer watches bytes() against
/// --journal-max-bytes and rewrites the journal down to the live state
/// (in-flight accepts + their latest checkpoints + the done cache)
/// through rewrite_and_reopen() when it grows past the threshold.

#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcs::server {

struct JournalEntry {
  enum class Kind { kAccepted, kStarted, kStage, kStageCkpt, kDone, kShutdown };

  Kind kind = Kind::kShutdown;
  std::string job;      ///< job id (empty for shutdown)
  std::string payload;  ///< accepted: submit request line; done: done line
  std::size_t index = 0;   ///< stage/stage_ckpt: completed stage index
  std::string status;      ///< done: ok|error|cancelled|timeout

  /// The entry as one JSON line (no trailing newline).
  std::string to_line() const;

  /// Parses one journal line; throws JsonError/std::runtime_error on
  /// malformed input (load() catches and skips).
  static JournalEntry parse(const std::string& line);
};

/// One job a previous server life accepted but never finished.
struct PendingJob {
  std::string id;       ///< journal job id
  std::string request;  ///< verbatim submit line (replay re-submits it)
  /// Index of the last stage whose "stage_ckpt" entry landed on disk;
  /// -1 when the job has no checkpoint (it replays from stage 0).
  std::ptrdiff_t ckpt_index = -1;
};

/// What a journal says about the previous life of the server.
struct Recovery {
  /// Jobs accepted but never finished, in accept order, deduplicated by
  /// job id (a replayed job re-journals a second accepted entry; the last
  /// one wins so its request text is current).
  std::vector<PendingJob> pending;

  /// (job id, done line) of retained completed jobs, oldest first -- the
  /// attach answer cache.
  std::vector<std::pair<std::string, std::string>> completed;

  bool clean_shutdown = true;  ///< last entry was "shutdown" (or no journal)
  std::size_t entries = 0;     ///< parsed entries
  std::size_t skipped = 0;     ///< malformed / torn lines skipped
};

/// Append-only fsync'd journal writer.
class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens \p path for appending (created if absent).  Throws
  /// std::runtime_error on failure.
  void open(const std::string& path);
  bool is_open() const noexcept { return fd_ >= 0; }

  /// Appends one entry and fdatasyncs.  Serialized internally; a write
  /// failure is reported on stderr once and the journal closes itself
  /// (the server keeps serving -- degraded durability beats an outage).
  void append(const JournalEntry& entry);

  /// Bytes in the journal file: the size at open() plus every appended
  /// line since.  Lock-free read (the auto-compaction watermark check
  /// runs after every stage append).
  std::size_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Atomically replaces the journal on disk with \p entries (temp file +
  /// fsync + rename) and reopens it for appending -- the runtime
  /// auto-compaction step.  Holds the internal append lock throughout, so
  /// concurrent append() calls land either in the old file (discarded) or
  /// the new one, never a torn mix.  On failure the journal degrades to
  /// closed, exactly like a failed append.
  void rewrite_and_reopen(const std::string& path,
                          const std::vector<JournalEntry>& entries);

  /// Reads and parses \p path ({} when the file does not exist).
  /// Malformed lines -- including a torn tail -- are skipped, counted in
  /// \p skipped when given.
  static std::vector<JournalEntry> load(const std::string& path,
                                        std::size_t* skipped = nullptr);

  /// Derives the recovery picture: pending jobs, retained done entries
  /// (most recent \p keep_done), clean-shutdown flag.
  static Recovery analyze(const std::vector<JournalEntry>& entries,
                          std::size_t keep_done = 256);

  /// Rewrites \p path to contain only \p recovery's completed done
  /// entries (temp file + fsync + atomic rename).  Throws on I/O errors.
  static void compact(const std::string& path, const Recovery& recovery);

 private:
  void open_locked(const std::string& path);

  std::mutex mutex_;
  int fd_ = -1;
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace mcs::server
