/// \file journal.hpp
/// \brief Durable NDJSON job journal for crash recovery.
///
/// The supervised server (`mcs_server --supervise`) appends every job
/// transition to an append-only journal, fsync'd per entry, so a worker
/// that dies mid-job (crash, OOM-kill, `kill -9`) leaves enough on disk
/// for its replacement to finish the work: on startup the new worker
/// replays the journal, re-queues every job that was accepted but never
/// reached its "done" entry, and answers re-attaching clients from the
/// retained done entries of jobs that *did* finish.
///
/// **Format.**  One JSON object per line, five entry kinds:
///
///   {"e":"accepted", "job":"j1", "request":"<the full submit line>"}
///   {"e":"started",  "job":"j1"}
///   {"e":"stage",    "job":"j1", "index":0}
///   {"e":"done",     "job":"j1", "status":"ok", "line":"<the done line>"}
///   {"e":"shutdown"}
///
/// "accepted" stores the *verbatim submit request line* -- replay is
/// re-submission, so recovery automatically benefits from every
/// validation and scheduling rule of the live path.  "done" stores the
/// verbatim response line, so an attach after completion replays the
/// exact bytes the client would have received.  A trailing "shutdown"
/// marks a clean drain: nothing is replayed past one.
///
/// **Durability and tolerance.**  append() issues fdatasync before
/// returning, so an entry a client was told about survives power loss.
/// load() tolerates a torn tail: a final line cut mid-write (the one
/// crash artifact an append-only file can have) is skipped, as is any
/// malformed line, counted in Recovery::skipped.
///
/// **Compaction.**  Replay rewrites the journal before reopening it:
/// only the done entries of the most recent completed jobs are retained
/// (the attach answer cache); pending jobs re-journal their own accepted
/// entries when re-submitted.  The rewrite goes through a temp file +
/// fsync + atomic rename, so a crash during compaction leaves either the
/// old journal or the new one, never a mix.

#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcs::server {

struct JournalEntry {
  enum class Kind { kAccepted, kStarted, kStage, kDone, kShutdown };

  Kind kind = Kind::kShutdown;
  std::string job;      ///< job id (empty for shutdown)
  std::string payload;  ///< accepted: submit request line; done: done line
  std::size_t index = 0;   ///< stage: completed stage index
  std::string status;      ///< done: ok|error|cancelled|timeout

  /// The entry as one JSON line (no trailing newline).
  std::string to_line() const;

  /// Parses one journal line; throws JsonError/std::runtime_error on
  /// malformed input (load() catches and skips).
  static JournalEntry parse(const std::string& line);
};

/// What a journal says about the previous life of the server.
struct Recovery {
  /// Submit request lines of jobs accepted but never finished, in accept
  /// order, deduplicated by job id (a replayed job re-journals a second
  /// accepted entry; the last one wins so its request text is current).
  std::vector<std::string> pending;

  /// (job id, done line) of retained completed jobs, oldest first -- the
  /// attach answer cache.
  std::vector<std::pair<std::string, std::string>> completed;

  bool clean_shutdown = true;  ///< last entry was "shutdown" (or no journal)
  std::size_t entries = 0;     ///< parsed entries
  std::size_t skipped = 0;     ///< malformed / torn lines skipped
};

/// Append-only fsync'd journal writer.
class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens \p path for appending (created if absent).  Throws
  /// std::runtime_error on failure.
  void open(const std::string& path);
  bool is_open() const noexcept { return fd_ >= 0; }

  /// Appends one entry and fdatasyncs.  Serialized internally; a write
  /// failure is reported on stderr once and the journal closes itself
  /// (the server keeps serving -- degraded durability beats an outage).
  void append(const JournalEntry& entry);

  /// Reads and parses \p path ({} when the file does not exist).
  /// Malformed lines -- including a torn tail -- are skipped, counted in
  /// \p skipped when given.
  static std::vector<JournalEntry> load(const std::string& path,
                                        std::size_t* skipped = nullptr);

  /// Derives the recovery picture: pending jobs, retained done entries
  /// (most recent \p keep_done), clean-shutdown flag.
  static Recovery analyze(const std::vector<JournalEntry>& entries,
                          std::size_t keep_done = 256);

  /// Rewrites \p path to contain only \p recovery's completed done
  /// entries (temp file + fsync + atomic rename).  Throws on I/O errors.
  static void compact(const std::string& path, const Recovery& recovery);

 private:
  std::mutex mutex_;
  int fd_ = -1;
};

}  // namespace mcs::server
