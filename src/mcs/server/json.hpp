/// \file json.hpp
/// \brief Minimal JSON value type + recursive-descent parser for the job
/// server's newline-delimited protocol.
///
/// The library *emits* JSON in several places (FlowReport::to_json, the obs
/// exports) but never had to *read* it until the server's request protocol;
/// this is the smallest parser that covers that need: objects, arrays,
/// strings (with escapes, incl. basic \uXXXX), numbers, booleans and null,
/// strict whole-input consumption, and descriptive errors with a byte
/// offset.  No external dependencies, no DOM beyond std containers.
/// Object member order is preserved (insertion order), duplicate keys keep
/// the first occurrence on lookup.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcs::server {

/// Raised on malformed JSON text and on type-mismatched accessor calls.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses \p text as exactly one JSON value (surrounding whitespace
  /// allowed, trailing junk is an error).  Throws JsonError.
  static Json parse(std::string_view text);

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< as_number truncated toward zero
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const noexcept;

  // Construction helpers (used by tests; the server emits JSON as text).
  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json string(std::string v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  friend class JsonParser;
};

/// Appends \p s to \p out with JSON string escaping (quotes not included).
/// Control characters are emitted as \u00XX so any byte sequence
/// round-trips through a single protocol line.
void append_json_escaped(std::string& out, std::string_view s);

/// Convenience: "..." with escaping.
std::string json_quote(std::string_view s);

}  // namespace mcs::server
