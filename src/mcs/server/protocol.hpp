/// \file protocol.hpp
/// \brief The job server's newline-delimited JSON wire protocol.
///
/// Every message -- in either direction -- is one JSON object on one line.
/// Client -> server requests:
///
///   {"type":"submit", "id":"j1", "flow":"gen:adder,bits=32; compress2rs",
///    "timeout_ms":60000, "threads":2, "weight":1.0, "emit":"aiger",
///    "input":{"format":"aiger","text":"aag 0 0 0 0 0\n"}}   // optional
///   {"type":"cancel", "id":"j1"}
///   {"type":"attach", "id":"j1"}  // re-bind a job after a reconnect
///   {"type":"ping"}
///   {"type":"stats"}             // registry + telemetry ring + Prometheus
///   {"type":"health"}            // readiness / drain / memory watermark
///   {"type":"jobs"}              // live per-job table (queue + attribution)
///   {"type":"shutdown"}          // drain: finish accepted jobs, then stop
///
/// Server -> client responses (every job-scoped line carries "job"):
///
///   {"type":"accepted", "job":"j1", "queued":3}
///   {"type":"stage", "job":"j1", "index":0, "stage":{<StageReport JSON>}}
///   {"type":"done", "job":"j1", "status":"ok|error|cancelled|timeout",
///    "error":"", "stages":4, "seconds":1.25, "queue_wait_seconds":0.01,
///    "gates":812, "depth":14, "luts":0, "cells":0}
///     ... plus "retried": true when the job was replayed from the crash
///     journal ("resumed_stage": N when a stage checkpoint let the replay
///     skip stages 0..N-1), and "artifact": {"format":"aiger","text":...}
///     when the submit asked for "emit":"aiger"
///   {"type":"attached", "job":"j1", "state":"running|queued|done"}
///   {"type":"error", "job":"j1"?, "error":"..."}   // rejected / protocol
///   {"type":"pong", ...counters...}
///   {"type":"stats", "uptime_seconds":12.5, ...counters...,
///    "metrics":{<obs registry>}, "ring":{<telemetry ring samples>},
///    "prometheus":"<text exposition, JSON-escaped>"}
///   {"type":"health", "status":"ok|draining", "running":1, "queued":2,
///    "uptime_seconds":12.5, "journal_bytes":4096, "memory_bytes":1048576,
///    "memory_limit_bytes":0, "telemetry":true}
///   {"type":"jobs", "jobs":[{"id":"j1", "state":"running|queued",
///    "stage":2, "stages":5, "pass":"rewrite", "weight":1.0,
///    "seconds":0.8, "queue_wait_seconds":0.01, "cpu_us":791234,
///    "strash_bytes":262144, "arena_bytes":131072}]}
///   {"type":"draining", "jobs":2} / {"type":"drained", "jobs":0}
///
/// "stats", "health" and "jobs" are admin verbs: they never touch job
/// state, work mid-drain, and are what `mcs_top` and `mcs_submit
/// --stats/--health/--jobs` poll.
///
/// A "submit" is either *rejected* up front (spec/input does not validate:
/// one "error" line, no job exists) or *accepted* (one "accepted" line,
/// then zero or more "stage" lines as stages complete, then exactly one
/// "done" line).  Stage streaming includes the mcs::obs "metrics"/"spans"
/// deltas of each stage, so a client sees per-stage telemetry live.
///
/// Parsing is strict: unknown "type" values, missing required fields and
/// wrong field types raise ProtocolError (the server answers with an
/// "error" line and stays healthy).  Unknown *extra* fields are ignored,
/// so clients can be newer than servers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mcs/flow/flow.hpp"

namespace mcs::server {

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed client request.
struct Request {
  enum class Kind {
    kSubmit,
    kCancel,
    kAttach,
    kPing,
    kStats,
    kHealth,
    kJobs,
    kShutdown,
  };

  Kind kind = Kind::kPing;
  std::string id;         ///< submit/cancel/attach: client-chosen job id
  std::string flow_spec;  ///< submit: the flow-spec mini-language string

  /// Optional inline input network ("aiger" ascii or "blif" text); empty
  /// format means the flow's own sources (gen/read_*) provide the network.
  std::string input_format;
  std::string input_text;

  std::int64_t timeout_ms = 0;  ///< wall-clock budget; 0 = server default
  int threads = 0;              ///< per-job worker threads; 0 = server default
  double weight = 1.0;          ///< fair-share weight (> 0; bigger = more)

  /// submit: result artifact to inline in the "done" line ("" = none;
  /// "aiger" = ASCII AIGER of the final working network).
  std::string emit;
};

/// Parses one request line.  Throws ProtocolError on malformed JSON,
/// unknown type, missing/mistyped fields or out-of-range values.
Request parse_request(const std::string& line);

/// Aggregate server counters, embedded in "pong"/"draining"/"drained"
/// lines and exported by JobServer::counters().
struct ServerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;   ///< finished with status "ok"
  std::uint64_t failed = 0;      ///< finished with status "error"
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t rejected = 0;    ///< submits that never became jobs
  std::uint64_t protocol_errors = 0;
  std::uint64_t retried = 0;     ///< jobs re-queued from the journal
  std::uint64_t resumed = 0;     ///< retried jobs resumed past stage 0
                                 ///  from an on-disk checkpoint (mcs::ckpt)
  std::size_t running = 0;       ///< jobs currently executing a stage
  std::size_t queued = 0;        ///< jobs waiting for a runner slot
  bool draining = false;
};

// --- response builders (one line each, no trailing newline) -----------------

std::string accepted_line(std::string_view job, std::size_t queued);
std::string stage_line(std::string_view job, std::size_t index,
                       const flow::StageReport& report);
/// Optional extras of a "done" line: jobs replayed from the journal carry
/// "retried": true (plus "resumed_stage": N when a stage checkpoint let
/// the replay start at stage N instead of 0); jobs submitted with
/// "emit":"aiger" carry their result netlist inline as
/// {"artifact": {"format":"aiger","text":"aag ..."}}.
struct DoneExtras {
  bool retried = false;
  /// First stage index the replayed job actually executed (restored from
  /// an mcs::ckpt stage checkpoint); -1 = not resumed, field omitted.
  std::ptrdiff_t resumed_stage = -1;
  std::string artifact_format;  ///< "" = no artifact
  std::string artifact_text;
};

std::string done_line(std::string_view job, std::string_view status,
                      std::string_view error, std::size_t stages,
                      double seconds, double queue_wait_seconds,
                      const flow::FlowContext& ctx,
                      const DoneExtras& extras = {});
/// Ack for "attach": \p state is "running", "queued" or "done".
std::string attached_line(std::string_view job, std::string_view state);
/// Protocol- or submit-level failure; \p job may be empty (no job context).
std::string error_line(std::string_view job, std::string_view message);
std::string pong_line(const ServerCounters& c);
std::string draining_line(const ServerCounters& c);
std::string drained_line(const ServerCounters& c);

/// One row of the "jobs" admin table: scheduler state plus the per-job
/// attribution read off the job's obs::Domain.
struct JobInfo {
  std::string id;
  std::string state;  ///< "running" or "queued"
  std::size_t stage = 0;   ///< next stage index (== stages when finishing)
  std::size_t stages = 0;  ///< total stages in the job's flow
  std::string pass;        ///< name of the next/current pass ("" when done)
  double weight = 1.0;
  double seconds = 0.0;  ///< wall time since the submit was accepted
  double queue_wait_seconds = 0.0;  ///< accept -> first dispatch (0 if queued)
  std::uint64_t cpu_us = 0;         ///< CPU attributed to the job's domain
  std::int64_t strash_bytes = 0;    ///< domain peak strash footprint
  std::int64_t arena_bytes = 0;     ///< domain peak cut-arena footprint
};

/// Everything in a "health" line beyond the job counts.
struct HealthInfo {
  bool draining = false;
  std::size_t running = 0;
  std::size_t queued = 0;
  double uptime_seconds = 0.0;
  std::uint64_t journal_bytes = 0;     ///< current journal size (0: no journal)
  std::int64_t memory_bytes = 0;       ///< strash + cut-arena high water
  std::int64_t memory_limit_bytes = 0; ///< admission limit (0 = unlimited)
  bool telemetry = false;              ///< ring sampler running?
};

/// "stats" response: counters plus the obs registry (`metrics` JSON
/// object), the retained telemetry ring (`ring` JSON object) and the
/// Prometheus text exposition (JSON-escaped string; "" when obs is
/// compiled out).
std::string stats_line(const ServerCounters& c, double uptime_seconds,
                       const std::string& metrics_json,
                       const std::string& ring_json,
                       const std::string& prometheus_text);
std::string health_line(const HealthInfo& h);
std::string jobs_line(const std::vector<JobInfo>& jobs);

// --- request builders (the mcs_submit client side) --------------------------

std::string submit_line(const Request& req);
std::string cancel_line(std::string_view id);
std::string attach_line(std::string_view id);
std::string ping_line();
std::string stats_request_line();
std::string health_request_line();
std::string jobs_request_line();
std::string shutdown_line();

}  // namespace mcs::server
