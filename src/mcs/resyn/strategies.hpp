/// \file strategies.hpp
/// \brief The multi-strategy synthesis library of the MCH operator.
///
/// Paper, Algorithm 2: critical-path nodes receive *level-oriented*
/// candidates (NPN-database rewriting, Shannon/mux trees), non-critical
/// nodes receive *area-oriented* candidates (SOP factoring, DSD).  Each
/// strategy resynthesizes a local function (a cut or MFFC function) from its
/// leaf signals into a caller-chosen gate basis, returning the candidate
/// root without touching the original logic -- candidates are *added*, never
/// substituted (Sec. III-A).

#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "mcs/resyn/basis.hpp"
#include "mcs/resyn/npn_db.hpp"
#include "mcs/tt/truth_table.hpp"

namespace mcs {

/// Interface of one synthesis strategy.
class ResynStrategy {
 public:
  virtual ~ResynStrategy() = default;

  /// Builds a realization of \p f(leaves) into \p net using \p basis.
  /// Returns std::nullopt when the strategy does not apply (e.g. too many
  /// inputs for the NPN database).
  virtual std::optional<Signal> synthesize(
      Network& net, GateBasis basis, const TruthTable& f,
      const std::vector<Signal>& leaves) const = 0;

  virtual std::string_view name() const noexcept = 0;
};

/// ISOP + algebraic factoring (area-oriented workhorse).
class SopStrategy final : public ResynStrategy {
 public:
  std::optional<Signal> synthesize(
      Network& net, GateBasis basis, const TruthTable& f,
      const std::vector<Signal>& leaves) const override;
  std::string_view name() const noexcept override { return "sop"; }
};

/// Top-down disjoint-support decomposition with AND/OR/XOR/MAJ top blocks;
/// the non-decomposable core falls back to SOP factoring.
class DsdStrategy final : public ResynStrategy {
 public:
  std::optional<Signal> synthesize(
      Network& net, GateBasis basis, const TruthTable& f,
      const std::vector<Signal>& leaves) const override;
  std::string_view name() const noexcept override { return "dsd"; }
};

/// Pure Shannon cofactoring into a balanced MUX tree (level-oriented).
class ShannonStrategy final : public ResynStrategy {
 public:
  std::optional<Signal> synthesize(
      Network& net, GateBasis basis, const TruthTable& f,
      const std::vector<Signal>& leaves) const override;
  std::string_view name() const noexcept override { return "shannon"; }
};

/// 4-input NPN-class database lookup (level- or area-optimized programs).
class NpnStrategy final : public ResynStrategy {
 public:
  explicit NpnStrategy(NpnDatabase::Objective objective)
      : objective_(objective) {}

  std::optional<Signal> synthesize(
      Network& net, GateBasis basis, const TruthTable& f,
      const std::vector<Signal>& leaves) const override;
  std::string_view name() const noexcept override {
    return objective_ == NpnDatabase::Objective::kLevel ? "npn-level"
                                                        : "npn-area";
  }

 private:
  NpnDatabase::Objective objective_;
};

/// A named bundle of strategies (the `lib` parameter of Algorithms 1-2).
class StrategyLibrary {
 public:
  StrategyLibrary() = default;

  void add(std::unique_ptr<ResynStrategy> s) {
    strategies_.push_back(std::move(s));
  }

  const std::vector<std::unique_ptr<ResynStrategy>>& strategies()
      const noexcept {
    return strategies_;
  }
  bool empty() const noexcept { return strategies_.empty(); }

  /// Level-oriented bundle: NPN database + Shannon + DSD.
  static StrategyLibrary level_oriented();
  /// Area-oriented bundle: SOP factoring + DSD + area NPN database.
  static StrategyLibrary area_oriented();

 private:
  std::vector<std::unique_ptr<ResynStrategy>> strategies_;
};

}  // namespace mcs
