#include "mcs/resyn/sop.hpp"

#include <algorithm>
#include <cassert>

namespace mcs {

namespace {

/// Minato-Morreale ISOP.  Returns cubes covering at least \p lower and at
/// most \p upper; \p cover_out receives the exact function of the cubes.
std::vector<Cube> isop_rec(const TruthTable& lower, const TruthTable& upper,
                           int num_vars, int var, TruthTable& cover_out) {
  if (lower.is_const0()) {
    cover_out = TruthTable::constant(false, lower.num_vars());
    return {};
  }
  if (upper.is_const1()) {
    cover_out = TruthTable::constant(true, lower.num_vars());
    return {Cube{}};
  }
  assert(var >= 0 && "ISOP: bounds are inconsistent");

  // Find the top variable that matters.
  while (var >= 0 && !lower.depends_on(var) && !upper.depends_on(var)) --var;
  assert(var >= 0);

  const TruthTable l0 = lower.cofactor0(var);
  const TruthTable l1 = lower.cofactor1(var);
  const TruthTable u0 = upper.cofactor0(var);
  const TruthTable u1 = upper.cofactor1(var);

  TruthTable cover0, cover1, cover_star;
  // Cubes that must carry literal !var / var.
  auto g0 = isop_rec(l0 & ~u1, u0, num_vars, var - 1, cover0);
  auto g1 = isop_rec(l1 & ~u0, u1, num_vars, var - 1, cover1);
  // Remaining minterms, coverable without the variable.
  const TruthTable l_star = (l0 & ~cover0) | (l1 & ~cover1);
  auto gs = isop_rec(l_star, u0 & u1, num_vars, var - 1, cover_star);

  std::vector<Cube> result;
  result.reserve(g0.size() + g1.size() + gs.size());
  for (Cube c : g0) {
    c.mask |= (1u << var);
    result.push_back(c);
  }
  for (Cube c : g1) {
    c.mask |= (1u << var);
    c.polarity |= (1u << var);
    result.push_back(c);
  }
  for (const Cube& c : gs) result.push_back(c);

  const TruthTable xv = TruthTable::projection(var, lower.num_vars());
  cover_out = (~xv & cover0) | (xv & cover1) | cover_star;
  return result;
}

}  // namespace

std::vector<Cube> compute_isop(const TruthTable& f) {
  TruthTable cover;
  auto cubes = isop_rec(f, f, f.num_vars(), f.num_vars() - 1, cover);
  assert(cover == f && "ISOP must cover the function exactly");
  return cubes;
}

TruthTable sop_to_truth_table(const std::vector<Cube>& cubes, int num_vars) {
  TruthTable r = TruthTable::constant(false, num_vars);
  for (const Cube& c : cubes) {
    TruthTable term = TruthTable::constant(true, num_vars);
    for (int v = 0; v < num_vars; ++v) {
      if (!c.has_literal(v)) continue;
      const TruthTable xv = TruthTable::projection(v, num_vars);
      term = term & (c.literal_positive(v) ? xv : ~xv);
    }
    r = r | term;
  }
  return r;
}

int FactoredForm::num_literals() const noexcept {
  int n = 0;
  for (const auto& fn : nodes) {
    if (fn.kind == Kind::kLiteral) ++n;
  }
  return n;
}

namespace {

class Factorer {
 public:
  explicit Factorer(int num_vars) : num_vars_(num_vars) {}

  FactoredForm run(std::vector<Cube> cubes) {
    if (cubes.empty()) {
      ff_.root = add({FactoredForm::Kind::kConst0});
      return std::move(ff_);
    }
    if (cubes.size() == 1 && cubes[0].mask == 0) {
      ff_.root = add({FactoredForm::Kind::kConst1});
      return std::move(ff_);
    }
    ff_.root = factor(std::move(cubes));
    return std::move(ff_);
  }

 private:
  int add(FactoredForm::FNode n) {
    ff_.nodes.push_back(n);
    return static_cast<int>(ff_.nodes.size()) - 1;
  }

  int literal(int var, bool positive) {
    FactoredForm::FNode n{FactoredForm::Kind::kLiteral};
    n.var = var;
    n.positive = positive;
    return add(n);
  }

  int combine(FactoredForm::Kind kind, int a, int b) {
    FactoredForm::FNode n{kind};
    n.left = a;
    n.right = b;
    return add(n);
  }

  /// AND-chain over a single cube's literals (balanced).
  int cube_tree(const Cube& c) {
    std::vector<int> lits;
    for (int v = 0; v < num_vars_; ++v) {
      if (c.has_literal(v)) lits.push_back(literal(v, c.literal_positive(v)));
    }
    assert(!lits.empty());
    return balanced(FactoredForm::Kind::kAnd, lits);
  }

  int balanced(FactoredForm::Kind kind, std::vector<int> items) {
    while (items.size() > 1) {
      std::vector<int> next;
      for (std::size_t i = 0; i + 1 < items.size(); i += 2) {
        next.push_back(combine(kind, items[i], items[i + 1]));
      }
      if (items.size() % 2) next.push_back(items.back());
      items = std::move(next);
    }
    return items[0];
  }

  int factor(std::vector<Cube> cubes) {
    assert(!cubes.empty());
    if (cubes.size() == 1) return cube_tree(cubes[0]);

    // Most frequent literal (variable, polarity).
    std::vector<int> count(2 * num_vars_, 0);
    for (const Cube& c : cubes) {
      for (int v = 0; v < num_vars_; ++v) {
        if (c.has_literal(v)) {
          ++count[2 * v + (c.literal_positive(v) ? 1 : 0)];
        }
      }
    }
    int best = -1, best_count = 0;
    for (int i = 0; i < 2 * num_vars_; ++i) {
      if (count[i] > best_count) {
        best = i;
        best_count = count[i];
      }
    }
    assert(best >= 0);

    if (best_count <= 1) {
      // No sharing: plain OR of cube trees.
      std::vector<int> terms;
      terms.reserve(cubes.size());
      for (const Cube& c : cubes) terms.push_back(cube_tree(c));
      return balanced(FactoredForm::Kind::kOr, terms);
    }

    const int var = best / 2;
    const bool pos = (best % 2) == 1;

    // Divide: quotient = cubes containing the literal (literal removed),
    // remainder = the rest.
    std::vector<Cube> quotient, remainder;
    for (Cube c : cubes) {
      if (c.has_literal(var) && c.literal_positive(var) == pos) {
        c.mask &= ~(1u << var);
        c.polarity &= ~(1u << var);
        quotient.push_back(c);
      } else {
        remainder.push_back(c);
      }
    }

    // literal * factor(quotient)  [+ factor(remainder)]
    // If any quotient cube lost all its literals, the quotient covers
    // everything and the product collapses to the literal itself.
    const bool quotient_is_one =
        std::any_of(quotient.begin(), quotient.end(),
                    [](const Cube& c) { return c.mask == 0; });
    int node;
    if (quotient_is_one) {
      node = literal(var, pos);
    } else {
      node = combine(FactoredForm::Kind::kAnd, literal(var, pos),
                     factor(std::move(quotient)));
    }
    if (!remainder.empty()) {
      node = combine(FactoredForm::Kind::kOr, node,
                     factor(std::move(remainder)));
    }
    return node;
  }

  FactoredForm ff_;
  int num_vars_;
};

}  // namespace

FactoredForm factor_sop(const std::vector<Cube>& cubes, int num_vars) {
  return Factorer(num_vars).run(cubes);
}

TruthTable factored_to_truth_table(const FactoredForm& ff, int num_vars) {
  std::vector<TruthTable> value(ff.nodes.size());
  for (std::size_t i = 0; i < ff.nodes.size(); ++i) {
    const auto& n = ff.nodes[i];
    switch (n.kind) {
      case FactoredForm::Kind::kConst0:
        value[i] = TruthTable::constant(false, num_vars);
        break;
      case FactoredForm::Kind::kConst1:
        value[i] = TruthTable::constant(true, num_vars);
        break;
      case FactoredForm::Kind::kLiteral: {
        TruthTable xv = TruthTable::projection(n.var, num_vars);
        value[i] = n.positive ? xv : ~xv;
        break;
      }
      case FactoredForm::Kind::kAnd:
        value[i] = value[n.left] & value[n.right];
        break;
      case FactoredForm::Kind::kOr:
        value[i] = value[n.left] | value[n.right];
        break;
    }
  }
  return value[ff.root];
}

}  // namespace mcs
