#include "mcs/resyn/exact.hpp"

#include <array>
#include <cassert>
#include <vector>

#include "mcs/sat/solver.hpp"

namespace mcs {

namespace {

/// A candidate gate operator: arity + local function + how to build it.
struct Op {
  int arity;              // 2 or 3
  std::uint8_t tt;        // truth table over arity inputs (low 2^arity bits)
  GateType type;          // gate to instantiate
  std::uint8_t in_compl;  // input complement mask
  bool out_compl;         // output complement
};

/// Operator menu for a basis.  Every op costs one gate in that basis.
std::vector<Op> op_menu(GateBasis basis) {
  std::vector<Op> ops;
  // AND family: (a^p) & (b^q), output possibly complemented (OR family).
  for (int p = 0; p < 2; ++p) {
    for (int q = 0; q < 2; ++q) {
      for (int oc = 0; oc < 2; ++oc) {
        std::uint8_t tt = 0;
        for (int t = 0; t < 4; ++t) {
          const bool a = (t & 1) ^ p, b = ((t >> 1) & 1) ^ q;
          bool v = a && b;
          if (oc) v = !v;
          if (v) tt |= (1u << t);
        }
        ops.push_back({2, tt, GateType::kAnd2,
                       static_cast<std::uint8_t>(p | (q << 1)), oc == 1});
      }
    }
  }
  if (basis.use_xor) {
    ops.push_back({2, 0b0110, GateType::kXor2, 0, false});
    ops.push_back({2, 0b1001, GateType::kXor2, 0, true});
    if (basis.use_maj) {
      ops.push_back({3, 0b10010110, GateType::kXor3, 0, false});
      ops.push_back({3, 0b01101001, GateType::kXor3, 0, true});
    }
  }
  if (basis.use_maj) {
    // MAJ with input complements; self-duality makes output complement
    // redundant (it equals complementing all inputs).
    for (int mask = 0; mask < 8; ++mask) {
      std::uint8_t tt = 0;
      for (int t = 0; t < 8; ++t) {
        const int a = ((t >> 0) & 1) ^ ((mask >> 0) & 1);
        const int b = ((t >> 1) & 1) ^ ((mask >> 1) & 1);
        const int c = ((t >> 2) & 1) ^ ((mask >> 2) & 1);
        if (a + b + c >= 2) tt |= (1u << t);
      }
      ops.push_back({3, tt, GateType::kMaj3,
                     static_cast<std::uint8_t>(mask), false});
    }
  }
  return ops;
}

/// Tries to find an r-gate realization; fills `result` on success.
bool try_size(Tt6 f, int n, int r, const std::vector<Op>& ops,
              std::int64_t conflict_limit, ExactSynthesisResult& result) {
  const int num_t = 1 << n;
  sat::Solver solver;

  // x[i][t]: value of gate i on assignment t.
  std::vector<std::vector<sat::Var>> x(r, std::vector<sat::Var>(num_t));
  // y[i][s][t]: value of operand slot s (0..2) of gate i on assignment t.
  std::vector<std::array<std::vector<sat::Var>, 3>> y(r);
  // sel[i][s][j]: operand slot s of gate i reads source j
  // (sources: 0..n-1 PIs, then gates 0..i-1).
  std::vector<std::array<std::vector<sat::Var>, 3>> sel(r);
  // o[i][m]: gate i uses op m.
  std::vector<std::vector<sat::Var>> o(r);

  for (int i = 0; i < r; ++i) {
    for (int t = 0; t < num_t; ++t) x[i][t] = solver.new_var();
    for (int s = 0; s < 3; ++s) {
      y[i][s].resize(num_t);
      for (int t = 0; t < num_t; ++t) y[i][s][t] = solver.new_var();
      sel[i][s].resize(n + i);
      for (int j = 0; j < n + i; ++j) sel[i][s][j] = solver.new_var();
    }
    o[i].resize(ops.size());
    for (std::size_t m = 0; m < ops.size(); ++m) o[i][m] = solver.new_var();
  }

  auto exactly_one = [&](const std::vector<sat::Var>& vars) {
    std::vector<sat::Lit> lits;
    for (const auto v : vars) lits.push_back(sat::mk_lit(v));
    solver.add_clause(lits);
    for (std::size_t a = 0; a < vars.size(); ++a) {
      for (std::size_t b = a + 1; b < vars.size(); ++b) {
        solver.add_clause(sat::mk_lit(vars[a], true),
                          sat::mk_lit(vars[b], true));
      }
    }
  };

  for (int i = 0; i < r; ++i) {
    for (int s = 0; s < 3; ++s) exactly_one(sel[i][s]);
    exactly_one(o[i]);
    // Symmetry break: slot0 source index < slot1 source index.
    for (int j = 0; j < n + i; ++j) {
      for (int k = 0; k <= j; ++k) {
        solver.add_clause(sat::mk_lit(sel[i][0][j], true),
                          sat::mk_lit(sel[i][1][k], true));
      }
    }
  }

  // Channeling: sel[i][s][j] -> (y[i][s][t] == source_j value at t).
  for (int i = 0; i < r; ++i) {
    for (int s = 0; s < 3; ++s) {
      for (int j = 0; j < n + i; ++j) {
        const sat::Lit not_sel = sat::mk_lit(sel[i][s][j], true);
        for (int t = 0; t < num_t; ++t) {
          const sat::Lit yl = sat::mk_lit(y[i][s][t]);
          if (j < n) {
            const bool bit = (t >> j) & 1;
            solver.add_clause(not_sel, bit ? yl : sat::negate(yl));
          } else {
            const sat::Lit xl = sat::mk_lit(x[j - n][t]);
            solver.add_clause(not_sel, sat::negate(yl), xl);
            solver.add_clause(not_sel, yl, sat::negate(xl));
          }
        }
      }
    }
  }

  // Gate semantics: o[i][m] -> (x[i][t] == op(y values)).
  for (int i = 0; i < r; ++i) {
    for (std::size_t m = 0; m < ops.size(); ++m) {
      const Op& op = ops[m];
      const sat::Lit not_op = sat::mk_lit(o[i][m], true);
      for (int t = 0; t < num_t; ++t) {
        const int combos = 1 << op.arity;
        for (int c = 0; c < combos; ++c) {
          // If operand values equal pattern c, x must equal op.tt bit c.
          std::vector<sat::Lit> clause{not_op};
          for (int s = 0; s < op.arity; ++s) {
            const bool bit = (c >> s) & 1;
            clause.push_back(sat::mk_lit(y[i][s][t], bit));
          }
          const bool out = (op.tt >> c) & 1;
          clause.push_back(sat::mk_lit(x[i][t], !out));
          solver.add_clause(std::move(clause));
        }
      }
    }
  }

  // Output: the last gate equals f (possibly complemented).
  const sat::Var outneg = solver.new_var();
  for (int t = 0; t < num_t; ++t) {
    const bool bit = (f >> t) & 1;
    // outneg=0 -> x == bit; outneg=1 -> x == !bit.
    solver.add_clause(sat::mk_lit(outneg),
                      sat::mk_lit(x[r - 1][t], !bit));
    solver.add_clause(sat::mk_lit(outneg, true),
                      sat::mk_lit(x[r - 1][t], bit));
  }

  if (solver.solve({}, conflict_limit) != sat::Result::kSat) return false;

  // Decode the model into a network.
  Network net;
  std::vector<Signal> sources;
  for (int j = 0; j < n; ++j) sources.push_back(net.create_pi());
  for (int i = 0; i < r; ++i) {
    int chosen_op = -1;
    for (std::size_t m = 0; m < ops.size(); ++m) {
      if (solver.model_value(o[i][m])) chosen_op = static_cast<int>(m);
    }
    assert(chosen_op >= 0);
    const Op& op = ops[chosen_op];
    std::array<Signal, 3> in{};
    for (int s = 0; s < op.arity; ++s) {
      int src = -1;
      for (int j = 0; j < n + i; ++j) {
        if (solver.model_value(sel[i][s][j])) src = j;
      }
      assert(src >= 0);
      in[s] = sources[src] ^ (((op.in_compl >> s) & 1) != 0);
    }
    Signal g = net.create_gate(op.type, in);
    if (op.out_compl) g = !g;
    sources.push_back(g);
  }
  Signal root = sources.back();
  if (solver.model_value(outneg)) root = !root;

  result.net = std::move(net);
  result.root = root;
  result.num_gates = r;
  return true;
}

}  // namespace

std::optional<ExactSynthesisResult> exact_synthesize(
    Tt6 f, int num_vars, const ExactSynthesisParams& params) {
  assert(num_vars <= 4);
  f = tt6_replicate(f, num_vars) & tt6_mask(num_vars);

  // Size 0: constants and (complemented) projections.
  {
    ExactSynthesisResult r0;
    Network net;
    std::vector<Signal> pis;
    for (int i = 0; i < num_vars; ++i) pis.push_back(net.create_pi());
    std::optional<Signal> root;
    if (f == 0) {
      root = net.constant(false);
    } else if (f == tt6_mask(num_vars)) {
      root = net.constant(true);
    } else {
      for (int v = 0; v < num_vars; ++v) {
        const Tt6 proj = tt6_var(v) & tt6_mask(num_vars);
        if (f == proj) root = pis[v];
        if (f == (~proj & tt6_mask(num_vars))) root = !pis[v];
      }
    }
    if (root) {
      r0.net = std::move(net);
      r0.root = *root;
      r0.num_gates = 0;
      return r0;
    }
  }

  const auto ops = op_menu(params.basis);
  for (int r = 1; r <= params.max_gates; ++r) {
    ExactSynthesisResult result;
    if (try_size(f, num_vars, r, ops, params.conflict_limit, result)) {
      return result;
    }
  }
  return std::nullopt;
}

}  // namespace mcs
