#include "mcs/resyn/strategies.hpp"

#include <cassert>

#include "mcs/resyn/sop.hpp"

namespace mcs {

namespace {

/// Builds a factored form into the network through the basis builder.
Signal build_factored(const BasisBuilder& bb, const FactoredForm& ff,
                      const std::vector<Signal>& leaves) {
  std::vector<Signal> value(ff.nodes.size());
  for (std::size_t i = 0; i < ff.nodes.size(); ++i) {
    const auto& n = ff.nodes[i];
    switch (n.kind) {
      case FactoredForm::Kind::kConst0:
        value[i] = bb.constant(false);
        break;
      case FactoredForm::Kind::kConst1:
        value[i] = bb.constant(true);
        break;
      case FactoredForm::Kind::kLiteral:
        value[i] = leaves[n.var] ^ !n.positive;
        break;
      case FactoredForm::Kind::kAnd:
        value[i] = bb.and2(value[n.left], value[n.right]);
        break;
      case FactoredForm::Kind::kOr:
        value[i] = bb.or2(value[n.left], value[n.right]);
        break;
    }
  }
  return value[ff.root];
}

Signal build_sop(const BasisBuilder& bb, const TruthTable& f,
                 const std::vector<Signal>& leaves) {
  const auto cubes = compute_isop(f);
  const auto ff = factor_sop(cubes, f.num_vars());
  return build_factored(bb, ff, leaves);
}

/// Recursive DSD with AND/OR/XOR/MAJ top decompositions; returns the signal
/// or falls back to `core` for the non-decomposable remainder.
template <typename CoreFn>
Signal dsd_rec(const BasisBuilder& bb, const TruthTable& f,
               const std::vector<Signal>& leaves, const CoreFn& core) {
  if (f.is_const0()) return bb.constant(false);
  if (f.is_const1()) return bb.constant(true);

  const int n = f.num_vars();
  // Collect the support once.
  std::vector<int> support;
  for (int v = 0; v < n; ++v) {
    if (f.depends_on(v)) support.push_back(v);
  }
  assert(!support.empty());
  if (support.size() == 1) {
    const int v = support[0];
    const TruthTable xv = TruthTable::projection(v, n);
    return leaves[v] ^ (f == ~xv);
  }

  // Single-variable top decompositions.
  for (const int v : support) {
    const TruthTable f0 = f.cofactor0(v);
    const TruthTable f1 = f.cofactor1(v);
    if (f0 == ~f1) {
      // f == xv ^ f0.
      return bb.xor2(leaves[v], dsd_rec(bb, f0, leaves, core));
    }
    if (f0.is_const0()) return bb.and2(leaves[v], dsd_rec(bb, f1, leaves, core));
    if (f1.is_const0()) return bb.and2(!leaves[v], dsd_rec(bb, f0, leaves, core));
    if (f0.is_const1()) return bb.or2(!leaves[v], dsd_rec(bb, f1, leaves, core));
    if (f1.is_const1()) return bb.or2(leaves[v], dsd_rec(bb, f0, leaves, core));
  }

  // Majority top decomposition: with a = xi^!p and b = xj^!q,
  // f == MAJ(a, b, g) iff f|(a=1,b=1) == 1, f|(a=0,b=0) == 0 and
  // f|(a=1,b=0) == f|(a=0,b=1) == g.
  if (bb.basis().use_maj) {
    auto cof = [](const TruthTable& t, int v, bool bit) {
      return bit ? t.cofactor1(v) : t.cofactor0(v);
    };
    for (std::size_t i = 0; i < support.size(); ++i) {
      for (std::size_t j = i + 1; j < support.size(); ++j) {
        const int vi = support[i];
        const int vj = support[j];
        for (int p = 0; p < 2; ++p) {
          for (int q = 0; q < 2; ++q) {
            if (!cof(cof(f, vi, p), vj, q).is_const1()) continue;
            if (!cof(cof(f, vi, !p), vj, !q).is_const0()) continue;
            const TruthTable ga = cof(cof(f, vi, p), vj, !q);
            const TruthTable gb = cof(cof(f, vi, !p), vj, q);
            if (!(ga == gb)) continue;
            const Signal a = leaves[vi] ^ (p == 0);
            const Signal b = leaves[vj] ^ (q == 0);
            return bb.maj3(a, b, dsd_rec(bb, ga, leaves, core));
          }
        }
      }
    }
  }

  return core(f, support);
}

}  // namespace

std::optional<Signal> SopStrategy::synthesize(
    Network& net, GateBasis basis, const TruthTable& f,
    const std::vector<Signal>& leaves) const {
  assert(static_cast<int>(leaves.size()) == f.num_vars());
  const BasisBuilder bb(net, basis);
  return build_sop(bb, f, leaves);
}

std::optional<Signal> DsdStrategy::synthesize(
    Network& net, GateBasis basis, const TruthTable& f,
    const std::vector<Signal>& leaves) const {
  assert(static_cast<int>(leaves.size()) == f.num_vars());
  const BasisBuilder bb(net, basis);
  // Non-decomposable cores are finished with SOP factoring.
  auto core = [&](const TruthTable& g,
                  const std::vector<int>& /*support*/) -> Signal {
    return build_sop(bb, g, leaves);
  };
  return dsd_rec(bb, f, leaves, core);
}

std::optional<Signal> ShannonStrategy::synthesize(
    Network& net, GateBasis basis, const TruthTable& f,
    const std::vector<Signal>& leaves) const {
  assert(static_cast<int>(leaves.size()) == f.num_vars());
  const BasisBuilder bb(net, basis);

  // Recursive Shannon expansion on the most binate variable.
  struct Rec {
    const BasisBuilder& bb;
    const std::vector<Signal>& leaves;

    Signal run(const TruthTable& g) const {
      if (g.is_const0()) return bb.constant(false);
      if (g.is_const1()) return bb.constant(true);
      std::vector<int> support;
      for (int v = 0; v < g.num_vars(); ++v) {
        if (g.depends_on(v)) support.push_back(v);
      }
      if (support.size() == 1) {
        const int v = support[0];
        return leaves[v] ^
               (g == ~TruthTable::projection(v, g.num_vars()));
      }
      // Most binate variable: minimize | |on(f0)| - |on(f1)| |.
      int best = support[0];
      int best_bias = -1;
      for (const int v : support) {
        const int bias =
            std::abs(g.cofactor0(v).count_ones() - g.cofactor1(v).count_ones());
        if (best_bias < 0 || bias < best_bias) {
          best_bias = bias;
          best = v;
        }
      }
      const Signal t = run(g.cofactor1(best));
      const Signal e = run(g.cofactor0(best));
      return bb.mux(leaves[best], t, e);
    }
  };
  return Rec{bb, leaves}.run(f);
}

std::optional<Signal> NpnStrategy::synthesize(
    Network& net, GateBasis basis, const TruthTable& f,
    const std::vector<Signal>& leaves) const {
  assert(static_cast<int>(leaves.size()) == f.num_vars());
  // Shrink to the true support; more than 4 variables is out of scope for
  // the 4-input database.
  std::vector<int> old_index;
  const TruthTable g = f.shrink_support(old_index);
  if (g.num_vars() > 4) return std::nullopt;
  std::vector<Signal> sub_leaves;
  sub_leaves.reserve(old_index.size());
  for (const int idx : old_index) sub_leaves.push_back(leaves[idx]);

  auto& db = NpnDatabase::shared(basis, objective_);
  return db.instantiate(net, g.num_vars() <= 6 ? g.to_tt6() : 0,
                        g.num_vars(), sub_leaves);
}

StrategyLibrary StrategyLibrary::level_oriented() {
  StrategyLibrary lib;
  lib.add(std::make_unique<NpnStrategy>(NpnDatabase::Objective::kLevel));
  lib.add(std::make_unique<ShannonStrategy>());
  lib.add(std::make_unique<DsdStrategy>());
  return lib;
}

StrategyLibrary StrategyLibrary::area_oriented() {
  StrategyLibrary lib;
  lib.add(std::make_unique<SopStrategy>());
  lib.add(std::make_unique<DsdStrategy>());
  lib.add(std::make_unique<NpnStrategy>(NpnDatabase::Objective::kArea));
  return lib;
}

}  // namespace mcs
