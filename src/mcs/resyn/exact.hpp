/// \file exact.hpp
/// \brief SAT-based exact synthesis of minimum-size networks for small
/// functions.
///
/// Finds a network with the fewest gates (from a chosen basis) implementing
/// a given function of up to 4 variables, by encoding "does a circuit with
/// r gates exist?" as SAT (single-selection-variable SSV encoding, in the
/// spirit of Knuth/Eén and mockturtle's exact synthesis) and increasing r
/// until satisfiable.  Used to build provably size-optimal entries for the
/// NPN databases that drive the level-/area-oriented MCH strategies --
/// the paper's "synthesis strategies library" at its strongest setting.

#pragma once

#include <optional>

#include "mcs/network/network.hpp"
#include "mcs/resyn/basis.hpp"
#include "mcs/tt/tt6.hpp"

namespace mcs {

struct ExactSynthesisParams {
  int max_gates = 7;              ///< give up beyond this size
  std::int64_t conflict_limit = 200000;  ///< SAT budget per size step
  GateBasis basis = GateBasis::aig();
};

struct ExactSynthesisResult {
  Network net;     ///< network over `num_vars` PIs realizing f
  Signal root;
  int num_gates = 0;
};

/// Synthesizes a minimum-gate realization of \p f (over \p num_vars <= 4
/// variables) in the given basis.  The gate set is: AND2 (with arbitrary
/// input/output complementation) always; XOR2 when basis.use_xor; MAJ3 when
/// basis.use_maj.  Returns std::nullopt when no network within max_gates
/// was found (or the SAT budget ran out).
std::optional<ExactSynthesisResult> exact_synthesize(
    Tt6 f, int num_vars, const ExactSynthesisParams& params = {});

}  // namespace mcs
