/// \file npn_db.hpp
/// \brief Lazily built databases of optimized structures for 4-input NPN
/// classes.
///
/// This is the "4-input NPN library" used by the level-oriented synthesis
/// strategy of the paper (Sec. III-A, citing fast NPN-based Boolean
/// matching).  For each canonical class we synthesize several candidate
/// structures (DSD, SOP factoring, Shannon) in the requested gate basis,
/// keep the best one under the chosen objective, and replay it whenever an
/// NPN-equivalent cut function must be realized.  The 4-input space has only
/// 222 classes, so the lazy cache converges almost immediately.

#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "mcs/network/network.hpp"
#include "mcs/resyn/basis.hpp"
#include "mcs/tt/npn.hpp"

namespace mcs {

class NpnDatabase {
 public:
  enum class Objective { kLevel, kArea };

  NpnDatabase(GateBasis basis, Objective objective)
      : basis_(basis), objective_(objective) {}

  /// Realizes the (<= 4 variable) function \p f over \p leaves in \p net.
  /// Returns std::nullopt for functions of more than 4 support variables.
  std::optional<Signal> instantiate(Network& net, Tt6 f, int num_vars,
                                    const std::vector<Signal>& leaves);

  /// Shared per-basis/objective instances (the strategies are stateless
  /// apart from this cache).
  ///
  /// **Concurrency contract (multi-job server).**  The instances are
  /// `thread_local`: every pool worker / job-runner thread lazily builds
  /// its own copy per (basis, objective) key, so there is no locking and
  /// no cross-thread mutation.  This stays correct when *jobs from
  /// different flows interleave on the same worker* (the mcs::server
  /// case) because an entry's content is a pure function of its key --
  /// which NPN class, which basis, which objective -- never of who asked
  /// first or in what order: a rewrite in job A warms exactly the cache a
  /// rewrite in job B would have built, bit for bit.  Memory stays
  /// bounded by the 222-class NPN-4 space per key per thread; a
  /// long-lived server does not grow it beyond one warm set per worker.
  /// tests/test_server.cpp locks this in: two different rewrite-heavy
  /// flows through concurrent server jobs produce networks bit-identical
  /// to their serial runs.
  static NpnDatabase& shared(GateBasis basis, Objective objective);

  std::size_t num_classes() const noexcept { return classes_.size(); }

 private:
  /// Replayable optimized structure: a 4-PI scratch network + output.
  struct Entry {
    Network net;
    Signal root;
    std::uint32_t depth = 0;
    std::size_t size = 0;
  };

  const Entry& entry_for(Tt6 canon);

  GateBasis basis_;
  Objective objective_;
  std::unordered_map<std::uint16_t, Entry> classes_;
  Npn4Cache canon_cache_;
};

}  // namespace mcs
