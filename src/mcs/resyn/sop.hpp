/// \file sop.hpp
/// \brief Sum-of-products extraction (irredundant, Minato-Morreale) and
/// algebraic factoring.
///
/// These form the area-oriented synthesis strategies of the MCH operator
/// (paper, Alg. 2 lines 9-13): MFFCs and cuts of non-critical nodes are
/// collapsed to truth tables, covered with an ISOP, factored, and rebuilt.

#pragma once

#include <cstdint>
#include <vector>

#include "mcs/tt/truth_table.hpp"

namespace mcs {

/// A product term: literal i participates when bit i of `mask` is set;
/// it is positive when bit i of `polarity` is set.
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t polarity = 0;

  int num_literals() const noexcept { return std::popcount(mask); }
  bool has_literal(int var) const noexcept { return (mask >> var) & 1u; }
  bool literal_positive(int var) const noexcept {
    return (polarity >> var) & 1u;
  }

  friend bool operator==(const Cube&, const Cube&) = default;
};

/// Computes an irredundant sum of products covering exactly \p f
/// (Minato-Morreale ISOP over (f, f)).
std::vector<Cube> compute_isop(const TruthTable& f);

/// Evaluates a cube list back to a truth table (test oracle and cover
/// bookkeeping).
TruthTable sop_to_truth_table(const std::vector<Cube>& cubes, int num_vars);

/// A factored form: a tree of literals, ANDs and ORs.
struct FactoredForm {
  enum class Kind { kLiteral, kAnd, kOr, kConst0, kConst1 };
  struct FNode {
    Kind kind;
    int var = -1;          ///< literal variable (kLiteral)
    bool positive = true;  ///< literal polarity (kLiteral)
    int left = -1;         ///< child index (kAnd/kOr)
    int right = -1;        ///< child index (kAnd/kOr)
  };
  std::vector<FNode> nodes;
  int root = -1;

  /// Number of literal leaves (the classic factored-form cost).
  int num_literals() const noexcept;
};

/// Algebraic factoring of a cube cover (literal-division quick factor).
FactoredForm factor_sop(const std::vector<Cube>& cubes, int num_vars);

/// Evaluates a factored form (test oracle).
TruthTable factored_to_truth_table(const FactoredForm& ff, int num_vars);

}  // namespace mcs
