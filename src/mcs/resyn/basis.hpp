/// \file basis.hpp
/// \brief Gate bases: which primitives a synthesis strategy may emit.
///
/// The MCH operator derives its power from *heterogeneous* candidates: the
/// same cut function can be re-expressed as AIG (AND-only), XAG (AND/XOR),
/// MIG (AND/MAJ) or XMG (all four) structure.  Every synthesis strategy in
/// this library builds through a BasisBuilder so the emitted representation
/// is a parameter, not a hard-coded choice.

#pragma once

#include "mcs/network/network.hpp"

namespace mcs {

/// Allowed primitive set.
struct GateBasis {
  bool use_xor = false;  ///< may emit XOR2/XOR3 nodes
  bool use_maj = false;  ///< may emit MAJ3 nodes

  static constexpr GateBasis aig() { return {false, false}; }
  static constexpr GateBasis xag() { return {true, false}; }
  static constexpr GateBasis mig() { return {false, true}; }
  static constexpr GateBasis xmg() { return {true, true}; }

  const char* name() const noexcept {
    if (use_xor && use_maj) return "xmg";
    if (use_xor) return "xag";
    if (use_maj) return "mig";
    return "aig";
  }

  friend bool operator==(const GateBasis&, const GateBasis&) = default;
};

/// Emits gates into a network, expanding primitives outside the basis.
class BasisBuilder {
 public:
  BasisBuilder(Network& net, GateBasis basis) noexcept
      : net_(&net), basis_(basis) {}

  Network& network() const noexcept { return *net_; }
  GateBasis basis() const noexcept { return basis_; }

  Signal constant(bool v) const { return net_->constant(v); }
  Signal and2(Signal a, Signal b) const { return net_->create_and(a, b); }
  Signal or2(Signal a, Signal b) const { return net_->create_or(a, b); }

  Signal xor2(Signal a, Signal b) const {
    if (basis_.use_xor) return net_->create_xor(a, b);
    return net_->create_or(net_->create_and(a, !b), net_->create_and(!a, b));
  }

  Signal xor3(Signal a, Signal b, Signal c) const {
    if (basis_.use_xor) return net_->create_xor3(a, b, c);
    return xor2(xor2(a, b), c);
  }

  Signal maj3(Signal a, Signal b, Signal c) const {
    if (basis_.use_maj) return net_->create_maj(a, b, c);
    // MAJ(a,b,c) == ab + c(a + b): 4 AND-level gates.
    return net_->create_or(net_->create_and(a, b),
                           net_->create_and(c, net_->create_or(a, b)));
  }

  /// cond ? then_s : else_s.  With XOR available, uses the 2-gate form
  /// e ^ (c & (t ^ e)); otherwise the classic AND/OR form.
  Signal mux(Signal c, Signal t, Signal e) const {
    if (basis_.use_xor) {
      return net_->create_xor(e, net_->create_and(c, net_->create_xor(t, e)));
    }
    return net_->create_ite(c, t, e);
  }

 private:
  Network* net_;
  GateBasis basis_;
};

}  // namespace mcs
