#include "mcs/resyn/npn_db.hpp"

#include <cassert>
#include <map>

#include "mcs/network/network_utils.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/resyn/sop.hpp"
#include "mcs/resyn/strategies.hpp"

namespace mcs {

namespace {

/// Depth of a signal's cone in a scratch network whose levels are exact.
std::uint32_t cone_depth(const Network& net, Signal s) {
  return net.node(s.node()).level;
}

/// Number of gates in the cone of \p s.
std::size_t cone_size(const Network& net, Signal s) {
  if (!net.is_gate(s.node())) return 0;
  std::size_t n = 0;
  net.new_traversal();
  std::vector<NodeId> stack{s.node()};
  net.mark(s.node());
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    ++n;
    const Node& nd = net.node(id);
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId c = nd.fanin[i].node();
      if (net.is_gate(c) && !net.marked(c)) {
        net.mark(c);
        stack.push_back(c);
      }
    }
  }
  return n;
}

}  // namespace

const NpnDatabase::Entry& NpnDatabase::entry_for(Tt6 canon) {
  const auto key = static_cast<std::uint16_t>(canon & tt6_mask(4));
  if (auto it = classes_.find(key); it != classes_.end()) return it->second;

  // Lazy class synthesis fills a shared (thread-local) cache whose cost is
  // amortized over every later caller -- it is not work of the job that
  // happens to miss first.  Detach metric attribution for the synthesis so
  // per-job deltas stay bit-identical regardless of cache warmth (the
  // process-wide registry still sees the counters).
  obs::Scope detached(nullptr);

  // Synthesize the canonical function with each candidate strategy into its
  // own scratch network; keep the best under the objective.
  const TruthTable f = TruthTable::from_tt6(canon, 4);

  const SopStrategy sop;
  const DsdStrategy dsd;
  const ShannonStrategy shannon;
  const ResynStrategy* candidates[] = {&sop, &dsd, &shannon};

  Entry best;
  bool have_best = false;
  for (const ResynStrategy* strat : candidates) {
    Entry e;
    std::vector<Signal> leaves;
    for (int i = 0; i < 4; ++i) leaves.push_back(e.net.create_pi());
    const auto root = strat->synthesize(e.net, basis_, f, leaves);
    assert(root.has_value());
    e.root = *root;
    e.depth = cone_depth(e.net, e.root);
    e.size = cone_size(e.net, e.root);
    const auto cost = [this](const Entry& x) {
      return objective_ == Objective::kLevel
                 ? std::make_pair(static_cast<std::size_t>(x.depth), x.size)
                 : std::make_pair(x.size, static_cast<std::size_t>(x.depth));
    };
    if (!have_best || cost(e) < cost(best)) {
      best = std::move(e);
      have_best = true;
    }
  }
  assert(have_best);
  return classes_.emplace(key, std::move(best)).first->second;
}

std::optional<Signal> NpnDatabase::instantiate(
    Network& net, Tt6 f, int num_vars, const std::vector<Signal>& leaves) {
  assert(static_cast<int>(leaves.size()) == num_vars);
  if (num_vars > 4) return std::nullopt;

  // Work in the 4-variable space (pad with vacuous variables).
  const Tt6 f4 = tt6_replicate(f, num_vars);
  const auto& canon = canon_cache_.canonicalize(f4);
  const Entry& entry = entry_for(canon.canon);

  // f(u) = out ^ canon(z) with z_j = u[perm[j]] ^ flips[perm[j]]
  // (composition of the canonicalizing transform with the identity).
  NpnTransform identity;
  identity.num_vars = 4;
  const NpnMatch m = npn_match(canon.transform, identity);

  std::vector<Signal> pi_map(4);
  for (int j = 0; j < 4; ++j) {
    const int leaf = m.pin_to_leaf[j];
    // Vacuous positions (beyond num_vars) can be fed anything.
    Signal s = leaf < num_vars ? leaves[leaf] : net.constant(false);
    if (m.pin_negation & (1u << j)) s = !s;
    pi_map[j] = s;
  }
  Signal out = copy_cone(entry.net, net, entry.root, pi_map);
  if (m.output_negation) out = !out;
  return out;
}

NpnDatabase& NpnDatabase::shared(GateBasis basis, Objective objective) {
  // One instance per (basis, objective) *per thread*: lookups mutate the
  // database (lazy class synthesis + canonicalization cache), so sharing
  // across mcs::par workers would need a lock on the hot path.  Entries are
  // pure functions of the key, so per-thread copies are bit-identical and
  // parallel results stay independent of the thread count; the 222-class
  // NPN-4 space makes the duplication cheap.
  static thread_local std::map<std::pair<int, int>, NpnDatabase> instances;
  const int basis_key = (basis.use_xor ? 1 : 0) | (basis.use_maj ? 2 : 0);
  const auto key = std::make_pair(basis_key, static_cast<int>(objective));
  auto it = instances.find(key);
  if (it == instances.end()) {
    it = instances.emplace(key, NpnDatabase(basis, objective)).first;
  }
  return it->second;
}

}  // namespace mcs
