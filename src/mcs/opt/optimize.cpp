#include "mcs/opt/optimize.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <queue>
#include <unordered_map>

#include "mcs/cut/enumeration.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/resyn/npn_db.hpp"
#include "mcs/resyn/sop.hpp"
#include "mcs/resyn/strategies.hpp"
#include "mcs/sat/cnf.hpp"
#include "mcs/sat/solver.hpp"
#include "mcs/sim/simulator.hpp"
#include "mcs/sweep/sweep.hpp"

namespace mcs {

// ---------------------------------------------------------------------------
// balance
// ---------------------------------------------------------------------------

namespace {

/// Collects the flattened operand list of a maximal same-type chain rooted
/// at \p n.  Only single-fanout, non-complemented (for AND; XOR edges are
/// always non-complemented after strashing) children of the same type are
/// flattened.
void flatten_chain(const Network& net, NodeId n, GateType type,
                   std::vector<Signal>& operands) {
  const Node& nd = net.node(n);
  for (int i = 0; i < nd.num_fanins; ++i) {
    const Signal f = nd.fanin[i];
    const Node& child = net.node(f.node());
    if (!f.complemented() && child.type == type && child.fanout_size == 1) {
      flatten_chain(net, f.node(), type, operands);
    } else {
      operands.push_back(f);
    }
  }
}

}  // namespace

Network balance(const Network& net) {
  Network dst;
  std::vector<Signal> map(net.size());
  map[0] = dst.constant(false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = dst.create_pi(net.pi_name(i));
  }

  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    const Node& nd = net.node(n);
    if (nd.type == GateType::kAnd2 || nd.type == GateType::kXor2) {
      std::vector<Signal> operands;
      flatten_chain(net, n, nd.type, operands);
      // Huffman-style combination by level: always merge the two
      // shallowest operands.
      using Item = std::pair<std::uint32_t, Signal>;
      auto cmp = [](const Item& a, const Item& b) {
        if (a.first != b.first) return a.first > b.first;
        return b.second < a.second;  // deterministic tie-break
      };
      std::priority_queue<Item, std::vector<Item>, decltype(cmp)> pq(cmp);
      for (const Signal s : operands) {
        const Signal t = map[s.node()] ^ s.complemented();
        pq.push({dst.node(t.node()).level, t});
      }
      while (pq.size() > 1) {
        const Signal a = pq.top().second;
        pq.pop();
        const Signal b = pq.top().second;
        pq.pop();
        const Signal c = nd.type == GateType::kAnd2 ? dst.create_and(a, b)
                                                    : dst.create_xor(a, b);
        pq.push({dst.node(c.node()).level, c});
      }
      map[n] = pq.top().second;
    } else {
      std::array<Signal, 3> in{};
      for (int i = 0; i < nd.num_fanins; ++i) {
        in[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
      }
      map[n] = dst.create_gate(nd.type, in);
    }
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    dst.create_po(map[s.node()] ^ s.complemented(), net.po_name(i));
  }
  return cleanup(dst);
}

// ---------------------------------------------------------------------------
// refactor
// ---------------------------------------------------------------------------

Network refactor(const Network& net, const RefactorParams& params) {
  Network dst;
  const SopStrategy sop;
  std::vector<Signal> map(net.size());
  map[0] = dst.constant(false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = dst.create_pi(net.pi_name(i));
  }

  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    const Node& nd = net.node(n);

    const Cone mffc = compute_mffc(net, n, params.max_leaves);
    if (mffc.inner.size() >= 3 && !mffc.leaves.empty()) {
      const TruthTable f = cone_function(net, Signal(n, false), mffc.leaves);
      const auto cubes = compute_isop(f);
      const auto ff = factor_sop(cubes, f.num_vars());
      // Factored-form cost: internal operators ~ literals - 1.
      const int est_new = std::max(0, ff.num_literals() - 1);
      const int est_old = static_cast<int>(mffc.inner.size());
      if (est_new < est_old || (params.zero_cost && est_new == est_old)) {
        std::vector<Signal> leaves;
        leaves.reserve(mffc.leaves.size());
        for (const NodeId leaf : mffc.leaves) {
          leaves.push_back(map[leaf]);
        }
        const auto s = sop.synthesize(dst, params.basis, f, leaves);
        assert(s.has_value());
        map[n] = *s;
        continue;
      }
    }

    std::array<Signal, 3> in{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    map[n] = dst.create_gate(nd.type, in);
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    dst.create_po(map[s.node()] ^ s.complemented(), net.po_name(i));
  }
  const Network result = cleanup(dst);
  // Refactoring is greedy; keep the smaller of input/output.
  return result.num_gates() <= net.num_gates() ? result : cleanup(net);
}

// ---------------------------------------------------------------------------
// sweep (SAT sweeping / fraig-style merging)
// ---------------------------------------------------------------------------

Network sweep(const Network& net, const SweepParams& params) {
  // Thin wrapper over the mcs::sweep engine (sweep/sweep.hpp): candidate
  // classes from simulation signatures, parallel batched cone-restricted
  // miters, counterexample-driven refinement, min-index merges.
  FraigParams fp;
  fp.num_threads = params.num_threads;
  fp.sim_words = params.sim_words;
  fp.sim_seed = params.sim_seed;
  fp.conflict_limit = params.conflict_limit;
  fp.max_rounds = params.max_rounds;
  return fraig(net, fp);
}

// ---------------------------------------------------------------------------
// resub (simulation-guided, SAT-verified resubstitution)
// ---------------------------------------------------------------------------

namespace {

/// Divisor window: nearby TFI nodes of \p n (breadth-first), all with
/// smaller ids than n so replacements can never create cycles.
std::vector<NodeId> divisor_window(const Network& net, NodeId n,
                                   int max_window) {
  std::vector<NodeId> window;
  net.new_traversal();
  std::vector<NodeId> queue{n};
  net.mark(n);
  std::size_t head = 0;
  while (head < queue.size() &&
         static_cast<int>(window.size()) < max_window) {
    const Node& nd = net.node(queue[head++]);
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId c = nd.fanin[i].node();
      if (net.marked(c) || net.is_const0(c)) continue;
      net.mark(c);
      window.push_back(c);
      queue.push_back(c);
    }
  }
  return window;
}

}  // namespace

Network resub(const Network& net, const ResubParams& params) {
  RandomSimulation sim(net, params.sim_words, params.sim_seed);
  auto solver_ptr = std::make_unique<sat::Solver>();
  auto cnf_ptr = std::make_unique<sat::CnfMapping>(net.size());
  sat::encode_network(net, *solver_ptr, *cnf_ptr);
  const std::size_t base_clauses = solver_ptr->num_clauses();
  auto refresh_solver = [&]() {
    if (solver_ptr->num_clauses() >
        base_clauses + params.solver_clause_budget) {
      solver_ptr = std::make_unique<sat::Solver>();
      cnf_ptr = std::make_unique<sat::CnfMapping>(net.size());
      sat::encode_network(net, *solver_ptr, *cnf_ptr);
    }
  };

  struct Replacement {
    GateType type;
    Signal a, b;
    bool out_compl;
  };
  std::vector<std::optional<Replacement>> repl(net.size());

  // Candidate binary ops (in terms of non-complemented divisor words).
  struct BinOp {
    GateType type;
    bool ca, cb;  // input complements
  };
  std::vector<BinOp> ops = {{GateType::kAnd2, false, false},
                            {GateType::kAnd2, true, false},
                            {GateType::kAnd2, false, true},
                            {GateType::kAnd2, true, true}};
  if (params.basis.use_xor) ops.push_back({GateType::kXor2, false, false});

  const int W = params.sim_words;
  auto words_of = [&](NodeId d) { return sim.node_values(d); };

  std::size_t budget = 1u << 22;  // overall pair budget
  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    // Only profitable when the node's MFFC has at least 2 gates.
    const Cone mffc = compute_mffc(net, n, 16);
    if (mffc.inner.size() < 2) continue;

    const auto window = divisor_window(net, n, params.max_window);
    const std::uint64_t* wn = words_of(n);
    bool done = false;
    for (std::size_t i = 0; i < window.size() && !done; ++i) {
      for (std::size_t j = i + 1; j < window.size() && !done; ++j) {
        if (budget == 0) break;
        --budget;
        const std::uint64_t* wa = words_of(window[i]);
        const std::uint64_t* wb = words_of(window[j]);
        for (const BinOp& op : ops) {
          // Evaluate candidate on the simulation words; accept phase too.
          bool eq = true, eq_compl = true;
          for (int w = 0; w < W && (eq || eq_compl); ++w) {
            const std::uint64_t a = wa[w] ^ (op.ca ? ~0ull : 0ull);
            const std::uint64_t b = wb[w] ^ (op.cb ? ~0ull : 0ull);
            const std::uint64_t v = op.type == GateType::kAnd2
                                        ? (a & b)
                                        : (a ^ b);
            if (v != wn[w]) eq = false;
            if (~v != wn[w]) eq_compl = false;
          }
          if (!eq && !eq_compl) continue;
          const bool phase = !eq;
          // SAT proof: n == op(a, b) ^ phase everywhere.
          refresh_solver();
          sat::Solver& solver = *solver_ptr;
          sat::CnfMapping& cnf = *cnf_ptr;
          const sat::Var g = solver.new_var();
          sat::encode_gate(solver, op.type, sat::mk_lit(g),
                           sat::mk_lit(cnf.var_of_node(window[i]), op.ca),
                           sat::mk_lit(cnf.var_of_node(window[j]), op.cb),
                           0);
          const sat::Var t = solver.new_var();
          const sat::Lit lt = sat::mk_lit(t);
          const sat::Lit ln = sat::mk_lit(cnf.var_of_node(n));
          const sat::Lit lg = sat::mk_lit(g, phase);
          solver.add_clause(sat::negate(lt), ln, lg);
          solver.add_clause(sat::negate(lt), sat::negate(ln),
                            sat::negate(lg));
          if (solver.solve({lt}, params.conflict_limit) ==
              sat::Result::kUnsat) {
            solver.add_clause(sat::negate(lt));
            repl[n] = Replacement{op.type, Signal(window[i], op.ca),
                                  Signal(window[j], op.cb), phase};
            done = true;
            break;
          }
        }
      }
    }
  }

  // Rebuild with replacements applied.
  Network dst;
  std::vector<Signal> map(net.size());
  map[0] = dst.constant(false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = dst.create_pi(net.pi_name(i));
  }
  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    if (repl[n]) {
      const Replacement& r = *repl[n];
      const Signal a = map[r.a.node()] ^ r.a.complemented();
      const Signal b = map[r.b.node()] ^ r.b.complemented();
      const Signal g = r.type == GateType::kAnd2 ? dst.create_and(a, b)
                                                 : dst.create_xor(a, b);
      map[n] = g ^ r.out_compl;
      continue;
    }
    const Node& nd = net.node(n);
    std::array<Signal, 3> in{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    map[n] = dst.create_gate(nd.type, in);
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    dst.create_po(map[s.node()] ^ s.complemented(), net.po_name(i));
  }
  const Network result = cleanup(dst);
  return result.num_gates() <= net.num_gates() ? result : cleanup(net);
}

// ---------------------------------------------------------------------------
// rewrite (cut rewriting through the NPN-4 database)
// ---------------------------------------------------------------------------

namespace {

/// Number of cone nodes of (n, cut) that disappear if n is re-expressed
/// from the cut leaves: nodes whose entire fanout stays inside the cone.
int cut_cone_savings(const Network& net, NodeId n, const Cut& cut) {
  int saved = 0;
  net.new_traversal();
  std::vector<NodeId> stack{n};
  net.mark(n);
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    ++saved;
    const Node& nd = net.node(x);
    for (int i = 0; i < nd.num_fanins; ++i) {
      const NodeId c = nd.fanin[i].node();
      if (cut.contains(c) || !net.is_gate(c) || net.marked(c)) continue;
      // Only single-fanout nodes are guaranteed to die with the cone.
      if (net.node(c).fanout_size != 1) continue;
      net.mark(c);
      stack.push_back(c);
    }
  }
  return saved;
}

}  // namespace

Network rewrite(const Network& net, const RewriteParams& params) {
  Network dst;
  auto& db = NpnDatabase::shared(params.basis, NpnDatabase::Objective::kArea);

  CutEnumerator cuts(net, {.cut_size = params.cut_size, .cut_limit = 8});
  cuts.run(topo_order(net));

  std::vector<Signal> map(net.size());
  map[0] = dst.constant(false);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    map[net.pi_at(i)] = dst.create_pi(net.pi_name(i));
  }

  for (const NodeId n : topo_order(net)) {
    if (!net.is_gate(n)) continue;
    const Node& nd = net.node(n);

    // Plain rebuild first (cheap, benefits from strashing).
    std::array<Signal, 3> in{};
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = map[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    const std::size_t before_plain = dst.num_gates();
    const Signal plain = dst.create_gate(nd.type, in);
    const int plain_added =
        static_cast<int>(dst.num_gates() - before_plain);

    Signal best = plain;
    int best_gain = 0;
    for (const Cut& cut : cuts.cuts(n)) {
      if (cut.is_trivial() || cut.size < 2) continue;
      const int saved = cut_cone_savings(net, n, cut);
      std::vector<Signal> leaves;
      leaves.reserve(cut.size);
      for (int i = 0; i < cut.size; ++i) leaves.push_back(map[cut.leaves[i]]);
      const std::size_t before = dst.num_gates();
      const auto cand =
          db.instantiate(dst, cut.function, cut.size, leaves);
      if (!cand) continue;
      const int added = static_cast<int>(dst.num_gates() - before);
      // Gain relative to the plain rebuild of the same cone.
      const int gain = (saved + plain_added - 1) - added;
      if (gain > best_gain ||
          (params.zero_cost && gain == best_gain && cand->node() != best.node())) {
        best = *cand;
        best_gain = gain;
      }
    }
    map[n] = best;
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    const Signal s = net.po_at(i);
    dst.create_po(map[s.node()] ^ s.complemented(), net.po_name(i));
  }
  const Network result = cleanup(dst);
  return result.num_gates() <= net.num_gates() ? result : cleanup(net);
}

// ---------------------------------------------------------------------------
// compress2rs_like
// ---------------------------------------------------------------------------

Network compress2rs_like(const Network& net, GateBasis basis, int max_rounds,
                         ScriptStats* stats) {
  Network best = cleanup(net);
  if (stats) {
    stats->initial_gates = best.num_gates();
    stats->initial_depth = best.depth();
  }
  Network cur = best;
  int rounds = 0;
  for (int r = 0; r < max_rounds; ++r) {
    ++rounds;
    cur = balance(cur);
    cur = rewrite(cur, {.basis = basis});
    cur = refactor(cur, {.basis = basis});
    cur = resub(cur, {.basis = basis});
    cur = sweep(cur);
    cur = balance(cur);
    const bool better =
        cur.num_gates() < best.num_gates() ||
        (cur.num_gates() == best.num_gates() && cur.depth() < best.depth());
    if (!better) break;
    best = cur;
  }
  if (stats) {
    stats->iterations = rounds;
    stats->final_gates = best.num_gates();
    stats->final_depth = best.depth();
  }
  return best;
}

}  // namespace mcs
