/// \file opt_passes.cpp
/// \brief Flow registrations for the technology-independent optimization
/// passes (balance / rewrite / refactor / resub / sweep / compress2rs).
/// Each registration adapts typed key=value args onto the pass's existing
/// `*Params` struct; a nonzero FlowContext seed overrides the simulation
/// seeds so a whole flow can be re-randomized from one knob.

#include "mcs/flow/flow.hpp"
#include "mcs/flow/registration.hpp"
#include "mcs/opt/optimize.hpp"

// The registrations below use designated initializers and deliberately
// leave defaulted PassInfo/ParamSpec members out; GCC's -Wextra flags
// every omitted member, so silence that one diagnostic here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
#endif

namespace mcs::flow {

void register_opt_passes(PassRegistry& registry) {
  registry.add({
      .name = "balance",
      .summary = "associativity-flattening tree balancing (depth)",
      .kind = PassKind::kTransform,
      .parallel_ok = true,
      .run = [](FlowContext& ctx,
                const PassArgs&) { ctx.net = balance(ctx.net); },
  });

  registry.add({
      .name = "rewrite",
      .summary = "cut rewriting through the NPN-4 database",
      .kind = PassKind::kTransform,
      .params = {{.key = "k",
                  .type = ParamType::kInt,
                  .default_value = "4",
                  .help = "cut size"},
                 {.key = "zero",
                  .type = ParamType::kBool,
                  .default_value = "false",
                  .help = "accept zero-cost rewrites"},
                 {.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "replacement basis"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            RewriteParams params;
            params.cut_size = static_cast<int>(args.get_int("k"));
            params.zero_cost = args.get_bool("zero");
            params.basis = args.get_basis("basis");
            ctx.net = rewrite(ctx.net, params);
          },
  });

  registry.add({
      .name = "refactor",
      .summary = "MFFC collapse + ISOP refactoring (area)",
      .kind = PassKind::kTransform,
      .params = {{.key = "leaves",
                  .type = ParamType::kInt,
                  .default_value = "10",
                  .help = "MFFC leaf bound"},
                 {.key = "zero",
                  .type = ParamType::kBool,
                  .default_value = "false",
                  .help = "accept zero-cost rewrites"},
                 {.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "replacement basis"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            RefactorParams params;
            params.max_leaves = static_cast<int>(args.get_int("leaves"));
            params.zero_cost = args.get_bool("zero");
            params.basis = args.get_basis("basis");
            ctx.net = refactor(ctx.net, params);
          },
  });

  registry.add({
      .name = "resub",
      .summary = "simulation-guided SAT-verified resubstitution",
      .kind = PassKind::kTransform,
      .params = {{.key = "window",
                  .type = ParamType::kInt,
                  .default_value = "24",
                  .help = "divisor candidates per node"},
                 {.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "replacement basis"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            ResubParams params;
            params.max_window = static_cast<int>(args.get_int("window"));
            params.basis = args.get_basis("basis");
            if (ctx.seed != 0) params.sim_seed = ctx.seed;
            ctx.net = resub(ctx.net, params);
          },
  });

  registry.add({
      .name = "sweep",
      .summary = "SAT sweeping: merge functionally equivalent nodes",
      .kind = PassKind::kTransform,
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs&) {
            SweepParams params;
            // The proof batches run on the flow's worker setting (the
            // `threads` pass / MCS_THREADS), like every parallel path.
            params.num_threads = ctx.par.num_threads;
            if (ctx.seed != 0) params.sim_seed = ctx.seed;
            ctx.net = sweep(ctx.net, params);
          },
  });

  registry.add({
      .name = "compress2rs",
      .summary = "the full optimization script, iterated to convergence",
      .kind = PassKind::kTransform,
      .params = {{.key = "rounds",
                  .type = ParamType::kInt,
                  .default_value = "3",
                  .help = "maximum rounds"},
                 {.key = "basis",
                  .type = ParamType::kBasis,
                  .default_value = "xmg",
                  .help = "working basis"}},
      .parallel_ok = true,
      .run =
          [](FlowContext& ctx, const PassArgs& args) {
            ScriptStats stats;
            ctx.net = compress2rs_like(ctx.net, args.get_basis("basis"),
                                       static_cast<int>(args.get_int("rounds")),
                                       &stats);
            ctx.note = std::to_string(stats.iterations) + " iterations";
          },
  });
}

}  // namespace mcs::flow
