/// \file optimize.hpp
/// \brief Technology-independent logic optimization.
///
/// These passes play the role of ABC's `compress2rs` in the paper's
/// experimental setup: they produce the "optimized" networks that feed the
/// mappers and the DCH snapshots.
///
///   - balance():   associativity-flattening tree balancing (depth).
///   - refactor():  MFFC collapse + ISOP factoring (area).
///   - sweep():     SAT sweeping -- merges functionally equivalent nodes
///                  (simulation signatures + SAT proof), like ABC's fraig.
///   - rewrite():   cut-based resynthesis through the NPN-4 database.
///   - compress2rs_like(): the composite script iterated to convergence.

#pragma once

#include "mcs/network/network.hpp"
#include "mcs/resyn/basis.hpp"

namespace mcs {

/// Rebuilds the network with balanced AND/XOR operand trees (reduces depth;
/// never increases the gate count of a chain).
Network balance(const Network& net);

struct RefactorParams {
  int max_leaves = 10;   ///< MFFC leaf bound
  bool zero_cost = false;  ///< accept equal-size rewrites too
  GateBasis basis = GateBasis::xmg();
};

/// MFFC-based refactoring: collapse each qualifying MFFC to a truth table,
/// re-express it as a factored form, keep the smaller structure.
Network refactor(const Network& net, const RefactorParams& params = {});

struct SweepParams {
  int sim_words = 16;
  std::uint64_t sim_seed = 0xdead5eed;
  std::int64_t conflict_limit = 300;
  int max_rounds = 16;  ///< simulate/prove/refine iterations
  /// Worker threads for the proof batches; values < 1 resolve through
  /// ThreadPool::resolve_threads (MCS_THREADS / hardware).
  int num_threads = 1;
};

/// SAT sweeping: proves functional node equivalences and merges them
/// (fanins of later nodes are redirected to the earliest class member).
/// A thin wrapper over the mcs::sweep engine (sweep/sweep.hpp):
/// simulation-seeded candidate classes, parallel batched cone-restricted
/// miters, counterexample-driven class refinement.
Network sweep(const Network& net, const SweepParams& params = {});

struct ResubParams {
  int max_window = 24;      ///< divisor candidates per node
  int sim_words = 16;
  std::uint64_t sim_seed = 0x0b5e55ed;
  std::int64_t conflict_limit = 300;
  std::size_t solver_clause_budget = 60000;  ///< re-encode past this growth
  GateBasis basis = GateBasis::xmg();
};

/// Simulation-guided, SAT-verified resubstitution: re-expresses a node as
/// one gate over two existing divisors when that saves its MFFC (the "rs"
/// passes of ABC's compress2rs).
Network resub(const Network& net, const ResubParams& params = {});

struct RewriteParams {
  int cut_size = 4;
  bool zero_cost = false;
  GateBasis basis = GateBasis::xmg();
};

/// Cut rewriting: replaces each node's best 4-cut structure with the
/// NPN-database structure when that lowers the node count.
Network rewrite(const Network& net, const RewriteParams& params = {});

struct ScriptStats {
  int iterations = 0;
  std::size_t initial_gates = 0;
  std::size_t final_gates = 0;
  std::uint32_t initial_depth = 0;
  std::uint32_t final_depth = 0;
};

/// The compress2rs-like script: rounds of balance / rewrite / refactor /
/// sweep until the (gates, depth) pair stops improving.
Network compress2rs_like(const Network& net, GateBasis basis,
                         int max_rounds = 4, ScriptStats* stats = nullptr);

}  // namespace mcs
