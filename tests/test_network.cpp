/// Unit tests for the mixed network: strashing rules, constant folding,
/// levels, choices, traversal utilities, cones and cleanup.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "mcs/network/network.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sim/simulator.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

TEST(Network, ConstantsAndPis) {
  Network net;
  EXPECT_EQ(net.size(), 1u);
  EXPECT_TRUE(net.is_const0(0));
  const Signal a = net.create_pi("a");
  EXPECT_TRUE(net.is_pi(a.node()));
  EXPECT_EQ(net.num_pis(), 1u);
  EXPECT_EQ(net.pi_name(0), "a");
  EXPECT_EQ(net.constant(true), !net.constant(false));
}

TEST(Network, AndFoldingRules) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  EXPECT_EQ(net.create_and(a, net.constant(false)), net.constant(false));
  EXPECT_EQ(net.create_and(a, net.constant(true)), a);
  EXPECT_EQ(net.create_and(a, a), a);
  EXPECT_EQ(net.create_and(a, !a), net.constant(false));
  const Signal g1 = net.create_and(a, b);
  const Signal g2 = net.create_and(b, a);
  EXPECT_EQ(g1, g2) << "strashing must canonicalize operand order";
  EXPECT_EQ(net.num_gates(), 1u);
}

TEST(Network, XorNormalizesComplements) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal x1 = net.create_xor(a, b);
  const Signal x2 = net.create_xor(!a, b);
  const Signal x3 = net.create_xor(a, !b);
  const Signal x4 = net.create_xor(!a, !b);
  EXPECT_EQ(x1, !x2);
  EXPECT_EQ(x2, x3);
  EXPECT_EQ(x1, x4);
  EXPECT_EQ(net.num_gates(), 1u) << "all four XORs share one node";
  EXPECT_EQ(net.create_xor(a, a), net.constant(false));
  EXPECT_EQ(net.create_xor(a, !a), net.constant(true));
}

TEST(Network, MajSpecialCases) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  // Constant fanins degrade to AND/OR.
  EXPECT_EQ(net.create_maj(a, b, net.constant(false)), net.create_and(a, b));
  EXPECT_EQ(net.create_maj(a, b, net.constant(true)), net.create_or(a, b));
  // Duplicate / complementary fanins.
  EXPECT_EQ(net.create_maj(a, a, c), a);
  EXPECT_EQ(net.create_maj(a, !a, c), c);
  // Self-duality normalization.
  const Signal m1 = net.create_maj(a, b, c);
  const Signal m2 = net.create_maj(!a, !b, !c);
  EXPECT_EQ(m1, !m2);
}

TEST(Network, MajSelfDualSimulation) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  net.create_po(net.create_maj(!a, !b, c));  // two complements: normalized
  const auto pos = simulate_pos(net);
  // MAJ(!a,!b,c) truth table over (a,b,c).
  for (int m = 0; m < 8; ++m) {
    const bool va = m & 1, vb = m & 2, vc = m & 4;
    const int ones = !va + !vb + vc;
    EXPECT_EQ(pos[0].get_bit(m), ones >= 2);
  }
}

TEST(Network, Xor3PushesComplementsOut) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal x1 = net.create_xor3(a, b, c);
  const Signal x2 = net.create_xor3(!a, b, c);
  const Signal x3 = net.create_xor3(!a, !b, !c);
  EXPECT_EQ(x1, !x2);
  EXPECT_EQ(x1, !x3);
  EXPECT_EQ(net.num_gates(), 1u);
  EXPECT_EQ(net.create_xor3(a, a, c), c);
  EXPECT_EQ(net.create_xor3(a, !a, c), !c);
}

TEST(Network, LevelsAndDepth) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal g1 = net.create_and(a, b);
  const Signal g2 = net.create_and(g1, c);
  net.create_po(g2);
  EXPECT_EQ(net.level(g1.node()), 1u);
  EXPECT_EQ(net.level(g2.node()), 2u);
  EXPECT_EQ(net.depth(), 2u);
  Network copy = net;
  EXPECT_EQ(recompute_levels(copy), 2u);
}

TEST(Network, FanoutCounts) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal g1 = net.create_and(a, b);
  const Signal g2 = net.create_and(g1, !a);
  net.create_po(g1);
  net.create_po(g2);
  EXPECT_EQ(net.node(a.node()).fanout_size, 2u);  // g1 and g2
  EXPECT_EQ(net.node(g1.node()).fanout_size, 2u); // g2 and PO
  EXPECT_EQ(net.node(g2.node()).fanout_size, 1u); // PO
}

TEST(Network, ChoiceLinks) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal r = net.create_and(net.create_and(a, b), c);
  const Signal m = net.create_and(a, net.create_and(b, c));
  net.create_po(r);
  ASSERT_NE(r.node(), m.node());
  EXPECT_TRUE(net.is_repr(r.node()));
  net.add_choice(r.node(), m.node(), false);
  EXPECT_TRUE(net.has_choice(r.node()));
  EXPECT_FALSE(net.is_repr(m.node()));
  EXPECT_EQ(net.repr_of(m.node()), r.node());
  EXPECT_EQ(net.num_choices(), 1u);
  net.clear_choices();
  EXPECT_EQ(net.num_choices(), 0u);
  EXPECT_TRUE(net.is_repr(m.node()));
}

TEST(NetworkUtils, TopoOrderRespectsFanins) {
  const auto net = testing::random_network({});
  const auto order = topo_order(net);
  std::vector<int> pos(net.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = (int)i;
  for (const NodeId n : order) {
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      EXPECT_LT(pos[nd.fanin[i].node()], pos[n]);
    }
  }
}

TEST(NetworkUtils, ChoiceTopoOrderPutsMembersFirst) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal r = net.create_and(net.create_and(a, b), c);
  const Signal m = net.create_and(a, net.create_and(b, c));
  net.create_po(r);
  net.add_choice(r.node(), m.node(), false);
  const auto order = choice_topo_order(net);
  std::vector<int> pos(net.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = (int)i;
  ASSERT_GE(pos[m.node()], 0) << "member must be visited";
  EXPECT_LT(pos[m.node()], pos[r.node()]);
  for (const NodeId n : order) {
    const Node& nd = net.node(n);
    for (int i = 0; i < nd.num_fanins; ++i) {
      EXPECT_LT(pos[nd.fanin[i].node()], pos[n]);
    }
  }
}

TEST(NetworkUtils, Reaches) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal g1 = net.create_and(a, b);
  const Signal g2 = net.create_and(g1, !a);
  EXPECT_TRUE(reaches(net, g2.node(), a.node()));
  EXPECT_TRUE(reaches(net, g2.node(), g1.node()));
  EXPECT_FALSE(reaches(net, g1.node(), g2.node()));
}

TEST(NetworkUtils, MffcOfTree) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal d = net.create_pi();
  const Signal g1 = net.create_and(a, b);
  const Signal g2 = net.create_and(c, d);
  const Signal g3 = net.create_and(g1, g2);
  net.create_po(g3);
  const auto cone = compute_mffc(net, g3.node(), 8);
  EXPECT_EQ(cone.inner.size(), 3u) << "whole tree is fanout-free";
  EXPECT_EQ(cone.leaves.size(), 4u);
}

TEST(NetworkUtils, MffcStopsAtSharedNodes) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal g1 = net.create_and(a, b);
  const Signal g2 = net.create_and(g1, c);
  net.create_po(g2);
  net.create_po(g1);  // g1 is shared: not in MFFC of g2
  const auto cone = compute_mffc(net, g2.node(), 8);
  EXPECT_EQ(cone.inner.size(), 1u);
  ASSERT_EQ(cone.leaves.size(), 2u);
  EXPECT_TRUE(std::find(cone.leaves.begin(), cone.leaves.end(), g1.node()) !=
              cone.leaves.end());
}

TEST(NetworkUtils, ConeFunctionMatchesSimulation) {
  const auto net = testing::random_network({.num_pis = 5, .num_gates = 30});
  const auto pos = simulate_pos(net);
  std::vector<NodeId> pis(net.pis());
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    EXPECT_EQ(cone_function(net, net.po_at(i), pis), pos[i]);
  }
}

TEST(NetworkUtils, CleanupDropsDanglingAndPreservesFunction) {
  auto net = testing::random_network({.num_pis = 5, .num_gates = 40});
  const auto before = simulate_pos(net);
  const Network compact = cleanup(net);
  const auto after = simulate_pos(compact);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
  EXPECT_LE(compact.num_gates(), net.num_gates());
  // Every gate in the compact network is reachable from a PO.
  const auto order = topo_order(compact);
  std::size_t gates_in_order = 0;
  for (const NodeId n : order) {
    if (compact.is_gate(n)) ++gates_in_order;
  }
  EXPECT_EQ(gates_in_order, compact.num_gates());
}

TEST(NetworkUtils, CleanupKeepsChoices) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  const Signal r = net.create_and(net.create_and(a, b), c);
  const Signal m = net.create_and(a, net.create_and(b, c));
  net.create_po(r);
  net.add_choice(r.node(), m.node(), false);
  const Network kept = cleanup(net, {.keep_choices = true});
  EXPECT_EQ(kept.num_choices(), 1u);
  const Network dropped = cleanup(net);
  EXPECT_EQ(dropped.num_choices(), 0u);
}

TEST(NetworkUtils, CopyConeSubstitutesLeaves) {
  Network src;
  const Signal a = src.create_pi();
  const Signal b = src.create_pi();
  const Signal f = src.create_xor(a, src.create_and(a, b));
  Network dst;
  const Signal x = dst.create_pi();
  const Signal y = dst.create_pi();
  const Signal g = copy_cone(src, dst, f, {y, x});  // swap the inputs
  dst.create_po(g);
  const auto pos = simulate_pos(dst);
  // g(x, y) = f(y, x) = y ^ (y & x).
  for (int m = 0; m < 4; ++m) {
    const bool vx = m & 1, vy = m & 2;
    EXPECT_EQ(pos[0].get_bit(m), vy != (vy && vx));
  }
}

// --- open-addressed strash table -------------------------------------------

TEST(Network, StrashResolvesEveryGateOnRandomNetworks) {
  // The open-addressed table must agree with the node array: every created
  // gate resolves back to its own id (hit path), across several rehash
  // boundaries (well past the initial capacity).
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto net = testing::random_network(
        {.num_pis = 10, .num_gates = 5000, .num_pos = 8, .seed = seed});
    for (NodeId n = 0; n < net.size(); ++n) {
      if (!net.is_gate(n)) continue;
      const Node& nd = net.node(n);
      ASSERT_EQ(net.lookup_gate(nd.type, nd.fanin), n)
          << "strash lookup disagrees with the node array (seed " << seed
          << ")";
    }
  }
}

TEST(Network, StrashMatchesReferenceMapOnRandomCreations) {
  // Drive the same random creation sequence through the Network and a
  // shadow map keyed by the *returned normalized* signal: a sequence item
  // seen twice must return the identical signal (no duplicate nodes, no
  // lost entries in the probe sequences).
  Network net;
  Rng rng(99);
  std::vector<Signal> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(net.create_pi());
  std::map<std::tuple<std::uint32_t, std::uint32_t>, Signal> shadow;
  for (int i = 0; i < 3000; ++i) {
    const Signal a = pool[rng.next_below(pool.size())] ^ rng.next_bool();
    const Signal b = pool[rng.next_below(pool.size())] ^ rng.next_bool();
    const Signal s = net.create_and(a, b);
    // Canonical key: create_and commutes and normalizes, so key on the
    // sorted raw pair.
    const auto key = std::make_tuple(std::min(a.raw(), b.raw()),
                                     std::max(a.raw(), b.raw()));
    const auto [it, inserted] = shadow.emplace(key, s);
    if (!inserted) {
      EXPECT_EQ(it->second, s) << "same operands must strash to one node";
    }
    pool.push_back(s);
  }
}

TEST(Network, ReserveDoesNotChangeConstruction) {
  const auto build = [](bool reserve) {
    Network net;
    if (reserve) net.reserve(4096);
    Rng rng(5);
    std::vector<Signal> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(net.create_pi());
    for (int i = 0; i < 1000; ++i) {
      const Signal a = pool[rng.next_below(pool.size())] ^ rng.next_bool();
      const Signal b = pool[rng.next_below(pool.size())] ^ rng.next_bool();
      pool.push_back(rng.next_bool() ? net.create_and(a, b)
                                     : net.create_xor(a, b));
    }
    net.create_po(pool.back());
    return net;
  };
  const Network plain = build(false);
  const Network reserved = build(true);
  EXPECT_TRUE(structurally_identical(plain, reserved));
}

// --- cached depth / per-type counters ---------------------------------------

TEST(Network, CachedDepthTracksPosAndLevelRecompute) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal g1 = net.create_and(a, b);
  EXPECT_EQ(net.depth(), 0u) << "no POs yet";
  net.create_po(a);
  EXPECT_EQ(net.depth(), 0u);
  net.create_po(g1);
  EXPECT_EQ(net.depth(), 1u);
  const Signal g2 = net.create_and(g1, !a);
  EXPECT_EQ(net.depth(), 1u) << "unreferenced gate does not deepen";
  net.create_po(g2);
  EXPECT_EQ(net.depth(), 2u);
  // Level mutation invalidates through the explicit hook.
  EXPECT_EQ(recompute_levels(net), 2u);
}

TEST(Network, NumGatesOfMatchesExhaustiveCount) {
  const auto net = testing::random_network(
      {.num_pis = 6, .num_gates = 300, .num_pos = 4, .seed = 11});
  for (const GateType t :
       {GateType::kConst0, GateType::kPi, GateType::kAnd2, GateType::kXor2,
        GateType::kMaj3, GateType::kXor3}) {
    std::size_t expect = 0;
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.node(n).type == t) ++expect;
    }
    EXPECT_EQ(net.num_gates_of(t), expect)
        << "incremental counter diverged for " << gate_type_name(t);
  }
}

TEST(NetworkUtils, StatsCountGateTypes) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  const Signal c = net.create_pi();
  net.create_po(net.create_and(a, b));
  net.create_po(net.create_xor(a, c));
  net.create_po(net.create_maj(a, b, c));
  net.create_po(net.create_xor3(a, b, c));
  const auto s = network_stats(net);
  EXPECT_EQ(s.num_and2, 1u);
  EXPECT_EQ(s.num_xor2, 1u);
  EXPECT_EQ(s.num_maj3, 1u);
  EXPECT_EQ(s.num_xor3, 1u);
  EXPECT_EQ(s.num_gates, 4u);
  EXPECT_EQ(s.depth, 1u);
}

}  // namespace
}  // namespace mcs
