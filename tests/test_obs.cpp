/// Unit tests for mcs::obs: per-thread counter sharding aggregates to the
/// same totals as a serial loop (including after worker-thread retirement),
/// gauges/histograms behave, the Chrome trace-event export is well-formed
/// JSON with correctly nested spans and per-thread attribution, and -- the
/// determinism contract -- fraig and the partition-parallel optimizer stay
/// bit-identical with tracing on vs off at 1 and N threads.
///
/// Every metric/tracing assertion is guarded for MCS_OBS_DISABLE builds
/// (the API collapses to no-op stubs there); the determinism tests compile
/// and run in both configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sweep/sweep.hpp"

namespace mcs {
namespace {

// --- a minimal JSON validator ----------------------------------------------
// Recursive-descent acceptor for the full JSON grammar; the trace and
// metrics exports must round-trip it byte-exactly (pos == size at the end).

class JsonValidator {
 public:
  static bool valid(const std::string& s) {
    JsonValidator v(s);
    v.ws();
    if (!v.value()) return false;
    v.ws();
    return v.pos_ == s.size();
  }

 private:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool lit(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;  // accept any escaped char (incl. the 'u' of \uXXXX)
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are illegal in JSON
      }
    }
    return false;
  }
  bool number() {
    eat('-');
    std::size_t digits = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_, ++digits;
    if (digits == 0) return false;
    if (eat('.')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }
  bool value() {
    ws();
    switch (peek()) {
      case '{': {
        ++pos_;
        ws();
        if (eat('}')) return true;
        do {
          ws();
          if (!string()) return false;
          ws();
          if (!eat(':')) return false;
          if (!value()) return false;
          ws();
        } while (eat(','));
        return eat('}');
      }
      case '[': {
        ++pos_;
        ws();
        if (eat(']')) return true;
        do {
          if (!value()) return false;
          ws();
        } while (eat(','));
        return eat(']');
      }
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ObsJsonValidator, SelfCheck) {
  EXPECT_TRUE(JsonValidator::valid("{}"));
  EXPECT_TRUE(JsonValidator::valid(R"({"a": [1, -2.5e3, "x\"y"], "b": {}})"));
  EXPECT_TRUE(JsonValidator::valid("[true, false, null]"));
  EXPECT_FALSE(JsonValidator::valid("{"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\": }"));
  EXPECT_FALSE(JsonValidator::valid("{} trailing"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\"\n: \"\x01\"}"));
}

#ifndef MCS_OBS_DISABLE

// --- metrics ----------------------------------------------------------------

TEST(ObsMetrics, CounterAggregatesAcrossPoolWorkers) {
  obs::Counter& c = obs::counter("test.pool_adds");
  const std::uint64_t before = c.value();

  constexpr std::size_t kItems = 5000;
  std::uint64_t serial = 0;
  for (std::size_t i = 0; i < kItems; ++i) serial += i + 1;

  {
    ThreadPool pool(4);
    pool.submit_bulk(
        kItems, [&](std::size_t i) { c.add(i + 1); }, 4);
  }
  // The pool is destroyed: the workers' per-thread cells have been folded
  // into the retired accumulator, and the total must still be exact.
  EXPECT_EQ(c.value() - before, serial);
}

TEST(ObsMetrics, CounterSurvivesManyShortLivedThreads) {
  obs::Counter& c = obs::counter("test.short_threads");
  const std::uint64_t before = c.value();
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&c] { c.add(10); });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(c.value() - before, 8u * 4u * 10u);
}

TEST(ObsMetrics, GaugeSetMaxIsHighWaterMark) {
  obs::Gauge& g = obs::gauge("test.hwm");
  g.set(0);
  g.set_max(7);
  g.set_max(3);
  EXPECT_EQ(g.value(), 7);
  g.set_max(11);
  EXPECT_EQ(g.value(), 11);
  g.set(2);  // plain set still lowers
  EXPECT_EQ(g.value(), 2);
}

TEST(ObsMetrics, HistogramBucketsByLog2) {
  obs::Histogram& h = obs::histogram("test.hist");
  const std::uint64_t before = h.total();
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1
  h.observe(2);   // bucket 2
  h.observe(3);   // bucket 2
  h.observe(~0ull);  // overflow bucket
  EXPECT_EQ(h.total() - before, 5u);
  const std::vector<std::uint64_t> buckets = h.buckets();
  ASSERT_GE(buckets.size(), 3u);
  EXPECT_GE(buckets[2], 2u) << "2 and 3 share the log2 bucket";
  EXPECT_GE(buckets.back(), 1u) << "huge samples land in the last bucket";
}

TEST(ObsMetrics, SnapshotDeltaReportsOnlyMovedCounters) {
  obs::Counter& moved = obs::counter("test.delta_moved");
  obs::counter("test.delta_still");  // registered but untouched

  const obs::MetricsSnapshot before = obs::snapshot();
  moved.add(42);
  const obs::MetricsSnapshot delta = obs::snapshot_delta(before);

  bool saw_moved = false;
  for (const obs::MetricValue& mv : delta.counters) {
    EXPECT_NE(mv.name, "test.delta_still")
        << "untouched counters must not appear in a delta";
    if (mv.name == "test.delta_moved") {
      saw_moved = true;
      EXPECT_EQ(mv.value, 42);
    }
  }
  EXPECT_TRUE(saw_moved);
}

TEST(ObsMetrics, LookupIsStableAndIdempotent) {
  obs::Counter& a = obs::counter("test.same_name");
  obs::Counter& b = obs::counter("test.same_name");
  EXPECT_EQ(&a, &b) << "lookup-or-create must return the same instance";
}

TEST(ObsMetrics, MetricsJsonIsValid) {
  obs::counter("test.json_presence").add(1);
  const std::string json = obs::metrics_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("test.json_presence"), std::string::npos);
}

// --- tracing ----------------------------------------------------------------

/// One parsed "X" event from the Chrome trace export.
struct ParsedEvent {
  long tid = 0;
  std::string name;
  unsigned long long ts = 0;
  unsigned long long dur = 0;
};

/// Extracts the complete ("X") events; the emitter writes fields in a fixed
/// order so a scan is enough (the JSON validator covers grammar).
std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  std::size_t pos = 0;
  const std::string marker = "{\"ph\":\"X\",\"pid\":1,\"tid\":";
  while ((pos = json.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    ParsedEvent ev;
    ev.tid = std::strtol(json.c_str() + pos, nullptr, 10);
    const std::size_t name_at = json.find("\"name\":\"", pos) + 8;
    const std::size_t name_end = json.find('"', name_at);
    ev.name = json.substr(name_at, name_end - name_at);
    const std::size_t ts_at = json.find("\"ts\":", name_end) + 5;
    ev.ts = std::strtoull(json.c_str() + ts_at, nullptr, 10);
    const std::size_t dur_at = json.find("\"dur\":", ts_at) + 6;
    ev.dur = std::strtoull(json.c_str() + dur_at, nullptr, 10);
    out.push_back(std::move(ev));
  }
  return out;
}

class ObsTracing : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(true);
    obs::trace_clear();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::trace_clear();
  }
};

TEST_F(ObsTracing, SpansNestAndExportValidChromeJson) {
  {
    obs::Span outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      obs::Span inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    { obs::Span inner2(std::string("inner2")); }
  }
  EXPECT_EQ(obs::trace_size(), 3u);

  const std::string json = obs::trace_json();
  ASSERT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 3u);
  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  for (const ParsedEvent& ev : events) {
    if (ev.name == "outer") outer = &ev;
    if (ev.name == "inner") inner = &ev;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid) << "same thread, same lane";
  // Well-formed nesting: the child interval lies inside the parent's.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_GE(outer->dur, inner->dur);
}

TEST_F(ObsTracing, ThreadAttributionAndNames) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([t] {
      obs::set_thread_name("obs-test-" + std::to_string(t));
      obs::Span span([&] { return "work:" + std::to_string(t); });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  for (std::thread& t : threads) t.join();

  const std::string json = obs::trace_json();
  ASSERT_TRUE(JsonValidator::valid(json)) << json;
  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid)
      << "spans from distinct threads must land in distinct lanes";
  // Thread-name metadata events accompany the named threads.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("obs-test-0"), std::string::npos);
  EXPECT_NE(json.find("obs-test-1"), std::string::npos);
}

TEST_F(ObsTracing, PoolWorkersAppearInTrace) {
  ThreadPool pool(2);
  pool.submit_bulk(
      64,
      [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      },
      2);
  pool.wait_idle();

  const std::string json = obs::trace_json();
  ASSERT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("pool-worker-"), std::string::npos)
      << "worker threads must self-identify in the trace";
  EXPECT_NE(json.find("pool:batch"), std::string::npos);
}

TEST_F(ObsTracing, DumpRoundTripsThroughFile) {
  { obs::Span span("dumped"); }
  const std::string path =
      ::testing::TempDir() + "/mcs_obs_trace_test.json";
  ASSERT_TRUE(obs::trace_dump(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, obs::trace_json());
  EXPECT_TRUE(JsonValidator::valid(content));
  EXPECT_NE(content.find("\"dumped\""), std::string::npos);
}

TEST_F(ObsTracing, AggregateSpansFoldsByName) {
  const std::uint64_t start = obs::now_us();
  for (int i = 0; i < 3; ++i) {
    obs::Span span("agg:repeat");
  }
  const std::vector<obs::SpanStats> spans = obs::aggregate_spans(start);
  const auto it =
      std::find_if(spans.begin(), spans.end(),
                   [](const obs::SpanStats& s) { return s.name == "agg:repeat"; });
  ASSERT_NE(it, spans.end());
  EXPECT_EQ(it->count, 3u);
}

TEST_F(ObsTracing, DisabledSpanRecordsNothing) {
  obs::set_tracing(false);
  { obs::Span span("invisible"); }
  EXPECT_EQ(obs::trace_size(), 0u);
}

TEST_F(ObsTracing, InFlightSpansDropAcrossClearAndDisable) {
  // A span alive across trace_clear() must not repopulate the cleared
  // buffers when it ends ...
  {
    obs::Span span("straddles-clear");
    obs::trace_clear();
  }
  EXPECT_EQ(obs::trace_size(), 0u);
  // ... and one alive across set_tracing(false) must not record either.
  {
    obs::Span span("straddles-disable");
    obs::set_tracing(false);
  }
  EXPECT_EQ(obs::trace_size(), 0u);
}

TEST_F(ObsTracing, ConcurrentRecordAndAggregateIsSafe) {
  // Writers record spans while another thread exports/aggregates/clears:
  // the exact interleaving submit_bulk leaves behind (a worker finishing
  // its batch span after the caller resumed).  Run under TSAN this is the
  // regression test for the record_span data race.
  // Writers are bounded (not free-spinning) so the buffers can't outgrow
  // the readers and balloon the trace_json cost under sanitizers.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 20000; ++i) {
        obs::Span span("stress:span");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)obs::aggregate_spans(0);
    (void)obs::trace_size();
    if (i % 4 == 0) obs::trace_clear();
    ASSERT_TRUE(JsonValidator::valid(obs::trace_json()));
  }
  for (std::thread& t : writers) t.join();
  EXPECT_TRUE(JsonValidator::valid(obs::trace_json()));
}

// --- histogram percentiles --------------------------------------------------
// percentile_from_buckets is the single derivation shared by metrics_text,
// the telemetry ring and Histogram::percentile; pin its bucket math here.

TEST(ObsPercentile, EmptyIsZeroAndPIsClamped) {
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets({0, 0, 0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram("test.pct.empty").percentile(0.5), 0.0);

  // Out-of-range p clamps to [0, 1] instead of extrapolating: ten samples
  // in bucket 2 = [2, 3] bound every percentile to that range.
  const std::vector<std::uint64_t> ten_in_bucket2 = {0, 0, 10, 0};
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(ten_in_bucket2, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(ten_in_bucket2, 7.0), 3.0);
}

TEST(ObsPercentile, ZeroBucketReportsExactZeros) {
  // Bucket 0 holds exact zeros; a percentile landing there is 0.0, not an
  // interpolated fraction of some power-of-two range.
  obs::Histogram& h = obs::histogram("test.pct.zeros");
  h.observe(0);
  h.observe(0);
  h.observe(1);
  h.observe(1);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 1.0);  // bucket 1 = [1, 1]
}

TEST(ObsPercentile, InterpolatesWithinLog2Bucket) {
  obs::Histogram& h = obs::histogram("test.pct.interp");
  for (std::uint64_t v : {4, 5, 6, 7}) h.observe(v);  // all in bucket 3=[4,7]
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.sum(), 22u);
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 4.75);  // 4 + 1/4 * (7-4)
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.5);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.0);
}

TEST(ObsPercentile, MonotoneAcrossBuckets) {
  obs::Histogram& h = obs::histogram("test.pct.monotone");
  for (std::uint64_t v = 1; v <= 1024; ++v) h.observe(v);
  double prev = 0.0;
  for (const double p : {0.1, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev) << "percentile not monotone at p=" << p;
    prev = q;
  }
  // Uniform 1..1024: the tail percentiles must land in the top buckets.
  EXPECT_GE(h.percentile(0.99), 512.0);
  EXPECT_LE(h.percentile(0.99), 1024.0);
}

// --- metric domains ---------------------------------------------------------
// The obs v2 attribution layer: a thread-bound Scope routes every increment
// to both the process registry and the installed Domain, pool tasks inherit
// the submitter's domain, and Domain::snapshot is an exact per-domain view.

std::int64_t metric_value(const std::vector<obs::MetricValue>& list,
                          const std::string& name) {
  for (const obs::MetricValue& mv : list) {
    if (mv.name == name) return mv.value;
  }
  return -1;
}

TEST(ObsDomains, ScopeRoutesIncrementsToDomainAndGlobal) {
  obs::Counter& c = obs::counter("test.domain.routed");
  const std::uint64_t global_before = c.value();
  obs::Domain inside;
  {
    obs::Scope scope(&inside);
    c.add(7);
  }
  c.add(2);  // outside any scope: global only
  EXPECT_EQ(c.value(), global_before + 9);
  EXPECT_EQ(metric_value(inside.snapshot().counters, "test.domain.routed"), 7);
}

TEST(ObsDomains, NestedScopesSwitchDomains) {
  obs::Counter& c = obs::counter("test.domain.nested");
  obs::Domain outer;
  obs::Domain inner;
  EXPECT_EQ(obs::Scope::current(), nullptr);
  {
    obs::Scope outer_scope(&outer);
    EXPECT_EQ(obs::Scope::current(), &outer);
    c.add(1);
    {
      obs::Scope inner_scope(&inner);
      EXPECT_EQ(obs::Scope::current(), &inner);
      c.add(10);
    }
    EXPECT_EQ(obs::Scope::current(), &outer);
    c.add(100);
  }
  EXPECT_EQ(obs::Scope::current(), nullptr);
  EXPECT_EQ(metric_value(outer.snapshot().counters, "test.domain.nested"),
            101);
  EXPECT_EQ(metric_value(inner.snapshot().counters, "test.domain.nested"), 10);
}

TEST(ObsDomains, SameDomainReentryDoesNotDoubleCount) {
  obs::Counter& c = obs::counter("test.domain.reentry");
  obs::Domain d;
  {
    obs::Scope scope(&d);
    c.add(1);
    {
      obs::Scope again(&d);  // no-op: same domain already installed
      c.add(1);
    }
    c.add(1);  // the outer scope must still be active here
  }
  EXPECT_EQ(metric_value(d.snapshot().counters, "test.domain.reentry"), 3);
}

TEST(ObsDomains, HistogramsAttributeToDomains) {
  obs::Histogram& h = obs::histogram("test.domain.hist");
  obs::Domain d;
  {
    obs::Scope scope(&d);
    h.observe(4);
    h.observe(6);
  }
  h.observe(100);  // outside: global only
  const obs::MetricsSnapshot snap = d.snapshot();
  EXPECT_EQ(metric_value(snap.counters, "test.domain.hist.count"), 2);
  EXPECT_EQ(metric_value(snap.counters, "test.domain.hist.p50_bucket"), 7);
}

TEST(ObsDomains, PoolTasksInheritSubmitterDomain) {
  // The serving-stack contract: work fanned out through the pool is
  // attributed to the domain that was active at submit time, across both
  // submission paths.
  obs::Counter& c = obs::counter("test.domain.pool");
  constexpr std::size_t kItems = 1000;
  obs::Domain bulk_domain;
  obs::Domain submit_domain;
  {
    ThreadPool pool(4);
    {
      obs::Scope scope(&bulk_domain);
      pool.submit_bulk(
          kItems, [&](std::size_t) { c.increment(); }, pool.num_threads());
    }
    {
      obs::Scope scope(&submit_domain);
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 32; ++i) {
        futures.push_back(pool.submit([&] { c.add(2); }));
      }
      for (std::future<void>& f : futures) f.get();
    }
    pool.wait_idle();
  }  // pool join: every worker flushed its task scopes
  EXPECT_EQ(metric_value(bulk_domain.snapshot().counters, "test.domain.pool"),
            static_cast<std::int64_t>(kItems));
  EXPECT_EQ(
      metric_value(submit_domain.snapshot().counters, "test.domain.pool"),
      64);
}

TEST(ObsDomains, ConcurrentDomainsStayExact) {
  // Two threads, each with its own domain, hammer the same counter: the
  // per-domain totals must be exact (no cross-talk), and the global view
  // must see the sum.  This is the unit-level version of the per-job
  // bit-equality contract in test_server.
  obs::Counter& c = obs::counter("test.domain.concurrent");
  const std::uint64_t global_before = c.value();
  obs::Domain a;
  obs::Domain b;
  auto work = [&](obs::Domain* d, std::uint64_t per_add, int iters) {
    obs::Scope scope(d);
    for (int i = 0; i < iters; ++i) c.add(per_add);
  };
  std::thread ta(work, &a, 1, 50000);
  std::thread tb(work, &b, 3, 50000);
  ta.join();
  tb.join();
  EXPECT_EQ(metric_value(a.snapshot().counters, "test.domain.concurrent"),
            50000);
  EXPECT_EQ(metric_value(b.snapshot().counters, "test.domain.concurrent"),
            150000);
  EXPECT_EQ(c.value(), global_before + 200000);
}

TEST(ObsDomains, CpuTimeAccruesToActiveDomain) {
  obs::Domain d;
  {
    obs::Scope scope(&d);
    // Deliberate busy work: CLOCK_THREAD_CPUTIME_ID only advances with
    // actual CPU consumption, so sleeping would not register.
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 20'000'000; ++i) sink = sink + i;
  }
  EXPECT_GT(d.cpu_us(), 0u);
}

TEST(ObsDomains, PeaksSurfaceAsSnapshotGauges) {
  obs::Domain d;
  {
    obs::Scope scope(&d);
    obs::domain_peak_max(obs::DomainPeak::kStrashBytes, 1 << 20);
    obs::domain_peak_max(obs::DomainPeak::kStrashBytes, 1 << 10);  // lower: kept
    obs::domain_peak_max(obs::DomainPeak::kArenaBytes, 123);
  }
  obs::domain_peak_max(obs::DomainPeak::kArenaBytes, 1 << 30);  // no scope: dropped
  EXPECT_EQ(d.peak(obs::DomainPeak::kStrashBytes), 1 << 20);
  EXPECT_EQ(d.peak(obs::DomainPeak::kArenaBytes), 123);
  const obs::MetricsSnapshot snap = d.snapshot();
  EXPECT_EQ(metric_value(snap.gauges, "obs.domain.strash_bytes_max"), 1 << 20);
  EXPECT_EQ(metric_value(snap.gauges, "obs.domain.arena_bytes_max"), 123);
}

TEST(ObsDomains, SnapshotDiffDropsUnchangedCounters) {
  obs::MetricsSnapshot before;
  before.counters = {{"a", 5}, {"b", 7}};
  obs::MetricsSnapshot now;
  now.counters = {{"a", 5}, {"b", 9}, {"c", 2}};
  now.gauges = {{"g", 42}};
  const obs::MetricsSnapshot delta = obs::snapshot_diff(now, before);
  ASSERT_EQ(delta.counters.size(), 2u);
  EXPECT_EQ(metric_value(delta.counters, "b"), 2);
  EXPECT_EQ(metric_value(delta.counters, "c"), 2);
  EXPECT_EQ(metric_value(delta.counters, "a"), -1);  // unchanged: absent
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(metric_value(delta.gauges, "g"), 42);
}

// --- telemetry ring & exports -----------------------------------------------

TEST(ObsSampler, RingCollectsBoundedSamples) {
  ASSERT_FALSE(obs::sampler_running());
  obs::counter("test.ring.activity").add(5);
  obs::sampler_start(/*interval_ms=*/5, /*ring_capacity=*/4);
  EXPECT_TRUE(obs::sampler_running());
  // Wait until the ring has wrapped at least once (>= 5 sampling periods),
  // polling instead of a fixed sleep so slow CI machines pass too.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  const auto count_samples = [](const std::string& json) {
    std::size_t n = 0;
    for (std::size_t at = json.find("\"t_us\""); at != std::string::npos;
         at = json.find("\"t_us\"", at + 1)) {
      ++n;
    }
    return n;
  };
  std::string json;
  while (std::chrono::steady_clock::now() < deadline) {
    json = obs::ring_json();
    if (count_samples(json) >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(JsonValidator::valid(json)) << json;
  // Bounded: capacity 4 means exactly 4 samples once the ring has wrapped.
  EXPECT_EQ(count_samples(json), 4u);
  EXPECT_NE(json.find("test.ring.activity"), std::string::npos);
  obs::sampler_stop();
  EXPECT_FALSE(obs::sampler_running());
}

TEST(ObsExports, PrometheusExpositionShape) {
  obs::counter("test.prom.count").add(3);
  obs::gauge("test.prom.level").set(11);
  obs::Histogram& h = obs::histogram("test.prom.lat");
  h.observe(5);
  h.observe(9);
  const std::string text = obs::prometheus_text();
  // Names are sanitized ('.' -> '_'), each metric gets a # TYPE line, and
  // histograms export cumulative buckets with the mandatory +Inf bound.
  EXPECT_NE(text.find("# TYPE test_prom_count counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_lat_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_lat_sum 14"), std::string::npos);
  EXPECT_NE(text.find("test_prom_lat_count 2"), std::string::npos);
  // Histogram-derived pseudo counters must NOT leak as separate counters.
  EXPECT_EQ(text.find("test_prom_lat_count counter"), std::string::npos);
  EXPECT_EQ(text.find("p50_bucket"), std::string::npos);
  // No unsanitized names escape.
  EXPECT_EQ(text.find("test.prom"), std::string::npos);
}

TEST(ObsExports, MetricsTextListsPercentiles) {
  obs::histogram("test.text.pct").observe(4);
  const std::string text = obs::metrics_text();
  // The name appears both as derived counters (.count) and as the native
  // histogram line; one of its lines must carry the percentile columns.
  bool found = false;
  for (std::size_t at = text.find("test.text.pct"); at != std::string::npos;
       at = text.find("test.text.pct", at + 1)) {
    const std::size_t eol = text.find('\n', at);
    const std::string line = text.substr(at, eol - at);
    if (line.find("p50") != std::string::npos &&
        line.find("p95") != std::string::npos &&
        line.find("p99") != std::string::npos) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << text;
}

#endif  // MCS_OBS_DISABLE

// --- determinism contract ---------------------------------------------------
// Observation must never change results: fraig and the partition-parallel
// optimizer produce bit-identical networks with tracing off vs on, at one
// and several threads.  These compile in MCS_OBS_DISABLE builds too (the
// tracing toggles are no-ops there; the 1-vs-N identity still holds).

class ObsDeterminism : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_tracing(false);
    obs::trace_clear();
  }
};

TEST_F(ObsDeterminism, FraigBitIdenticalWithTracingOnOff) {
  const Network net = expand_to_aig(circuits::multiplier(8));

  obs::set_tracing(false);
  FraigParams ref_params;
  ref_params.num_threads = 1;
  const Network reference = fraig(net, ref_params);

  obs::set_tracing(true);
  for (const int threads : {1, 4}) {
    FraigParams params;
    params.num_threads = threads;
    const Network traced = fraig(net, params);
    EXPECT_TRUE(structurally_identical(traced, reference))
        << "fraig diverged with tracing on at " << threads << " threads";
  }
}

TEST_F(ObsDeterminism, ParOptimizeBitIdenticalWithTracingOnOff) {
  const Network net = expand_to_aig(circuits::multiplier(8));

  obs::set_tracing(false);
  ParParams ref_params;
  ref_params.num_threads = 1;
  const Network reference =
      par_optimize(net, GateBasis::aig(), 2, ref_params);

  obs::set_tracing(true);
  for (const int threads : {1, 4}) {
    ParParams params;
    params.num_threads = threads;
    const Network traced = par_optimize(net, GateBasis::aig(), 2, params);
    EXPECT_TRUE(structurally_identical(traced, reference))
        << "par_optimize diverged with tracing on at " << threads
        << " threads";
  }
}

}  // namespace
}  // namespace mcs
