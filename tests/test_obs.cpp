/// Unit tests for mcs::obs: per-thread counter sharding aggregates to the
/// same totals as a serial loop (including after worker-thread retirement),
/// gauges/histograms behave, the Chrome trace-event export is well-formed
/// JSON with correctly nested spans and per-thread attribution, and -- the
/// determinism contract -- fraig and the partition-parallel optimizer stay
/// bit-identical with tracing on vs off at 1 and N threads.
///
/// Every metric/tracing assertion is guarded for MCS_OBS_DISABLE builds
/// (the API collapses to no-op stubs there); the determinism tests compile
/// and run in both configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/obs/obs.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sweep/sweep.hpp"

namespace mcs {
namespace {

// --- a minimal JSON validator ----------------------------------------------
// Recursive-descent acceptor for the full JSON grammar; the trace and
// metrics exports must round-trip it byte-exactly (pos == size at the end).

class JsonValidator {
 public:
  static bool valid(const std::string& s) {
    JsonValidator v(s);
    v.ws();
    if (!v.value()) return false;
    v.ws();
    return v.pos_ == s.size();
  }

 private:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool lit(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;  // accept any escaped char (incl. the 'u' of \uXXXX)
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are illegal in JSON
      }
    }
    return false;
  }
  bool number() {
    eat('-');
    std::size_t digits = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_, ++digits;
    if (digits == 0) return false;
    if (eat('.')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }
  bool value() {
    ws();
    switch (peek()) {
      case '{': {
        ++pos_;
        ws();
        if (eat('}')) return true;
        do {
          ws();
          if (!string()) return false;
          ws();
          if (!eat(':')) return false;
          if (!value()) return false;
          ws();
        } while (eat(','));
        return eat('}');
      }
      case '[': {
        ++pos_;
        ws();
        if (eat(']')) return true;
        do {
          if (!value()) return false;
          ws();
        } while (eat(','));
        return eat(']');
      }
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ObsJsonValidator, SelfCheck) {
  EXPECT_TRUE(JsonValidator::valid("{}"));
  EXPECT_TRUE(JsonValidator::valid(R"({"a": [1, -2.5e3, "x\"y"], "b": {}})"));
  EXPECT_TRUE(JsonValidator::valid("[true, false, null]"));
  EXPECT_FALSE(JsonValidator::valid("{"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\": }"));
  EXPECT_FALSE(JsonValidator::valid("{} trailing"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\"\n: \"\x01\"}"));
}

#ifndef MCS_OBS_DISABLE

// --- metrics ----------------------------------------------------------------

TEST(ObsMetrics, CounterAggregatesAcrossPoolWorkers) {
  obs::Counter& c = obs::counter("test.pool_adds");
  const std::uint64_t before = c.value();

  constexpr std::size_t kItems = 5000;
  std::uint64_t serial = 0;
  for (std::size_t i = 0; i < kItems; ++i) serial += i + 1;

  {
    ThreadPool pool(4);
    pool.submit_bulk(
        kItems, [&](std::size_t i) { c.add(i + 1); }, 4);
  }
  // The pool is destroyed: the workers' per-thread cells have been folded
  // into the retired accumulator, and the total must still be exact.
  EXPECT_EQ(c.value() - before, serial);
}

TEST(ObsMetrics, CounterSurvivesManyShortLivedThreads) {
  obs::Counter& c = obs::counter("test.short_threads");
  const std::uint64_t before = c.value();
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&c] { c.add(10); });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(c.value() - before, 8u * 4u * 10u);
}

TEST(ObsMetrics, GaugeSetMaxIsHighWaterMark) {
  obs::Gauge& g = obs::gauge("test.hwm");
  g.set(0);
  g.set_max(7);
  g.set_max(3);
  EXPECT_EQ(g.value(), 7);
  g.set_max(11);
  EXPECT_EQ(g.value(), 11);
  g.set(2);  // plain set still lowers
  EXPECT_EQ(g.value(), 2);
}

TEST(ObsMetrics, HistogramBucketsByLog2) {
  obs::Histogram& h = obs::histogram("test.hist");
  const std::uint64_t before = h.total();
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1
  h.observe(2);   // bucket 2
  h.observe(3);   // bucket 2
  h.observe(~0ull);  // overflow bucket
  EXPECT_EQ(h.total() - before, 5u);
  const std::vector<std::uint64_t> buckets = h.buckets();
  ASSERT_GE(buckets.size(), 3u);
  EXPECT_GE(buckets[2], 2u) << "2 and 3 share the log2 bucket";
  EXPECT_GE(buckets.back(), 1u) << "huge samples land in the last bucket";
}

TEST(ObsMetrics, SnapshotDeltaReportsOnlyMovedCounters) {
  obs::Counter& moved = obs::counter("test.delta_moved");
  obs::counter("test.delta_still");  // registered but untouched

  const obs::MetricsSnapshot before = obs::snapshot();
  moved.add(42);
  const obs::MetricsSnapshot delta = obs::snapshot_delta(before);

  bool saw_moved = false;
  for (const obs::MetricValue& mv : delta.counters) {
    EXPECT_NE(mv.name, "test.delta_still")
        << "untouched counters must not appear in a delta";
    if (mv.name == "test.delta_moved") {
      saw_moved = true;
      EXPECT_EQ(mv.value, 42);
    }
  }
  EXPECT_TRUE(saw_moved);
}

TEST(ObsMetrics, LookupIsStableAndIdempotent) {
  obs::Counter& a = obs::counter("test.same_name");
  obs::Counter& b = obs::counter("test.same_name");
  EXPECT_EQ(&a, &b) << "lookup-or-create must return the same instance";
}

TEST(ObsMetrics, MetricsJsonIsValid) {
  obs::counter("test.json_presence").add(1);
  const std::string json = obs::metrics_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("test.json_presence"), std::string::npos);
}

// --- tracing ----------------------------------------------------------------

/// One parsed "X" event from the Chrome trace export.
struct ParsedEvent {
  long tid = 0;
  std::string name;
  unsigned long long ts = 0;
  unsigned long long dur = 0;
};

/// Extracts the complete ("X") events; the emitter writes fields in a fixed
/// order so a scan is enough (the JSON validator covers grammar).
std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  std::size_t pos = 0;
  const std::string marker = "{\"ph\":\"X\",\"pid\":1,\"tid\":";
  while ((pos = json.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    ParsedEvent ev;
    ev.tid = std::strtol(json.c_str() + pos, nullptr, 10);
    const std::size_t name_at = json.find("\"name\":\"", pos) + 8;
    const std::size_t name_end = json.find('"', name_at);
    ev.name = json.substr(name_at, name_end - name_at);
    const std::size_t ts_at = json.find("\"ts\":", name_end) + 5;
    ev.ts = std::strtoull(json.c_str() + ts_at, nullptr, 10);
    const std::size_t dur_at = json.find("\"dur\":", ts_at) + 6;
    ev.dur = std::strtoull(json.c_str() + dur_at, nullptr, 10);
    out.push_back(std::move(ev));
  }
  return out;
}

class ObsTracing : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(true);
    obs::trace_clear();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::trace_clear();
  }
};

TEST_F(ObsTracing, SpansNestAndExportValidChromeJson) {
  {
    obs::Span outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      obs::Span inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    { obs::Span inner2(std::string("inner2")); }
  }
  EXPECT_EQ(obs::trace_size(), 3u);

  const std::string json = obs::trace_json();
  ASSERT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 3u);
  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  for (const ParsedEvent& ev : events) {
    if (ev.name == "outer") outer = &ev;
    if (ev.name == "inner") inner = &ev;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid) << "same thread, same lane";
  // Well-formed nesting: the child interval lies inside the parent's.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_GE(outer->dur, inner->dur);
}

TEST_F(ObsTracing, ThreadAttributionAndNames) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([t] {
      obs::set_thread_name("obs-test-" + std::to_string(t));
      obs::Span span([&] { return "work:" + std::to_string(t); });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  for (std::thread& t : threads) t.join();

  const std::string json = obs::trace_json();
  ASSERT_TRUE(JsonValidator::valid(json)) << json;
  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid)
      << "spans from distinct threads must land in distinct lanes";
  // Thread-name metadata events accompany the named threads.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("obs-test-0"), std::string::npos);
  EXPECT_NE(json.find("obs-test-1"), std::string::npos);
}

TEST_F(ObsTracing, PoolWorkersAppearInTrace) {
  ThreadPool pool(2);
  pool.submit_bulk(
      64,
      [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      },
      2);
  pool.wait_idle();

  const std::string json = obs::trace_json();
  ASSERT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("pool-worker-"), std::string::npos)
      << "worker threads must self-identify in the trace";
  EXPECT_NE(json.find("pool:batch"), std::string::npos);
}

TEST_F(ObsTracing, DumpRoundTripsThroughFile) {
  { obs::Span span("dumped"); }
  const std::string path =
      ::testing::TempDir() + "/mcs_obs_trace_test.json";
  ASSERT_TRUE(obs::trace_dump(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, obs::trace_json());
  EXPECT_TRUE(JsonValidator::valid(content));
  EXPECT_NE(content.find("\"dumped\""), std::string::npos);
}

TEST_F(ObsTracing, AggregateSpansFoldsByName) {
  const std::uint64_t start = obs::now_us();
  for (int i = 0; i < 3; ++i) {
    obs::Span span("agg:repeat");
  }
  const std::vector<obs::SpanStats> spans = obs::aggregate_spans(start);
  const auto it =
      std::find_if(spans.begin(), spans.end(),
                   [](const obs::SpanStats& s) { return s.name == "agg:repeat"; });
  ASSERT_NE(it, spans.end());
  EXPECT_EQ(it->count, 3u);
}

TEST_F(ObsTracing, DisabledSpanRecordsNothing) {
  obs::set_tracing(false);
  { obs::Span span("invisible"); }
  EXPECT_EQ(obs::trace_size(), 0u);
}

TEST_F(ObsTracing, InFlightSpansDropAcrossClearAndDisable) {
  // A span alive across trace_clear() must not repopulate the cleared
  // buffers when it ends ...
  {
    obs::Span span("straddles-clear");
    obs::trace_clear();
  }
  EXPECT_EQ(obs::trace_size(), 0u);
  // ... and one alive across set_tracing(false) must not record either.
  {
    obs::Span span("straddles-disable");
    obs::set_tracing(false);
  }
  EXPECT_EQ(obs::trace_size(), 0u);
}

TEST_F(ObsTracing, ConcurrentRecordAndAggregateIsSafe) {
  // Writers record spans while another thread exports/aggregates/clears:
  // the exact interleaving submit_bulk leaves behind (a worker finishing
  // its batch span after the caller resumed).  Run under TSAN this is the
  // regression test for the record_span data race.
  // Writers are bounded (not free-spinning) so the buffers can't outgrow
  // the readers and balloon the trace_json cost under sanitizers.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 20000; ++i) {
        obs::Span span("stress:span");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)obs::aggregate_spans(0);
    (void)obs::trace_size();
    if (i % 4 == 0) obs::trace_clear();
    ASSERT_TRUE(JsonValidator::valid(obs::trace_json()));
  }
  for (std::thread& t : writers) t.join();
  EXPECT_TRUE(JsonValidator::valid(obs::trace_json()));
}

#endif  // MCS_OBS_DISABLE

// --- determinism contract ---------------------------------------------------
// Observation must never change results: fraig and the partition-parallel
// optimizer produce bit-identical networks with tracing off vs on, at one
// and several threads.  These compile in MCS_OBS_DISABLE builds too (the
// tracing toggles are no-ops there; the 1-vs-N identity still holds).

class ObsDeterminism : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_tracing(false);
    obs::trace_clear();
  }
};

TEST_F(ObsDeterminism, FraigBitIdenticalWithTracingOnOff) {
  const Network net = expand_to_aig(circuits::multiplier(8));

  obs::set_tracing(false);
  FraigParams ref_params;
  ref_params.num_threads = 1;
  const Network reference = fraig(net, ref_params);

  obs::set_tracing(true);
  for (const int threads : {1, 4}) {
    FraigParams params;
    params.num_threads = threads;
    const Network traced = fraig(net, params);
    EXPECT_TRUE(structurally_identical(traced, reference))
        << "fraig diverged with tracing on at " << threads << " threads";
  }
}

TEST_F(ObsDeterminism, ParOptimizeBitIdenticalWithTracingOnOff) {
  const Network net = expand_to_aig(circuits::multiplier(8));

  obs::set_tracing(false);
  ParParams ref_params;
  ref_params.num_threads = 1;
  const Network reference =
      par_optimize(net, GateBasis::aig(), 2, ref_params);

  obs::set_tracing(true);
  for (const int threads : {1, 4}) {
    ParParams params;
    params.num_threads = threads;
    const Network traced = par_optimize(net, GateBasis::aig(), 2, params);
    EXPECT_TRUE(structurally_identical(traced, reference))
        << "par_optimize diverged with tracing on at " << threads
        << " threads";
  }
}

}  // namespace
}  // namespace mcs
