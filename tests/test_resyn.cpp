/// Tests for the synthesis strategy library: ISOP, factoring, DSD, Shannon,
/// NPN database -- each strategy must rebuild arbitrary functions correctly
/// in every gate basis.

#include <gtest/gtest.h>

#include <tuple>

#include "mcs/common/rng.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/resyn/npn_db.hpp"
#include "mcs/resyn/sop.hpp"
#include "mcs/resyn/strategies.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {
namespace {

TruthTable random_tt(int num_vars, Rng& rng) {
  TruthTable t(num_vars);
  for (auto& w : t.words()) w = rng.next();
  if (num_vars < 6) {
    t.words()[0] = tt6_replicate(t.words()[0], num_vars);
  }
  return t;
}

class IsopRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IsopRoundTrip, CoversExactly) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const int n = 1 + static_cast<int>(rng.next_below(8));
    const TruthTable f = random_tt(n, rng);
    const auto cubes = compute_isop(f);
    EXPECT_EQ(sop_to_truth_table(cubes, n), f);
  }
}

TEST_P(IsopRoundTrip, IsIrredundant) {
  Rng rng(GetParam() + 50);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 1 + static_cast<int>(rng.next_below(6));
    const TruthTable f = random_tt(n, rng);
    const auto cubes = compute_isop(f);
    // Removing any single cube must lose coverage.
    for (std::size_t skip = 0; skip < cubes.size(); ++skip) {
      std::vector<Cube> reduced;
      for (std::size_t i = 0; i < cubes.size(); ++i) {
        if (i != skip) reduced.push_back(cubes[i]);
      }
      EXPECT_FALSE(sop_to_truth_table(reduced, n) == f)
          << "cube " << skip << " is redundant";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsopRoundTrip, ::testing::Values(1, 2, 3));

TEST(Isop, SpecialFunctions) {
  EXPECT_TRUE(compute_isop(TruthTable::constant(false, 4)).empty());
  const auto one = compute_isop(TruthTable::constant(true, 4));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].mask, 0u);
  // XOR needs 2^(n-1) cubes.
  const auto x =
      TruthTable::projection(0, 3) ^ TruthTable::projection(1, 3) ^
      TruthTable::projection(2, 3);
  EXPECT_EQ(compute_isop(x).size(), 4u);
}

TEST(Factoring, RoundTripsOnRandomFunctions) {
  Rng rng(7);
  for (int iter = 0; iter < 60; ++iter) {
    const int n = 1 + static_cast<int>(rng.next_below(7));
    const TruthTable f = random_tt(n, rng);
    const auto ff = factor_sop(compute_isop(f), n);
    EXPECT_EQ(factored_to_truth_table(ff, n), f);
  }
}

TEST(Factoring, SharesLiterals) {
  // f = a&b | a&c | a&d factors as a & (b | c | d): 4 literals, not 6.
  const int n = 4;
  const auto a = TruthTable::projection(0, n);
  const auto b = TruthTable::projection(1, n);
  const auto c = TruthTable::projection(2, n);
  const auto d = TruthTable::projection(3, n);
  const auto f = (a & b) | (a & c) | (a & d);
  const auto ff = factor_sop(compute_isop(f), n);
  EXPECT_EQ(factored_to_truth_table(ff, n), f);
  EXPECT_LE(ff.num_literals(), 4);
}

struct StrategyCase {
  const char* strategy;
  GateBasis basis;
};

class StrategySynthesis
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static std::unique_ptr<ResynStrategy> make(int which) {
    switch (which) {
      case 0: return std::make_unique<SopStrategy>();
      case 1: return std::make_unique<DsdStrategy>();
      case 2: return std::make_unique<ShannonStrategy>();
      case 3:
        return std::make_unique<NpnStrategy>(NpnDatabase::Objective::kLevel);
      default:
        return std::make_unique<NpnStrategy>(NpnDatabase::Objective::kArea);
    }
  }
  static GateBasis basis_of(int which) {
    switch (which) {
      case 0: return GateBasis::aig();
      case 1: return GateBasis::xag();
      case 2: return GateBasis::mig();
      default: return GateBasis::xmg();
    }
  }
};

TEST_P(StrategySynthesis, RebuildsRandomFunctions) {
  const auto [strategy_id, basis_id] = GetParam();
  const auto strategy = make(strategy_id);
  const GateBasis basis = basis_of(basis_id);
  Rng rng(1000 * strategy_id + basis_id);

  for (int iter = 0; iter < 25; ++iter) {
    const int n = 1 + static_cast<int>(rng.next_below(4));  // up to 4 vars
    const TruthTable f = random_tt(n, rng);

    Network net;
    std::vector<Signal> leaves;
    for (int i = 0; i < n; ++i) leaves.push_back(net.create_pi());
    const auto root = strategy->synthesize(net, basis, f, leaves);
    ASSERT_TRUE(root.has_value()) << strategy->name();
    net.create_po(*root);

    const auto pos = simulate_pos(net);
    EXPECT_EQ(pos[0], f) << strategy->name() << " in basis " << basis.name();

    // Basis restrictions must be respected.
    const auto stats = network_stats(net);
    if (!basis.use_xor) {
      EXPECT_EQ(stats.num_xor2 + stats.num_xor3, 0u);
    }
    if (!basis.use_maj) {
      EXPECT_EQ(stats.num_maj3, 0u);
    }
  }
}

TEST_P(StrategySynthesis, RebuildsLargerFunctionsWhenSupported) {
  const auto [strategy_id, basis_id] = GetParam();
  if (strategy_id >= 3) GTEST_SKIP() << "NPN database is 4-input only";
  const auto strategy = make(strategy_id);
  const GateBasis basis = basis_of(basis_id);
  Rng rng(77 + strategy_id * 13 + basis_id);

  for (int iter = 0; iter < 10; ++iter) {
    const int n = 5 + static_cast<int>(rng.next_below(3));  // 5..7 vars
    const TruthTable f = random_tt(n, rng);
    Network net;
    std::vector<Signal> leaves;
    for (int i = 0; i < n; ++i) leaves.push_back(net.create_pi());
    const auto root = strategy->synthesize(net, basis, f, leaves);
    ASSERT_TRUE(root.has_value());
    net.create_po(*root);
    EXPECT_EQ(simulate_pos(net)[0], f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllBases, StrategySynthesis,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0, 1, 2, 3)));

TEST(DsdStrategy, UsesXorNodesForXorFunctions) {
  Network net;
  std::vector<Signal> leaves;
  for (int i = 0; i < 4; ++i) leaves.push_back(net.create_pi());
  const auto f = TruthTable::projection(0, 4) ^ TruthTable::projection(1, 4) ^
                 TruthTable::projection(2, 4) ^ TruthTable::projection(3, 4);
  const DsdStrategy dsd;
  const auto root = dsd.synthesize(net, GateBasis::xmg(), f, leaves);
  ASSERT_TRUE(root.has_value());
  const auto stats = network_stats(net);
  EXPECT_EQ(stats.num_and2, 0u) << "a pure XOR chain needs no ANDs in XMG";
  EXPECT_GE(stats.num_xor2 + stats.num_xor3, 1u);
}

TEST(DsdStrategy, DetectsMajorityTop) {
  Network net;
  std::vector<Signal> leaves;
  for (int i = 0; i < 3; ++i) leaves.push_back(net.create_pi());
  const auto a = TruthTable::projection(0, 3);
  const auto b = TruthTable::projection(1, 3);
  const auto c = TruthTable::projection(2, 3);
  const auto f = (a & b) | (a & c) | (b & c);
  const DsdStrategy dsd;
  const auto root = dsd.synthesize(net, GateBasis::mig(), f, leaves);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(network_stats(net).num_maj3, 1u);
  EXPECT_EQ(net.num_gates(), 1u) << "MAJ(a,b,c) is a single MIG node";
}

TEST(NpnDatabase, CoversAllClassesLazily) {
  auto& db = NpnDatabase::shared(GateBasis::xmg(), NpnDatabase::Objective::kLevel);
  Network net;
  std::vector<Signal> leaves;
  for (int i = 0; i < 4; ++i) leaves.push_back(net.create_pi());
  Rng rng(31);
  for (int iter = 0; iter < 300; ++iter) {
    const Tt6 f = tt6_replicate(rng.next(), 4);
    const auto root = db.instantiate(net, f, 4, leaves);
    ASSERT_TRUE(root.has_value());
    // Validate against simulation.
    const TruthTable expected = TruthTable::from_tt6(f, 4);
    std::vector<NodeId> pis(net.pis());
    EXPECT_EQ(cone_function(net, *root, pis), expected);
  }
  EXPECT_LE(db.num_classes(), 222u) << "4-input NPN classes";
  EXPECT_GE(db.num_classes(), 100u) << "random sampling should hit most";
}

TEST(StrategyLibrary, BundlesAreNonEmpty) {
  EXPECT_FALSE(StrategyLibrary::level_oriented().empty());
  EXPECT_FALSE(StrategyLibrary::area_oriented().empty());
}

}  // namespace
}  // namespace mcs
