/// Tests for mcs::fail -- the deterministic fault-injection subsystem:
/// spec-grammar validation, the firing schedule options (every / after /
/// count / seeded probability), short-read clipping, the disabled fast
/// path, obs accounting, and the `faults` flow pass that arms a spec from
/// inside a flow (including a fault actually failing a stage).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "mcs/fail/fail.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/obs/obs.hpp"

namespace mcs::fail {
namespace {

/// Every test leaves the process disarmed, whatever it armed.
class FailTest : public ::testing::Test {
 protected:
  void TearDown() override { disable(); }
};

// --- arming / grammar -------------------------------------------------------

TEST_F(FailTest, DisabledIsANoOp) {
  disable();
  EXPECT_FALSE(armed());
  EXPECT_EQ(active_spec(), "");
  EXPECT_NO_THROW(point("flow.stage"));
  EXPECT_EQ(short_read("server.input", 4096u), 4096u);
}

TEST_F(FailTest, ConfigureArmsAndDisablesRoundTrip) {
  configure("flow.stage=throw");
  EXPECT_TRUE(armed());
  EXPECT_EQ(active_spec(), "flow.stage=throw");
  configure("");
  EXPECT_FALSE(armed());
  EXPECT_EQ(active_spec(), "");
}

TEST_F(FailTest, RejectsMalformedSpecs) {
  EXPECT_THROW(configure("nosite"), FaultSpecError);
  EXPECT_THROW(configure("a.b=explode"), FaultSpecError);
  EXPECT_THROW(configure("a.b=throw,every=0"), FaultSpecError);
  EXPECT_THROW(configure("a.b=throw,every=abc"), FaultSpecError);
  EXPECT_THROW(configure("a.b=throw,p=0"), FaultSpecError);
  EXPECT_THROW(configure("a.b=throw,p=1.5"), FaultSpecError);
  EXPECT_THROW(configure("a.b=throw,bogus=1"), FaultSpecError);
  EXPECT_THROW(configure("=throw"), FaultSpecError);
}

TEST_F(FailTest, FailedConfigureKeepsPreviousSpec) {
  configure("flow.stage=throw");
  EXPECT_THROW(configure("a.b=explode"), FaultSpecError);
  EXPECT_TRUE(armed());
  EXPECT_EQ(active_spec(), "flow.stage=throw");
}

// --- firing schedule --------------------------------------------------------

TEST_F(FailTest, ThrowFiresOnMatchingSiteOnly) {
  configure("sat.solve=throw");
  EXPECT_NO_THROW(point("flow.stage"));
  EXPECT_THROW(point("sat.solve"), InjectedFault);
  EXPECT_EQ(injected_total(), 1u);
}

TEST_F(FailTest, PrefixSitesMatchByPrefix) {
  configure("io.read.*=throw");
  EXPECT_THROW(point("io.read.aiger"), InjectedFault);
  EXPECT_THROW(point("io.read.blif"), InjectedFault);
  EXPECT_NO_THROW(point("io.write.aiger"));
}

TEST_F(FailTest, EveryAfterCountScheduleIsExact) {
  // Skip the first 2 hits, then fire every 3rd hit, at most twice:
  // hits 0 1 2 3 4 5 6 7 8 9 -> fires at 2 and 5 only.
  configure("x=throw,after=2,every=3,count=2");
  std::vector<int> fired;
  for (int hit = 0; hit < 10; ++hit) {
    try {
      point("x");
    } catch (const InjectedFault&) {
      fired.push_back(hit);
    }
  }
  EXPECT_EQ(fired, (std::vector<int>{2, 5}));
  EXPECT_EQ(injected_total(), 2u);
}

TEST_F(FailTest, SeededProbabilityIsDeterministic) {
  const auto run = [] {
    configure("x=throw,p=0.5,seed=42");
    std::string pattern;
    for (int hit = 0; hit < 64; ++hit) {
      try {
        point("x");
        pattern += '.';
      } catch (const InjectedFault&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  const std::string first = run();
  EXPECT_EQ(first, run());  // same spec + same hits = same faults
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
  // A different seed draws a different (still deterministic) pattern.
  configure("x=throw,p=0.5,seed=43");
  std::string other;
  for (int hit = 0; hit < 64; ++hit) {
    try {
      point("x");
      other += '.';
    } catch (const InjectedFault&) {
      other += 'X';
    }
  }
  EXPECT_NE(first, other);
}

TEST_F(FailTest, FirstMatchingRuleWins) {
  configure("x=delay,ms=0,count=1;x=throw");
  EXPECT_NO_THROW(point("x"));            // delay rule fires (and retires)
  EXPECT_THROW(point("x"), InjectedFault);  // throw rule takes over
}

TEST_F(FailTest, DelayActuallySleeps) {
  configure("x=delay,ms=30");
  const auto t0 = std::chrono::steady_clock::now();
  point("x");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
}

TEST_F(FailTest, AllocThrowsBadAlloc) {
  configure("x=alloc");
  EXPECT_THROW(point("x"), std::bad_alloc);
}

// --- short reads ------------------------------------------------------------

TEST_F(FailTest, ShortReadClipsButNeverToZero) {
  configure("server.input=short");
  EXPECT_EQ(short_read("server.input", 4096u), 2048u);  // (n + 1) / 2
  EXPECT_EQ(short_read("server.input", 2u), 1u);
  EXPECT_EQ(short_read("server.input", 1u), 1u);  // n <= 1 passes through
  EXPECT_EQ(short_read("server.input", 0u), 0u);
  EXPECT_EQ(short_read("other.site", 4096u), 4096u);
}

TEST_F(FailTest, ShortRulesIgnorePointAndViceVersa) {
  configure("x=short");
  EXPECT_NO_THROW(point("x"));  // short only acts through short_read()
  configure("x=throw");
  EXPECT_THROW(short_read("x", 8u), InjectedFault);  // point kinds act here
}

// --- accounting -------------------------------------------------------------

TEST_F(FailTest, ObsCountersTrackFires) {
  obs::Counter& c = obs::counter("fail.injected.throw");
  const std::uint64_t before = c.value();
  configure("x=throw,count=3");
  for (int hit = 0; hit < 5; ++hit) {
    try {
      point("x");
    } catch (const InjectedFault&) {
    }
  }
  EXPECT_EQ(injected_total(), 3u);
#ifndef MCS_OBS_DISABLE
  EXPECT_EQ(c.value(), before + 3);
#else
  (void)before;
#endif
}

// --- the faults flow pass ---------------------------------------------------

TEST_F(FailTest, FaultsPassArmsFromAFlowSpec) {
  flow::Flow flow = flow::Flow::parse("faults:spec=sat.solve=delay|ms=2");
  flow::FlowContext ctx;
  EXPECT_TRUE(flow.run(ctx).ok);
  // The pass translates '|' to ',' so specs fit the flow mini-language.
  EXPECT_TRUE(armed());
  EXPECT_EQ(active_spec(), "sat.solve=delay,ms=2");
}

TEST_F(FailTest, InjectedStageFaultFailsTheFlowCleanly) {
  configure("flow.stage=throw,after=1,count=1");
  flow::Flow flow = flow::Flow::parse("gen:adder,bits=8; strash");
  flow::FlowContext ctx;
  const flow::FlowReport report = flow.run(ctx);
  EXPECT_FALSE(report.ok);  // the fault fails the stage, not the process
  EXPECT_NE(report.error.find("injected fault"), std::string::npos);
  EXPECT_EQ(injected_total(), 1u);
}

}  // namespace
}  // namespace mcs::fail
