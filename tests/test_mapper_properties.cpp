/// Property-style sweeps over both technology mappers: exact-area rounds
/// never hurt, delay relaxation trades monotonically, choice networks never
/// lose the original structure, and every configuration stays functionally
/// correct.

#include <gtest/gtest.h>

#include "mcs/choice/dch.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/sim/simulator.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

const TechLibrary& lib() {
  static const TechLibrary l = TechLibrary::asap7_mini();
  return l;
}

bool netlist_matches(const Network& ref, const CellNetlist& m) {
  RandomSimulation sim(ref, 8, 0x11);
  for (int w = 0; w < 8; ++w) {
    std::vector<std::uint64_t> pi;
    for (std::size_t i = 0; i < ref.num_pis(); ++i) {
      pi.push_back(sim.node_values(ref.pi_at(i))[w]);
    }
    const auto pos = m.simulate(pi);
    for (std::size_t i = 0; i < ref.num_pos(); ++i) {
      const Signal s = ref.po_at(i);
      if (pos[i] != (sim.node_values(s.node())[w] ^
                     (s.complemented() ? ~0ull : 0ull))) {
        return false;
      }
    }
  }
  return true;
}

class MapperPropertySweep : public ::testing::TestWithParam<int> {
 protected:
  Network subject() const {
    return cleanup(testing::random_network(
        {.num_pis = 8,
         .num_gates = 160,
         .num_pos = 6,
         .basis = GateBasis::aig(),
         .seed = static_cast<std::uint64_t>(GetParam() * 31)}));
  }
};

TEST_P(MapperPropertySweep, ExactAreaRoundsNeverHurtLutArea) {
  const Network net = subject();
  LutMapParams base;
  base.objective = LutMapParams::Objective::kArea;
  base.exact_area_rounds = 0;
  LutMapParams with_exact = base;
  with_exact.exact_area_rounds = 3;
  // Best-across-passes harvesting makes extra rounds monotone.
  EXPECT_LE(lut_map(net, with_exact).size(), lut_map(net, base).size());
}

TEST_P(MapperPropertySweep, AsicExactAreaRoundsNeverHurtArea) {
  const Network net = subject();
  AsicMapParams base;
  base.objective = AsicMapParams::Objective::kArea;
  base.exact_area_rounds = 0;
  AsicMapParams with_exact = base;
  with_exact.exact_area_rounds = 3;
  EXPECT_LE(asic_map(net, lib(), with_exact).area,
            asic_map(net, lib(), base).area + 1e-9);
}

TEST_P(MapperPropertySweep, DelayRelaxationTradesMonotonically) {
  const Network net = subject();
  double prev_area = 1e18;
  double opt_delay = 0.0;
  for (const double relax : {0.0, 0.1, 0.3}) {
    AsicMapParams p;
    p.objective = AsicMapParams::Objective::kDelay;
    p.delay_relaxation = relax;
    const auto m = asic_map(net, lib(), p);
    ASSERT_TRUE(netlist_matches(net, m));
    if (relax == 0.0) {
      opt_delay = m.delay;
    } else {
      // Delay stays within the relaxed budget of the strict optimum.
      EXPECT_LE(m.delay, opt_delay * (1.0 + relax) + 1e-6);
    }
    // Area must not grow materially as the budget loosens (greedy pass
    // decisions can wobble a few percent; a systematic regression would
    // blow well past this bound).
    EXPECT_LE(m.area, prev_area * 1.05 + 1e-9);
    prev_area = std::min(prev_area, m.area);
  }
}

TEST_P(MapperPropertySweep, MchPlusDchMappingStaysCorrectEverywhere) {
  const Network net = subject();
  const Network dch = build_dch({net, balance(net)});
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(dch, mch_params);

  for (const auto objective :
       {AsicMapParams::Objective::kDelay, AsicMapParams::Objective::kArea}) {
    AsicMapParams p;
    p.objective = objective;
    const auto m = asic_map(mch, lib(), p);
    EXPECT_TRUE(netlist_matches(net, m));
  }
  for (const auto objective :
       {LutMapParams::Objective::kDelay, LutMapParams::Objective::kArea}) {
    LutMapParams p;
    p.objective = objective;
    const auto l = lut_map(mch, p);
    const Network back = lut_network_to_network(l);
    RandomSimulation sa(net, 4, 3), sb(back, 4, 3);
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      const Signal x = net.po_at(i), y = back.po_at(i);
      for (int w = 0; w < 4; ++w) {
        EXPECT_EQ(
            sa.node_values(x.node())[w] ^ (x.complemented() ? ~0ull : 0ull),
            sb.node_values(y.node())[w] ^ (y.complemented() ? ~0ull : 0ull));
      }
    }
  }
}

TEST_P(MapperPropertySweep, ChoiceMappingNeverWorseThanBaselineByMuch) {
  // Choices only add candidates; with exact area the mapped cost must not
  // regress beyond heuristic noise.
  const Network net = subject();
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(net, mch_params);

  AsicMapParams p;
  p.objective = AsicMapParams::Objective::kArea;
  p.use_choices = false;
  const double base_area = asic_map(net, lib(), p).area;
  p.use_choices = true;
  const double mch_area = asic_map(mch, lib(), p).area;
  EXPECT_LE(mch_area, base_area * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperPropertySweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mcs
