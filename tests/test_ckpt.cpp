/// Tests for mcs::ckpt -- the transactional checkpoint layer: snapshot
/// round-trip bit-identity across every gate basis (ids, levels, choices,
/// names and all), file-backed snapshots with corruption rejection, the
/// Network::check() invariant audit, and the transactional stage runner
/// (rollback + retry / skip / fail policies under injected faults,
/// including the headline guarantee: a fault-injected retried flow ends
/// bit-identical to an uninjected run).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mcs/ckpt/snapshot.hpp"
#include "mcs/fail/fail.hpp"
#include "mcs/flow/flow.hpp"
#include "mcs/io/writers.hpp"
#include "mcs/obs/obs.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

/// The network as a comparable string: BLIF carries structure and names.
std::string blif_of(const Network& net) {
  std::ostringstream os;
  write_blif(net, os);
  return os.str();
}

/// Full round-trip assertion: restore(snapshot(net)) is *bit-identical*
/// to net -- the re-snapshot yields the same bytes, every audited
/// invariant holds, and the printed structure matches.
void expect_round_trip(const Network& net) {
  const std::vector<std::uint8_t> blob = ckpt::snapshot(net);
  const Network back = ckpt::restore(blob);

  std::string why;
  EXPECT_TRUE(back.check(&why)) << why;

  EXPECT_EQ(back.size(), net.size());
  EXPECT_EQ(back.num_pis(), net.num_pis());
  EXPECT_EQ(back.num_pos(), net.num_pos());
  EXPECT_EQ(back.num_gates(), net.num_gates());
  EXPECT_EQ(back.num_choices(), net.num_choices());
  EXPECT_EQ(back.depth(), net.depth());
  EXPECT_EQ(blif_of(back), blif_of(net));

  // The strongest form: serializing the restored network reproduces the
  // exact original bytes, checksum included.
  EXPECT_EQ(ckpt::snapshot(back), blob);
}

// --- round-trip bit-identity ------------------------------------------------

TEST(Snapshot, RoundTripAcrossEveryBasis) {
  for (const GateBasis basis :
       {GateBasis::aig(), GateBasis::xag(), GateBasis::mig(),
        GateBasis::xmg()}) {
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
      testing::RandomNetworkSpec spec;
      spec.basis = basis;
      spec.num_gates = 120;
      spec.seed = seed;
      const Network net = testing::random_network(spec);
      SCOPED_TRACE(std::string(basis.name()) + " seed " +
                   std::to_string(seed));
      expect_round_trip(net);
    }
  }
}

TEST(Snapshot, RoundTripEmptyAndDegenerateNetworks) {
  expect_round_trip(Network{});  // constant node only

  Network pis_only;
  pis_only.create_pi("a");
  pis_only.create_pi("b");
  expect_round_trip(pis_only);

  Network const_po;  // PO driving constant-1, no gates at all
  const_po.create_po(const_po.constant(true), "always_on");
  expect_round_trip(const_po);
}

TEST(Snapshot, RoundTripPreservesNamesAndComplementedPos) {
  Network net;
  const Signal a = net.create_pi("in_a");
  const Signal b = net.create_pi("in_b");
  const Signal g = net.create_and(a, !b);
  net.create_po(!g, "out!x");
  net.create_po(g);  // unnamed PO alongside a named one
  expect_round_trip(net);

  const Network back = ckpt::restore(ckpt::snapshot(net));
  EXPECT_EQ(back.pi_name(0), "in_a");
  EXPECT_EQ(back.pi_name(1), "in_b");
  EXPECT_EQ(back.po_name(0), "out!x");
  EXPECT_EQ(back.po_name(1), net.po_name(1));  // auto-generated name kept
  EXPECT_EQ(back.po_at(0), !g);  // same ids, same phase
}

TEST(Snapshot, RoundTripPreservesChoiceClasses) {
  testing::RandomNetworkSpec spec;
  spec.num_gates = 60;
  Network net = testing::random_network(spec);
  // Two classes, one with a two-member chain (order within the intrusive
  // list is part of bit-identity: members are re-added in reverse).
  std::vector<NodeId> gates;
  for (NodeId n = 1; n < net.size() && gates.size() < 5; ++n) {
    if (net.is_gate(n)) gates.push_back(n);
  }
  ASSERT_GE(gates.size(), 5u);
  net.add_choice(gates[4], gates[0], /*phase=*/false);
  net.add_choice(gates[4], gates[1], /*phase=*/true);
  net.add_choice(gates[3], gates[2], /*phase=*/true);
  ASSERT_EQ(net.num_choices(), 3u);
  std::string why;
  ASSERT_TRUE(net.check(&why)) << why;
  expect_round_trip(net);
}

TEST(Snapshot, RoundTripPostFraigMult64) {
  // The acceptance benchmark's network: choice-laden, fraig-swept mult64.
  // Modest fraig effort keeps the test fast; the structure still carries
  // merged classes and every mixed gate type.
  flow::FlowContext ctx;
  const flow::FlowReport report = flow::run_flow(
      "gen:multiplier,bits=64; mch:ratio=0.5; "
      "fraig:rounds=2,conflicts=50,words=4",
      ctx);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_GT(ctx.net.num_gates(), 0u);
  expect_round_trip(ctx.net);
}

// --- file-backed snapshots and corruption rejection -------------------------

TEST(Snapshot, FileRoundTripAndCorruptionDetection) {
  const std::string path = ::testing::TempDir() + "mcs_ckpt_roundtrip.snap";
  const Network net = testing::random_network({});
  ckpt::write_snapshot_file(net, path);
  const Network back = ckpt::read_snapshot_file(path);
  EXPECT_EQ(ckpt::snapshot(back), ckpt::snapshot(net));

  // Flip one payload byte: the checksum must catch it.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  std::vector<char> flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x20;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  EXPECT_THROW(ckpt::read_snapshot_file(path), ckpt::SnapshotError);

  // Truncation at any interesting boundary is rejected, never a crash.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{12}, bytes.size() / 2,
                                 bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(ckpt::read_snapshot_file(path), ckpt::SnapshotError)
        << "truncated to " << keep << " bytes";
  }

  // Garbage with a healthy size but no magic.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 256; ++i) out.put(static_cast<char>(i * 7));
  }
  EXPECT_THROW(ckpt::read_snapshot_file(path), ckpt::SnapshotError);

  EXPECT_THROW(ckpt::read_snapshot_file(path + ".does-not-exist"),
               ckpt::SnapshotError);
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreRejectsTamperedBlob) {
  const Network net = testing::random_network({});
  const std::vector<std::uint8_t> blob = ckpt::snapshot(net);
  EXPECT_THROW(ckpt::restore({}), ckpt::SnapshotError);
  std::vector<std::uint8_t> bad = blob;
  bad[0] = 'X';  // magic
  EXPECT_THROW(ckpt::restore(bad), ckpt::SnapshotError);
  bad = blob;
  bad.pop_back();  // checksum cut short
  EXPECT_THROW(ckpt::restore(bad), ckpt::SnapshotError);
}

// --- Network::check ---------------------------------------------------------

TEST(NetworkCheck, AcceptsHealthyNetworks) {
  std::string why;
  EXPECT_TRUE(Network{}.check(&why)) << why;
  for (const GateBasis basis : {GateBasis::aig(), GateBasis::xmg()}) {
    testing::RandomNetworkSpec spec;
    spec.basis = basis;
    const Network net = testing::random_network(spec);
    EXPECT_TRUE(net.check(&why)) << why;
  }
}

TEST(NetworkCheck, AcceptsPostFlowNetworks) {
  // check() must hold after every real pass, or the transactional runner
  // would flag healthy stages: run a representative flow and audit after.
  flow::FlowContext ctx;
  const flow::FlowReport report =
      flow::run_flow("gen:adder,bits=16; compress2rs:rounds=1; mch", ctx);
  ASSERT_TRUE(report.ok) << report.error;
  std::string why;
  EXPECT_TRUE(ctx.net.check(&why)) << why;
}

// --- transactional stage execution ------------------------------------------

class TxnTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::disable(); }
};

TEST_F(TxnTest, RetryCompletesBitIdenticalToUninjectedRun) {
  // Reference: no faults, no checkpointing.
  flow::FlowContext clean;
  const std::string spec = "gen:adder,bits=16; rewrite; balance; resub";
  ASSERT_TRUE(flow::run_flow(spec, clean).ok);
  const std::string want = blif_of(clean.net);

  // Same flow under fire: the second mutating stage throws once, the
  // transactional runner rolls back and retries, and the result must be
  // the exact network the clean run produced.
  const std::uint64_t rollbacks_before =
      obs::counter("ckpt.rollbacks").value();
  const std::uint64_t retries_before = obs::counter("ckpt.retries").value();
  fail::configure("flow.stage=throw,after=2,count=1");
  flow::FlowContext injected;
  injected.txn.snapshot = true;
  injected.txn.on_failure = flow::TxnPolicy::OnFailure::kRetry;
  injected.txn.max_retries = 1;
  const flow::FlowReport report = flow::run_flow(spec, injected);
  fail::disable();

  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(blif_of(injected.net), want);
#ifndef MCS_OBS_DISABLE  // counters are no-op stubs in the disabled build
  EXPECT_GE(obs::counter("ckpt.rollbacks").value(), rollbacks_before + 1);
  EXPECT_GE(obs::counter("ckpt.retries").value(), retries_before + 1);
#endif
  // The failed attempt is part of the record: one more history entry than
  // the clean run, marked not-ok.
  EXPECT_EQ(injected.history.size(), clean.history.size() + 1);
  std::size_t failed = 0;
  for (const flow::StageReport& stage : injected.history) {
    if (!stage.ok) ++failed;
  }
  EXPECT_EQ(failed, 1u);
}

TEST_F(TxnTest, RetryBudgetExhaustedFailsTheStage) {
  fail::configure("flow.stage=throw,after=1");  // every later hit fires
  flow::FlowContext ctx;
  ctx.txn.snapshot = true;
  ctx.txn.on_failure = flow::TxnPolicy::OnFailure::kRetry;
  ctx.txn.max_retries = 2;
  const flow::FlowReport report =
      flow::run_flow("gen:adder,bits=8; rewrite", ctx);
  EXPECT_FALSE(report.ok);
  // 1 original attempt + 2 retries of the rewrite stage, all failed.
  std::size_t failed = 0;
  for (const flow::StageReport& stage : ctx.history) {
    if (!stage.ok) ++failed;
  }
  EXPECT_EQ(failed, 3u);
}

TEST_F(TxnTest, SkipDropsTheStageAndTheFlowContinues) {
  const std::uint64_t skips_before = obs::counter("ckpt.skips").value();
  fail::configure("flow.stage=throw,after=1");
  flow::FlowContext ctx;
  ctx.txn.snapshot = true;
  ctx.txn.on_failure = flow::TxnPolicy::OnFailure::kSkip;
  const flow::FlowReport report =
      flow::run_flow("gen:adder,bits=8; rewrite; balance", ctx);
  fail::disable();
  ASSERT_TRUE(report.ok) << report.error;
#ifndef MCS_OBS_DISABLE
  EXPECT_GE(obs::counter("ckpt.skips").value(), skips_before + 2);
#endif

  // The skipped stages rolled back: the network is exactly the generated
  // adder, untouched by rewrite/balance.
  flow::FlowContext plain;
  ASSERT_TRUE(flow::run_flow("gen:adder,bits=8", plain).ok);
  EXPECT_EQ(blif_of(ctx.net), blif_of(plain.net));

  std::size_t skipped = 0;
  for (const flow::StageReport& stage : ctx.history) {
    if (stage.note.rfind("skipped after rollback:", 0) == 0) ++skipped;
  }
  EXPECT_EQ(skipped, 2u);
}

TEST_F(TxnTest, FailPolicyStopsImmediatelyWithoutRollback) {
  const std::uint64_t rollbacks_before =
      obs::counter("ckpt.rollbacks").value();
  fail::configure("flow.stage=throw,after=1,count=1");
  flow::FlowContext ctx;
  ctx.txn.snapshot = true;
  ctx.txn.on_failure = flow::TxnPolicy::OnFailure::kFail;
  const flow::FlowReport report =
      flow::run_flow("gen:adder,bits=8; rewrite", ctx);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(obs::counter("ckpt.rollbacks").value(), rollbacks_before);
}

TEST_F(TxnTest, ValidationFaultSiteTriggersRollback) {
  // flow.validate fires inside the post-stage audit window: the stage ran
  // and mutated the network, so recovery requires an actual rollback.
  const std::uint64_t rollbacks_before =
      obs::counter("ckpt.rollbacks").value();
  fail::configure("flow.validate=throw,after=1,count=1");
  flow::FlowContext ctx;
  ctx.txn.snapshot = true;
  ctx.txn.validate = true;
  ctx.txn.on_failure = flow::TxnPolicy::OnFailure::kRetry;
  const flow::FlowReport report =
      flow::run_flow("gen:adder,bits=8; rewrite", ctx);
  fail::disable();
  ASSERT_TRUE(report.ok) << report.error;
#ifndef MCS_OBS_DISABLE
  EXPECT_GE(obs::counter("ckpt.rollbacks").value(), rollbacks_before + 1);
#endif
}

TEST_F(TxnTest, SimSignatureSpotCheckPassesHonestTransforms) {
  flow::FlowContext ctx;
  ctx.txn.snapshot = true;
  ctx.txn.sim_words = 8;
  const flow::FlowReport report =
      flow::run_flow("gen:adder,bits=16; rewrite; balance", ctx);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST_F(TxnTest, CkptPassArmsThePolicyFromAFlowSpec) {
  flow::FlowContext ctx;
  const flow::FlowReport report = flow::run_flow(
      "ckpt:mode=skip,retries=3,validate=true,sim_words=4; gen:adder,bits=8",
      ctx);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(ctx.txn.snapshot);
  EXPECT_TRUE(ctx.txn.validate);
  EXPECT_EQ(ctx.txn.on_failure, flow::TxnPolicy::OnFailure::kSkip);
  EXPECT_EQ(ctx.txn.max_retries, 3);
  EXPECT_EQ(ctx.txn.sim_words, 4);

  ASSERT_TRUE(flow::run_flow("ckpt:mode=off", ctx).ok);
  EXPECT_FALSE(ctx.txn.snapshot);

  EXPECT_FALSE(flow::run_flow("ckpt:mode=sometimes", ctx).ok);
}

}  // namespace
}  // namespace mcs
