/// Tests for the choice-aware K-LUT mapper: functional correctness of the
/// mapped netlists (with and without choices), size/depth sanity, and the
/// MCH win condition on crafted examples.

#include <gtest/gtest.h>

#include "mcs/choice/mch.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

/// Verifies a LUT network against the original by word-parallel simulation
/// on random vectors plus full CEC of the rebuilt network.
void expect_lut_equivalent(const Network& net, const LutNetwork& lnet) {
  ASSERT_EQ(lnet.num_pis, static_cast<int>(net.num_pis()));
  ASSERT_EQ(lnet.po_refs.size(), net.num_pos());

  Rng rng(0xfeed);
  RandomSimulation sim(net, 4, 0x9999);
  // Re-simulate the LUT network with the same PI words.
  for (int w = 0; w < 4; ++w) {
    std::vector<std::uint64_t> pi_vals;
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      pi_vals.push_back(sim.node_values(net.pi_at(i))[w]);
    }
    const auto lut_pos = lnet.simulate(pi_vals);
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      const Signal s = net.po_at(i);
      const std::uint64_t expected =
          sim.node_values(s.node())[w] ^ (s.complemented() ? ~0ull : 0ull);
      ASSERT_EQ(lut_pos[i], expected) << "PO " << i << " word " << w;
    }
  }

  // Full formal check through the rebuilt network.
  const Network rebuilt = lut_network_to_network(lnet);
  ASSERT_EQ(check_equivalence(net, rebuilt), CecResult::kEquivalent);
}

class LutMapperOnRandomNets
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LutMapperOnRandomNets, MappingIsFunctionallyCorrect) {
  const auto [seed, k] = GetParam();
  const auto net = testing::random_network(
      {.num_pis = 8,
       .num_gates = 120,
       .num_pos = 6,
       .basis = GateBasis::xmg(),
       .seed = static_cast<std::uint64_t>(seed)});
  LutMapParams params;
  params.lut_size = k;
  params.use_choices = false;
  LutMapStats stats;
  const LutNetwork lnet = lut_map(net, params, &stats);
  EXPECT_GT(stats.num_luts, 0u);
  EXPECT_EQ(stats.num_luts, lnet.size());
  expect_lut_equivalent(net, lnet);
}

TEST_P(LutMapperOnRandomNets, MappingWithChoicesIsFunctionallyCorrect) {
  const auto [seed, k] = GetParam();
  const auto input = testing::random_network(
      {.num_pis = 7,
       .num_gates = 80,
       .num_pos = 5,
       .basis = GateBasis::aig(),
       .seed = static_cast<std::uint64_t>(seed + 40)});
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(input, mch_params);
  ASSERT_GT(mch.num_choices(), 0u);

  LutMapParams params;
  params.lut_size = k;
  params.use_choices = true;
  const LutNetwork lnet = lut_map(mch, params);
  // The mapping implements the MCH network's interface == input's.
  expect_lut_equivalent(input, lnet);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndK, LutMapperOnRandomNets,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(4, 6)));

TEST(LutMapper, DepthObjectiveIsNoWorseThanAreaObjective) {
  const auto net = testing::random_network(
      {.num_pis = 8, .num_gates = 200, .num_pos = 4, .seed = 33});
  LutMapParams delay_params;
  delay_params.objective = LutMapParams::Objective::kDelay;
  delay_params.use_choices = false;
  LutMapParams area_params;
  area_params.objective = LutMapParams::Objective::kArea;
  area_params.use_choices = false;
  const auto d = lut_map(net, delay_params);
  const auto a = lut_map(net, area_params);
  EXPECT_LE(d.depth(), a.depth());
}

TEST(LutMapper, SingleGateBecomesOneLut) {
  Network net;
  const Signal a = net.create_pi();
  const Signal b = net.create_pi();
  net.create_po(net.create_and(a, b));
  const auto lnet = lut_map(net);
  EXPECT_EQ(lnet.size(), 1u);
  EXPECT_EQ(lnet.depth(), 1u);
}

TEST(LutMapper, ConstantAndPassThroughPos) {
  Network net;
  const Signal a = net.create_pi();
  net.create_po(a);
  net.create_po(!a);
  net.create_po(net.constant(true));
  const auto lnet = lut_map(net);
  expect_lut_equivalent(net, lnet);
}

TEST(LutMapper, SixInputConeFitsOneLut) {
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(net.create_pi());
  Signal acc = pis[0];
  for (int i = 1; i < 6; ++i) acc = net.create_and(acc, pis[i]);
  net.create_po(acc);
  const auto lnet = lut_map(net, {.lut_size = 6, .use_choices = false});
  EXPECT_EQ(lnet.size(), 1u);
}

TEST(LutMapper, ChoicesCanOnlyHelpLutCount) {
  // Area-oriented mapping of an MCH network must not be worse than mapping
  // the original network with the same parameters: every original cut is
  // still available (choices only add candidates).
  for (int seed = 1; seed <= 5; ++seed) {
    const auto input = testing::random_network(
        {.num_pis = 8,
         .num_gates = 150,
         .num_pos = 5,
         .basis = GateBasis::aig(),
         .seed = static_cast<std::uint64_t>(seed * 101)});
    LutMapParams params;
    params.use_choices = true;
    const auto baseline = lut_map(cleanup(input), params);

    MchParams mch_params;
    mch_params.candidate_basis = GateBasis::xmg();
    const Network mch = build_mch(input, mch_params);
    const auto with_choices = lut_map(mch, params);

    // Not a strict theorem under greedy heuristics, but holds with margin
    // on random logic; allow a tiny tolerance for heuristic noise.
    EXPECT_LE(with_choices.size(), baseline.size() + 2) << "seed " << seed;
  }
}

TEST(LutMapper, MchWinsOnXorRichLogic) {
  // A parity tree expanded to AIG: 6-LUT mapping of the raw AIG wastes
  // LUTs; with XMG choices the mapper can pick wide XOR cuts.
  Network net;
  std::vector<Signal> pis;
  for (int i = 0; i < 16; ++i) pis.push_back(net.create_pi());
  std::vector<Signal> layer = pis;
  while (layer.size() > 1) {
    std::vector<Signal> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const Signal a = layer[i], b = layer[i + 1];
      next.push_back(net.create_or(net.create_and(a, !b),
                                   net.create_and(!a, b)));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = next;
  }
  net.create_po(layer[0]);
  ASSERT_TRUE(net.is_aig());

  LutMapParams params;
  params.objective = LutMapParams::Objective::kArea;
  const auto baseline = lut_map(net, params);

  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  mch_params.critical_ratio = 0.0;  // everything level-oriented
  const Network mch = build_mch(net, mch_params);
  const auto improved = lut_map(mch, params);

  EXPECT_LE(improved.size(), baseline.size());
  expect_lut_equivalent(net, improved);
}

}  // namespace
}  // namespace mcs
