/// Tests for the word-level construction library and the EPFL-analogue
/// benchmark generators: every arithmetic circuit is validated against a
/// software model on random inputs via simulation.

#include <gtest/gtest.h>

#include "mcs/circuits/circuits.hpp"
#include "mcs/circuits/wordlib.hpp"
#include "mcs/common/rng.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {
namespace {

using circuits::Word;

/// Evaluates a network on a single input assignment (bit i of PI i).
std::vector<bool> eval(const Network& net,
                       const std::vector<bool>& pi_values) {
  std::vector<std::uint8_t> value(net.size(), 0);
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    value[net.pi_at(i)] = pi_values[i];
  }
  for (NodeId n = 0; n < net.size(); ++n) {
    const Node& nd = net.node(n);
    if (!net.is_gate(n)) continue;
    bool in[3] = {};
    for (int i = 0; i < nd.num_fanins; ++i) {
      in[i] = value[nd.fanin[i].node()] ^ nd.fanin[i].complemented();
    }
    switch (nd.type) {
      case GateType::kAnd2: value[n] = in[0] && in[1]; break;
      case GateType::kXor2: value[n] = in[0] != in[1]; break;
      case GateType::kMaj3: value[n] = (in[0] + in[1] + in[2]) >= 2; break;
      case GateType::kXor3: value[n] = in[0] ^ in[1] ^ in[2]; break;
      default: break;
    }
  }
  std::vector<bool> pos;
  for (const Signal s : net.pos()) {
    pos.push_back(value[s.node()] ^ s.complemented());
  }
  return pos;
}

std::uint64_t word_value(const std::vector<bool>& bits, int lo, int n) {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    if (bits[lo + i]) v |= (1ull << i);
  }
  return v;
}

std::vector<bool> random_inputs(std::size_t n, Rng& rng) {
  std::vector<bool> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.next_bool();
  return v;
}

TEST(WordLib, AdderMatchesArithmetic) {
  Rng rng(1);
  const auto net = circuits::adder(16);
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const auto out = eval(net, in);
    const std::uint64_t a = word_value(in, 0, 16);
    const std::uint64_t b = word_value(in, 16, 16);
    EXPECT_EQ(word_value(out, 0, 17), a + b);
  }
}

TEST(WordLib, MultiplierMatchesArithmetic) {
  Rng rng(2);
  const auto net = circuits::multiplier(8);
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const auto out = eval(net, in);
    const std::uint64_t a = word_value(in, 0, 8);
    const std::uint64_t b = word_value(in, 8, 8);
    EXPECT_EQ(word_value(out, 0, 16), a * b);
  }
}

TEST(WordLib, DividerMatchesArithmetic) {
  Rng rng(3);
  const auto net = circuits::divider(8);
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const std::uint64_t a = word_value(in, 0, 8);
    const std::uint64_t b = word_value(in, 8, 8);
    if (b == 0) continue;
    const auto out = eval(net, in);
    EXPECT_EQ(word_value(out, 0, 8), a / b) << a << "/" << b;
    EXPECT_EQ(word_value(out, 8, 8), a % b) << a << "%" << b;
  }
}

TEST(WordLib, SqrtMatchesArithmetic) {
  Rng rng(4);
  const auto net = circuits::sqrt_circuit(12);
  for (int iter = 0; iter < 30; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const std::uint64_t a = word_value(in, 0, 12);
    const auto out = eval(net, in);
    const std::uint64_t r = word_value(out, 0, 6);
    EXPECT_LE(r * r, a);
    EXPECT_GT((r + 1) * (r + 1), a);
  }
}

TEST(WordLib, BarrelShifterRotates) {
  Rng rng(5);
  const auto net = circuits::barrel_shifter(16);
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const std::uint64_t a = word_value(in, 0, 16);
    const std::uint64_t s = word_value(in, 16, 4);
    const auto out = eval(net, in);
    const std::uint64_t expect =
        ((a << s) | (a >> (16 - s))) & 0xffff;
    EXPECT_EQ(word_value(out, 0, 16), s == 0 ? a : expect);
  }
}

TEST(WordLib, Max4PicksMaximum) {
  Rng rng(6);
  const auto net = circuits::max4(8);
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    std::uint64_t ops[4];
    for (int i = 0; i < 4; ++i) ops[i] = word_value(in, 8 * i, 8);
    const auto out = eval(net, in);
    EXPECT_EQ(word_value(out, 0, 8),
              std::max(std::max(ops[0], ops[1]), std::max(ops[2], ops[3])));
  }
}

TEST(WordLib, VoterComputesMajority) {
  Rng rng(7);
  const auto net = circuits::voter(15);
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    int ones = 0;
    for (std::size_t i = 0; i < in.size(); ++i) ones += in[i];
    const auto out = eval(net, in);
    EXPECT_EQ(out[0], ones >= 8);
  }
}

TEST(WordLib, PriorityEncoderFindsMsb) {
  Rng rng(8);
  const auto net = circuits::priority_encoder(16);
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const std::uint64_t a = word_value(in, 0, 16);
    const auto out = eval(net, in);
    if (a == 0) {
      EXPECT_FALSE(out[4]);  // valid flag
      continue;
    }
    EXPECT_TRUE(out[4]);
    EXPECT_EQ(word_value(out, 0, 4), 63 - __builtin_clzll(a));
  }
}

TEST(WordLib, DecoderIsOneHot) {
  Rng rng(9);
  const auto net = circuits::decoder(5);
  for (int iter = 0; iter < 20; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const std::uint64_t a = word_value(in, 0, 5);
    const auto out = eval(net, in);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(out[i], static_cast<std::uint64_t>(i) == a);
    }
  }
}

TEST(WordLib, ArbiterGrantsOneRequestor) {
  Rng rng(10);
  const auto net = circuits::round_robin_arbiter(8);
  for (int iter = 0; iter < 60; ++iter) {
    const auto in = random_inputs(net.num_pis(), rng);
    const std::uint64_t req = word_value(in, 0, 8);
    const std::uint64_t ptr = word_value(in, 8, 3);
    const auto out = eval(net, in);
    const std::uint64_t grant = word_value(out, 0, 8);
    if (req == 0) {
      EXPECT_EQ(grant, 0u);
      EXPECT_FALSE(out[8]);
      continue;
    }
    // Exactly one grant, to a requestor, and it is the first requestor at
    // or after the pointer (round robin).
    EXPECT_EQ(__builtin_popcountll(grant), 1);
    EXPECT_NE(grant & req, 0u);
    int expected = -1;
    for (int k = 0; k < 8; ++k) {
      const int idx = (static_cast<int>(ptr) + k) % 8;
      if ((req >> idx) & 1) {
        expected = idx;
        break;
      }
    }
    EXPECT_EQ(grant, 1ull << expected);
  }
}

TEST(Circuits, SuiteHasTwentyNamedCircuits) {
  const auto suite = circuits::epfl_suite_small();
  ASSERT_EQ(suite.size(), 20u);
  const char* expected[] = {"adder",   "bar",        "div",      "hyp",
                            "log2",    "max",        "multiplier", "sin",
                            "sqrt",    "square",     "arbiter",  "cavlc",
                            "ctrl",    "dec",        "i2c",      "int2float",
                            "mem_ctrl", "priority",  "router",   "voter"};
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, expected[i]);
    EXPECT_GT(suite[i].net.num_gates(), 0u) << suite[i].name;
    EXPECT_GT(suite[i].net.num_pos(), 0u) << suite[i].name;
  }
}

TEST(Circuits, GeneratorsAreDeterministic) {
  const auto a = circuits::mem_ctrl_like();
  const auto b = circuits::mem_ctrl_like();
  EXPECT_EQ(a.num_gates(), b.num_gates());
  EXPECT_EQ(a.depth(), b.depth());
}

}  // namespace
}  // namespace mcs
