/// Tests for SAT-based exact synthesis: minimality on known functions and
/// functional correctness across bases.

#include <gtest/gtest.h>

#include "mcs/common/rng.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/resyn/exact.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {
namespace {

TruthTable simulate_root(const ExactSynthesisResult& r) {
  Network net = r.net;  // simulate a copy with the root as PO
  net.create_po(r.root);
  return simulate_pos(net)[0];
}

TEST(ExactSynthesis, TrivialFunctionsNeedNoGates) {
  for (const Tt6 f : {tt6_const0(), tt6_const1(), tt6_var(0), ~tt6_var(1)}) {
    const auto r = exact_synthesize(f, 2);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->num_gates, 0);
    EXPECT_EQ(simulate_root(*r).to_tt6(), tt6_replicate(f, 2));
  }
}

TEST(ExactSynthesis, AndIsOneGate) {
  const auto r = exact_synthesize(tt6_var(0) & tt6_var(1), 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->num_gates, 1);
}

TEST(ExactSynthesis, XorCostsThreeAigGatesButOneXagGate) {
  const Tt6 f = tt6_var(0) ^ tt6_var(1);
  const auto aig = exact_synthesize(f, 2, {.basis = GateBasis::aig()});
  ASSERT_TRUE(aig.has_value());
  EXPECT_EQ(aig->num_gates, 3) << "XOR needs 3 AND gates";
  const auto xag = exact_synthesize(f, 2, {.basis = GateBasis::xag()});
  ASSERT_TRUE(xag.has_value());
  EXPECT_EQ(xag->num_gates, 1);
}

TEST(ExactSynthesis, MajIsOneMigGate) {
  const Tt6 a = tt6_var(0), b = tt6_var(1), c = tt6_var(2);
  const Tt6 maj = (a & b) | (a & c) | (b & c);
  const auto mig = exact_synthesize(maj, 3, {.basis = GateBasis::mig()});
  ASSERT_TRUE(mig.has_value());
  EXPECT_EQ(mig->num_gates, 1);
  const auto aig = exact_synthesize(maj, 3, {.basis = GateBasis::aig()});
  ASSERT_TRUE(aig.has_value());
  EXPECT_EQ(aig->num_gates, 4) << "MAJ as AND/OR needs 4 gates";
}

TEST(ExactSynthesis, FullAdderSumInXmg) {
  // XOR3 is a single XMG gate.
  const Tt6 f = tt6_var(0) ^ tt6_var(1) ^ tt6_var(2);
  const auto r = exact_synthesize(f, 3, {.basis = GateBasis::xmg()});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->num_gates, 1);
  EXPECT_EQ(simulate_root(*r).to_tt6(), tt6_replicate(f, 3));
}

class ExactRandomFunctions : public ::testing::TestWithParam<int> {};

TEST_P(ExactRandomFunctions, RealizesRandom3VarFunctions) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    const Tt6 f = tt6_replicate(rng.next(), 3);
    const auto r = exact_synthesize(f, 3, {.basis = GateBasis::xmg()});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(simulate_root(*r).to_tt6(), tt6_replicate(f, 3))
        << "function " << std::hex << (f & 0xff);
    // XMG realizes any 3-input function within 4 gates.
    EXPECT_LE(r->num_gates, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactRandomFunctions,
                         ::testing::Values(1, 2, 3));

TEST(ExactSynthesis, NeverBeatenByItself) {
  // Exact size in a larger basis is never worse than in a smaller one.
  Rng rng(9);
  for (int iter = 0; iter < 4; ++iter) {
    const Tt6 f = tt6_replicate(rng.next(), 3);
    const auto aig = exact_synthesize(f, 3, {.basis = GateBasis::aig()});
    const auto xmg = exact_synthesize(f, 3, {.basis = GateBasis::xmg()});
    ASSERT_TRUE(aig.has_value());
    ASSERT_TRUE(xmg.has_value());
    EXPECT_LE(xmg->num_gates, aig->num_gates);
  }
}

}  // namespace
}  // namespace mcs
