/// End-to-end integration tests: complete flows across modules on the
/// generated benchmark circuits, formally verified.  These mirror what the
/// benches run at scale, on circuits small enough for full CEC.

#include <gtest/gtest.h>

#include <sstream>

#include "mcs/choice/dch.hpp"
#include "mcs/choice/mch.hpp"
#include "mcs/circuits/circuits.hpp"
#include "mcs/io/aiger.hpp"
#include "mcs/map/asic_mapper.hpp"
#include "mcs/map/graph_mapper.hpp"
#include "mcs/map/lut_mapper.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"

namespace mcs {
namespace {

const TechLibrary& lib() {
  static const TechLibrary l = TechLibrary::asap7_mini();
  return l;
}

/// Word-parallel check of a cell netlist against a reference network.
void expect_netlist_matches(const Network& ref, const CellNetlist& m) {
  RandomSimulation sim(ref, 16, 0xabc);
  for (int w = 0; w < 16; ++w) {
    std::vector<std::uint64_t> pi;
    for (std::size_t i = 0; i < ref.num_pis(); ++i) {
      pi.push_back(sim.node_values(ref.pi_at(i))[w]);
    }
    const auto pos = m.simulate(pi);
    for (std::size_t i = 0; i < ref.num_pos(); ++i) {
      const Signal s = ref.po_at(i);
      ASSERT_EQ(pos[i], sim.node_values(s.node())[w] ^
                            (s.complemented() ? ~0ull : 0ull));
    }
  }
}

TEST(Integration, FullAsicFlowOnAdder) {
  const Network rtl = expand_to_aig(circuits::adder(12));
  const Network opt = compress2rs_like(rtl, GateBasis::aig(), 2);
  ASSERT_EQ(check_equivalence(rtl, opt), CecResult::kEquivalent);

  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(opt, mch_params);
  const CellNetlist mapped = asic_map(mch, lib());
  expect_netlist_matches(rtl, mapped);
  EXPECT_GT(mapped.area, 0.0);
}

TEST(Integration, AdderMchMappingUsesMajXorCells) {
  // The whole point of heterogeneous choices: a ripple-carry adder in pure
  // AIG form should map onto MAJ/XOR3 (full-adder) cells once XMG
  // candidates are present.
  const Network rtl = expand_to_aig(circuits::adder(12));
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  mch_params.critical_ratio = 0.0;
  const Network mch = build_mch(rtl, mch_params);
  AsicMapParams p;
  p.objective = AsicMapParams::Objective::kArea;
  const CellNetlist mapped = asic_map(mch, lib(), p);
  expect_netlist_matches(rtl, mapped);
  int maj_or_xor3 = 0;
  for (const auto& [name, count] : mapped.cell_histogram()) {
    if (name.rfind("MAJ", 0) == 0 || name.rfind("XOR3", 0) == 0 ||
        name.rfind("XNOR3", 0) == 0) {
      maj_or_xor3 += count;
    }
  }
  EXPECT_GT(maj_or_xor3, 0)
      << "XMG candidates should expose MAJ/XOR3 cells to the mapper";
}

TEST(Integration, FullFpgaFlowOnBarrelShifter) {
  const Network rtl = expand_to_aig(circuits::barrel_shifter(16));
  const Network opt = compress2rs_like(rtl, GateBasis::aig(), 2);
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(opt, mch_params);
  const LutNetwork luts = lut_map(mch);
  const Network back = lut_network_to_network(luts);
  EXPECT_EQ(check_equivalence(rtl, back), CecResult::kEquivalent);
}

TEST(Integration, DchThenMchStacking) {
  // MCH on top of DCH snapshots: inherited classes must survive and stay
  // functionally valid alongside the new heterogeneous candidates.
  const Network rtl = expand_to_aig(circuits::priority_encoder(16));
  const Network opt = compress2rs_like(rtl, GateBasis::aig(), 2);
  const Network dch = build_dch({opt, balance(opt), rtl});
  const std::size_t inherited = dch.num_choices();
  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(dch, mch_params);
  EXPECT_GE(mch.num_choices(), inherited);

  RandomSimulation sim(mch, 8, 99);
  for (NodeId n = 0; n < mch.size(); ++n) {
    if (!mch.has_choice(n)) continue;
    for (NodeId m = mch.node(n).next_choice; m != kNullNode;
         m = mch.node(m).next_choice) {
      ASSERT_TRUE(sim.values_equal(Signal(n, false),
                                   Signal(m, mch.node(m).choice_phase)));
    }
  }
  const LutNetwork luts = lut_map(mch);
  EXPECT_EQ(check_equivalence(rtl, lut_network_to_network(luts)),
            CecResult::kEquivalent);
}

TEST(Integration, GraphMapRoundTripThroughAiger) {
  // circuit -> XMG graph map -> AIG expansion -> AIGER -> read back -> CEC.
  const Network rtl = cleanup(circuits::router_like());
  GraphMapParams gm;
  gm.target = GateBasis::xmg();
  const Network xmg = graph_map(rtl, gm);
  const Network aig = expand_to_aig(xmg);
  std::stringstream ss;
  write_aiger(aig, ss, /*binary=*/true);
  const Network back = read_aiger(ss);
  EXPECT_EQ(check_equivalence(rtl, back), CecResult::kEquivalent);
}

class SuiteCircuitsMapCorrectly : public ::testing::TestWithParam<int> {};

TEST_P(SuiteCircuitsMapCorrectly, LutAndAsic) {
  auto suite = circuits::epfl_suite(0.25);
  auto& bc = suite[GetParam()];
  const Network net = cleanup(bc.net);

  MchParams mch_params;
  mch_params.candidate_basis = GateBasis::xmg();
  const Network mch = build_mch(expand_to_aig(net), mch_params);

  const LutNetwork luts = lut_map(mch);
  RandomSimulation sim(net, 8, 0x5151);
  for (int w = 0; w < 8; ++w) {
    std::vector<std::uint64_t> pi;
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      pi.push_back(sim.node_values(net.pi_at(i))[w]);
    }
    const auto pos = luts.simulate(pi);
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      const Signal s = net.po_at(i);
      ASSERT_EQ(pos[i], sim.node_values(s.node())[w] ^
                            (s.complemented() ? ~0ull : 0ull))
          << bc.name << " PO " << i;
    }
  }

  const CellNetlist cells = asic_map(mch, lib());
  expect_netlist_matches(net, cells);
}

INSTANTIATE_TEST_SUITE_P(AllTwenty, SuiteCircuitsMapCorrectly,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mcs
