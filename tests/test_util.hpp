/// Shared helpers for the test suite: random network generation and
/// brute-force oracles.

#pragma once

#include <vector>

#include "mcs/common/rng.hpp"
#include "mcs/network/network.hpp"
#include "mcs/resyn/basis.hpp"

namespace mcs::testing {

struct RandomNetworkSpec {
  int num_pis = 6;
  int num_gates = 40;
  int num_pos = 4;
  GateBasis basis = GateBasis::xmg();
  std::uint64_t seed = 1;
};

/// Builds a random strashed network in the given basis.  Gates draw fanins
/// from all previously created signals (with random complementation), so the
/// result is a well-formed DAG exercising every gate type of the basis.
inline Network random_network(const RandomNetworkSpec& spec) {
  Network net;
  Rng rng(spec.seed);
  std::vector<Signal> pool;
  for (int i = 0; i < spec.num_pis; ++i) pool.push_back(net.create_pi());

  auto pick = [&]() {
    Signal s = pool[rng.next_below(pool.size())];
    return s ^ rng.next_bool();
  };

  for (int i = 0; i < spec.num_gates; ++i) {
    std::vector<GateType> types{GateType::kAnd2};
    if (spec.basis.use_xor) types.push_back(GateType::kXor2);
    if (spec.basis.use_maj) types.push_back(GateType::kMaj3);
    if (spec.basis.use_xor && spec.basis.use_maj) {
      types.push_back(GateType::kXor3);
    }
    const GateType t = types[rng.next_below(types.size())];
    const Signal s = net.create_gate(t, {pick(), pick(), pick()});
    if (net.is_gate(s.node())) pool.push_back(s);
  }

  // POs: prefer the most recently created signals so most logic is live.
  for (int i = 0; i < spec.num_pos; ++i) {
    const std::size_t idx =
        pool.size() - 1 - rng.next_below(std::min<std::size_t>(8, pool.size()));
    net.create_po(pool[idx] ^ rng.next_bool());
  }
  return net;
}

}  // namespace mcs::testing
