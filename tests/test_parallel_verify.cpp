/// Unit tests for the end-to-end parallel scaling work: the work-stealing
/// thread pool (nested submit, batched fan-out, claim orders, exception
/// determinism, MCS_THREADS), level-blocked parallel random simulation and
/// the per-PO-batched parallel CEC -- each with the 1-vs-N bit-identity
/// contract -- plus cost-ordered shard scheduling determinism on shards of
/// shuffled sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mcs/circuits/circuits.hpp"
#include "mcs/network/convert.hpp"
#include "mcs/network/network_utils.hpp"
#include "mcs/opt/optimize.hpp"
#include "mcs/par/par_engine.hpp"
#include "mcs/par/thread_pool.hpp"
#include "mcs/sat/cec.hpp"
#include "mcs/sim/simulator.hpp"
#include "test_util.hpp"

namespace mcs {
namespace {

// --- thread pool ------------------------------------------------------------

TEST(ThreadPoolStress, ManyTinyTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  futs.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    futs.push_back(pool.submit([&sum]() { sum.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 5000);
  pool.wait_idle();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolStress, NestedSubmitFromWorkers) {
  // Tasks submitted from inside a worker land on that worker's own deque
  // and may be stolen; every nested task must still run exactly once.
  ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  std::vector<std::future<std::future<void>>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&]() {
      outer.fetch_add(1);
      return pool.submit([&]() { inner.fetch_add(1); });
    }));
  }
  for (auto& f : futs) f.get().get();
  EXPECT_EQ(outer.load(), 200);
  EXPECT_EQ(inner.load(), 200);
}

TEST(ThreadPoolBulk, RunsEveryIndexOnceForAnyOrderAndWorkerCount) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 731;
  std::vector<std::uint32_t> order(kN);
  std::iota(order.begin(), order.end(), 0u);
  // A deterministic shuffle (reverse + swap pairs) -- claim order must not
  // change what runs.
  std::reverse(order.begin(), order.end());
  for (std::size_t i = 0; i + 1 < kN; i += 2) std::swap(order[i], order[i + 1]);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    std::vector<int> hits(kN, 0);
    pool.submit_bulk(
        kN, [&](std::size_t i) { ++hits[i]; }, workers, order.data());
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at " << workers
                            << " workers";
    }
  }
}

TEST(ThreadPoolBulk, RethrowsSmallestFailingIndex) {
  struct IndexedError : std::runtime_error {
    explicit IndexedError(std::size_t i)
        : std::runtime_error("task failed"), index(i) {}
    std::size_t index;
  };
  ThreadPool pool(4);
  // Claim order is descending, so the *largest* failing index fails first
  // in time; the smallest one must surface regardless.
  std::vector<std::uint32_t> order(64);
  std::iota(order.begin(), order.end(), 0u);
  std::reverse(order.begin(), order.end());
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<int> ran{0};
    try {
      pool.submit_bulk(
          64,
          [&](std::size_t i) {
            ran.fetch_add(1);
            if (i == 13 || i == 57) throw IndexedError(i);
          },
          workers, order.data());
      FAIL() << "expected an exception";
    } catch (const IndexedError& e) {
      EXPECT_EQ(e.index, 13u) << workers << " workers";
    }
    EXPECT_EQ(ran.load(), 64) << "every index still runs";
  }
}

TEST(ThreadPoolBulk, NestedBulkRunsInline) {
  // submit_bulk from inside a pool worker must not deadlock: it degrades
  // to the inline path.
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.submit_bulk(
      4,
      [&](std::size_t) {
        pool.submit_bulk(
            8, [&](std::size_t) { sum.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(sum.load(), 32);
}

TEST(ThreadPool, EnsureWorkersGrows) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  pool.ensure_workers(2);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> sum{0};
  pool.submit_bulk(
      100, [&](std::size_t) { sum.fetch_add(1); }, 3);
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, McsThreadsEnvironmentVariable) {
  // Restore any ambient MCS_THREADS afterwards: the CI matrix runs this
  // whole binary under MCS_THREADS=1/4 and the later tests must see it.
  // resolve_threads reads the environment ONCE and caches the default, so
  // each setenv below is followed by refresh_thread_default() -- the test
  // hook that drops the cache (production code never calls it).
  const char* ambient = std::getenv("MCS_THREADS");
  const std::string saved = ambient != nullptr ? ambient : "";

  ASSERT_EQ(::setenv("MCS_THREADS", "3", 1), 0);
  ThreadPool::refresh_thread_default();
  EXPECT_EQ(ThreadPool::resolve_threads(0), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(-1), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(2), 2u) << "explicit request wins";

  // Without a refresh the first resolution stays authoritative: later env
  // changes must NOT leak into resolve_threads (read-once contract).
  ASSERT_EQ(::setenv("MCS_THREADS", "7", 1), 0);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 3u)
      << "cached default must ignore env changes after first resolution";

  ASSERT_EQ(::setenv("MCS_THREADS", "junk", 1), 0);
  ThreadPool::refresh_thread_default();
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u) << "junk falls back to hw";
  ASSERT_EQ(::unsetenv("MCS_THREADS"), 0);
  ThreadPool::refresh_thread_default();
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);

  if (ambient != nullptr) {
    ASSERT_EQ(::setenv("MCS_THREADS", saved.c_str(), 1), 0);
  }
  ThreadPool::refresh_thread_default();
}

// --- parallel random simulation ---------------------------------------------

TEST(ParallelSim, BitIdenticalForAnyThreadCount) {
  // Wide enough that several levels exceed the parallel grain.
  const Network net = expand_to_aig(circuits::multiplier(16));
  const RandomSimulation ref(net, 16, 0x5eed, /*num_threads=*/1);
  for (const int threads : {2, 4}) {
    const RandomSimulation par(net, 16, 0x5eed, threads);
    for (NodeId n = 0; n < net.size(); ++n) {
      ASSERT_EQ(0, std::memcmp(ref.node_values(n), par.node_values(n),
                               16 * sizeof(std::uint64_t)))
          << "node " << n << " diverged at " << threads << " threads";
    }
    for (const Signal po : net.pos()) {
      EXPECT_EQ(ref.signature(po), par.signature(po));
    }
  }
}

TEST(ParallelSim, PiWordsAreSeedDerivedPerInterfaceIndex) {
  // Two structurally different networks with the same PI count must see
  // identical input vectors -- the property the CEC falsification stage
  // (and every cross-network sim check) relies on.
  const Network a = circuits::adder(16);
  Network b;
  std::vector<Signal> pis;
  for (std::size_t i = 0; i < a.num_pis(); ++i) pis.push_back(b.create_pi());
  b.create_po(b.create_and(pis.front(), pis.back()));
  ASSERT_EQ(a.num_pis(), b.num_pis());

  const RandomSimulation sa(a, 8, 0xfeed);
  const RandomSimulation sb(b, 8, 0xfeed);
  for (std::size_t i = 0; i < a.num_pis(); ++i) {
    EXPECT_EQ(0, std::memcmp(sa.node_values(a.pi_at(i)),
                             sb.node_values(b.pi_at(i)),
                             8 * sizeof(std::uint64_t)))
        << "PI " << i;
  }
}

TEST(ParallelSim, LazyRestridePreservesExistingWords) {
  // The reserve_extra_words budget materializes lazily: the table keeps the
  // tight num_words stride until the first add_pattern_words() call, and
  // the one-shot re-stride must carry every existing value over untouched.
  const Network net = expand_to_aig(circuits::adder(16));
  RandomSimulation sim(net, 8, 0xbeef, /*num_threads=*/1,
                       /*reserve_extra_words=*/4);
  EXPECT_EQ(sim.spare_words(), 4);

  // Before any add, the reservation is invisible: values bit-match an
  // unreserved simulation of the same seed.
  const RandomSimulation tight(net, 8, 0xbeef);
  for (NodeId n = 0; n < net.size(); ++n) {
    ASSERT_EQ(0, std::memcmp(sim.node_values(n), tight.node_values(n),
                             8 * sizeof(std::uint64_t)))
        << "node " << n;
  }

  std::vector<std::uint64_t> before(net.size() * 8);
  for (NodeId n = 0; n < net.size(); ++n) {
    std::copy(sim.node_values(n), sim.node_values(n) + 8,
              before.begin() + static_cast<std::size_t>(n) * 8);
  }

  // First add triggers the re-stride.
  std::vector<std::uint64_t> pattern(net.num_pis(), 0x0123456789abcdefull);
  sim.add_pattern_words(pattern, 1);
  EXPECT_EQ(sim.num_words(), 9);
  EXPECT_EQ(sim.spare_words(), 3);
  for (NodeId n = 0; n < net.size(); ++n) {
    ASSERT_EQ(0, std::memcmp(sim.node_values(n),
                             before.data() + static_cast<std::size_t>(n) * 8,
                             8 * sizeof(std::uint64_t)))
        << "re-stride corrupted the existing words of node " << n;
  }

  // Later adds append within the (now materialized) budget; overrunning it
  // still fails loudly instead of spilling into the next node's row.
  const std::vector<std::uint64_t> pattern3(net.num_pis() * 3,
                                            0x0123456789abcdefull);
  sim.add_pattern_words(pattern3, 3);
  EXPECT_EQ(sim.spare_words(), 0);
  EXPECT_THROW(sim.add_pattern_words(pattern, 1), std::length_error);
}

// --- parallel CEC -----------------------------------------------------------

TEST(ParallelCec, VerdictMatchesSerialOnEquivalentPair) {
  // 33 POs -> several PO batches; optimized vs original is the realistic
  // "structurally different but equivalent" shape.
  const Network net = expand_to_aig(circuits::adder(32));
  const Network opt = compress2rs_like(net, GateBasis::xmg(), 1);
  ASSERT_FALSE(structurally_identical(net, opt));
  for (const int threads : {1, 2, 4}) {
    CecOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(check_equivalence(net, opt, opts), CecResult::kEquivalent)
        << threads << " threads";
  }
}

TEST(ParallelCec, VerdictMatchesSerialOnBrokenPair) {
  const Network net = circuits::adder(24);
  // Rebuild with one PO's function subtly wrong (swap AND for OR at the
  // top of the last PO) by complementing that PO.
  Network broken = net;
  {
    // Same interface, last PO complemented: sim falsifies instantly.
    Network fresh;
    std::vector<Signal> pis;
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      pis.push_back(fresh.create_pi(net.pi_name(i)));
    }
    std::vector<Signal> pi_map = pis;
    for (std::size_t i = 0; i < net.num_pos(); ++i) {
      Signal s = copy_cone(net, fresh, net.po_at(i), pi_map);
      if (i + 1 == net.num_pos()) s = !s;
      fresh.create_po(s, net.po_name(i));
    }
    broken = fresh;
  }
  for (const int threads : {1, 2, 4}) {
    CecOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(check_equivalence(net, broken, opts),
              CecResult::kNotEquivalent)
        << threads << " threads";
  }
}

TEST(ParallelCec, SatStageFindsDeepDisagreement) {
  // A mismatch random simulation is unlikely to hit: two networks that
  // agree except when all inputs are 1 (AND chain vs constant 0).  The
  // miter batches must find it for any thread count.
  constexpr int kBits = 24;
  Network a;
  {
    Signal acc = a.constant(true);
    for (int i = 0; i < kBits; ++i) acc = a.create_and(acc, a.create_pi());
    for (int i = 0; i < 9; ++i) a.create_po(acc);  // several batches
  }
  Network b;
  {
    for (int i = 0; i < kBits; ++i) b.create_pi();
    for (int i = 0; i < 9; ++i) b.create_po(b.constant(false));
  }
  for (const int threads : {1, 4}) {
    CecOptions opts;
    opts.num_threads = threads;
    opts.sim_words = 4;  // 256 random vectors: won't hit the all-ones case
    EXPECT_EQ(check_equivalence(a, b, opts), CecResult::kNotEquivalent)
        << threads << " threads";
  }
}

// --- cost-ordered shard scheduling ------------------------------------------

TEST(CostOrderedScheduling, DeterministicOnShuffledShardSizes) {
  // A multiplier sliced into many level windows of very different sizes
  // (bands of the array vary widely in gate count): the largest-first claim
  // order exercises out-of-submission-order completion, and the result must
  // still be bit-identical to 1 thread.
  const Network net = expand_to_aig(circuits::multiplier(8));
  ParParams one;
  one.num_threads = 1;
  one.partition.max_gates = 100;
  ParStats stats;
  const Network r1 = par_run(
      net,
      [](const Network& shard, std::size_t) {
        return compress2rs_like(shard, GateBasis::xmg(), 1);
      },
      one, &stats);
  EXPECT_GT(stats.num_partitions, 3u) << "want shards of mixed sizes";
  for (const int threads : {2, 4, 8}) {
    ParParams many = one;
    many.num_threads = threads;
    const Network rn = par_run(
        net,
        [](const Network& shard, std::size_t) {
          return compress2rs_like(shard, GateBasis::xmg(), 1);
        },
        many);
    EXPECT_TRUE(structurally_identical(r1, rn))
        << "par_run diverged at " << threads << " threads";
  }
  EXPECT_EQ(check_equivalence(net, r1), CecResult::kEquivalent);
}

}  // namespace
}  // namespace mcs
